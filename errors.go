package ehinfer

import (
	"errors"

	"repro/internal/batch"
)

// The programmable error taxonomy of the serving path. Every error
// returned by Session.Infer/InferBatch (and surfaced by ehserved's
// /v1/infer endpoint) wraps exactly one of these sentinels, so callers
// branch with errors.Is instead of string-matching — and the HTTP layer
// maps each sentinel to a status code in one table (internal/serve).
var (
	// ErrQueueFull reports that a bounded inference queue refused the
	// request — shed load and retry later (HTTP 429 + Retry-After).
	ErrQueueFull = batch.ErrQueueFull
	// ErrModelNotFound reports that the referenced artifact or
	// registered deployment does not exist (HTTP 404).
	ErrModelNotFound = errors.New("ehinfer: model not found")
	// ErrBadInput reports a request that failed boundary validation:
	// wrong input volume, non-finite values, an exit bound out of range,
	// or a threshold outside [0, 1] (HTTP 400).
	ErrBadInput = batch.ErrBadInput
	// ErrInferenceFailed reports a server-side execution failure (a
	// recovered panic) — permanent for this payload, not worth
	// retrying verbatim (HTTP 500).
	ErrInferenceFailed = batch.ErrInferenceFailed
)
