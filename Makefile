# Single source of the verify recipe: CI (.github/workflows/ci.yml) and
# humans run the same targets.

GO ?= go

.PHONY: all build test race bench fmt fmt-check lint clean

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector
race:
	$(GO) test -race ./...

## bench: one-iteration benchmark smoke pass (compiles and runs every benchmark once)
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

## fmt: rewrite sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file is not gofmt-clean
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## lint: static analysis (go vet)
lint:
	$(GO) vet ./...

## ci: everything the CI workflow gates on
ci: fmt-check lint build race bench

clean:
	$(GO) clean ./...
