# Single source of the verify recipe: CI (.github/workflows/ci.yml) and
# humans run the same targets.

GO ?= go

# The root-package micro benchmark set (micro_bench_test.go +
# serve_bench_test.go); bench-json archives exactly these so the perf
# trajectory is comparable PR to PR.
MICROBENCH = ^Benchmark(InferToExit1|InferToExit3|InferToExit3Int8|InferToExit3Int8Fast|InferBatched1|InferBatched4|InferBatched16|InferBatched1Int8Fast|InferBatched4Int8Fast|InferBatched16Int8Fast|ServerInferThroughput|LegacyInferToExit3|IncrementalResume|LegacyIncrementalResume|PlanCompile|PlanCompileInt8Fast|TrainStep|ApplyCompressionPolicy|QuantizeWeights8bit|QTableUpdate|SolarTraceGeneration|SynthCIFARSample|EngineRunToCompletion|FullSimulationEpisode|FleetStep|FleetShard)$$
BENCH_JSON ?= BENCH_pr10.json

# The hot-path subset bench-smoke gates in CI: a kernel regression that
# breaks inference or the episode loop fails the build.
SMOKEBENCH = ^Benchmark(InferToExit1|InferToExit3|InferToExit3Int8|InferToExit3Int8Fast|IncrementalResume|FullSimulationEpisode)$$

.PHONY: all build test race bench bench-smoke bench-json artifact-check infer-smoke crash-smoke fleet-smoke chaos-soak fmt fmt-check lint ehlint shellcheck staticcheck clean

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector
race:
	$(GO) test -race ./...

## bench: one-iteration benchmark smoke pass (compiles and runs every benchmark once)
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

## bench-smoke: run the inference/episode hot-path benchmarks exactly once
bench-smoke:
	$(GO) test -run='^$$' -bench='$(SMOKEBENCH)' -benchtime=1x -benchmem .

## bench-json: run the micro benchmarks (with allocation metrics) and
## archive them as $(BENCH_JSON) (two steps, no pipe: a failing benchmark
## run must fail the target, not hand benchjson an empty stream)
bench-json:
	$(GO) test -run='^$$' -bench='$(MICROBENCH)' -benchtime=100ms -benchmem . > $(BENCH_JSON).bench.out
	$(GO) run ./cmd/benchjson < $(BENCH_JSON).bench.out > $(BENCH_JSON)
	@rm -f $(BENCH_JSON).bench.out
	@echo "wrote $(BENCH_JSON)"

## artifact-check: decode the checked-in golden deployment artifact
## (wire-format gate: drift without a deliberate version bump fails) and
## build+vet every example program, which would otherwise only be
## covered while ./... expansion happens to include them
artifact-check:
	$(GO) test -run 'TestGoldenArtifact' .
	$(GO) build ./examples/...
	$(GO) vet ./examples/...

## infer-smoke: boot the real ehserved daemon, upload the golden
## artifact, POST one /v1/infer request, and assert the decoded
## prediction — the end-to-end gate on the online serving path
infer-smoke:
	./scripts/infer_smoke.sh

## crash-smoke: SIGKILL the real ehserved daemon mid-grid, restart it on
## the same -data-dir, and assert the resumed job's final result
## document is byte-identical to an uninterrupted run's — the
## crash-recovery gate
crash-smoke:
	./scripts/crash_smoke.sh

## fleet-smoke: SIGKILL the real ehserved daemon mid-fleet-job, restart
## it on the same -data-dir, and assert the resumed fleet's final result
## document is byte-identical to an uninterrupted run's — the fleet
## crash-recovery gate
fleet-smoke:
	./scripts/fleet_smoke.sh

## chaos-soak: hammer a server armed with a seeded fault-injection spec
## for 30 wall-clock seconds under the race detector; every response
## must stay within the error taxonomy and the daemon must stay healthy
chaos-soak:
	CHAOS_SOAK_SECONDS=30 $(GO) test -race -run TestChaosSoak -v ./internal/serve

## fmt: rewrite sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file is not gofmt-clean
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## lint: static analysis — stock go vet, the repo's own ehlint analyzer
## suite (run through go vet's -vettool protocol so cmd/go caches
## results per package), and shellcheck over scripts/ when installed
lint: ehlint shellcheck
	$(GO) vet ./...

## ehlint: the five repo-invariant analyzers (internal/lint) over the
## whole tree, driven by go vet so analysis is unit-at-a-time and cached
ehlint:
	$(GO) build -o bin/ehlint ./cmd/ehlint
	$(GO) vet -vettool=$(abspath bin/ehlint) ./...

## shellcheck: lint shell scripts; skipped with a notice when the tool
## is not installed (CI has it, minimal dev containers may not)
shellcheck:
	@if command -v shellcheck >/dev/null 2>&1; then \
		shellcheck scripts/*.sh; \
	else \
		echo "shellcheck not installed; skipping script lint"; \
	fi

## staticcheck: deeper static analysis (CI installs honnef.co staticcheck;
## locally: go install honnef.co/go/tools/cmd/staticcheck@latest)
staticcheck:
	staticcheck ./...

## ci: everything the CI workflow gates on
ci: fmt-check lint build race bench artifact-check infer-smoke crash-smoke fleet-smoke

clean:
	$(GO) clean ./...
