package ehinfer

// Fleet-simulation benchmarks: BenchmarkFleetStep measures the fused
// per-device episode loop on one worker (the devices/sec a single shard
// sustains); BenchmarkFleetShard measures the sharded engine across all
// cores, which is the number the million-device projection in
// examples/fleet-million scales from. Both report devices/sec — one
// device-epoch is one simulated device-day of intermittent operation.

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/fleet"
)

func benchFleet(b *testing.B, devices, workers int) {
	b.Helper()
	spec := &fleet.Spec{
		Name:     "bench",
		BaseSeed: 9,
		Epochs:   1,
		Events:   40,
		Populations: []fleet.PopulationSpec{
			{Name: "pop", Count: devices, TraceVariants: 16},
		},
	}
	f, err := spec.Fleet()
	if err != nil {
		b.Fatal(err)
	}
	e := fleet.Engine{Workers: workers}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := e.Run(ctx, f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(devices)*float64(b.N)/b.Elapsed().Seconds(), "devices/sec")
}

// BenchmarkFleetStep: one worker, one shard — the per-core simulation
// rate of the fused episode loop over the packed arena.
func BenchmarkFleetStep(b *testing.B) {
	benchFleet(b, 256, 1)
}

// BenchmarkFleetShard: the full engine sharded across every core.
func BenchmarkFleetShard(b *testing.B) {
	benchFleet(b, 4096, runtime.NumCPU())
}
