// Fleet sweep: one compressed multi-exit model, a whole deployment
// fleet. The grid crosses three MCU classes (the paper's MSP432, an
// MSP430FR-class FRAM device, and an Apollo-class sub-threshold M4) with
// solar and kinetic harvesting and both runtime policies, replicated
// over seeds — 12 scenarios per seed, sharded across every core by the
// experiment engine.
//
// The question it answers: does the paper's adaptive runtime keep its
// edge when the device underneath changes — cheaper checkpoints, slower
// cores, different energy-per-MAC — or is the win MSP432-specific?
//
// It is also the Session streaming showcase: the grid is launched with
// StartGrid and per-point results are reported incrementally as workers
// finish them; Ctrl-C cancels between points and the completed portion
// is still aggregated.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	ehinfer "repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	grid := ehinfer.FleetGrid([]uint64{1, 2, 3}, 300)
	session := ehinfer.NewSession(ehinfer.WithWorkers(0)) // 0 ⇒ one worker per core
	fmt.Printf("fleet sweep: %d scenarios on %d workers\n\n", grid.Size(), session.Workers())

	run := session.StartGrid(ctx, grid)
	done := 0
	for r := range run.Results() {
		done++
		fmt.Printf("  [%2d/%d] %-50s done\n", done, grid.Size(), r.Point.GroupKey())
	}
	res, err := run.Wait()
	if err == context.Canceled && res != nil {
		log.Println("canceled — aggregating completed points only")
	} else if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Errs() {
		log.Println("point failed:", e)
	}
	fmt.Println()

	fmt.Print(res.AggTable())
	fmt.Printf("\n%d scenarios in %.1fs\n", grid.Size(), res.Elapsed.Seconds())

	// Headline: adaptive-vs-static IEpmJ ratio per device on solar.
	type key struct{ device, exit string }
	iepmj := map[key]float64{}
	for _, r := range res.Aggregate() {
		if r.System == "Our Approach" && r.Trace == "solar-0.032mW" {
			iepmj[key{r.Device, r.Exit}] = r.IEpmJ.Mean()
		}
	}
	fmt.Println("\nadaptive runtime gain over static LUT (solar, IEpmJ ratio):")
	for _, dev := range grid.Devices {
		s := iepmj[key{dev.Name, "static"}]
		q := iepmj[key{dev.Name, "qlearning"}]
		if s > 0 {
			fmt.Printf("  %-14s %.2f×\n", dev.Name, q/s)
		}
	}
}
