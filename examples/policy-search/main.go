// Policy search: runs the paper's §III offline phase end to end — the
// dual-agent DDPG compression search over layer-wise pruning rates and
// bitwidths, guided by the EH power trace and event distribution — then
// deploys the discovered policy and compares it against uniform
// compression under the same trace.
package main

import (
	"fmt"
	"log"
	"time"

	ehinfer "repro"
)

func main() {
	scenario := ehinfer.DefaultScenario(3)
	net := ehinfer.LeNetEE(ehinfer.NewRNG(3))
	surrogate, err := ehinfer.NewSurrogate(net, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running DDPG compression search (F ≤ 1.15 MFLOPs, S ≤ 16 KB)...")
	start := time.Now()
	result, err := ehinfer.SearchCompression(net, surrogate, ehinfer.SearchConfig{
		Episodes: 120,
		Trace:    scenario.Trace,
		Schedule: scenario.Schedule,
		Storage:  scenario.Storage,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search finished in %.1fs\n\n", time.Since(start).Seconds())

	fmt.Printf("best policy (Racc = %.4f, F = %.4f MFLOPs, S = %.1f KB):\n%s\n",
		result.Racc,
		float64(result.Measure.ModelFLOPs)/1e6,
		float64(result.Measure.WeightBytes)/1024,
		result.Policy)

	// Deploy the searched policy and simulate.
	searched, err := ehinfer.BuildDeployed(result.Policy, 3)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := ehinfer.CompareSystems(scenario, searched, ehinfer.CompareConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched policy deployed: IEpmJ %.3f, acc(all) %.1f%%\n",
		rows[0].IEpmJ, 100*rows[0].AccAll)

	// Reference: the hand-calibrated nonuniform policy.
	reference, err := ehinfer.BuildDeployed(ehinfer.Fig1bNonuniform(), 3)
	if err != nil {
		log.Fatal(err)
	}
	refRows, err := ehinfer.CompareSystems(scenario, reference, ehinfer.CompareConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference nonuniform:     IEpmJ %.3f, acc(all) %.1f%%\n",
		refRows[0].IEpmJ, 100*refRows[0].AccAll)

	// Search-algorithm comparison at the same budget.
	fmt.Println("\nsearch-algorithm comparison (60 evaluations each):")
	cfg := ehinfer.SearchConfig{
		Episodes: 60, Trace: scenario.Trace, Schedule: scenario.Schedule,
		Storage: scenario.Storage, Seed: 3,
	}
	for _, alg := range []struct {
		name string
		fn   func(*ehinfer.Network, *ehinfer.Surrogate, ehinfer.SearchConfig) (*ehinfer.SearchResult, error)
	}{
		{"DDPG (paper)", ehinfer.SearchCompression},
		{"random", ehinfer.SearchCompressionRandom},
		{"annealing", ehinfer.SearchCompressionAnnealing},
	} {
		n := ehinfer.LeNetEE(ehinfer.NewRNG(3))
		s, err := ehinfer.NewSurrogate(n, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := alg.fn(n, s, cfg)
		if res == nil || res.Policy == nil {
			fmt.Printf("  %-14s found no feasible policy in 60 evaluations (err=%v)\n", alg.name, err)
			continue
		}
		fmt.Printf("  %-14s Racc %.4f (F %.3fM, S %.1fKB)\n", alg.name, res.Racc,
			float64(res.Measure.ModelFLOPs)/1e6, float64(res.Measure.WeightBytes)/1024)
	}
}
