// Fleet at scale: simulates a large fleet of intermittently-powered
// devices — 100k by default, a million with -devices 1000000 — through
// the public Session fleet API. Three populations share the fleet:
// Q-learning devices on solar harvesting, a static-LUT control group,
// and a churning population where devices join late, drop out, and
// degrade (aging capacitors). Snapshots stream as epochs complete;
// the program ends with the measured simulation throughput in
// devices/sec and the learned-vs-static accuracy comparison.
//
// The same run is reproducible bit-for-bit at any -workers count.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	ehinfer "repro"
)

func main() {
	var (
		devices = flag.Int("devices", 100_000, "total simulated devices across the three populations")
		epochs  = flag.Int("epochs", 4, "training epochs (one simulated device-day each)")
		events  = flag.Int("events", 20, "inference events per device per epoch")
		workers = flag.Int("workers", 0, "engine worker goroutines (0 = all cores)")
		seed    = flag.Uint64("seed", 42, "base seed: same seed, same fleet, any worker count")
	)
	flag.Parse()

	// Split the fleet: half learning, a quarter static control, a
	// quarter learning under churn.
	learn := *devices / 2
	static := *devices / 4
	churn := *devices - learn - static
	spec := &ehinfer.FleetSpec{
		Name:          "fleet-million",
		BaseSeed:      *seed,
		Epochs:        *epochs,
		Events:        *events,
		SnapshotEvery: 1,
		Populations: []ehinfer.FleetPopulation{
			{Name: "solar-q", Count: learn, TraceVariants: 64},
			{Name: "static-lut", Count: static, TraceVariants: 64,
				Exit: ehinfer.ExitSpec{Mode: ehinfer.PolicyStaticLUT}},
			{Name: "churny", Count: churn, TraceVariants: 64, Churn: []ehinfer.FleetChurn{
				{Kind: "join", Prob: 0.3},
				{Kind: "leave", Prob: 0.05},
				{Kind: "degrade", Prob: 0.2, Rate: 0.1, MinFrac: 0.4},
			}},
		},
	}
	f, err := spec.Fleet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet %q: %d devices, %d epochs × %d events\n", f.Name, f.Devices, f.Epochs, f.Events)

	session := ehinfer.NewSession(ehinfer.WithWorkers(*workers))
	start := time.Now()
	run := session.StartFleet(context.Background(), f)
	for snap := range run.Snapshots() {
		fmt.Printf("epoch %d:", snap.Epoch)
		for _, p := range snap.Populations {
			fmt.Printf("  %s acc=%.3f brownout=%.3f", p.Name, p.AccuracyAll, p.BrownoutRate)
			if p.Offline > 0 {
				fmt.Printf(" offline=%d", p.Offline)
			}
		}
		fmt.Println()
	}
	res, err := run.Wait()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	deviceEpochs := float64(f.Devices) * float64(f.Epochs)
	fmt.Printf("\nsimulated %.0f device-epochs in %v — %.0f devices/sec\n",
		deviceEpochs, elapsed.Round(time.Millisecond), deviceEpochs/elapsed.Seconds())
	for _, tot := range res.Totals {
		fmt.Printf("%-11s events=%-9d accuracy=%.3f inf/mJ=%.3f\n",
			tot.Name, tot.Events, tot.AccuracyAll, tot.IEpmJ)
	}
}
