// Infer-load: a load generator for the online inference path. It boots
// the ehserved HTTP surface in-process, uploads a compressed deployment
// artifact, fires a swarm of concurrent clients at POST /v1/infer, and
// prints the /v1/stats view the operator would watch in production —
// micro-batch histogram, latency percentiles, throughput, and shed load.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/serve"
)

const (
	clients     = 8
	perClient   = 12
	inputValues = 3 * 32 * 32
)

func main() {
	// 1. A serving session and the HTTP surface, tuned for visible
	//    micro-batching: up to 8 images per dispatch, a 5ms window.
	session := ehinfer.NewSession(ehinfer.WithWorkers(1))
	sv := serve.New(serve.WithSession(session), serve.WithBatchConfig(batch.Config{
		MaxBatch: 8,
		Window:   5 * time.Millisecond,
		QueueCap: 64,
	}))
	ts := httptest.NewServer(sv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sv.Shutdown(ctx)
	}()

	// 2. Build and upload a deployment artifact, exactly as an operator
	//    would with `cmd/train -save-deployed` and curl.
	deployed, err := session.BuildDeployed(ehinfer.Fig1bNonuniform())
	if err != nil {
		log.Fatal(err)
	}
	var artifact bytes.Buffer
	if err := ehinfer.EncodeDeployed(&artifact, &ehinfer.DeploymentBundle{
		Name: "load-target", Deployed: deployed,
	}); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/artifacts", "application/octet-stream", &artifact)
	if err != nil {
		log.Fatal(err)
	}
	var uploaded struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&uploaded); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("uploaded artifact %s (%d exits)\n", uploaded.ID, deployed.Net.NumExits())

	// 3. The swarm: concurrent clients each post a stream of single-image
	//    requests. Concurrency is what the micro-batcher feeds on — the
	//    server coalesces requests that arrive within one window. Each
	//    client retries transient sheds (429/503) through serve.Backoff —
	//    capped exponential delays with per-client deterministic jitter,
	//    honoring the server's Retry-After hints — so shed load re-offers
	//    itself instead of being lost.
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := ehinfer.NewRNG(uint64(c + 1))
			retry := serve.Backoff{
				Base:     2 * time.Millisecond,
				Cap:      50 * time.Millisecond,
				Attempts: 4,
				Seed:     uint64(c + 1), // desynchronize the clients' retry storms
			}
			for i := 0; i < perClient; i++ {
				input := make([]float32, inputValues)
				for j := range input {
					input[j] = rng.Float32()
				}
				body, _ := json.Marshal(map[string]any{
					"artifact":  uploaded.ID,
					"input":     input,
					"threshold": 0.8, // anytime: answer at the first confident exit
				})
				resp, err := retry.Do(context.Background(), http.DefaultClient, func() (*http.Request, error) {
					req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
					if err == nil {
						req.Header.Set("Content-Type", "application/json")
					}
					return req, err
				})
				if err != nil {
					log.Fatal(err)
				}
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed.Add(1) // still shed after the retry budget: backpressure held
				default:
					log.Fatalf("unexpected status %s", resp.Status)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("served %d, shed %d of %d requests in %v\n",
		served.Load(), shed.Load(), clients*perClient, time.Since(start).Round(time.Millisecond))

	// 4. The operator's view: per-model queue stats.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Infer map[string]struct {
			Backend string      `json:"backend"`
			Queue   batch.Stats `json:"queue"`
		} `json:"infer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	for key, m := range stats.Infer {
		q := m.Queue
		fmt.Printf("%s (%s): %d served over %d batches (mean %.2f img/batch)\n",
			key, m.Backend, q.Served, q.Batches, q.MeanBatch)
		fmt.Printf("  batch histogram: %v\n", q.BatchSizes)
		fmt.Printf("  latency p50/p90/p99: %.2f / %.2f / %.2f ms, throughput %.1f req/s\n",
			q.LatencyMS.P50, q.LatencyMS.P90, q.LatencyMS.P99, q.ThroughputPerSec)
	}
}
