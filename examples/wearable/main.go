// Wearable sensor: a kinetic-harvester-powered activity classifier (the
// paper cites shoe-mounted and wrist harvesters). Harvesting is on/off —
// power arrives only during movement bursts — and sensing events are
// duty-cycled rather than random: one classification every 30 s while
// the wearer is active.
//
// The example shows how the runtime behaves when harvesting and events
// are correlated: during activity there is both energy and work; during
// idle periods neither. It also demonstrates loading a custom storage
// configuration (a smaller wearable-class capacitor).
package main

import (
	"fmt"
	"log"

	ehinfer "repro"
	"repro/internal/energy"
)

func main() {
	trace := ehinfer.SyntheticKineticTrace(ehinfer.KineticConfig{
		Seconds:    6 * 3600,
		BurstPower: 0.08, // 80 µW while moving
		BurstMean:  240,
		IdleMean:   500,
		Seed:       11,
	})
	fmt.Printf("kinetic trace: mean %.1f µW, total %.0f mJ over %d s\n",
		1000*trace.MeanPower(), trace.TotalEnergy(), trace.Duration())

	// Duty-cycled events: every 30 s during active (powered) seconds.
	schedule := &ehinfer.Schedule{}
	for t := 0; t < trace.Duration(); t += 30 {
		if trace.At(t) > 0 {
			schedule.Events = append(schedule.Events, ehinfer.Event{
				T: t, Class: len(schedule.Events) % 10, SampleIndex: -1,
			})
		}
	}
	fmt.Printf("duty-cycled events during activity: %d\n", schedule.Len())

	deployed, err := ehinfer.BuildDeployed(ehinfer.Fig1bNonuniform(), 11)
	if err != nil {
		log.Fatal(err)
	}

	// A wearable-class buffer: 3 mJ capacitor, aggressive turn-on.
	storage := &energy.Storage{
		CapacityMJ:       3,
		TurnOnMJ:         0.3,
		BrownOutMJ:       0.05,
		ChargeEfficiency: 0.85,
		LeakMWPerS:       0.0005,
	}

	rt, err := ehinfer.NewRuntime(deployed, ehinfer.RuntimeConfig{
		Mode:    ehinfer.PolicyQLearning,
		Storage: storage,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	for ep := 0; ep < 10; ep++ {
		rt.SetExploration(0.3 * float64(10-ep) / 10)
		if _, err := rt.Run(trace, schedule); err != nil {
			log.Fatal(err)
		}
	}
	rt.SetExploration(0.02)
	rep, err := rt.Run(trace, schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", rep.Summary())

	// The same workload on the SONIC-style baseline for contrast.
	sonic := ehinfer.AllBaselines()[0]
	sc := &ehinfer.Scenario{Trace: trace, Schedule: schedule, Device: ehinfer.MSP432(), Storage: storage, Seed: 11}
	brep, err := ehinfer.RunBaseline(sonic, sc, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", brep.Summary())
}
