// Quickstart: build the multi-exit network, compress it onto the MCU
// budget, and simulate one day of event-driven intermittent inference on
// a solar harvesting trace.
package main

import (
	"fmt"
	"log"

	ehinfer "repro"
)

func main() {
	// 1. The paper's standard scenario: a 6-hour solar trace in the
	//    weak-harvesting regime with 500 uniformly distributed events.
	scenario := ehinfer.DefaultScenario(1)

	// 2. Compress LeNet-EE with the nonuniform reference policy (the
	//    shape the DDPG search finds: protect shallow layers, quantize
	//    deep ones hard) and package it for deployment. The compressed
	//    model is ~16 KB — it fits the MSP432's weight storage.
	deployed, err := ehinfer.BuildDeployed(ehinfer.Fig1bNonuniform(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed model: %.1f KB, per-exit accuracy %.1f%% / %.1f%% / %.1f%%\n",
		float64(deployed.WeightBytes)/1024,
		100*deployed.ExitAccs[0], 100*deployed.ExitAccs[1], 100*deployed.ExitAccs[2])

	// 3. Run the Q-learning runtime (with a few warm-up episodes) and
	//    the three baselines on the identical trace.
	rows, err := ehinfer.CompareSystems(scenario, deployed, ehinfer.CompareConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %8s %10s %10s\n", "system", "IEpmJ", "acc(all)", "latency")
	for _, r := range rows {
		fmt.Printf("%-14s %8.3f %9.1f%% %9.1fs\n", r.System, r.IEpmJ, 100*r.AccAll, r.MeanLatencyS)
	}
	fmt.Printf("\nIEpmJ = interesting events correctly processed per milliJoule harvested (Eq. 1).\n")
}
