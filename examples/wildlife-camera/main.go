// Wildlife camera: the paper's motivating scenario — a battery-less
// event-driven sensor that classifies camera triggers locally and wakes
// a main device only for interesting detections. Animal activity is
// bursty (a herd passes; then hours of nothing), and the sky is cloudy,
// so the runtime must ration energy across bursts.
//
// This example runs in empirical mode: a multi-exit network is trained on
// SynthCIFAR, quantized, and every simulated event runs real inference
// with suspend/resume, so the confidence values driving the incremental
// decision are true classifier entropies.
package main

import (
	"fmt"
	"log"

	ehinfer "repro"
)

func main() {
	// Cloudy solar trace: deep stochastic dips (CloudDepth 0.85).
	trace := ehinfer.SyntheticSolarTrace(ehinfer.SolarConfig{
		Seconds:    6 * 3600,
		PeakPower:  0.04,
		CloudDepth: 0.85,
		CloudTau:   300,
		Seed:       7,
	})
	// Bursty events: mean burst of 6 triggers.
	schedule := ehinfer.BurstySchedule(400, trace.Duration(), 10, 6, 7)
	fmt.Printf("trace: mean %.1f µW over %d s; %d bursty events\n",
		1000*trace.MeanPower(), trace.Duration(), schedule.Len())

	// Train a multi-exit network on the synthetic camera data.
	train, test := ehinfer.SynthCIFAR(ehinfer.SynthConfig{Seed: 21, NoiseStd: 0.03, Jitter: 0.05}, 400, 200)
	net := ehinfer.LeNetEE(ehinfer.NewRNG(31))
	fmt.Println("training multi-exit network on SynthCIFAR...")
	if _, err := ehinfer.TrainNetwork(net, train, ehinfer.TrainConfig{Epochs: 6, BatchSize: 25, Seed: 31}); err != nil {
		log.Fatal(err)
	}

	// Deploy with 8-bit quantization (near-lossless) and measure the
	// true per-exit accuracy of the compressed model.
	if err := ehinfer.ApplyPolicy(net, ehinfer.UniformPolicy(net, 1.0, 8, 8)); err != nil {
		log.Fatal(err)
	}
	accs := ehinfer.EvalExits(net, test)
	fmt.Printf("compressed per-exit accuracy: %.1f%% / %.1f%% / %.1f%%\n",
		100*accs[0], 100*accs[1], 100*accs[2])

	deployed, err := ehinfer.NewDeployed(net, accs)
	if err != nil {
		log.Fatal(err)
	}

	// Attach real test samples to the events.
	byClass := make([][]int, 10)
	for i, s := range test.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	if err := schedule.AttachSamples(byClass, 7); err != nil {
		log.Fatal(err)
	}

	sc := ehinfer.DefaultScenario(7)
	for _, mode := range []ehinfer.PolicyMode{ehinfer.PolicyQLearning, ehinfer.PolicyStaticLUT} {
		rt, err := ehinfer.NewRuntime(deployed, ehinfer.RuntimeConfig{
			Mode:         mode,
			Storage:      sc.Storage,
			Seed:         7,
			TestSet:      test,
			SkipFitCheck: true, // 8-bit-only weights exceed flash; this example focuses on runtime behaviour
		})
		if err != nil {
			log.Fatal(err)
		}
		// Warm up the learner on repeated passes over the same day.
		if mode == ehinfer.PolicyQLearning {
			for ep := 0; ep < 8; ep++ {
				rt.SetExploration(0.3 * float64(8-ep) / 8)
				if _, err := rt.Run(trace, schedule); err != nil {
					log.Fatal(err)
				}
			}
			rt.SetExploration(0.02)
		}
		rep, err := rt.Run(trace, schedule)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s", rep.Summary())
	}
}
