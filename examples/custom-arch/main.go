// Custom architecture: builds a two-exit network with the fluent
// builder, trains it, compresses it, lowers it to the pure-integer MCU
// pipeline, and verifies float/integer agreement — the full offline
// deployment path for an architecture other than the paper's LeNet-EE.
package main

import (
	"fmt"
	"log"

	ehinfer "repro"
)

func main() {
	// A compact two-exit architecture for 32×32×3 inputs.
	b := ehinfer.NewNetworkBuilder(3, 32, 32, 10)
	b.Conv("c1", 8, 5, 1, 0).ReLU().MaxPool(2, 2)
	b.ExitConv("early", 8, 0, true) // conv branch like LeNet-EE's ConvB1
	b.Conv("c2", 16, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("final", 32)
	net, err := b.Build(ehinfer.NewRNG(9))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom net: %d exits, %.3f / %.3f MFLOPs, %.1f KB fp32\n",
		net.NumExits(),
		float64(net.ExitFLOPs(0))/1e6, float64(net.ExitFLOPs(1))/1e6,
		float64(net.WeightBytes())/1024)

	// Train on SynthCIFAR.
	train, test := ehinfer.SynthCIFAR(ehinfer.SynthConfig{Seed: 21, NoiseStd: 0.03, Jitter: 0.05}, 300, 150)
	fmt.Println("training...")
	if _, err := ehinfer.TrainNetwork(net, train, ehinfer.TrainConfig{Epochs: 5, BatchSize: 25, Seed: 9}); err != nil {
		log.Fatal(err)
	}
	accs := ehinfer.EvalExits(net, test)
	fmt.Printf("float accuracy: early %.1f%%, final %.1f%%\n", 100*accs[0], 100*accs[1])

	// Quantize to 8 bits and lower to the integer pipeline.
	if err := ehinfer.ApplyPolicy(net, ehinfer.UniformPolicy(net, 1.0, 8, 8)); err != nil {
		log.Fatal(err)
	}
	var calib []*ehinfer.Tensor
	for i := 0; i < 16; i++ {
		calib = append(calib, train.Samples[i].Image)
	}
	lowered, err := ehinfer.LowerToInteger(net, 8, 8, calib...)
	if err != nil {
		log.Fatal(err)
	}

	// Verify integer inference agrees with float on the test set.
	agree, correct := 0, 0
	for _, s := range test.Samples {
		fl := net.InferTo(s.Image, 1)
		iq, err := lowered.InferTo(s.Image, 1)
		if err != nil {
			log.Fatal(err)
		}
		if fl.Predicted() == iq.Predicted() {
			agree++
		}
		if iq.Predicted() == s.Label {
			correct++
		}
	}
	fmt.Printf("integer pipeline: %.1f%% agreement with float, %.1f%% accuracy\n",
		100*float64(agree)/float64(test.Len()),
		100*float64(correct)/float64(test.Len()))
}
