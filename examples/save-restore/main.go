// Save/restore: the paper's "compress once, flash once" workflow as
// artifacts. The offline phase builds and saves a deployment bundle;
// the serving phase — possibly another process, machine, or day —
// restores it and runs scenarios without ever repeating the
// train/search/compress work. The restored deployment is bit-identical:
// the episode report it produces matches the in-process one byte for
// byte.
//
// The example also registers custom components (a device and the loaded
// deployment) in the open axis registries and runs a declarative
// GridSpec that references everything by name — the same spec could be
// POSTed verbatim to ehserved.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	ehinfer "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "ehinfer-save-restore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "lenet-ee.ehar")

	// ---- Offline phase: compress once, save once. ----
	session := ehinfer.NewSession(ehinfer.WithSeed(1))
	policy := ehinfer.Fig1bNonuniform()
	deployed, err := session.BuildDeployed(policy)
	if err != nil {
		log.Fatal(err)
	}
	if err := ehinfer.SaveDeployed(path, deployed,
		ehinfer.WithArtifactName("lenet-ee-nonuniform"),
		ehinfer.WithArtifactPolicy(policy),
	); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved %s: %.1f KB artifact, %.1f KB deployed weights\n",
		filepath.Base(path), float64(info.Size())/1024, float64(deployed.WeightBytes)/1024)

	// ---- Serving phase: restore and run, no rebuild. ----
	restored, err := session.Deploy(path)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sc := session.Scenario()
	cfg := ehinfer.CompareConfig{WarmupEpisodes: 4}
	fresh, err := session.RunProposed(ctx, sc, deployed, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fromDisk, err := session.RunProposed(ctx, sc, restored, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := json.Marshal(fresh)
	b, _ := json.Marshal(fromDisk)
	fmt.Printf("restored run: IEpmJ %.3f, accuracy %.1f%%, reports byte-identical: %v\n",
		fromDisk.IEpmJ(), 100*fromDisk.AccuracyAllEvents(), reflect.DeepEqual(a, b))

	// ---- Open registries: name the artifact and a custom device, then
	//      run a declarative grid that references both. ----
	if err := ehinfer.RegisterDeployment("artifact:lenet-ee", restored); err != nil {
		log.Fatal(err)
	}
	if err := ehinfer.RegisterDevice("MSP432-2x", func() *ehinfer.Device {
		d := ehinfer.MSP432()
		d.Name = "MSP432-2x"
		d.MFLOPSPerSecond *= 2 // an imagined faster stepping
		return d
	}); err != nil {
		log.Fatal(err)
	}
	specJSON := `{
		"name": "artifact-grid",
		"events": 120,
		"devices": ["MSP432", "MSP432-2x"],
		"policies": ["artifact:lenet-ee"],
		"seeds": [1, 2]
	}`
	var spec ehinfer.GridSpec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		log.Fatal(err)
	}
	grid, err := spec.Grid()
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.RunGrid(ctx, grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngrid over the restored artifact (%d points):\n", grid.Size())
	for _, r := range res.Results {
		fmt.Printf("  %-9s seed %d: IEpmJ %.3f\n",
			r.Point.Device.Name, r.Point.Seed, r.Rows[0].IEpmJ)
	}
}
