// Seed replication: how seed-sensitive are the paper's headline numbers?
// The grid replicates the §V scenario over 16 seeds — every replicate
// gets an independent trace, schedule, and learning stream derived from
// its grid index, while the deployed model itself is fixed (the paper's
// semantics: one compressed network, many conditions) — and reports
// mean ± std plus the spread of IEpmJ and accuracy for the proposed
// system and all three baselines.
//
// It also demonstrates the engine's determinism contract directly: the
// same grid is run twice at different worker counts and the serialized
// results are compared byte for byte.
package main

import (
	"bytes"
	"fmt"
	"log"

	ehinfer "repro"
)

func main() {
	grid := ehinfer.SeedReplicationGrid(16, 300)
	fmt.Printf("seed replication: %d replicates × 4 systems\n\n", grid.Size())

	res, err := ehinfer.NewExperimentEngine(0).Run(grid)
	if err != nil {
		log.Fatal(err)
	}
	if errs := res.Errs(); len(errs) != 0 {
		log.Fatal(errs)
	}

	for _, r := range res.Aggregate() {
		fmt.Printf("%-14s IEpmJ %.3f ± %.3f [%.3f, %.3f]  acc(all) %.1f%% ± %.1f%%\n",
			r.System,
			r.IEpmJ.Mean(), r.IEpmJ.Std(), r.IEpmJ.Min(), r.IEpmJ.Max(),
			100*r.AccAll.Mean(), 100*r.AccAll.Std())
	}
	fmt.Printf("\n%d replicates in %.1fs\n", grid.Size(), res.Elapsed.Seconds())

	// Determinism check: a serial rerun must reproduce the parallel run
	// byte for byte.
	serial, err := ehinfer.NewExperimentEngine(1).Run(grid)
	if err != nil {
		log.Fatal(err)
	}
	j1, err := res.JSON()
	if err != nil {
		log.Fatal(err)
	}
	j2, err := serial.JSON()
	if err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(j1, j2) {
		fmt.Println("determinism: parallel and serial runs are byte-identical ✓")
	} else {
		log.Fatal("determinism violated: parallel and serial runs differ")
	}
}
