package ehinfer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exper"
)

// ScenarioBuilder assembles a core.Scenario fluently, replacing the
// struct-stuffing a custom setup used to require. Every knob defaults
// to the paper's §V value, so the zero-configuration build reproduces
// DefaultScenario; calls override one axis at a time and may be chained
// in any order. Errors accumulate — the first one surfaces from Build —
// so a chain never needs intermediate checks:
//
//	sc, err := ehinfer.NewScenario().
//		Seed(7).
//		Kinetic(4, 0.9).
//		BurstyEvents(300, 5).
//		DeviceNamed("ApolloM4").
//		Capacitor(10).
//		Build()
type ScenarioBuilder struct {
	seed     uint64
	trace    func(seed uint64) (*energy.Trace, error)
	schedule func(duration int, seed uint64) *energy.Schedule
	device   *Device
	storage  *Storage
	testSet  *Dataset
	err      error
}

// NewScenario starts a builder with the paper's defaults: the §V solar
// trace, 500 uniform events, the MSP432 device, the 6 mJ capacitor, and
// seed 42.
func NewScenario() *ScenarioBuilder { return &ScenarioBuilder{seed: 42} }

// NewScenario starts a scenario builder seeded from the session, so an
// unmodified Build reproduces Session.Scenario().
func (s *Session) NewScenario() *ScenarioBuilder {
	b := NewScenario()
	b.seed = s.seed
	return b
}

func (b *ScenarioBuilder) fail(err error) *ScenarioBuilder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// Seed sets the seed every stochastic component derives from.
func (b *ScenarioBuilder) Seed(seed uint64) *ScenarioBuilder {
	b.seed = seed
	return b
}

// Solar selects a synthetic solar trace of the given duration and
// clear-sky peak power (0 = generator defaults).
func (b *ScenarioBuilder) Solar(hours, peakMW float64) *ScenarioBuilder {
	b.trace = func(seed uint64) (*energy.Trace, error) {
		return energy.SyntheticSolarTrace(energy.SolarConfig{
			Seconds: int(hours * 3600), PeakPower: peakMW, Seed: seed,
		}), nil
	}
	return b
}

// Kinetic selects a synthetic bursty kinetic trace.
func (b *ScenarioBuilder) Kinetic(hours, burstMW float64) *ScenarioBuilder {
	b.trace = func(seed uint64) (*energy.Trace, error) {
		return energy.SyntheticKineticTrace(energy.KineticConfig{
			Seconds: int(hours * 3600), BurstPower: burstMW, Seed: seed,
		}), nil
	}
	return b
}

// Trace supplies a materialized harvesting trace (e.g. a measured one).
func (b *ScenarioBuilder) Trace(tr *Trace) *ScenarioBuilder {
	if tr == nil || tr.Duration() == 0 {
		return b.fail(fmt.Errorf("ehinfer: scenario trace is empty"))
	}
	b.trace = func(uint64) (*energy.Trace, error) { return tr, nil }
	return b
}

// TraceCSV loads the trace from a CSV file at Build time.
func (b *ScenarioBuilder) TraceCSV(path string) *ScenarioBuilder {
	b.trace = energy.TraceFromCSV(path)
	return b
}

// RegisteredTrace selects a trace builder registered under name (see
// RegisterTrace), resolved at Build time.
func (b *ScenarioBuilder) RegisteredTrace(name string) *ScenarioBuilder {
	b.trace = func(seed uint64) (*energy.Trace, error) {
		build, err := exper.LookupTrace(name)
		if err != nil {
			return nil, err
		}
		return build(seed)
	}
	return b
}

// Events draws n sensing events uniformly over the trace with the given
// class alphabet.
func (b *ScenarioBuilder) Events(n, classes int) *ScenarioBuilder {
	if n < 1 || classes < 2 {
		return b.fail(fmt.Errorf("ehinfer: scenario needs ≥1 event and ≥2 classes, got %d/%d", n, classes))
	}
	b.schedule = func(duration int, seed uint64) *energy.Schedule {
		return energy.UniformSchedule(n, duration, classes, seed)
	}
	return b
}

// BurstyEvents draws n events in activity bursts of the given mean
// length, 10 classes.
func (b *ScenarioBuilder) BurstyEvents(n int, meanBurst float64) *ScenarioBuilder {
	if n < 1 || meanBurst <= 0 {
		return b.fail(fmt.Errorf("ehinfer: bursty schedule needs ≥1 event and positive burst length"))
	}
	b.schedule = func(duration int, seed uint64) *energy.Schedule {
		return energy.BurstySchedule(n, duration, 10, meanBurst, seed)
	}
	return b
}

// Schedule supplies a materialized event schedule.
func (b *ScenarioBuilder) Schedule(s *Schedule) *ScenarioBuilder {
	if s == nil || len(s.Events) == 0 {
		return b.fail(fmt.Errorf("ehinfer: scenario schedule is empty"))
	}
	b.schedule = func(int, uint64) *energy.Schedule { return s }
	return b
}

// Device sets the MCU cost model.
func (b *ScenarioBuilder) Device(d *Device) *ScenarioBuilder {
	if d == nil {
		return b.fail(fmt.Errorf("ehinfer: scenario device is nil"))
	}
	if err := d.Validate(); err != nil {
		return b.fail(err)
	}
	b.device = d
	return b
}

// DeviceNamed resolves the device from the open registry (built-ins
// plus RegisterDevice registrations), at call time.
func (b *ScenarioBuilder) DeviceNamed(name string) *ScenarioBuilder {
	spec, err := exper.LookupDevice(name)
	if err != nil {
		return b.fail(err)
	}
	b.device = spec.Build()
	return b
}

// Capacitor sets the storage to the paper's threshold profile at the
// given capacity in mJ.
func (b *ScenarioBuilder) Capacitor(capacityMJ float64) *ScenarioBuilder {
	if capacityMJ <= 0 {
		return b.fail(fmt.Errorf("ehinfer: capacitor capacity must be positive, got %g mJ", capacityMJ))
	}
	st := exper.Capacitor(capacityMJ).Storage
	b.storage = &st
	return b
}

// Storage supplies a fully custom energy store.
func (b *ScenarioBuilder) Storage(st Storage) *ScenarioBuilder {
	b.storage = &st
	return b
}

// Empirical switches the scenario to empirical mode: events carry real
// samples from the test set (assigned class-consistently at Build) and
// the deployed network actually executes on the configured backend.
func (b *ScenarioBuilder) Empirical(test *Dataset) *ScenarioBuilder {
	if test == nil || test.Len() == 0 {
		return b.fail(fmt.Errorf("ehinfer: empirical scenario needs a non-empty test set"))
	}
	b.testSet = test
	return b
}

// Build materializes the scenario. Axes left unset keep the paper's
// defaults; the first accumulated error aborts.
func (b *ScenarioBuilder) Build() (*Scenario, error) {
	if b.err != nil {
		return nil, b.err
	}
	sc := core.DefaultScenario(b.seed)
	if b.trace != nil {
		tr, err := b.trace(b.seed)
		if err != nil {
			return nil, err
		}
		if tr.Duration() == 0 {
			return nil, fmt.Errorf("ehinfer: scenario trace is empty")
		}
		sc.Trace = tr
		if b.schedule == nil {
			// The default 500-event schedule must span the *chosen*
			// trace, not the default one.
			b.Events(500, 10)
			if b.err != nil {
				return nil, b.err
			}
		}
	}
	if b.schedule != nil {
		sc.Schedule = b.schedule(sc.Trace.Duration(), b.seed)
	}
	if b.device != nil {
		sc.Device = b.device
	}
	if b.storage != nil {
		sc.Storage = b.storage
	}
	if b.testSet != nil {
		byClass := make([][]int, classCount(b.testSet))
		for i, s := range b.testSet.Samples {
			byClass[s.Label] = append(byClass[s.Label], i)
		}
		if err := sc.Schedule.AttachSamples(byClass, b.seed); err != nil {
			return nil, err
		}
		sc.TestSet = b.testSet
	}
	return sc, nil
}

// classCount returns 1 + the largest label in the set.
func classCount(set *Dataset) int {
	n := 0
	for _, s := range set.Samples {
		if s.Label+1 > n {
			n = s.Label + 1
		}
	}
	return n
}
