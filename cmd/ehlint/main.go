// Command ehlint is the repo's custom static-analysis suite: five
// analyzers enforcing the hand-maintained invariants (bit-identical
// kernel accumulation, zero-allocation hot paths, context threading,
// the serve error taxonomy, and obs metric naming).
//
// Two modes:
//
//	go vet -vettool=$(pwd)/bin/ehlint ./...   # the make lint / CI path
//	go run ./cmd/ehlint ./...                 # standalone, for iterating
//
// See internal/lint for the analyzers and README.md "Static analysis"
// for the rules each one enforces.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	driver.Main(lint.All()...)
}
