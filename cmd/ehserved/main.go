// Command ehserved is the grid-execution daemon: an HTTP/JSON service
// that accepts declarative experiment grids, runs them on a shared
// Session worker pool, and serves progress and results — the first
// serving surface for the system.
//
// Quickstart:
//
//	ehserved -addr :8080 &
//	curl -s -X POST localhost:8080/v1/grids -d '{"name":"demo","events":60,"seeds":[1,2]}'
//	curl -s localhost:8080/v1/grids/g1                      # status + progress
//	curl -sN localhost:8080/v1/grids/g1/results?format=ndjson  # follow per-point results
//	curl -s localhost:8080/v1/grids/g1/results              # final deterministic JSON
//
// Or run one grid synchronously, streaming results on the request itself
// (Ctrl-C on the curl cancels the workers):
//
//	curl -sN -X POST 'localhost:8080/v1/grids?stream=1' -d '{"seeds":[1,2,3]}'
//
// Deployment artifacts (see cmd/train -save-deployed) upload once and
// serve many grids — POST the bundle, then reference it as a policy
// named "artifact:<id>":
//
//	curl -s --data-binary @model.ehar localhost:8080/v1/artifacts
//	curl -s -X POST localhost:8080/v1/grids -d '{"policies":["artifact:a1"],"seeds":[1,2]}'
//	curl -s localhost:8080/v1/artifacts/a1 -o roundtrip.ehar   # byte-identical download
//	curl -s localhost:8080/v1/registry                          # all referenceable names
//
// Uploaded artifacts (and registered deployments) also serve online
// inference: POST an image (or a small batch) to /v1/infer and get the
// predicted class, the exit taken, and the per-exit confidence profile
// back. Requests are micro-batched per model — held up to -batch-window
// for company, dispatched at -max-batch — with bounded queues that shed
// load as 429 once -queue-cap requests are waiting:
//
//	curl -s -X POST localhost:8080/v1/infer \
//	    -d '{"artifact":"a1","input":[0.1, ...],"threshold":0.8}'
//	curl -s localhost:8080/metrics    # Prometheus text: queues, latencies, exits
//
// Operations: GET /metrics is the Prometheus scrape endpoint, /healthz
// and /readyz the liveness/readiness probes (readiness flips 503 the
// moment shutdown starts, before the listener closes). -rate/-burst
// enable per-client token-bucket admission control on the /v1/ routes
// (keyed by X-Client-ID, else remote host); -pprof mounts
// /debug/pprof/. Every request gets an X-Request-ID and one structured
// log line on stderr.
//
// Usage:
//
//	ehserved [-addr :8080] [-workers N] [-seed N]
//	         [-max-batch N] [-batch-window D] [-queue-cap N]
//	         [-rate RPS] [-burst N] [-pprof] [-log-level LEVEL]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "session worker goroutines (0 = all cores)")
		seed        = flag.Uint64("seed", 42, "session base seed")
		maxBatch    = flag.Int("max-batch", 0, "largest /v1/infer micro-batch per model (0 = default 8)")
		batchWindow = flag.Duration("batch-window", 0, "how long an under-full micro-batch waits for company (0 = default 2ms, negative = dispatch immediately)")
		queueCap    = flag.Int("queue-cap", 0, "per-model pending-request bound before 429 (0 = default 256)")
		rate        = flag.Float64("rate", 0, "per-client request rate on /v1/ routes, tokens/second (0 = unlimited)")
		burst       = flag.Int("burst", 0, "per-client burst size when -rate is set (0 = ceil(rate))")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel    = flag.String("log-level", "info", "request log level: debug, info, warn, error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(strings.ToLower(*logLevel))); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	session := ehinfer.NewSession(
		ehinfer.WithWorkers(*workers),
		ehinfer.WithSeed(*seed),
	)
	b := *burst
	if b <= 0 && *rate > 0 {
		b = int(*rate + 0.999)
	}
	sv := serve.New(
		serve.WithSession(session),
		serve.WithBatchConfig(batch.Config{
			MaxBatch: *maxBatch,
			Window:   *batchWindow,
			QueueCap: *queueCap,
		}),
		serve.WithRateLimit(*rate, b),
		serve.WithLogger(logger),
		serve.WithPprof(*pprofOn),
	)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           sv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ehserved: listening on %s (%d workers, seed %d)\n", *addr, session.Workers(), session.Seed())

	select {
	case <-ctx.Done():
		fmt.Println("\nehserved: shutting down")
	case err := <-errCh:
		fatal(err)
	}

	// Graceful shutdown: flip /readyz to draining so load balancers stop
	// routing here, then stop accepting requests, then cancel running
	// grids and wait for their workers to drain.
	sv.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "ehserved: http shutdown:", err)
	}
	if err := sv.Shutdown(shutCtx); err != nil {
		fatal(fmt.Errorf("job drain: %w", err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ehserved:", err)
	os.Exit(1)
}
