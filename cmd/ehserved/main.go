// Command ehserved is the grid-execution daemon: an HTTP/JSON service
// that accepts declarative experiment grids, runs them on a shared
// Session worker pool, and serves progress and results — the first
// serving surface for the system.
//
// Quickstart:
//
//	ehserved -addr :8080 &
//	curl -s -X POST localhost:8080/v1/grids -d '{"name":"demo","events":60,"seeds":[1,2]}'
//	curl -s localhost:8080/v1/grids/g1                      # status + progress
//	curl -sN localhost:8080/v1/grids/g1/results?format=ndjson  # follow per-point results
//	curl -s localhost:8080/v1/grids/g1/results              # final deterministic JSON
//
// Or run one grid synchronously, streaming results on the request itself
// (Ctrl-C on the curl cancels the workers):
//
//	curl -sN -X POST 'localhost:8080/v1/grids?stream=1' -d '{"seeds":[1,2,3]}'
//
// Deployment artifacts (see cmd/train -save-deployed) upload once and
// serve many grids — POST the bundle, then reference it as a policy
// named "artifact:<id>":
//
//	curl -s --data-binary @model.ehar localhost:8080/v1/artifacts
//	curl -s -X POST localhost:8080/v1/grids -d '{"policies":["artifact:a1"],"seeds":[1,2]}'
//	curl -s localhost:8080/v1/artifacts/a1 -o roundtrip.ehar   # byte-identical download
//	curl -s localhost:8080/v1/registry                          # all referenceable names
//
// Uploaded artifacts (and registered deployments) also serve online
// inference: POST an image (or a small batch) to /v1/infer and get the
// predicted class, the exit taken, and the per-exit confidence profile
// back. Requests are micro-batched per model — held up to -batch-window
// for company, dispatched at -max-batch — with bounded queues that shed
// load as 429 once -queue-cap requests are waiting. A request may name
// its inference backend ("plan", "legacy", "int8", or the packed-weight
// "int8fast" fast path); each (model, backend) pair is served as its
// own target with its own compiled plan, queue, breaker, and metrics:
//
//	curl -s -X POST localhost:8080/v1/infer \
//	    -d '{"artifact":"a1","input":[0.1, ...],"threshold":0.8}'
//	curl -s -X POST localhost:8080/v1/infer \
//	    -d '{"artifact":"a1","backend":"int8fast","input":[0.1, ...]}'
//	curl -s localhost:8080/metrics    # Prometheus text: queues, latencies, exits
//
// Fleet simulation (see internal/fleet) runs the same intermittent
// runtime across thousands-to-millions of simulated devices as one
// sharded job. POST a fleet spec and follow its epoch snapshots; fleet
// jobs checkpoint every snapshot under -data-dir and resume bit-
// identically after a kill, and GET /v1/jobs lists grid and fleet jobs
// together:
//
//	curl -s -X POST localhost:8080/v1/fleets \
//	    -d '{"name":"swarm","epochs":8,"populations":[{"name":"p","count":100000}]}'
//	curl -sN localhost:8080/v1/fleets/f1/results?format=ndjson  # follow snapshots
//	curl -s localhost:8080/v1/fleets/f1/results                 # final deterministic JSON
//	curl -s localhost:8080/v1/jobs                              # unified job listing
//
// Operations: GET /metrics is the Prometheus scrape endpoint, /healthz
// and /readyz the liveness/readiness probes (readiness flips 503 the
// moment shutdown starts, before the listener closes, and reports why
// in the body). -rate/-burst enable per-client token-bucket admission
// control on the /v1/ routes (keyed by X-Client-ID, else remote host);
// -pprof mounts /debug/pprof/. Every request gets an X-Request-ID and
// one structured log line on stderr.
//
// Durability: -data-dir makes artifacts and grid jobs survive restarts.
// Artifacts are written atomically (temp file + fsync + rename) under a
// journaled manifest; corrupted files are quarantined at boot, never
// served. Grid jobs checkpoint every completed point, so a daemon
// killed mid-job resumes it on the next boot and produces the same
// final result document an uninterrupted run would have — byte for
// byte.
//
// Resilience: -request-timeout bounds each non-streaming /v1/ request;
// -max-inflight and -shed-latency arm the overload gate (503 +
// Retry-After); -breaker-threshold/-breaker-cooldown trip a per-model
// circuit breaker after repeated inference execution failures.
// -chaos-spec arms the deterministic fault injector ("seed=N;
// kind:site:p=P[,d=DUR]", kinds latency/error/panic/shortwrite/drop,
// sites like http./v1/infer, batch.dispatch, store.write) for crash
// drills against a seeded, reproducible fault schedule.
//
// Usage:
//
//	ehserved [-addr :8080] [-workers N] [-seed N] [-data-dir DIR]
//	         [-max-batch N] [-batch-window D] [-queue-cap N]
//	         [-rate RPS] [-burst N] [-request-timeout D]
//	         [-max-inflight N] [-shed-latency D]
//	         [-breaker-threshold N] [-breaker-cooldown D]
//	         [-chaos-spec SPEC] [-pprof] [-log-level LEVEL]
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/chaos"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "session worker goroutines (0 = all cores)")
		seed        = flag.Uint64("seed", 42, "session base seed")
		maxBatch    = flag.Int("max-batch", 0, "largest /v1/infer micro-batch per model (0 = default 8)")
		batchWindow = flag.Duration("batch-window", 0, "how long an under-full micro-batch waits for company (0 = default 2ms, negative = dispatch immediately)")
		queueCap    = flag.Int("queue-cap", 0, "per-model pending-request bound before 429 (0 = default 256)")
		rate        = flag.Float64("rate", 0, "per-client request rate on /v1/ routes, tokens/second (0 = unlimited)")
		burst       = flag.Int("burst", 0, "per-client burst size when -rate is set (0 = ceil(rate))")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel    = flag.String("log-level", "info", "request log level: debug, info, warn, error")

		dataDir      = flag.String("data-dir", "", "durable data directory: artifacts persist and grid jobs resume across restarts (empty = in-memory only)")
		chaosSpec    = flag.String("chaos-spec", "", `deterministic fault injection spec, e.g. "seed=7;error:http./v1/infer:p=0.01;latency:store:p=0.1,d=20ms"`)
		reqTimeout   = flag.Duration("request-timeout", 0, "deadline per non-streaming /v1/ request (0 = none)")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent /v1/ requests before shedding 503 (0 = unlimited)")
		shedLatency  = flag.Duration("shed-latency", 0, "EWMA request-latency watermark that sheds 503 (0 = disabled)")
		brkThreshold = flag.Int("breaker-threshold", 5, "consecutive inference execution failures before a model's circuit opens (0 = disabled)")
		brkCooldown  = flag.Duration("breaker-cooldown", 10*time.Second, "how long an open circuit denies requests before probing")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(strings.ToLower(*logLevel))); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	session := ehinfer.NewSession(
		ehinfer.WithWorkers(*workers),
		ehinfer.WithSeed(*seed),
	)
	b := *burst
	if b <= 0 && *rate > 0 {
		b = int(*rate + 0.999)
	}

	var inj *chaos.Injector
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		inj = chaos.New(spec)
		logger.Warn("chaos armed", "spec", spec.String())
	}

	opts := []serve.Option{
		serve.WithSession(session),
		serve.WithBatchConfig(batch.Config{
			MaxBatch: *maxBatch,
			Window:   *batchWindow,
			QueueCap: *queueCap,
		}),
		serve.WithRateLimit(*rate, b),
		serve.WithLogger(logger),
		serve.WithPprof(*pprofOn),
		serve.WithChaos(inj),
		serve.WithRequestTimeout(*reqTimeout),
		serve.WithLoadShed(*maxInflight, *shedLatency),
		serve.WithBreaker(*brkThreshold, *brkCooldown),
	}
	if *dataDir != "" {
		storeOpts := []store.Option{
			store.WithLogger(logger),
			// Strict decode at recovery: an artifact that no longer parses
			// is quarantined, not served.
			store.WithVerify(func(_ string, data []byte) error {
				_, err := ehinfer.DecodeDeployed(bytes.NewReader(data))
				return err
			}),
		}
		if inj != nil {
			// Chaos reaches the durability layer too: short writes, fsync
			// failures, and rename faults at the store.* sites.
			storeOpts = append(storeOpts, store.WithFS(chaos.FaultFS(store.OSFS{}, inj)))
		}
		st, err := store.Open(*dataDir, storeOpts...)
		if err != nil {
			fatal(fmt.Errorf("open data dir: %w", err))
		}
		rec := st.Recovery()
		logger.Info("store opened", "dir", *dataDir,
			"restored", rec.Restored, "quarantined", rec.Quarantined,
			"orphans", rec.Orphans, "tornManifest", rec.TornManifest)
		opts = append(opts, serve.WithStore(st))
	}
	sv := serve.New(opts...)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           sv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ehserved: listening on %s (%d workers, seed %d)\n", *addr, session.Workers(), session.Seed())

	select {
	case <-ctx.Done():
		fmt.Println("\nehserved: shutting down")
	case err := <-errCh:
		fatal(err)
	}

	// Graceful shutdown: flip /readyz to draining so load balancers stop
	// routing here, then stop accepting requests, then cancel running
	// grids and wait for their workers to drain.
	sv.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "ehserved: http shutdown:", err)
	}
	if err := sv.Shutdown(shutCtx); err != nil {
		fatal(fmt.Errorf("job drain: %w", err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ehserved:", err)
	os.Exit(1)
}
