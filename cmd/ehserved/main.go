// Command ehserved is the grid-execution daemon: an HTTP/JSON service
// that accepts declarative experiment grids, runs them on a shared
// Session worker pool, and serves progress and results — the first
// serving surface for the system.
//
// Quickstart:
//
//	ehserved -addr :8080 &
//	curl -s -X POST localhost:8080/v1/grids -d '{"name":"demo","events":60,"seeds":[1,2]}'
//	curl -s localhost:8080/v1/grids/g1                      # status + progress
//	curl -sN localhost:8080/v1/grids/g1/results?format=ndjson  # follow per-point results
//	curl -s localhost:8080/v1/grids/g1/results              # final deterministic JSON
//
// Or run one grid synchronously, streaming results on the request itself
// (Ctrl-C on the curl cancels the workers):
//
//	curl -sN -X POST 'localhost:8080/v1/grids?stream=1' -d '{"seeds":[1,2,3]}'
//
// Deployment artifacts (see cmd/train -save-deployed) upload once and
// serve many grids — POST the bundle, then reference it as a policy
// named "artifact:<id>":
//
//	curl -s --data-binary @model.ehar localhost:8080/v1/artifacts
//	curl -s -X POST localhost:8080/v1/grids -d '{"policies":["artifact:a1"],"seeds":[1,2]}'
//	curl -s localhost:8080/v1/artifacts/a1 -o roundtrip.ehar   # byte-identical download
//	curl -s localhost:8080/v1/registry                          # all referenceable names
//
// Uploaded artifacts (and registered deployments) also serve online
// inference: POST an image (or a small batch) to /v1/infer and get the
// predicted class, the exit taken, and the per-exit confidence profile
// back. Requests are micro-batched per model — held up to -batch-window
// for company, dispatched at -max-batch — with bounded queues that shed
// load as 429 once -queue-cap requests are waiting:
//
//	curl -s -X POST localhost:8080/v1/infer \
//	    -d '{"artifact":"a1","input":[0.1, ...],"threshold":0.8}'
//	curl -s localhost:8080/v1/stats   # queue depth, batch histogram, latency percentiles
//
// Usage:
//
//	ehserved [-addr :8080] [-workers N] [-seed N]
//	         [-max-batch N] [-batch-window D] [-queue-cap N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "session worker goroutines (0 = all cores)")
		seed        = flag.Uint64("seed", 42, "session base seed")
		maxBatch    = flag.Int("max-batch", 0, "largest /v1/infer micro-batch per model (0 = default 8)")
		batchWindow = flag.Duration("batch-window", 0, "how long an under-full micro-batch waits for company (0 = default 2ms, negative = dispatch immediately)")
		queueCap    = flag.Int("queue-cap", 0, "per-model pending-request bound before 429 (0 = default 256)")
	)
	flag.Parse()

	session := ehinfer.NewSession(
		ehinfer.WithWorkers(*workers),
		ehinfer.WithSeed(*seed),
	)
	sv := serve.New(session, serve.WithBatchConfig(batch.Config{
		MaxBatch: *maxBatch,
		Window:   *batchWindow,
		QueueCap: *queueCap,
	}))
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           sv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("ehserved: listening on %s (%d workers, seed %d)\n", *addr, session.Workers(), session.Seed())

	select {
	case <-ctx.Done():
		fmt.Println("\nehserved: shutting down")
	case err := <-errCh:
		fatal(err)
	}

	// Graceful shutdown: stop accepting requests, then cancel running
	// grids and wait for their workers to drain.
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "ehserved: http shutdown:", err)
	}
	if err := sv.Shutdown(shutCtx); err != nil {
		fatal(fmt.Errorf("job drain: %w", err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ehserved:", err)
	os.Exit(1)
}
