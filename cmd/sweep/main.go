// Command sweep explores the EH design space: it runs the full system
// comparison over a grid of harvesting strengths and capacitor sizes and
// prints an IEpmJ table per system, with multi-seed mean ± std. This is
// the "how do the results move with the power condition" analysis the
// paper motivates but does not include.
//
// The grid is built by ehinfer.PaperSweepGrid and executed through a
// Session, sharded across -workers goroutines (default: all cores).
// Output is identical at any worker count; Ctrl-C cancels between points
// and the completed portion is still reported.
//
// Usage:
//
//	sweep [-peaks 0.02,0.032,0.05] [-caps 3,6,10] [-seeds 3] [-events 500]
//	      [-deployed model.ehar] [-workers N] [-json out.json] [-progress] [-v]
//
// With -deployed every grid cell runs a deployment restored from the
// given artifact (see cmd/train -save-deployed) instead of rebuilding
// the paper's nonuniform deployment in process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	ehinfer "repro"
)

func main() {
	var (
		peaksArg  = flag.String("peaks", "0.020,0.032,0.050", "comma-separated trace peak powers (mW)")
		capsArg   = flag.String("caps", "3,6,10", "comma-separated capacitor sizes (mJ)")
		seeds     = flag.Int("seeds", 3, "seeds per grid cell")
		events    = flag.Int("events", 500, "events per run")
		deployedF = flag.String("deployed", "", "deployment artifact to run (skips the in-process build)")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
		jsonOut   = flag.String("json", "", "write full per-point results as JSON to this file")
		progress  = flag.Bool("progress", false, "print each point as it completes")
		verbose   = flag.Bool("v", false, "print the full aggregate table for all systems")
	)
	flag.Parse()
	if *events < 1 {
		fatal(fmt.Errorf("-events must be at least 1, got %d", *events))
	}

	peaks, err := parseFloats(*peaksArg)
	if err != nil {
		fatal(err)
	}
	caps, err := parseFloats(*capsArg)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	grid := ehinfer.PaperSweepGrid(peaks, caps, *seeds, *events)
	if *deployedF != "" {
		ps, err := ehinfer.PolicyFromArtifactFile(*deployedF)
		if err != nil {
			fatal(err)
		}
		grid.Policies = []ehinfer.PolicySpec{ps}
		fmt.Fprintf(os.Stderr, "sweep: running deployment artifact %s (%s)\n", *deployedF, ps.Name)
	}
	opts := []ehinfer.SessionOption{ehinfer.WithWorkers(*workers)}
	if *progress {
		done := 0
		opts = append(opts, ehinfer.WithProgress(func(r ehinfer.ExperimentResult) {
			done++
			fmt.Fprintf(os.Stderr, "sweep: point %d done (%d/%d)\n", r.Point.Index, done, grid.Size())
		}))
	}
	session := ehinfer.NewSession(opts...)

	res, err := session.RunGrid(ctx, grid)
	if errors.Is(err, context.Canceled) && res != nil {
		fmt.Fprintf(os.Stderr, "sweep: canceled — %d points skipped, reporting completed points only\n", res.Skipped())
	} else if err != nil {
		fatal(err)
	}
	for _, e := range res.Errs() {
		fmt.Fprintln(os.Stderr, "sweep:", e)
	}

	// Index aggregates by (trace, storage, system) to render the classic
	// peak × cap table.
	type cell struct{ trace, storage, system string }
	agg := map[cell]ehinfer.AggRow{}
	for _, r := range res.Aggregate() {
		agg[cell{r.Trace, r.Device + r.Policy + r.Exit + r.Storage, r.System}] = r
	}
	fmt.Printf("%8s %6s | %-26s %-26s\n", "peak mW", "cap mJ", "ours IEpmJ (mean±std)", "LeNet-Cifar IEpmJ")
	for _, tr := range grid.Traces {
		for _, st := range grid.Storages {
			key := grid.Devices[0].Name + grid.Policies[0].Name + grid.Exits[0].Name + st.Name
			ours := agg[cell{tr.Name, key, "Our Approach"}]
			lenet := agg[cell{tr.Name, key, "LeNet-Cifar"}]
			if ours.IEpmJ == nil || lenet.IEpmJ == nil {
				continue
			}
			fmt.Printf("%8s %6s | %10.3f ± %-13.3f %10.3f ± %-8.3f\n",
				strings.TrimSuffix(strings.TrimPrefix(tr.Name, "solar-"), "mW"),
				strings.TrimSuffix(st.Name, "mJ"),
				ours.IEpmJ.Mean(), ours.IEpmJ.Std(), lenet.IEpmJ.Mean(), lenet.IEpmJ.Std())
		}
	}
	if *verbose {
		fmt.Println()
		fmt.Print(res.AggTable())
	}
	fmt.Printf("\n%d points (%d simulations) in %.1fs on %d workers\n",
		grid.Size(), grid.Size()*4, res.Elapsed.Seconds(), res.Workers)

	if *jsonOut != "" {
		data, err := res.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
