// Command sweep explores the EH design space: it runs the full system
// comparison over a grid of harvesting strengths and capacitor sizes and
// prints an IEpmJ table per system, with multi-seed mean ± std. This is
// the "how do the results move with the power condition" analysis the
// paper motivates but does not include.
//
// Usage:
//
//	sweep [-peaks 0.02,0.032,0.05] [-caps 3,6,10] [-seeds 3] [-events 500]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	ehinfer "repro"
	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/metrics"
)

func main() {
	var (
		peaksArg = flag.String("peaks", "0.020,0.032,0.050", "comma-separated trace peak powers (mW)")
		capsArg  = flag.String("caps", "3,6,10", "comma-separated capacitor sizes (mJ)")
		seeds    = flag.Int("seeds", 3, "seeds per grid cell")
		events   = flag.Int("events", 500, "events per run")
	)
	flag.Parse()

	peaks, err := parseFloats(*peaksArg)
	if err != nil {
		fatal(err)
	}
	caps, err := parseFloats(*capsArg)
	if err != nil {
		fatal(err)
	}

	deployed, err := ehinfer.BuildDeployed(ehinfer.Fig1bNonuniform(), 1)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%8s %6s | %-26s %-26s\n", "peak mW", "cap mJ", "ours IEpmJ (mean±std)", "LeNet-Cifar IEpmJ")
	for _, peak := range peaks {
		for _, capMJ := range caps {
			ours := metrics.NewAggregate("ours")
			lenet := metrics.NewAggregate("lenet")
			for s := 0; s < *seeds; s++ {
				seed := uint64(100 + s)
				trace := energy.SyntheticSolarTrace(energy.SolarConfig{
					Seconds: 21600, PeakPower: peak, Seed: seed,
				})
				sc := &ehinfer.Scenario{
					Trace:    trace,
					Schedule: energy.UniformSchedule(*events, trace.Duration(), 10, seed),
					Device:   mcu.MSP432(),
					Storage: &energy.Storage{
						CapacityMJ: capMJ, TurnOnMJ: 0.5, BrownOutMJ: 0.05,
						ChargeEfficiency: 0.9, LeakMWPerS: 0.0002,
					},
					Seed: seed,
				}
				rows, err := ehinfer.CompareSystems(sc, deployed, ehinfer.CompareConfig{WarmupEpisodes: 8})
				if err != nil {
					fatal(err)
				}
				ours.Add(rows[0].IEpmJ)
				lenet.Add(rows[3].IEpmJ)
			}
			fmt.Printf("%8.3f %6.1f | %10.3f ± %-13.3f %10.3f ± %-8.3f\n",
				peak, capMJ, ours.Mean(), ours.Std(), lenet.Mean(), lenet.Std())
		}
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad number %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
