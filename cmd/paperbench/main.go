// Command paperbench regenerates every table and figure of the paper's
// evaluation (§V) in one run, printing paper-vs-measured values. It is
// the CLI twin of the bench_test.go harness; EXPERIMENTS.md is written
// from this output. Everything runs through one Session — the Fig. 5 /
// §V-D system comparison on the canonical paper grid (ehinfer.
// PaperCompareGrid), the search and Fig. 7 experiments through the
// session's context-aware methods — so Ctrl-C cancels cleanly between
// episodes at any stage.
//
// Usage:
//
//	paperbench [-seed N] [-search-episodes N] [-skip-search] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	ehinfer "repro"
	"repro/internal/core"
	"repro/internal/exper"
)

func main() {
	var (
		seed           = flag.Uint64("seed", 42, "random seed")
		searchEpisodes = flag.Int("search-episodes", 120, "episodes for the Fig. 4 DDPG search")
		skipSearch     = flag.Bool("skip-search", false, "skip the Fig. 4 search (slowest step)")
		workers        = flag.Int("workers", 0, "session worker goroutines (0 = all cores)")
	)
	flag.Parse()
	start := time.Now()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	session := ehinfer.NewSession(ehinfer.WithWorkers(*workers), ehinfer.WithSeed(*seed))

	section("§V-A experimental setup")
	net := ehinfer.LeNetEE(nil)
	fmt.Printf("LeNet-EE exits: paper {0.4452, 1.2602, 1.6202} MFLOPs → measured {%.4f, %.4f, %.4f} MFLOPs\n",
		f6(net.ExitFLOPs(0)), f6(net.ExitFLOPs(1)), f6(net.ExitFLOPs(2)))
	fmt.Printf("fp32 weights:   paper 580 KB → measured %.1f KB\n", float64(net.WeightBytes())/1024)
	fmt.Printf("energy model:   1.5 mJ/MFLOP (paper's constant); exit energies {%.3f, %.3f, %.3f} mJ\n",
		f6(net.ExitFLOPs(0))*1.5, f6(net.ExitFLOPs(1))*1.5, f6(net.ExitFLOPs(2))*1.5)

	section("Fig. 1b — compression accuracy")
	rows1b, err := core.Fig1b()
	check(err)
	paper1b := [][]float64{{64.9, 72.0, 73.0}, {57.3, 65.2, 67.5}, {61.9, 68.5, 69.9}}
	for i, r := range rows1b {
		fmt.Printf("%-24s paper {%.1f %.1f %.1f}%% → measured {%.1f %.1f %.1f}%%\n",
			r.Scheme, paper1b[i][0], paper1b[i][1], paper1b[i][2],
			100*r.ExitAccs[0], 100*r.ExitAccs[1], 100*r.ExitAccs[2])
	}

	if !*skipSearch {
		section("Fig. 4 — searched nonuniform policy")
		sc := ehinfer.DefaultScenario(*seed)
		snet := ehinfer.LeNetEE(ehinfer.NewRNG(3))
		sur, err := ehinfer.NewSurrogate(snet, nil)
		check(err)
		res, err := session.SearchCompression(ctx, snet, sur, ehinfer.SearchConfig{
			Episodes: *searchEpisodes,
			Trace:    sc.Trace,
			Schedule: sc.Schedule,
			Storage:  sc.Storage,
			Seed:     *seed,
		})
		check(err)
		fmt.Printf("constraints: F ≤ 1.15 MFLOPs, S ≤ 16 KB → measured F = %.4f MFLOPs, S = %.1f KB, Racc = %.4f\n",
			float64(res.Measure.ModelFLOPs)/1e6, float64(res.Measure.WeightBytes)/1024, res.Racc)
		fmt.Print(res.Policy)
	}

	section("Fig. 5 / §V-C — IEpmJ and accuracy")
	grid := exper.PaperCompareGrid(*seed, 0, core.PolicyQLearning)
	gres, err := session.RunGrid(ctx, grid)
	check(err)
	if errs := gres.Errs(); len(errs) != 0 {
		check(fmt.Errorf("%s", errs[0]))
	}
	rows := gres.Results[0].Rows
	// Later sections (Fig. 7) drive core directly at the grid's derived
	// seed, so every number in this report comes from the same streams.
	runSeed := gres.Results[0].Point.RunSeed
	sc := ehinfer.DefaultScenario(runSeed)
	deployed, err := ehinfer.BuildDeployed(ehinfer.Fig1bNonuniform(), gres.Results[0].Point.DeploySeed)
	check(err)
	paperIE := []float64{0.89, 0.25, 0.05, 0.70}
	paperAll := []float64{50.1, 14.0, 2.6, 39.2}
	paperProc := []float64{65.4, 75.4, 82.7, 74.7}
	paperLat := []float64{18.0, 139.9, 183.4, 56.7}
	for i, r := range rows {
		fmt.Printf("%-14s IEpmJ paper %.2f → %.3f | acc(all) paper %.1f%% → %.1f%% | acc(proc) paper %.1f%% → %.1f%%\n",
			r.System, paperIE[i], r.IEpmJ, paperAll[i], 100*r.AccAll, paperProc[i], 100*r.AccProcessed)
	}
	fmt.Printf("IEpmJ factors: vs SonicNet paper 3.6× → %.1f×; vs SpArSeNet paper 18.9× → %.1f×; vs LeNet-Cifar paper 1.28× → %.2f×\n",
		rows[0].IEpmJ/rows[1].IEpmJ, rows[0].IEpmJ/rows[2].IEpmJ, rows[0].IEpmJ/rows[3].IEpmJ)

	section("Fig. 6 — FLOPs before/after compression")
	rows6, err := core.Fig6(ehinfer.Fig1bNonuniform())
	check(err)
	paperRatio := []float64{0.31, 0.44, 0.67}
	for i, r := range rows6 {
		if i < 3 {
			fmt.Printf("%-12s %.4fM → %.4fM (ratio paper %.2f× → measured %.2f×)\n",
				r.Name, float64(r.BeforeFLOPs)/1e6, float64(r.AfterFLOPs)/1e6,
				paperRatio[i], float64(r.AfterFLOPs)/float64(r.BeforeFLOPs))
		} else {
			fmt.Printf("%-12s %.2fM FLOPs (single-exit baseline)\n", r.Name, float64(r.BeforeFLOPs)/1e6)
		}
	}

	section("§V-D — latency")
	for i, r := range rows {
		fmt.Printf("%-14s per-event paper %.1f → measured %.1f time units | per-inference %.3f MFLOPs\n",
			r.System, paperLat[i], r.MeanLatencyS, r.MeanInfFLOPs/1e6)
	}

	section("Fig. 7a — runtime learning curve")
	q, s, err := session.LearningCurve(ctx, sc, deployed, 16)
	check(err)
	fmt.Print("Q-learning per-episode acc(all): ")
	for _, v := range q {
		fmt.Printf("%.1f ", 100*v)
	}
	var sAvg float64
	for _, v := range s {
		sAvg += v
	}
	sAvg /= float64(len(s))
	late := (q[len(q)-1] + q[len(q)-2]) / 2
	fmt.Printf("\nstatic mean %.1f%% | Q final %.1f%% (paper: +10.2%% relative → measured %+.1f%%)\n",
		100*sAvg, 100*late, 100*(late/sAvg-1))

	section("Fig. 7b — exit usage")
	qh, sh, qp, sp, err := session.ExitUsage(ctx, sc, deployed, 12)
	check(err)
	n := float64(sc.Schedule.Len())
	fmt.Printf("Q-learning paper {71.0, 2.8, 11.4}%% → measured {%.1f, %.1f, %.1f}%% (processed %d)\n",
		100*float64(qh[0])/n, 100*float64(qh[1])/n, 100*float64(qh[2])/n, qp)
	fmt.Printf("Static LUT paper {57.6, 3.8, 15.2}%% → measured {%.1f, %.1f, %.1f}%% (processed %d)\n",
		100*float64(sh[0])/n, 100*float64(sh[1])/n, 100*float64(sh[2])/n, sp)
	fmt.Printf("processed events: paper +11.2%% → measured %+.1f%%\n", 100*(float64(qp)/float64(sp)-1))

	fmt.Printf("\nall experiments done in %.1fs\n", time.Since(start).Seconds())
}

func f6(v int64) float64 { return float64(v) / 1e6 }

func section(title string) {
	fmt.Printf("\n======== %s ========\n", title)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}
