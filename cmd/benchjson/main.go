// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark runs can be archived
// and diffed across PRs (the Makefile's bench-json target writes
// BENCH_pr2.json with it). Benchmarks are sorted by name and the
// goos/goarch/cpu/pkg header lines are carried along as metadata.
//
// Usage:
//
//	go test -run='^$' -bench=. . | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"nsPerOp"`
	MBPerS     float64 `json:"mbPerS,omitempty"`
	// NsPerImage carries the batched-inference benchmarks' custom
	// per-image metric (b.ReportMetric(..., "ns/img")), which is what
	// makes batch-size scaling comparable across BenchmarkInferBatched*.
	NsPerImage float64 `json:"nsPerImage,omitempty"`
	// DevicesPerS carries the fleet benchmarks' throughput metric
	// (b.ReportMetric(..., "devices/sec")): simulated device-epochs per
	// wall-clock second, the headline number for BenchmarkFleet*.
	DevicesPerS float64 `json:"devicesPerS,omitempty"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(rep); err != nil {
		fatal(err)
	}
}

// parseLine handles the standard benchmark result shape:
//
//	BenchmarkName-8   100   12345 ns/op   64 B/op   2 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	var b Benchmark
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "MB/s":
			b.MBPerS, _ = strconv.ParseFloat(val, 64)
		case "ns/img":
			b.NsPerImage, _ = strconv.ParseFloat(val, 64)
		case "devices/sec":
			b.DevicesPerS, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return b, b.NsPerOp > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
