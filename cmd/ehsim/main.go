// Command ehsim runs the full energy-harvesting intermittent-inference
// simulation: the compressed multi-exit network under the Q-learning
// runtime, compared against the three baselines on one EH trace. The
// scenario is expressed as a one-point grid and executed through a
// Session, so ehsim, sweep, and paperbench share one scenario
// constructor, one seed-derivation scheme, and one cancellation story
// (Ctrl-C aborts between training episodes).
//
// With -deployed the compressed model is restored from a saved
// deployment artifact (see cmd/train -save-deployed) instead of being
// rebuilt in process — the search/compress phase is skipped entirely,
// and the run is bit-identical to one on the never-serialized
// deployment.
//
// Usage:
//
//	ehsim [-seed N] [-events N] [-hours H] [-peak mW] [-trace file.csv]
//	      [-deployed model.ehar]
//	      [-policy static|qlearning] [-episodes N] [-workers N] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	ehinfer "repro"
	"repro/internal/core"
	"repro/internal/exper"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 42, "random seed for trace, events, and learning")
		events    = flag.Int("events", 500, "number of events over the trace")
		hours     = flag.Float64("hours", 6, "trace duration in hours (synthetic trace)")
		peak      = flag.Float64("peak", 0.032, "peak harvesting power in mW (synthetic trace)")
		traceCSV  = flag.String("trace", "", "CSV file with a measured trace (overrides -hours/-peak)")
		deployedF = flag.String("deployed", "", "deployment artifact to run (skips the in-process build)")
		policy    = flag.String("policy", "qlearning", "runtime exit policy: qlearning or static")
		episodes  = flag.Int("episodes", 12, "Q-learning warm-up episodes before the measured run")
		workers   = flag.Int("workers", 0, "engine worker goroutines (0 = all cores)")
		verbose   = flag.Bool("v", false, "print per-system exit shares")
	)
	flag.Parse()
	if *events < 1 {
		fatal(fmt.Errorf("-events must be at least 1, got %d", *events))
	}

	mode := core.PolicyQLearning
	if *policy == "static" {
		mode = core.PolicyStaticLUT
	}
	grid := exper.PaperCompareGrid(*seed, *episodes, mode)
	grid.Events = *events
	if *traceCSV != "" {
		grid.Traces = []exper.TraceSpec{{Name: "csv", Kind: exper.TraceCSV, Path: *traceCSV}}
	} else {
		grid.Traces = []exper.TraceSpec{exper.SolarTrace(int(*hours*3600), *peak)}
	}

	session := ehinfer.NewSession(ehinfer.WithWorkers(*workers), ehinfer.WithSeed(*seed))
	if *deployedF != "" {
		ps, err := ehinfer.PolicyFromArtifactFile(*deployedF)
		if err != nil {
			fatal(err)
		}
		grid.Policies = []ehinfer.PolicySpec{ps}
		fmt.Printf("deployment artifact: %s (%s)\n", *deployedF, ps.Name)
	}

	// Materialize the point's trace and deployment up front for the
	// header; the engine re-derives the identical ones from RunSeed.
	pt := grid.Points()[0]
	trace, err := pt.Trace.Build(pt.RunSeed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace: %d s, mean %.1f µW, total %.1f mJ harvestable; %d events\n",
		trace.Duration(), 1000*trace.MeanPower(), trace.TotalEnergy(), grid.Events)

	var deployed *core.Deployed
	if pt.Policy.Deployed != nil {
		deployed = pt.Policy.Deployed()
	} else {
		deployed, err = core.BuildDeployed(pt.Policy.Build(), pt.DeploySeed)
		if err != nil {
			fatal(err)
		}
	}
	dev := pt.Device.Build()
	fmt.Printf("deployed: %0.1f KB weights, exit costs", float64(deployed.WeightBytes)/1024)
	for _, f := range deployed.ExitFLOPs {
		fmt.Printf(" %.2f mJ", dev.ComputeEnergyMJ(f))
	}
	fmt.Println()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := session.RunGrid(ctx, grid)
	if err != nil {
		fatal(err)
	}
	if errs := res.Errs(); len(errs) != 0 {
		fatal(fmt.Errorf("%s", errs[0]))
	}

	fmt.Printf("\n%-14s %8s %9s %11s %10s %9s\n", "system", "IEpmJ", "acc(all)", "acc(proc)", "latency", "processed")
	for _, r := range res.Results[0].Rows {
		fmt.Printf("%-14s %8.3f %8.1f%% %10.1f%% %9.1fs %8.1f%%\n",
			r.System, r.IEpmJ, 100*r.AccAll, 100*r.AccProcessed, r.MeanLatencyS, 100*r.ProcessedFrac)
		if *verbose && len(r.ExitShares) > 1 {
			fmt.Printf("               exit shares:")
			for i, s := range r.ExitShares {
				fmt.Printf(" exit%d=%.1f%%", i+1, 100*s)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ehsim:", err)
	os.Exit(1)
}
