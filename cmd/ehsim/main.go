// Command ehsim runs the full energy-harvesting intermittent-inference
// simulation: the compressed multi-exit network under the Q-learning
// runtime, compared against the three baselines on one EH trace.
//
// Usage:
//
//	ehsim [-seed N] [-events N] [-hours H] [-peak mW] [-trace file.csv]
//	      [-policy static|qlearning] [-episodes N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	ehinfer "repro"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 42, "random seed for trace, events, and learning")
		events   = flag.Int("events", 500, "number of events over the trace")
		hours    = flag.Float64("hours", 6, "trace duration in hours (synthetic trace)")
		peak     = flag.Float64("peak", 0.032, "peak harvesting power in mW (synthetic trace)")
		traceCSV = flag.String("trace", "", "CSV file with a measured trace (overrides -hours/-peak)")
		policy   = flag.String("policy", "qlearning", "runtime exit policy: qlearning or static")
		episodes = flag.Int("episodes", 12, "Q-learning warm-up episodes before the measured run")
		verbose  = flag.Bool("v", false, "print per-system event details")
	)
	flag.Parse()

	trace, err := buildTrace(*traceCSV, *hours, *peak, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		os.Exit(1)
	}
	sc := core.DefaultScenario(*seed)
	sc.Trace = trace
	sc.Schedule = energy.UniformSchedule(*events, trace.Duration(), 10, *seed)
	sc.Device = mcu.MSP432()

	fmt.Printf("trace: %d s, mean %.1f µW, total %.1f mJ harvestable; %d events\n",
		trace.Duration(), 1000*trace.MeanPower(), trace.TotalEnergy(), sc.Schedule.Len())

	deployed, err := ehinfer.BuildDeployed(ehinfer.Fig1bNonuniform(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		os.Exit(1)
	}
	fmt.Printf("deployed: %0.1f KB weights, exit costs", float64(deployed.WeightBytes)/1024)
	for _, f := range deployed.ExitFLOPs {
		fmt.Printf(" %.2f mJ", sc.Device.ComputeEnergyMJ(f))
	}
	fmt.Println()

	mode := ehinfer.PolicyQLearning
	if *policy == "static" {
		mode = ehinfer.PolicyStaticLUT
	}
	rows, err := ehinfer.CompareSystems(sc, deployed, ehinfer.CompareConfig{
		Mode:           mode,
		WarmupEpisodes: *episodes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ehsim:", err)
		os.Exit(1)
	}

	fmt.Printf("\n%-14s %8s %9s %11s %10s %9s\n", "system", "IEpmJ", "acc(all)", "acc(proc)", "latency", "processed")
	for _, r := range rows {
		fmt.Printf("%-14s %8.3f %8.1f%% %10.1f%% %9.1fs %8.1f%%\n",
			r.System, r.IEpmJ, 100*r.AccAll, 100*r.AccProcessed, r.MeanLatencyS, 100*r.ProcessedFrac)
		if *verbose && len(r.ExitShares) > 1 {
			fmt.Printf("               exit shares:")
			for i, s := range r.ExitShares {
				fmt.Printf(" exit%d=%.1f%%", i+1, 100*s)
			}
			fmt.Println()
		}
	}
}

func buildTrace(csvPath string, hours, peak float64, seed uint64) (*energy.Trace, error) {
	if csvPath != "" {
		return energy.LoadTraceCSV(csvPath)
	}
	return energy.SyntheticSolarTrace(energy.SolarConfig{
		Seconds:   int(hours * 3600),
		PeakPower: peak,
		Seed:      seed,
	}), nil
}
