// Command tracegen generates and inspects energy-harvesting traces and
// event schedules as CSV files.
//
// Generated trace CSVs use the exact codec the experiment engine reads
// (energy.WriteTraceCSV / energy.TraceFromCSV), so a file written here
// is directly usable as a GridSpec trace axis value — pass -spec to
// print the ready-to-paste JSON — or registerable as a named trace via
// ehinfer.RegisterTrace(name, ehinfer.TraceFromCSV(path)).
//
// Usage:
//
//	tracegen -kind solar|kinetic [-hours H] [-peak mW] [-seed N] [-out trace.csv] [-spec]
//	tracegen -events N [-hours H] [-seed N] [-out events.csv]
//	tracegen -inspect trace.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/energy"
	"repro/internal/exper"
)

func main() {
	var (
		kind    = flag.String("kind", "solar", "trace kind: solar or kinetic")
		hours   = flag.Float64("hours", 6, "duration in hours")
		peak    = flag.Float64("peak", 0.032, "peak (solar) or burst (kinetic) power in mW")
		seed    = flag.Uint64("seed", 42, "random seed")
		out     = flag.String("out", "", "output CSV path (default stdout)")
		events  = flag.Int("events", 0, "generate an event schedule of N events instead of a trace")
		inspect = flag.String("inspect", "", "print statistics for an existing trace CSV")
		spec    = flag.Bool("spec", false, "after writing -out, print the GridSpec trace-axis JSON for the file")
	)
	flag.Parse()

	if *inspect != "" {
		tr, err := energy.LoadTraceCSV(*inspect)
		if err != nil {
			fatal(err)
		}
		var max float64
		for _, p := range tr.Power {
			if p > max {
				max = p
			}
		}
		fmt.Printf("%s: %d s, mean %.2f µW, peak %.2f µW, total %.2f mJ\n",
			*inspect, tr.Duration(), 1000*tr.MeanPower(), 1000*max, tr.TotalEnergy())
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	seconds := int(*hours * 3600)
	if *events > 0 {
		s := energy.UniformSchedule(*events, seconds, 10, *seed)
		if err := energy.WriteScheduleCSV(w, s); err != nil {
			fatal(err)
		}
		return
	}

	var tr *energy.Trace
	switch *kind {
	case "solar":
		tr = energy.SyntheticSolarTrace(energy.SolarConfig{Seconds: seconds, PeakPower: *peak, Seed: *seed})
	case "kinetic":
		tr = energy.SyntheticKineticTrace(energy.KineticConfig{Seconds: seconds, BurstPower: *peak, Seed: *seed})
	default:
		fatal(fmt.Errorf("unknown trace kind %q", *kind))
	}
	if err := energy.WriteTraceCSV(w, tr); err != nil {
		fatal(err)
	}
	if *spec && *out != "" {
		// Round-trip through the engine's own loader first: a file that
		// prints a spec must actually load as one.
		if _, err := energy.TraceFromCSV(*out)(0); err != nil {
			fatal(fmt.Errorf("generated trace does not load back: %w", err))
		}
		axis := exper.TraceSpec{Name: *kind + "-csv", Kind: exper.TraceCSV, Path: *out}
		data, err := json.Marshal([]exper.TraceSpec{axis})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "grid spec axis: \"traces\": %s\n", data)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
