// Command compress-search runs the paper's §III power-trace-aware,
// exit-guided compression search (dual DDPG agents) and prints the
// Fig. 4-style per-layer policy table.
//
// Usage:
//
//	compress-search [-episodes N] [-ftarget MFLOPs] [-starget KB]
//	                [-algo ddpg|random|annealing] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ehinfer "repro"
)

func main() {
	var (
		episodes = flag.Int("episodes", 150, "search episodes")
		ftarget  = flag.Float64("ftarget", 1.15, "FLOPs constraint in MFLOPs (paper: 1.15)")
		starget  = flag.Float64("starget", 16, "weight-size constraint in KB (paper: 16)")
		algo     = flag.String("algo", "ddpg", "search algorithm: ddpg, random, or annealing")
		seed     = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	sc := ehinfer.DefaultScenario(*seed)
	net := ehinfer.LeNetEE(ehinfer.NewRNG(*seed))
	sur, err := ehinfer.NewSurrogate(net, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compress-search:", err)
		os.Exit(1)
	}
	cfg := ehinfer.SearchConfig{
		Episodes: *episodes,
		FTarget:  int64(*ftarget * 1e6),
		STarget:  int64(*starget * 1024),
		Trace:    sc.Trace,
		Schedule: sc.Schedule,
		Storage:  sc.Storage,
		Seed:     *seed,
	}

	searchFn := ehinfer.SearchCompression
	switch *algo {
	case "ddpg":
	case "random":
		searchFn = ehinfer.SearchCompressionRandom
	case "annealing":
		searchFn = ehinfer.SearchCompressionAnnealing
	default:
		fmt.Fprintf(os.Stderr, "compress-search: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	fmt.Printf("searching (%s, %d episodes, F ≤ %.2f MFLOPs, S ≤ %.0f KB)...\n",
		*algo, *episodes, *ftarget, *starget)
	start := time.Now()
	res, err := searchFn(net, sur, cfg)
	if err != nil && res.Policy == nil {
		fmt.Fprintln(os.Stderr, "compress-search:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %.1fs (%d episodes)\n\n", time.Since(start).Seconds(), res.Episodes)

	fmt.Printf("best policy (Racc = %.4f, F = %.4f MFLOPs, S = %.1f KB):\n",
		res.Racc, float64(res.Measure.ModelFLOPs)/1e6, float64(res.Measure.WeightBytes)/1024)
	fmt.Println(res.Policy)

	fmt.Printf("per-exit accuracy:")
	for i, a := range res.ExitAccs {
		fmt.Printf(" exit%d=%.1f%%", i+1, 100*a)
	}
	fmt.Println()
	fmt.Printf("exit selection shares (static policy over the trace):")
	for i, s := range res.ExitShares {
		if i == len(res.ExitShares)-1 {
			fmt.Printf(" missed=%.1f%%", 100*s)
		} else {
			fmt.Printf(" exit%d=%.1f%%", i+1, 100*s)
		}
	}
	fmt.Println()
	fmt.Printf("per-exit FLOPs after compression:")
	for i, f := range res.Measure.ExitFLOPs {
		fmt.Printf(" exit%d=%.4fM", i+1, float64(f)/1e6)
	}
	fmt.Println()
}
