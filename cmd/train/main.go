// Command train trains the multi-exit LeNet-EE on SynthCIFAR (or real
// CIFAR-10 binary batches if present), optionally applies a compression
// policy from JSON, reports per-exit accuracy before and after, and saves
// the weights — or a complete deployment artifact.
//
// With -save-deployed the trained (and compressed) network is packaged
// as a versioned deployment bundle: architecture, weights, measured
// per-exit accuracies, the applied policy, pinned int8 calibration
// scales (calibrated on training samples), and the chosen default
// backend. The artifact is the train-once/serve-many unit: ehsim and
// sweep run it with -deployed, and ehserved accepts it at
// POST /v1/artifacts.
//
// Usage:
//
//	train [-epochs N] [-train N] [-test N] [-augment N] [-seed N]
//	      [-cifar dir] [-policy policy.json] [-out model.gob]
//	      [-save-deployed model.ehar] [-backend plan|legacy|int8]
//	      [-name label]
package main

import (
	"flag"
	"fmt"
	"os"

	ehinfer "repro"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	var (
		epochs   = flag.Int("epochs", 6, "training epochs")
		trainN   = flag.Int("train", 400, "SynthCIFAR training samples")
		testN    = flag.Int("test", 200, "SynthCIFAR test samples")
		augment  = flag.Int("augment", 0, "augmented copies per training sample")
		seed     = flag.Uint64("seed", 31, "random seed")
		cifarDir = flag.String("cifar", "", "directory with CIFAR-10 binary batches (overrides SynthCIFAR)")
		policyF  = flag.String("policy", "", "compression policy JSON to apply after training")
		out      = flag.String("out", "", "output model file (gob, weights only)")
		deployF  = flag.String("save-deployed", "", "output deployment-artifact file (architecture + weights + accuracies + policy + calibration)")
		backendF = flag.String("backend", "", "default inference backend recorded in the artifact (plan, legacy, int8)")
		nameF    = flag.String("name", "", "artifact label (default: derived from the policy file)")
	)
	flag.Parse()

	var train, test *dataset.Set
	var err error
	if *cifarDir != "" {
		train, test, err = dataset.LoadCIFAR10Dir(*cifarDir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded CIFAR-10: %d train, %d test\n", train.Len(), test.Len())
	} else {
		cfg := dataset.SynthConfig{Seed: *seed, NoiseStd: 0.03, Jitter: 0.05}
		train, test = dataset.TrainTest(cfg, *trainN, *testN)
		fmt.Printf("generated SynthCIFAR: %d train, %d test\n", train.Len(), test.Len())
	}
	if *augment > 0 {
		train = train.Augmented(*augment, tensor.NewRNG(*seed+0xa46))
		fmt.Printf("augmented training set to %d samples\n", train.Len())
	}

	backend, err := ehinfer.ParseBackend(*backendF)
	if err != nil {
		fatal(err)
	}

	net := multiexit.LeNetEE(tensor.NewRNG(*seed))
	fmt.Printf("training %d epochs...\n", *epochs)
	if _, err := multiexit.Train(net, train, multiexit.TrainConfig{
		Epochs: *epochs, BatchSize: 25, Seed: *seed, Log: os.Stdout,
	}); err != nil {
		fatal(err)
	}
	accs := multiexit.EvalExits(net, test)
	fmt.Printf("test accuracy: exit1 %.1f%%, exit2 %.1f%%, exit3 %.1f%%\n",
		100*accs[0], 100*accs[1], 100*accs[2])

	var policy *compress.Policy
	if *policyF != "" {
		policy, err = compress.LoadPolicyJSON(*policyF)
		if err != nil {
			fatal(err)
		}
		if err := compress.Apply(net, policy); err != nil {
			fatal(err)
		}
		accs = multiexit.EvalExits(net, test)
		m := compress.MeasureNetwork(net)
		fmt.Printf("after %s: exits %.1f%% / %.1f%% / %.1f%%; F=%.4f MFLOPs, S=%.1f KB\n",
			*policyF, 100*accs[0], 100*accs[1], 100*accs[2],
			float64(m.ModelFLOPs)/1e6, float64(m.WeightBytes)/1024)
	}

	if *out != "" {
		if err := nn.SaveParamsFile(*out, net.Params()); err != nil {
			fatal(err)
		}
		fmt.Printf("saved weights to %s\n", *out)
	}

	if *deployF != "" {
		deployed, err := core.NewDeployed(net, accs)
		if err != nil {
			fatal(err)
		}
		deployed.DefaultBackend = backend
		// Pin the int8 requantization scales from training samples so
		// the artifact is self-sufficient on the int8 backend (and never
		// leaks evaluation data into the quantization).
		deployed.BindInt8Calibration(calibrationImages(train, 8))
		name := *nameF
		if name == "" {
			name = "lenet-ee"
			if policy != nil {
				name += "+" + *policyF
			}
		}
		opts := []ehinfer.ArtifactOption{ehinfer.WithArtifactName(name)}
		if policy != nil {
			opts = append(opts, ehinfer.WithArtifactPolicy(policy))
		}
		if err := ehinfer.SaveDeployed(*deployF, deployed, opts...); err != nil {
			fatal(err)
		}
		fmt.Printf("saved deployment artifact to %s (format v%d, %0.1f KB weights)\n",
			*deployF, ehinfer.ArtifactFormatVersion, float64(deployed.WeightBytes)/1024)
	}
}

// calibrationImages picks the first n training images for the int8
// calibration pass.
func calibrationImages(set *dataset.Set, n int) []*tensor.Tensor {
	if set.Len() < n {
		n = set.Len()
	}
	imgs := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		imgs = append(imgs, set.Samples[i].Image)
	}
	return imgs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "train:", err)
	os.Exit(1)
}
