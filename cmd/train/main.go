// Command train trains the multi-exit LeNet-EE on SynthCIFAR (or real
// CIFAR-10 binary batches if present), optionally applies a compression
// policy from JSON, reports per-exit accuracy before and after, and saves
// the weights.
//
// Usage:
//
//	train [-epochs N] [-train N] [-test N] [-augment N] [-seed N]
//	      [-cifar dir] [-policy policy.json] [-out model.gob]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	var (
		epochs   = flag.Int("epochs", 6, "training epochs")
		trainN   = flag.Int("train", 400, "SynthCIFAR training samples")
		testN    = flag.Int("test", 200, "SynthCIFAR test samples")
		augment  = flag.Int("augment", 0, "augmented copies per training sample")
		seed     = flag.Uint64("seed", 31, "random seed")
		cifarDir = flag.String("cifar", "", "directory with CIFAR-10 binary batches (overrides SynthCIFAR)")
		policyF  = flag.String("policy", "", "compression policy JSON to apply after training")
		out      = flag.String("out", "", "output model file (gob)")
	)
	flag.Parse()

	var train, test *dataset.Set
	var err error
	if *cifarDir != "" {
		train, test, err = dataset.LoadCIFAR10Dir(*cifarDir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded CIFAR-10: %d train, %d test\n", train.Len(), test.Len())
	} else {
		cfg := dataset.SynthConfig{Seed: *seed, NoiseStd: 0.03, Jitter: 0.05}
		train, test = dataset.TrainTest(cfg, *trainN, *testN)
		fmt.Printf("generated SynthCIFAR: %d train, %d test\n", train.Len(), test.Len())
	}
	if *augment > 0 {
		train = train.Augmented(*augment, tensor.NewRNG(*seed+0xa46))
		fmt.Printf("augmented training set to %d samples\n", train.Len())
	}

	net := multiexit.LeNetEE(tensor.NewRNG(*seed))
	fmt.Printf("training %d epochs...\n", *epochs)
	if _, err := multiexit.Train(net, train, multiexit.TrainConfig{
		Epochs: *epochs, BatchSize: 25, Seed: *seed, Log: os.Stdout,
	}); err != nil {
		fatal(err)
	}
	accs := multiexit.EvalExits(net, test)
	fmt.Printf("test accuracy: exit1 %.1f%%, exit2 %.1f%%, exit3 %.1f%%\n",
		100*accs[0], 100*accs[1], 100*accs[2])

	if *policyF != "" {
		policy, err := compress.LoadPolicyJSON(*policyF)
		if err != nil {
			fatal(err)
		}
		if err := compress.Apply(net, policy); err != nil {
			fatal(err)
		}
		caccs := multiexit.EvalExits(net, test)
		m := compress.MeasureNetwork(net)
		fmt.Printf("after %s: exits %.1f%% / %.1f%% / %.1f%%; F=%.4f MFLOPs, S=%.1f KB\n",
			*policyF, 100*caccs[0], 100*caccs[1], 100*caccs[2],
			float64(m.ModelFLOPs)/1e6, float64(m.WeightBytes)/1024)
	}

	if *out != "" {
		if err := nn.SaveParamsFile(*out, net.Params()); err != nil {
			fatal(err)
		}
		fmt.Printf("saved weights to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "train:", err)
	os.Exit(1)
}
