package ehinfer

// Micro-benchmarks for the hot kernels: inference, training step,
// compression, Q-table updates, and the simulation engine. These measure
// the library itself (testing.B timing is meaningful here, unlike the
// figure benches which are one-shot experiment drivers).

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/intermittent"
	"repro/internal/mcu"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/qlearn"
	"repro/internal/tensor"
)

func BenchmarkInferToExit1(b *testing.B) {
	benchInferTo(b, 0)
}

func BenchmarkInferToExit3(b *testing.B) {
	benchInferTo(b, 2)
}

func benchInferTo(b *testing.B, exit int) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(2), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.InferTo(img, exit)
	}
}

func BenchmarkIncrementalResume(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(2), 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := net.InferTo(img, 0)
		net.Resume(st, 2)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	set := dataset.NewGenerator(dataset.SynthConfig{Seed: 3}).Generate(32)
	net := multiexit.LeNetEE(tensor.NewRNG(4))
	opt := nn.NewSGD(net.Params(), 0.01, 0.9, 0)
	x, labels := set.Batch(0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.ZeroGrad()
		logits := net.ForwardAll(x, true)
		grads := make([]*tensor.Tensor, len(logits))
		for j, lg := range logits {
			_, grads[j] = nn.CrossEntropyLoss(lg, labels)
		}
		net.BackwardAll(grads)
		opt.Step()
	}
}

func BenchmarkApplyCompressionPolicy(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(5))
	snap := compress.NewSnapshot(net)
	policy := compress.Fig1bNonuniform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := compress.Apply(net, policy); err != nil {
			b.Fatal(err)
		}
		snap.Restore()
	}
}

func BenchmarkQuantizeWeights8bit(b *testing.B) {
	rng := tensor.NewRNG(6)
	w := make([]float32, 72000) // FC-B21 size
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	buf := make([]float32, len(w))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, w)
		compress.QuantizeWeights(buf, 8)
	}
}

func BenchmarkQTableUpdate(b *testing.B) {
	tab := qlearn.NewTable(60, 3, 0.2, 0.9, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(i%60, i%3, 0.7, (i+1)%60)
	}
}

func BenchmarkSolarTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		energy.SyntheticSolarTrace(energy.SolarConfig{Seconds: 21600, Seed: uint64(i)})
	}
}

func BenchmarkSynthCIFARSample(b *testing.B) {
	g := dataset.NewGenerator(dataset.SynthConfig{Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Sample(i % 10)
	}
}

func BenchmarkEngineRunToCompletion(b *testing.B) {
	trace := energy.ConstantTrace(100000, 0.5)
	for i := 0; i < b.N; i++ {
		store := energy.DefaultStorage()
		eng, err := intermittent.New(mcu.MSP432(), store, trace)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := eng.RunToCompletion(2_000_000); !ok {
			b.Fatal("task failed")
		}
	}
}

func BenchmarkFullSimulationEpisode(b *testing.B) {
	sc := DefaultScenario(42)
	d, err := BuildDeployed(Fig1bNonuniform(), 42)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Device: sc.Device, Storage: sc.Storage, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(sc.Trace, sc.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}
