package ehinfer

// Micro-benchmarks for the hot kernels: inference (compiled-plan,
// legacy layer-walk, and int8 backends), training step, compression,
// Q-table updates, and the simulation engine. These measure the library
// itself (testing.B timing is meaningful here, unlike the figure benches
// which are one-shot experiment drivers). Every benchmark reports
// allocations; BENCH_pr5.json archives the results per PR.

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/intermittent"
	"repro/internal/mcu"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/qlearn"
	"repro/internal/tensor"
)

// benchImage returns the deterministic input image the inference benches
// share.
func benchImage() *tensor.Tensor {
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(2), 0, 1)
	return img
}

// benchPlan compiles the deployed network's inference plan.
func benchPlan(b *testing.B, net *multiexit.Network) (*plan.Exec, *plan.State) {
	b.Helper()
	geom, err := plan.InferGeometry(net)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Compile(net, geom)
	if err != nil {
		b.Fatal(err)
	}
	return p.NewExec(), p.NewState()
}

// BenchmarkInferToExit1/Exit3 measure the production inference path: the
// compiled zero-allocation plan the episode loop runs.
func BenchmarkInferToExit1(b *testing.B) {
	benchInferTo(b, 0)
}

func BenchmarkInferToExit3(b *testing.B) {
	benchInferTo(b, 2)
}

func benchInferTo(b *testing.B, exit int) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	ex, st := benchPlan(b, net)
	img := benchImage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.InferTo(st, img, exit)
	}
}

// BenchmarkLegacyInferToExit3 keeps the original layer-walk path
// measurable so the plan speedup stays visible across PRs.
func BenchmarkLegacyInferToExit3(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	img := benchImage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.InferTo(img, 2)
	}
}

// BenchmarkInferToExit3Int8 measures the int8 fixed-point backend.
func BenchmarkInferToExit3Int8(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	img := benchImage()
	geom, err := plan.InferGeometry(net)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.CompileInt8(net, geom, plan.Int8Config{Calibration: []*tensor.Tensor{img}})
	if err != nil {
		b.Fatal(err)
	}
	ex, st := p.NewExec(), p.NewState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.InferTo(st, img, 2)
	}
}

// BenchmarkInferToExit3Int8Fast measures the packed-weight integer
// pipeline (plan.CompileInt8Fast) — the backend whose acceptance gate is
// running at or below the fp32 plan on the same box.
func BenchmarkInferToExit3Int8Fast(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	img := benchImage()
	geom, err := plan.InferGeometry(net)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.CompileInt8Fast(net, geom, plan.Int8Config{Calibration: []*tensor.Tensor{img}})
	if err != nil {
		b.Fatal(err)
	}
	ex, st := p.NewExec(), p.NewState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.InferTo(st, img, 2)
	}
}

func BenchmarkIncrementalResume(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	ex, st := benchPlan(b, net)
	img := benchImage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.InferTo(st, img, 0)
		ex.Resume(st, 2)
	}
}

func BenchmarkLegacyIncrementalResume(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	img := benchImage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := net.InferTo(img, 0)
		net.Resume(st, 2)
	}
}

// BenchmarkPlanCompile measures deployment-time plan compilation (paid
// once per deployment, cached on the Deployed).
func BenchmarkPlanCompile(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	geom, err := plan.InferGeometry(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Compile(net, geom); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCompileInt8Fast measures int8-fast compilation — the
// price of hoisting quantization, weight packing, and fixed-point scale
// binding out of the hot loop, paid once per deployment and cached. The
// calibration forward passes are the dominant term.
func BenchmarkPlanCompileInt8Fast(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	img := benchImage()
	geom, err := plan.InferGeometry(net)
	if err != nil {
		b.Fatal(err)
	}
	scales := plan.Calibrate(net, []*tensor.Tensor{img})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.CompileInt8Fast(net, geom, plan.Int8Config{Scales: scales}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainStep(b *testing.B) {
	// Batch 8 keeps one step under ~50 ms so default -benchtime runs
	// several iterations (batch 32 gave a single noisy 158 ms sample);
	// all setup stays outside the timed region.
	const batch = 8
	set := dataset.NewGenerator(dataset.SynthConfig{Seed: 3}).Generate(batch)
	net := multiexit.LeNetEE(tensor.NewRNG(4))
	opt := nn.NewSGD(net.Params(), 0.01, 0.9, 0)
	x, labels := set.Batch(0, batch)
	grads := make([]*tensor.Tensor, net.NumExits())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.ZeroGrad()
		logits := net.ForwardAll(x, true)
		for j, lg := range logits {
			_, grads[j] = nn.CrossEntropyLoss(lg, labels)
		}
		net.BackwardAll(grads)
		opt.Step()
	}
}

func BenchmarkApplyCompressionPolicy(b *testing.B) {
	net := multiexit.LeNetEE(tensor.NewRNG(5))
	snap := compress.NewSnapshot(net)
	policy := compress.Fig1bNonuniform()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := compress.Apply(net, policy); err != nil {
			b.Fatal(err)
		}
		snap.Restore()
	}
}

func BenchmarkQuantizeWeights8bit(b *testing.B) {
	rng := tensor.NewRNG(6)
	w := make([]float32, 72000) // FC-B21 size
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	buf := make([]float32, len(w))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, w)
		compress.QuantizeWeights(buf, 8)
	}
}

func BenchmarkQTableUpdate(b *testing.B) {
	tab := qlearn.NewTable(60, 3, 0.2, 0.9, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(i%60, i%3, 0.7, (i+1)%60)
	}
}

func BenchmarkSolarTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		energy.SyntheticSolarTrace(energy.SolarConfig{Seconds: 21600, Seed: uint64(i)})
	}
}

func BenchmarkSynthCIFARSample(b *testing.B) {
	g := dataset.NewGenerator(dataset.SynthConfig{Seed: 7})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Sample(i % 10)
	}
}

func BenchmarkEngineRunToCompletion(b *testing.B) {
	trace := energy.ConstantTrace(100000, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		store := energy.DefaultStorage()
		eng, err := intermittent.New(mcu.MSP432(), store, trace)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := eng.RunToCompletion(2_000_000); !ok {
			b.Fatal("task failed")
		}
	}
}

func BenchmarkFullSimulationEpisode(b *testing.B) {
	sc := DefaultScenario(42)
	d, err := BuildDeployed(Fig1bNonuniform(), 42)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Device: sc.Device, Storage: sc.Storage, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(sc.Trace, sc.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferBatched* measure the batched serving executor
// (plan.BatchExec) at the micro-batch sizes the online queue
// dispatches. ns/op is per batch; the ns/img metric is the per-image
// cost. Every size draws distinct images from one rotating pool —
// serving traffic never re-infers a cache-hot image, so a fair
// comparison must not either. On a single core (this CI box) per-image
// cost is flat with batch size — the serial kernels already run at
// scalar peak, and the dispatch overhead the batch amortizes is small —
// while on a w-core host the executor's per-worker lanes divide
// per-image wall time by min(batch, w).
func BenchmarkInferBatched1(b *testing.B)  { benchInferBatched(b, 1, false) }
func BenchmarkInferBatched4(b *testing.B)  { benchInferBatched(b, 4, false) }
func BenchmarkInferBatched16(b *testing.B) { benchInferBatched(b, 16, false) }

// BenchmarkInferBatched*Int8Fast run the same micro-batch shapes through
// the int8-fast lanes BatchExec gained alongside the packed kernels.
func BenchmarkInferBatched1Int8Fast(b *testing.B)  { benchInferBatched(b, 1, true) }
func BenchmarkInferBatched4Int8Fast(b *testing.B)  { benchInferBatched(b, 4, true) }
func BenchmarkInferBatched16Int8Fast(b *testing.B) { benchInferBatched(b, 16, true) }

func benchInferBatched(b *testing.B, n int, int8fast bool) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	geom, err := plan.InferGeometry(net)
	if err != nil {
		b.Fatal(err)
	}
	var p *plan.Plan
	if int8fast {
		p, err = plan.CompileInt8Fast(net, geom, plan.Int8Config{Calibration: []*tensor.Tensor{benchImage()}})
	} else {
		p, err = plan.Compile(net, geom)
	}
	if err != nil {
		b.Fatal(err)
	}
	be, err := p.NewBatchExec(n)
	if err != nil {
		b.Fatal(err)
	}
	// A pool of 16 distinct images; each dispatch takes the next n,
	// wrapping, so every batch size sees the same image diversity.
	const pool = 16
	rng := tensor.NewRNG(2)
	imgs := make([][]float32, pool+n-1)
	for i := 0; i < pool; i++ {
		img := tensor.New(3, 32, 32)
		tensor.FillUniform(img, rng, 0, 1)
		imgs[i] = img.Data
	}
	for i := pool; i < len(imgs); i++ {
		imgs[i] = imgs[i-pool]
	}
	dsts := make([]*plan.State, n)
	for i := range dsts {
		dsts[i] = p.NewState()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * n) % pool
		be.InferBatchTo(dsts, imgs[off:off+n], 2)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/img")
}
