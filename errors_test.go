package ehinfer_test

import (
	"context"
	"errors"
	"testing"

	ehinfer "repro"
)

// TestErrorTaxonomy pins that Session.Infer/InferBatch failures are
// programmable with errors.Is against the exported sentinels — no
// string matching.
func TestErrorTaxonomy(t *testing.T) {
	session := ehinfer.NewSession(ehinfer.WithWorkers(1))
	d, err := session.BuildDeployed(ehinfer.Fig1bNonuniform())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := session.Infer(ctx, nil, make([]float32, 3072)); !errors.Is(err, ehinfer.ErrModelNotFound) {
		t.Fatalf("nil deployment: %v, want ErrModelNotFound", err)
	}
	if _, err := session.Infer(ctx, d, []float32{1, 2, 3}); !errors.Is(err, ehinfer.ErrBadInput) {
		t.Fatalf("wrong volume: %v, want ErrBadInput", err)
	}
	if _, err := session.Infer(ctx, d, make([]float32, 3072), ehinfer.InferToExit(99)); !errors.Is(err, ehinfer.ErrBadInput) {
		t.Fatalf("exit out of range: %v, want ErrBadInput", err)
	}
	if _, err := session.Infer(ctx, d, make([]float32, 3072), ehinfer.InferWithThreshold(2)); !errors.Is(err, ehinfer.ErrBadInput) {
		t.Fatalf("bad threshold: %v, want ErrBadInput", err)
	}

	// A valid request still works after the failures above.
	if _, err := session.Infer(ctx, d, make([]float32, 3072)); err != nil {
		t.Fatalf("valid request failed: %v", err)
	}
}
