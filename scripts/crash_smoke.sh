#!/usr/bin/env bash
# crash-smoke: the crash-recovery gate for the shipped ehserved binary.
#
# Phase 1 (reference): run a grid to completion on a fresh data dir and
# keep the final result document.
# Phase 2 (crash): start the same grid on a second data dir, SIGKILL the
# daemon mid-job — no drain, no journal retirement — restart it on the
# same dir, and wait for the resumed job to finish.
# The recovered final document must be byte-identical to the reference,
# and the artifact uploaded before the kill must download byte-identical
# after the restart.
set -euo pipefail

PORT="${CRASH_SMOKE_PORT:-18163}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/ehserved" ./cmd/ehserved

start_server() { # $1 = data dir
    "$TMP/ehserved" -addr "127.0.0.1:$PORT" -workers 1 -data-dir "$1" >>"$TMP/server.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "crash-smoke: server never became healthy" >&2
    cat "$TMP/server.log" >&2
    exit 1
}

stop_server() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

# A grid slow enough to be caught mid-run on a 1-worker session but
# quick enough for CI: 16 points with hundreds of warm-up episodes each.
SPEC='{"name":"crash-smoke","events":200,"traces":[{"name":"s","kind":"solar","seconds":86400,"peakPower":0.05}],"exits":[{"name":"q","mode":0,"warmup":200}],"seeds":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}'

wait_done() { # $1 = job id; prints nothing, fails if the job errs
    for _ in $(seq 1 600); do
        state="$(curl -sf "$BASE/v1/grids/$1" | grep -o '"state":"[a-z]*"')"
        case "$state" in
            '"state":"done"') return 0 ;;
            '"state":"failed"'|'"state":"canceled"')
                echo "crash-smoke: job $1 ended $state" >&2
                curl -sf "$BASE/v1/grids/$1" >&2 || true
                exit 1 ;;
        esac
        sleep 0.2
    done
    echo "crash-smoke: job $1 never finished" >&2
    exit 1
}

# ---- Phase 1: uninterrupted reference run -------------------------------
start_server "$TMP/data-ref"
curl -sf --data-binary @testdata/golden_two_exit.ehar "$BASE/v1/artifacts" >/dev/null
REF_ID="$(curl -sf -X POST -d "$SPEC" "$BASE/v1/grids" | grep -o '"id":"g[0-9]*"' | cut -d'"' -f4)"
wait_done "$REF_ID"
curl -sf "$BASE/v1/grids/$REF_ID/results" >"$TMP/reference.json"
stop_server

# ---- Phase 2: SIGKILL mid-job, restart, resume --------------------------
# The kill must land while the job is running. If the grid outruns us
# (fast machine), retry the whole phase on a fresh dir a few times.
killed=0
for attempt in 1 2 3; do
    DATA="$TMP/data-crash-$attempt"
    start_server "$DATA"
    curl -sf --data-binary @testdata/golden_two_exit.ehar "$BASE/v1/artifacts" >"$TMP/upload.json"
    grep -q '"id":"a1"' "$TMP/upload.json" || { echo "crash-smoke: unexpected upload:"; cat "$TMP/upload.json"; exit 1; }
    JOB_ID="$(curl -sf -X POST -d "$SPEC" "$BASE/v1/grids" | grep -o '"id":"g[0-9]*"' | cut -d'"' -f4)"

    # Wait for at least one checkpointed point, then SIGKILL — no drain,
    # no deferred cleanup, exactly the crash the journal exists for.
    for _ in $(seq 1 300); do
        status="$(curl -sf "$BASE/v1/grids/$JOB_ID")"
        completed="$(echo "$status" | grep -o '"completed":[0-9]*' | cut -d: -f2)"
        if echo "$status" | grep -q '"state":"running"' && [ "${completed:-0}" -ge 1 ]; then
            kill -9 "$SERVER_PID"
            wait "$SERVER_PID" 2>/dev/null || true
            SERVER_PID=""
            killed=1
            break
        fi
        if echo "$status" | grep -q '"state":"done"'; then break; fi
        sleep 0.05
    done
    if [ "$killed" = 1 ]; then break; fi
    echo "crash-smoke: attempt $attempt finished before the kill landed; retrying" >&2
    stop_server
done
if [ "$killed" != 1 ]; then
    echo "crash-smoke: could never SIGKILL mid-job (grid too fast?)" >&2
    exit 1
fi

# Restart on the same data dir: the job must resume and finish.
start_server "$DATA"
wait_done "$JOB_ID"

# The resumed run's final document is byte-identical to the reference.
curl -sf "$BASE/v1/grids/$JOB_ID/results" >"$TMP/resumed.json"
if ! cmp -s "$TMP/reference.json" "$TMP/resumed.json"; then
    echo "crash-smoke: resumed results differ from the uninterrupted reference" >&2
    diff <(head -c 2000 "$TMP/reference.json") <(head -c 2000 "$TMP/resumed.json") >&2 || true
    exit 1
fi

# The artifact survived the SIGKILL byte-identically.
curl -sf "$BASE/v1/artifacts/a1" >"$TMP/roundtrip.ehar"
cmp -s testdata/golden_two_exit.ehar "$TMP/roundtrip.ehar" \
    || { echo "crash-smoke: artifact bytes changed across the crash" >&2; exit 1; }

# Recovery telemetry is on /metrics.
curl -sf "$BASE/metrics" >"$TMP/metrics.txt"
grep -q 'ehserved_jobs_resumed_total 1' "$TMP/metrics.txt" \
    || { echo "crash-smoke: resume not counted" >&2; grep ehserved_jobs "$TMP/metrics.txt" >&2 || true; exit 1; }
grep -Eq 'ehserved_artifact_recovery_total\{outcome="restored"\} 1' "$TMP/metrics.txt" \
    || { echo "crash-smoke: artifact restore not counted" >&2; grep ehserved_artifact "$TMP/metrics.txt" >&2 || true; exit 1; }
stop_server

echo "crash-smoke: OK (job $JOB_ID resumed after SIGKILL; results byte-identical)"
