#!/usr/bin/env bash
# infer-smoke: boot the real ehserved daemon, upload the checked-in
# golden artifact, POST one online inference, and assert a well-formed
# prediction decodes. This is the CI gate proving the serving path works
# end to end in the shipped binary, not just under httptest.
set -euo pipefail

PORT="${INFER_SMOKE_PORT:-18157}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/ehserved" ./cmd/ehserved
"$TMP/ehserved" -addr "127.0.0.1:$PORT" >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

ok=0
for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
if [ "$ok" != 1 ]; then
    echo "infer-smoke: server never became healthy" >&2
    cat "$TMP/server.log" >&2
    exit 1
fi

# Upload the golden two-exit artifact (1x16x16 input, 4 classes).
curl -sf --data-binary @testdata/golden_two_exit.ehar "$BASE/v1/artifacts" >"$TMP/upload.json"
grep -q '"id":"a1"' "$TMP/upload.json" || { echo "infer-smoke: unexpected upload response:"; cat "$TMP/upload.json"; exit 1; }

# One inference: a constant mid-gray 256-value input.
awk 'BEGIN {
    s = "";
    for (i = 0; i < 256; i++) s = s (i ? "," : "") "0.5";
    print "{\"artifact\":\"a1\",\"input\":[" s "]}";
}' >"$TMP/request.json"
curl -sf -X POST --data-binary @"$TMP/request.json" "$BASE/v1/infer" >"$TMP/response.json"

# The decoded prediction must carry a class in [0,4), the exit taken,
# and the int8 backend the golden artifact pins as its default.
grep -Eq '"class":[0-3][,}]' "$TMP/response.json" || { echo "infer-smoke: no decodable class:"; cat "$TMP/response.json"; exit 1; }
grep -Eq '"exit":[01][,}]' "$TMP/response.json" || { echo "infer-smoke: no exit taken:"; cat "$TMP/response.json"; exit 1; }
grep -q '"backend":"int8"' "$TMP/response.json" || { echo "infer-smoke: wrong backend:"; cat "$TMP/response.json"; exit 1; }

# And the stats endpoint must account for it.
curl -sf "$BASE/v1/stats" >"$TMP/stats.json"
grep -q '"served":1' "$TMP/stats.json" || { echo "infer-smoke: stats did not count the request:"; cat "$TMP/stats.json"; exit 1; }

# Same input on the packed-weight fast backend: the per-request backend
# selector must route to its own (model, backend) target and the
# response must echo the canonical name and a decodable class.
awk 'BEGIN {
    s = "";
    for (i = 0; i < 256; i++) s = s (i ? "," : "") "0.5";
    print "{\"artifact\":\"a1\",\"backend\":\"int8fast\",\"input\":[" s "]}";
}' >"$TMP/request_fast.json"
curl -sf -X POST --data-binary @"$TMP/request_fast.json" "$BASE/v1/infer" >"$TMP/response_fast.json"
grep -q '"backend":"int8fast"' "$TMP/response_fast.json" || { echo "infer-smoke: int8fast backend not echoed:"; cat "$TMP/response_fast.json"; exit 1; }
grep -q '"model":"artifact:a1@int8fast"' "$TMP/response_fast.json" || { echo "infer-smoke: int8fast target key wrong:"; cat "$TMP/response_fast.json"; exit 1; }
grep -Eq '"class":[0-3][,}]' "$TMP/response_fast.json" || { echo "infer-smoke: int8fast gave no decodable class:"; cat "$TMP/response_fast.json"; exit 1; }

# Liveness and readiness probes answer on the live daemon.
curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || { echo "infer-smoke: healthz not ok" >&2; exit 1; }
curl -sf "$BASE/readyz" | grep -q '"status":"ready"' || { echo "infer-smoke: readyz not ready" >&2; exit 1; }

# The Prometheus exposition carries every documented metric family, and
# the infer counter reflects the request we just served.
curl -sf "$BASE/metrics" >"$TMP/metrics.txt"
for fam in \
    ehserved_requests_total \
    ehserved_request_duration_seconds \
    ehserved_requests_in_flight \
    ehserved_panics_recovered_total \
    ehserved_infer_served_total \
    ehserved_infer_rejected_total \
    ehserved_infer_batches_total \
    ehserved_infer_batch_size_requests \
    ehserved_infer_latency_seconds \
    ehserved_infer_queue_depth \
    ehserved_exit_taken_total \
    ehserved_exit_latency_seconds \
    ehserved_grid_jobs \
    ehserved_artifacts \
    ehserved_start_time_seconds \
    ehserved_ready
do
    grep -q "# TYPE $fam " "$TMP/metrics.txt" || { echo "infer-smoke: /metrics missing family $fam" >&2; exit 1; }
done
grep -q 'ehserved_infer_served_total{model="artifact:a1"} 1' "$TMP/metrics.txt" \
    || { echo "infer-smoke: /metrics did not count the inference:" >&2; grep ehserved_infer "$TMP/metrics.txt" >&2; exit 1; }
grep -q 'ehserved_ready 1' "$TMP/metrics.txt" || { echo "infer-smoke: ready gauge not 1" >&2; exit 1; }

echo "infer-smoke: OK ($(cat "$TMP/response.json"))"
