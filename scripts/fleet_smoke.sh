#!/usr/bin/env bash
# fleet-smoke: the crash-recovery gate for fleet jobs on the shipped
# ehserved binary.
#
# Phase 1 (reference): run a fleet to completion on a fresh data dir and
# keep the final result document.
# Phase 2 (crash): start the same fleet on a second data dir, SIGKILL
# the daemon mid-job — no drain, no journal retirement — restart it on
# the same dir, and wait for the resumed fleet to finish.
# The recovered final document must be byte-identical to the reference:
# the engine fast-forwards deterministically through the journaled
# epochs and re-simulates only the remainder.
set -euo pipefail

PORT="${FLEET_SMOKE_PORT:-18173}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/ehserved" ./cmd/ehserved

start_server() { # $1 = data dir
    "$TMP/ehserved" -addr "127.0.0.1:$PORT" -workers 1 -data-dir "$1" >>"$TMP/server.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "fleet-smoke: server never became healthy" >&2
    cat "$TMP/server.log" >&2
    exit 1
}

stop_server() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

# A fleet slow enough to be caught mid-run on a 1-worker session but
# quick enough for CI: every epoch checkpoints a snapshot, so the kill
# can land between any two of the 60 barriers.
SPEC='{"name":"fleet-smoke","baseSeed":5,"epochs":60,"snapshotEvery":1,"events":120,"populations":[{"name":"pop","count":512,"traceVariants":8}]}'

wait_done() { # $1 = fleet id; prints nothing, fails if the job errs
    for _ in $(seq 1 600); do
        state="$(curl -sf "$BASE/v1/fleets/$1" | grep -o '"state":"[a-z]*"')"
        case "$state" in
            '"state":"done"') return 0 ;;
            '"state":"failed"'|'"state":"canceled"')
                echo "fleet-smoke: fleet $1 ended $state" >&2
                curl -sf "$BASE/v1/fleets/$1" >&2 || true
                exit 1 ;;
        esac
        sleep 0.2
    done
    echo "fleet-smoke: fleet $1 never finished" >&2
    exit 1
}

# ---- Phase 1: uninterrupted reference run -------------------------------
start_server "$TMP/data-ref"
REF_ID="$(curl -sf -X POST -d "$SPEC" "$BASE/v1/fleets" | grep -o '"id":"f[0-9]*"' | cut -d'"' -f4)"
wait_done "$REF_ID"
curl -sf "$BASE/v1/fleets/$REF_ID/results" >"$TMP/reference.json"
stop_server

# ---- Phase 2: SIGKILL mid-fleet, restart, resume ------------------------
# The kill must land while the fleet is running. If it outruns us (fast
# machine), retry the whole phase on a fresh dir a few times.
killed=0
for attempt in 1 2 3; do
    DATA="$TMP/data-crash-$attempt"
    start_server "$DATA"
    JOB_ID="$(curl -sf -X POST -d "$SPEC" "$BASE/v1/fleets" | grep -o '"id":"f[0-9]*"' | cut -d'"' -f4)"

    # Wait for at least one checkpointed snapshot, then SIGKILL — no
    # drain, no deferred cleanup, exactly the crash the journal exists
    # for.
    for _ in $(seq 1 300); do
        status="$(curl -sf "$BASE/v1/fleets/$JOB_ID")"
        completed="$(echo "$status" | grep -o '"completed":[0-9]*' | cut -d: -f2)"
        if echo "$status" | grep -q '"state":"running"' && [ "${completed:-0}" -ge 1 ]; then
            kill -9 "$SERVER_PID"
            wait "$SERVER_PID" 2>/dev/null || true
            SERVER_PID=""
            killed=1
            break
        fi
        if echo "$status" | grep -q '"state":"done"'; then break; fi
        sleep 0.05
    done
    if [ "$killed" = 1 ]; then break; fi
    echo "fleet-smoke: attempt $attempt finished before the kill landed; retrying" >&2
    stop_server
done
if [ "$killed" != 1 ]; then
    echo "fleet-smoke: could never SIGKILL mid-fleet (fleet too fast?)" >&2
    exit 1
fi

# Restart on the same data dir: the fleet must resume and finish.
start_server "$DATA"
wait_done "$JOB_ID"

# The resumed run's final document is byte-identical to the reference.
curl -sf "$BASE/v1/fleets/$JOB_ID/results" >"$TMP/resumed.json"
if ! cmp -s "$TMP/reference.json" "$TMP/resumed.json"; then
    echo "fleet-smoke: resumed results differ from the uninterrupted reference" >&2
    diff <(head -c 2000 "$TMP/reference.json") <(head -c 2000 "$TMP/resumed.json") >&2 || true
    exit 1
fi

# The unified job listing knows the fleet, and recovery telemetry plus
# the per-fleet families are on /metrics.
curl -sf "$BASE/v1/jobs" | grep -q "\"id\":\"$JOB_ID\"" \
    || { echo "fleet-smoke: /v1/jobs does not list $JOB_ID" >&2; exit 1; }
curl -sf "$BASE/metrics" >"$TMP/metrics.txt"
grep -q 'ehserved_fleets_resumed_total 1' "$TMP/metrics.txt" \
    || { echo "fleet-smoke: resume not counted" >&2; grep ehserved_fleet "$TMP/metrics.txt" >&2 || true; exit 1; }
grep -Eq 'ehserved_fleet_snapshots_restored_total [1-9]' "$TMP/metrics.txt" \
    || { echo "fleet-smoke: restored snapshots not counted" >&2; grep ehserved_fleet "$TMP/metrics.txt" >&2 || true; exit 1; }
grep -Eq "ehserved_fleet_events_total\{fleet=\"$JOB_ID\"\} [1-9]" "$TMP/metrics.txt" \
    || { echo "fleet-smoke: per-fleet event counter missing" >&2; grep ehserved_fleet "$TMP/metrics.txt" >&2 || true; exit 1; }
stop_server

echo "fleet-smoke: OK (fleet $JOB_ID resumed after SIGKILL; results byte-identical)"
