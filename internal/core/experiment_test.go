package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/compress"
)

// TestFig5SystemOrdering asserts the paper's headline result: our
// approach beats every baseline on IEpmJ and all-events accuracy, with
// the paper's ordering ours > LeNet-Cifar > SonicNet > SpArSeNet.
func TestFig5SystemOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison skipped in -short")
	}
	sc := DefaultScenario(42)
	d := testDeployed(t, 42)
	rows, err := CompareSystems(context.Background(), sc, d, CompareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	ours, sonic, sparse, lenet := rows[0], rows[1], rows[2], rows[3]

	if !(ours.IEpmJ > lenet.IEpmJ && lenet.IEpmJ > sonic.IEpmJ && sonic.IEpmJ > sparse.IEpmJ) {
		t.Fatalf("IEpmJ ordering broken: ours %.3f lenet %.3f sonic %.3f sparse %.3f",
			ours.IEpmJ, lenet.IEpmJ, sonic.IEpmJ, sparse.IEpmJ)
	}
	// Paper factors: 3.6× over SonicNet, 18.9× over SpArSeNet, 1.28×
	// over LeNet-Cifar. Require the same direction with generous bands.
	if ours.IEpmJ/sonic.IEpmJ < 2 {
		t.Errorf("vs SonicNet only %.1f×, paper reports 3.6×", ours.IEpmJ/sonic.IEpmJ)
	}
	if ours.IEpmJ/sparse.IEpmJ < 8 {
		t.Errorf("vs SpArSeNet only %.1f×, paper reports 18.9×", ours.IEpmJ/sparse.IEpmJ)
	}
	if ours.IEpmJ/lenet.IEpmJ < 1.05 {
		t.Errorf("vs LeNet-Cifar only %.2f×, paper reports 1.28×", ours.IEpmJ/lenet.IEpmJ)
	}

	// §V-C: baselines win on processed-events accuracy (they only ever
	// emit full-network results) but lose on all-events accuracy.
	if !(ours.AccAll > sonic.AccAll && ours.AccAll > sparse.AccAll && ours.AccAll > lenet.AccAll) {
		t.Error("ours must lead all-events accuracy")
	}
	if ours.AccProcessed >= sparse.AccProcessed {
		t.Error("SpArSeNet should lead processed-events accuracy (82.7% in the paper)")
	}
}

// TestLatencyOrdering asserts §V-D: per-event latency ours ≪ baselines.
func TestLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison skipped in -short")
	}
	sc := DefaultScenario(43)
	d := testDeployed(t, 43)
	rows, err := CompareSystems(context.Background(), sc, d, CompareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ours, sonic, sparse, lenet := rows[0], rows[1], rows[2], rows[3]
	if !(ours.MeanLatencyS < lenet.MeanLatencyS) {
		t.Errorf("ours %.1fs not below LeNet-Cifar %.1fs (paper: 3.15×)", ours.MeanLatencyS, lenet.MeanLatencyS)
	}
	if !(ours.MeanLatencyS*3 < sonic.MeanLatencyS) {
		t.Errorf("ours %.1fs not ≪ SonicNet %.1fs (paper: 7.8×)", ours.MeanLatencyS, sonic.MeanLatencyS)
	}
	if !(sonic.MeanLatencyS < sparse.MeanLatencyS) {
		t.Error("SpArSeNet must be the slowest")
	}
	// Per-inference FLOPs (the paper's latency proxy): ours below Sonic
	// and SpArSe.
	if !(ours.MeanInfFLOPs < float64(2_000_000)) {
		t.Error("mean inference FLOPs should undercut SonicNet's 2.0M")
	}
}

func TestFig1bRows(t *testing.T) {
	rows, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	full, uni, non := rows[0].ExitAccs, rows[1].ExitAccs, rows[2].ExitAccs
	for i := 0; i < 3; i++ {
		if !(full[i] > non[i] && non[i] > uni[i]) {
			t.Errorf("exit %d ordering: full %.3f > nonuniform %.3f > uniform %.3f violated",
				i+1, full[i], non[i], uni[i])
		}
	}
}

func TestFig6Rows(t *testing.T) {
	rows, err := Fig6(compress.Fig1bNonuniform())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 3 exits + 3 baselines", len(rows))
	}
	for i := 0; i < 3; i++ {
		if rows[i].AfterFLOPs >= rows[i].BeforeFLOPs {
			t.Errorf("%s not compressed: %d → %d", rows[i].Name, rows[i].BeforeFLOPs, rows[i].AfterFLOPs)
		}
	}
	if rows[4].Name != "SpArSeNet" || rows[4].BeforeFLOPs != 11_400_000 {
		t.Error("SpArSeNet row wrong")
	}
}

func TestExitUsageShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("exit-usage experiment skipped in -short")
	}
	sc := DefaultScenario(44)
	d := testDeployed(t, 44)
	qhist, shist, qproc, sproc, err := ExitUsage(context.Background(), sc, d, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(qhist) != 3 || len(shist) != 3 {
		t.Fatal("histogram sizes wrong")
	}
	if qproc == 0 || sproc == 0 {
		t.Fatal("nothing processed")
	}
	// Fig. 7b: Q-learning prioritizes exit 1 over the static LUT and
	// processes more events.
	if qhist[0] <= shist[0] {
		t.Errorf("Q-learning exit-1 count %d not above static %d (paper: 71.0%% vs 57.6%%)", qhist[0], shist[0])
	}
	if float64(qproc) < float64(sproc)*1.0 {
		t.Errorf("Q-learning processed %d < static %d (paper: +11.2%%)", qproc, sproc)
	}
}

func TestScenarioRegime(t *testing.T) {
	sc := DefaultScenario(45)
	if sc.Schedule.Len() != 500 {
		t.Fatalf("%d events, paper uses 500", sc.Schedule.Len())
	}
	if sc.Trace.Duration() != 21600 {
		t.Fatalf("trace %d s, want 6 h", sc.Trace.Duration())
	}
	mean := sc.Trace.MeanPower()
	if mean < 0.008 || mean > 0.03 {
		t.Fatalf("mean power %.4f mW outside the weak-EH regime", mean)
	}
	// A SonicNet inference (3 mJ) must exceed one capacitor charge —
	// the intermittency premise.
	if sc.Storage.CapacityMJ > 3.0+sc.Storage.CapacityMJ/2 && sc.Storage.CapacityMJ >= 6.1 {
		t.Fatal("storage too large for the multi-power-cycle regime")
	}
}

func TestBuildDeployedRejectsBadPolicy(t *testing.T) {
	bad := &compress.Policy{Layers: []compress.LayerPolicy{{Layer: "nope", PreserveRatio: 0.5, WeightBits: 8, ActBits: 8}}}
	if _, err := BuildDeployed(bad, 1); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestLearningCurveAdaptationBeatsStaticEventually(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptation test skipped in -short")
	}
	// Fig. 7a's claim, with tolerance: after enough episodes the learned
	// policy should be at least competitive with (and typically above)
	// the static LUT.
	sc := DefaultScenario(46)
	d := testDeployed(t, 46)
	q, s, err := LearningCurve(context.Background(), sc, d, 12)
	if err != nil {
		t.Fatal(err)
	}
	qLate := (q[10] + q[11]) / 2
	sAvg := 0.0
	for _, v := range s {
		sAvg += v
	}
	sAvg /= float64(len(s))
	if qLate < sAvg*0.95 {
		t.Errorf("trained Q-learning %.3f clearly below static %.3f (paper: +10.2%%)", qLate, sAvg)
	}
	if math.IsNaN(qLate) {
		t.Fatal("NaN in learning curve")
	}
}
