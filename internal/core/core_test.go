package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/multiexit"
	"repro/internal/tensor"
)

// smallScenario is a faster variant of the paper setup for unit tests.
func smallScenario(seed uint64) *Scenario {
	trace := energy.SyntheticSolarTrace(energy.SolarConfig{Seconds: 5000, PeakPower: 0.032, Seed: seed})
	return &Scenario{
		Trace:    trace,
		Schedule: energy.UniformSchedule(120, trace.Duration(), 10, seed),
		Device:   mcu.MSP432(),
		Storage: &energy.Storage{
			CapacityMJ: 6, TurnOnMJ: 0.5, BrownOutMJ: 0.05,
			ChargeEfficiency: 0.9, LeakMWPerS: 0.0002,
		},
		Seed: seed,
	}
}

func testDeployed(t *testing.T, seed uint64) *Deployed {
	t.Helper()
	d, err := BuildDeployed(compress.Fig1bNonuniform(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeployedAccounting(t *testing.T) {
	d := testDeployed(t, 1)
	if len(d.ExitFLOPs) != 3 || len(d.ExitAccs) != 3 {
		t.Fatal("deployment incomplete")
	}
	if !(d.ExitFLOPs[0] < d.ExitFLOPs[1] && d.ExitFLOPs[1] < d.ExitFLOPs[2]) {
		t.Fatal("exit FLOPs must ascend")
	}
	if d.Marginal[0][2] <= 0 || d.Marginal[0][1] <= 0 || d.Marginal[1][2] <= 0 {
		t.Fatal("marginal costs missing")
	}
	// Marginal path cost is bounded by the direct cost.
	if d.Marginal[0][2] >= d.ExitFLOPs[2] {
		t.Fatal("resume cost should be below direct cost")
	}
	if d.WeightBytes > compress.PaperSTargetBytes {
		t.Fatalf("deployed model %d bytes exceeds 16 KB", d.WeightBytes)
	}
}

func TestDeployedFitCheck(t *testing.T) {
	d := testDeployed(t, 2)
	if err := d.CheckFits(mcu.MSP432()); err != nil {
		t.Fatal(err)
	}
	// Uncompressed 580 KB LeNet-EE must not fit.
	net := multiexit.LeNetEE(tensor.NewRNG(3))
	accs := []float64{0.649, 0.720, 0.730}
	big, err := NewDeployed(net, accs)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.CheckFits(mcu.MSP432()); err == nil {
		t.Fatal("oversized deployment accepted")
	}
	if _, err := NewRuntime(big, RuntimeConfig{}); err == nil {
		t.Fatal("runtime accepted an oversized deployment")
	}
}

func TestNewDeployedRejectsWrongAccCount(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(4))
	if _, err := NewDeployed(net, []float64{0.5}); err == nil {
		t.Fatal("wrong accuracy count accepted")
	}
}

func TestRuntimeProcessesEvents(t *testing.T) {
	sc := smallScenario(5)
	d := testDeployed(t, 5)
	rt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyStaticLUT, Storage: sc.Storage, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(sc.Trace, sc.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events() != 120 {
		t.Fatalf("events %d", rep.Events())
	}
	if rep.ProcessedCount() == 0 {
		t.Fatal("no events processed")
	}
	if rep.HarvestedMJ <= 0 {
		t.Fatal("no harvest recorded")
	}
	if rep.IEpmJ() <= 0 {
		t.Fatal("IEpmJ must be positive")
	}
}

func TestRuntimeOutcomesConsistent(t *testing.T) {
	sc := smallScenario(6)
	d := testDeployed(t, 6)
	rt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Storage: sc.Storage, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(sc.Trace, sc.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if !o.Processed {
			if o.Exit != -1 || o.Correct {
				t.Fatal("missed events must have no exit/result")
			}
			continue
		}
		if o.Exit < 0 || o.Exit > 2 {
			t.Fatalf("exit %d out of range", o.Exit)
		}
		if o.FinishSec < float64(o.T) {
			t.Fatal("result before the event occurred")
		}
		if o.EnergyMJ <= 0 || o.InferenceFLOPs <= 0 {
			t.Fatal("processed event with no cost")
		}
	}
}

func TestIncrementalInferenceOccursAndDeepens(t *testing.T) {
	sc := smallScenario(7)
	d := testDeployed(t, 7)
	rt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyStaticLUT, Storage: sc.Storage, Seed: 7,
		ConfidenceThreshold: 0.99, // continue aggressively
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(sc.Trace, sc.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	incr := 0
	for _, o := range rep.Outcomes {
		if o.Incremental {
			incr++
		}
	}
	if incr == 0 {
		t.Fatal("aggressive threshold never triggered incremental inference")
	}
}

func TestDisableIncrementalAblation(t *testing.T) {
	sc := smallScenario(8)
	d := testDeployed(t, 8)
	rt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyStaticLUT, Storage: sc.Storage, Seed: 8,
		DisableIncremental: true, ConfidenceThreshold: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(sc.Trace, sc.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if o.Incremental {
			t.Fatal("incremental inference happened despite ablation")
		}
	}
}

func TestQLearningImprovesOverEpisodes(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test skipped in -short")
	}
	sc := smallScenario(9)
	d := testDeployed(t, 9)
	q, s, err := LearningCurve(context.Background(), sc, d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 10 || len(s) != 10 {
		t.Fatal("curve lengths wrong")
	}
	early := (q[0] + q[1]) / 2
	late := (q[8] + q[9]) / 2
	if late < early-0.08 {
		t.Fatalf("Q-learning regressed badly: early %.3f late %.3f", early, late)
	}
	// Static baseline must be roughly flat (no learning): its variance
	// comes only from the stochastic correctness draws.
	var sMin, sMax float64 = 1, 0
	for _, v := range s {
		sMin = math.Min(sMin, v)
		sMax = math.Max(sMax, v)
	}
	if sMax-sMin > 0.15 {
		t.Fatalf("static policy unexpectedly unstable: spread %.3f", sMax-sMin)
	}
}

func TestEmpiricalModeRunsRealInference(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical test skipped in -short")
	}
	// Train to high accuracy on the easy SynthCIFAR variant, apply a
	// gentle quantization-only policy (our from-scratch training lacks
	// the quantization-aware fine-tuning the paper uses, so aggressive
	// policies are evaluated via the surrogate instead), and run events
	// with real samples.
	cfg := dataset.SynthConfig{Seed: 21, NoiseStd: 0.03, Jitter: 0.05}
	train, test := dataset.TrainTest(cfg, 300, 120)
	net := multiexit.LeNetEE(tensor.NewRNG(31))
	if _, err := multiexit.Train(net, train, multiexit.TrainConfig{Epochs: 4, BatchSize: 25, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	if err := compress.Apply(net, compress.Uniform(net, 1.0, 8, 8)); err != nil {
		t.Fatal(err)
	}
	accs := multiexit.EvalExits(net, test)
	if accs[2] < 0.4 {
		t.Fatalf("8-bit quantization should be near-lossless, got %v", accs)
	}
	d, err := NewDeployed(net, accs)
	if err != nil {
		t.Fatal(err)
	}

	sc := smallScenario(78)
	byClass := make([][]int, 10)
	for i, s := range test.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	if err := sc.Schedule.AttachSamples(byClass, 78); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyStaticLUT, Storage: sc.Storage, Seed: 78, TestSet: test,
		SkipFitCheck: true, // 8-bit-only model exceeds the MCU flash; this test exercises inference, not deployment
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(sc.Trace, sc.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProcessedCount() == 0 {
		t.Fatal("empirical mode processed nothing")
	}
	// Real inference should clearly beat chance on processed events.
	if rep.AccuracyProcessed() < 0.3 {
		t.Fatalf("empirical processed accuracy %.3f too low", rep.AccuracyProcessed())
	}
}

// TestEmpiricalQuantizationSeverity validates the real quantization path
// end-to-end: 8-bit uniform quantization is near-lossless on a trained
// multi-exit network while 1-bit uniform quantization is destructive.
// (The finer Fig. 1b uniform-vs-nonuniform comparison is made with the
// calibrated surrogate — see internal/accmodel — because from-scratch
// tiny-dataset training lacks the post-compression fine-tuning the paper
// relies on, making per-exit empirical deltas unstable at this scale.)
func TestEmpiricalQuantizationSeverity(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical test skipped in -short")
	}
	cfg := dataset.SynthConfig{Seed: 21, NoiseStd: 0.03, Jitter: 0.05}
	train, test := dataset.TrainTest(cfg, 300, 120)
	net := multiexit.LeNetEE(tensor.NewRNG(31))
	if _, err := multiexit.Train(net, train, multiexit.TrainConfig{Epochs: 4, BatchSize: 25, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	snap := compress.NewSnapshot(net)

	if err := compress.Apply(net, compress.Uniform(net, 1.0, 8, 8)); err != nil {
		t.Fatal(err)
	}
	high := multiexit.EvalExits(net, test)
	snap.Restore()

	if err := compress.Apply(net, compress.Uniform(net, 1.0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	low := multiexit.EvalExits(net, test)
	snap.Restore()

	for i := range high {
		if high[i] < 0.5 {
			t.Errorf("8-bit quantization collapsed exit %d to %.3f", i+1, high[i])
		}
	}
	if low[2] >= high[2] {
		t.Errorf("1-bit weights (%.3f) should be clearly worse than 8-bit (%.3f) at the final exit", low[2], high[2])
	}
}

func TestEmpiricalModeRequiresSamples(t *testing.T) {
	sc := smallScenario(10)
	d := testDeployed(t, 10)
	_, test := dataset.TrainTest(dataset.SynthConfig{Seed: 1}, 10, 10)
	rt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyStaticLUT, Storage: sc.Storage, TestSet: test})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(sc.Trace, sc.Schedule); err == nil {
		t.Fatal("events without samples accepted in empirical mode")
	}
}
