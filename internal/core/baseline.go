package core

import (
	"repro/internal/baselines"
	"repro/internal/energy"
	"repro/internal/intermittent"
	"repro/internal/mcu"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// BaselineConfig parameterizes a baseline simulation.
type BaselineConfig struct {
	Device  *mcu.Device
	Storage *energy.Storage
	Seed    uint64
}

func (c *BaselineConfig) fillDefaults() {
	if c.Device == nil {
		c.Device = mcu.MSP432()
	}
	if c.Storage == nil {
		c.Storage = energy.DefaultStorage()
	}
}

// RunBaseline simulates a single-exit baseline on the trace and schedule.
// Each event starts a run-to-completion inference (SONIC-style): it
// pauses at every power failure and resumes after recharge, so a single
// inference can span many power cycles and arbitrary wall time. Events
// arriving while the device is still busy — or for which the inference
// cannot finish before the trace ends — are missed. Correctness is drawn
// from the baseline's published per-inference accuracy.
func RunBaseline(b baselines.Baseline, trace *energy.Trace, schedule *energy.Schedule, cfg BaselineConfig) (*metrics.Report, error) {
	cfg.fillDefaults()
	store := *cfg.Storage
	engine, err := intermittent.New(cfg.Device, &store, trace)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed + 0xba5e)
	report := &metrics.Report{System: b.Name, NumExits: 1}

	for _, ev := range schedule.Events {
		outcome := metrics.EventOutcome{T: ev.T, Exit: -1}
		if engine.Now() > float64(ev.T) {
			// Busy finishing a previous inference.
			report.Outcomes = append(report.Outcomes, outcome)
			continue
		}
		engine.AdvanceTo(float64(ev.T))
		res, ok := engine.RunToCompletion(b.FLOPs)
		if !ok {
			report.Outcomes = append(report.Outcomes, outcome)
			continue
		}
		outcome.Processed = true
		outcome.Exit = 0
		outcome.Correct = rng.Float64() < b.InferenceAccuracy
		outcome.FinishSec = res.FinishedAt
		outcome.EnergyMJ = res.EnergyMJ + res.OverheadMJ
		outcome.InferenceFLOPs = b.FLOPs
		report.Outcomes = append(report.Outcomes, outcome)
	}
	engine.AdvanceTo(float64(trace.Duration()))
	report.HarvestedMJ = engine.Stats().HarvestedMJ
	return report, nil
}
