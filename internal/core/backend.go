package core

import (
	"fmt"
	"sync"

	"repro/internal/plan"
	"repro/internal/tensor"
)

// InferBackend selects how empirical-mode inference executes. Surrogate
// runs never execute the network, so the backend only matters when a
// RuntimeConfig carries a TestSet.
type InferBackend int

const (
	// BackendDefault (the zero value) means "no explicit choice": it
	// resolves to BackendPlan unless an outer default — a Session's
	// WithBackend or an engine's Backend field — overrides it. Keeping
	// the unset state distinct from BackendPlan lets an explicit plan
	// request win over such defaults.
	BackendDefault InferBackend = iota
	// BackendPlan runs the compiled zero-allocation inference plan
	// (internal/plan). Output is bit-identical to the legacy layer
	// walk; it is strictly a performance choice.
	BackendPlan
	// BackendLegacy walks nn.Sequential layer by layer — the original
	// path, kept as the semantic reference.
	BackendLegacy
	// BackendInt8 runs the compiled int8 pipeline: int8 weights, uint8
	// activations, int32 accumulators. Faster and closer to what a real
	// MCU executes, but an approximation of the float result.
	BackendInt8
	// BackendInt8Fast runs the packed-weight integer pipeline
	// (plan.CompileInt8Fast): pre-packed dual-lane weights, fused
	// integer requantization, batched serving lanes. It holds a
	// *statistical* parity contract with the float backend (per-exit
	// accuracy within ε) rather than BackendInt8's bit-exact one, and in
	// exchange is the fastest backend on a scalar host.
	BackendInt8Fast
)

func (b InferBackend) String() string {
	switch b {
	case BackendDefault:
		return "default"
	case BackendPlan:
		return "plan"
	case BackendLegacy:
		return "legacy"
	case BackendInt8:
		return "int8"
	case BackendInt8Fast:
		return "int8fast"
	default:
		return fmt.Sprintf("InferBackend(%d)", int(b))
	}
}

// Resolve maps BackendDefault to the concrete default (BackendPlan);
// explicit choices pass through.
func (b InferBackend) Resolve() InferBackend {
	if b == BackendDefault {
		return BackendPlan
	}
	return b
}

// ParseBackend resolves a backend name: "" → BackendDefault, "plan" (or
// its alias "float32") → BackendPlan, plus "legacy", "int8", and
// "int8fast".
func ParseBackend(name string) (InferBackend, error) {
	switch name {
	case "":
		return BackendDefault, nil
	case "plan", "float32":
		return BackendPlan, nil
	case "legacy":
		return BackendLegacy, nil
	case "int8":
		return BackendInt8, nil
	case "int8fast":
		return BackendInt8Fast, nil
	default:
		return 0, fmt.Errorf("core: unknown inference backend %q (known: %v)", name, BackendNames())
	}
}

// BackendNames lists the canonical backend names a declarative spec may
// use.
func BackendNames() []string { return []string{"int8", "int8fast", "legacy", "plan"} }

// planCache lazily compiles the deployment's float32 inference plan.
// It lives on the Deployed, which the experiment engine's DeployCache
// shares across grid runs — so plans are compiled once per (deployment
// key, geometry), alongside the deployment itself. The int8 plan is
// deliberately not cached here: its lowering is calibrated on the
// runtime's own test samples, so each Runtime compiles its own (the
// compile is milliseconds against a multi-second simulation).
type planCache struct {
	once sync.Once
	p    *plan.Plan
	err  error
}

// FloatPlan returns the deployment's compiled float32 plan, compiling it
// on first use. An error means the architecture cannot be compiled (the
// runtime then falls back to the layer walk).
func (d *Deployed) FloatPlan() (*plan.Plan, error) {
	d.planc.once.Do(func() {
		geom, err := plan.InferGeometry(d.Net)
		if err != nil {
			d.planc.err = err
			return
		}
		d.planc.p, d.planc.err = plan.Compile(d.Net, geom)
	})
	return d.planc.p, d.planc.err
}

// Int8PlanPinned returns the deployment's int8 plan compiled from its
// pinned calibration scales (or the lowering's static default ceiling
// when none are bound), compiling on first use and cached like
// FloatPlan. This is the serving path's int8 entry point: unlike the
// runtime, which calibrates on its own test samples per simulation, an
// online server has no calibration set — it runs the artifact exactly
// as packaged.
func (d *Deployed) Int8PlanPinned() (*plan.Plan, error) {
	d.planc8.once.Do(func() {
		d.planc8.p, d.planc8.err = d.int8Plan(nil, false)
	})
	return d.planc8.p, d.planc8.err
}

// Int8FastPlanPinned is Int8PlanPinned's counterpart for the
// packed-weight fast backend: the same pinned-scale contract, lowered
// through plan.CompileInt8Fast. The fast and bit-exact plans are cached
// independently — a server may route some requests through each.
func (d *Deployed) Int8FastPlanPinned() (*plan.Plan, error) {
	d.planc8f.once.Do(func() {
		d.planc8f.p, d.planc8f.err = d.int8Plan(nil, true)
	})
	return d.planc8f.p, d.planc8f.err
}

// int8Plan compiles the deployment's int8 plan, packed-weight fast or
// bit-exact. Explicit calibration images win; otherwise scales pinned
// by BindInt8Calibration (or an artifact load) apply; with neither, the
// lowering uses its static default ceiling.
func (d *Deployed) int8Plan(calibration []*tensor.Tensor, fast bool) (*plan.Plan, error) {
	geom, err := plan.InferGeometry(d.Net)
	if err != nil {
		return nil, err
	}
	cfg := plan.Int8Config{Calibration: calibration}
	if len(calibration) == 0 {
		cfg.Scales = d.Int8Calibration
	}
	if fast {
		return plan.CompileInt8Fast(d.Net, geom, cfg)
	}
	return plan.CompileInt8(d.Net, geom, cfg)
}

// BindInt8Calibration runs the calibration pass over the given images
// and pins the resulting int8 requantization scales on the deployment.
// Pinned scales are what SaveDeployed persists, so a restored artifact
// quantizes exactly like the deployment it was saved from — no
// calibration images needed at load time.
func (d *Deployed) BindInt8Calibration(images []*tensor.Tensor) {
	d.Int8Calibration = plan.Calibrate(d.Net, images)
}
