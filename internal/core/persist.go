package core

import (
	"fmt"
	"io"

	"repro/internal/qlearn"
)

// SaveAgents persists both runtime Q-tables (exit selection and
// incremental decision) — on a real device this is the FRAM write that
// lets learning survive power failures and reboots.
func (r *Runtime) SaveAgents(w io.Writer) error {
	if err := r.exitAgent.Table.Save(w); err != nil {
		return fmt.Errorf("core: save exit agent: %w", err)
	}
	if err := r.incrAgent.Table.Save(w); err != nil {
		return fmt.Errorf("core: save incremental agent: %w", err)
	}
	return nil
}

// LoadAgents restores Q-tables saved by SaveAgents. Table geometries must
// match the runtime's configuration.
func (r *Runtime) LoadAgents(rd io.Reader) error {
	exit, err := qlearn.LoadTable(rd)
	if err != nil {
		return fmt.Errorf("core: load exit agent: %w", err)
	}
	incr, err := qlearn.LoadTable(rd)
	if err != nil {
		return fmt.Errorf("core: load incremental agent: %w", err)
	}
	if exit.NumStates != r.exitAgent.Table.NumStates || exit.NumActions != r.exitAgent.Table.NumActions {
		return fmt.Errorf("core: exit table is %d×%d, runtime expects %d×%d",
			exit.NumStates, exit.NumActions, r.exitAgent.Table.NumStates, r.exitAgent.Table.NumActions)
	}
	if incr.NumStates != r.incrAgent.Table.NumStates || incr.NumActions != r.incrAgent.Table.NumActions {
		return fmt.Errorf("core: incremental table is %d×%d, runtime expects %d×%d",
			incr.NumStates, incr.NumActions, r.incrAgent.Table.NumStates, r.incrAgent.Table.NumActions)
	}
	r.exitAgent.Table = exit
	r.incrAgent.Table = incr
	return nil
}
