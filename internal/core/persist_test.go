package core

import (
	"bytes"
	"testing"

	"repro/internal/compress"
)

func TestAgentPersistenceRoundTrip(t *testing.T) {
	sc := smallScenario(11)
	d := testDeployed(t, 11)
	rt1, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Storage: sc.Storage, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Learn something, then persist.
	for ep := 0; ep < 3; ep++ {
		if _, err := rt1.Run(sc.Trace, sc.Schedule); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := rt1.SaveAgents(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh runtime restored from the blob must behave identically
	// under greedy evaluation with matching seeds.
	rt2, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Storage: sc.Storage, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.LoadAgents(&buf); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < rt1.exitAgent.Table.NumStates; s++ {
		for a := 0; a < rt1.exitAgent.Table.NumActions; a++ {
			if rt1.exitAgent.Table.Q(s, a) != rt2.exitAgent.Table.Q(s, a) {
				t.Fatal("restored exit table differs")
			}
		}
	}
}

func TestLoadAgentsRejectsGeometryMismatch(t *testing.T) {
	sc := smallScenario(12)
	d := testDeployed(t, 12)
	rt1, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Storage: sc.Storage, Seed: 12, EnergyBins: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt1.SaveAgents(&buf); err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Storage: sc.Storage, Seed: 12, EnergyBins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.LoadAgents(&buf); err == nil {
		t.Fatal("mismatched table geometry accepted")
	}
}

func TestLoadAgentsRejectsGarbage(t *testing.T) {
	d, err := BuildDeployed(compress.Fig1bNonuniform(), 13)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadAgents(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
