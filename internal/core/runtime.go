// Package core assembles the paper's complete system: the offline phase
// (train → nonuniform compression → deploy-check against the MCU) and the
// online phase (event-driven intermittent inference with Q-learned exit
// selection and incremental refinement). It also hosts the experiment
// drivers that regenerate every figure of §V.
//
// Two accuracy backends are supported (DESIGN.md §2):
//
//   - Surrogate mode: per-event correctness is drawn from the calibrated
//     per-exit accuracies via a per-event difficulty variable u ∈ [0,1);
//     the event is correct at exit i iff u < Acc_i. Because exit
//     accuracies increase with depth, incremental inference monotonically
//     repairs borderline events, matching the paper's mechanism. This
//     backend powers the paper-figure benches (fast, deterministic).
//
//   - Empirical mode: events carry real SynthCIFAR samples and the actual
//     compressed network runs (and resumes) on them; confidence is the
//     true normalized-entropy confidence. This backend powers the
//     examples and integration tests.
package core

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/intermittent"
	"repro/internal/mcu"
	"repro/internal/metrics"
	"repro/internal/multiexit"
	"repro/internal/plan"
	"repro/internal/qlearn"
	"repro/internal/tensor"
)

// PolicyMode selects the runtime exit-selection strategy.
type PolicyMode int

const (
	// PolicyQLearning is the paper's adaptive runtime (§IV).
	PolicyQLearning PolicyMode = iota
	// PolicyStaticLUT is the static greedy baseline: deepest affordable
	// exit, fixed confidence threshold for incremental inference.
	PolicyStaticLUT
)

func (m PolicyMode) String() string {
	switch m {
	case PolicyQLearning:
		return "q-learning"
	case PolicyStaticLUT:
		return "static-lut"
	default:
		return fmt.Sprintf("PolicyMode(%d)", int(m))
	}
}

// Deployed is a compressed multi-exit network plus everything the runtime
// needs to schedule it on the device.
type Deployed struct {
	Net *multiexit.Network
	// ExitAccs is the per-exit accuracy after compression (surrogate
	// prediction or empirically measured).
	ExitAccs []float64
	// ExitFLOPs is the per-exit MAC cost after compression.
	ExitFLOPs []int64
	// Marginal[i][j] is the cost of resuming from exit i to exit j.
	Marginal [][]int64
	// WeightBytes is the deployed model size.
	WeightBytes int64
	// DefaultBackend is the deployment's own preferred empirical-mode
	// inference backend. It applies only when neither the runtime config
	// nor an outer default (session, engine, grid) names a backend — a
	// loaded artifact runs the way it was packaged unless the caller
	// explicitly overrides.
	DefaultBackend InferBackend
	// Int8Calibration, when non-nil, pins the int8 backend's
	// requantization scales (see BindInt8Calibration). Pinned scales let
	// a deployment run int8 without calibration images — the
	// "compress once, flash once" contract a serialized artifact keeps.
	Int8Calibration *plan.Calibration

	// planc caches the compiled float32 inference plan (see FloatPlan);
	// planc8 caches the pinned-scale int8 plan (see Int8PlanPinned);
	// planc8f the pinned-scale packed-weight fast plan
	// (see Int8FastPlanPinned).
	planc   planCache
	planc8  planCache
	planc8f planCache
}

// NewDeployed captures the deployment view of a (compressed) network.
func NewDeployed(net *multiexit.Network, exitAccs []float64) (*Deployed, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	m := net.NumExits()
	if len(exitAccs) != m {
		return nil, fmt.Errorf("core: %d exit accuracies for %d exits", len(exitAccs), m)
	}
	d := &Deployed{
		Net:         net,
		ExitAccs:    append([]float64(nil), exitAccs...),
		WeightBytes: net.WeightBytes(),
	}
	for i := 0; i < m; i++ {
		d.ExitFLOPs = append(d.ExitFLOPs, net.ExitFLOPs(i))
	}
	d.Marginal = make([][]int64, m)
	for i := 0; i < m; i++ {
		d.Marginal[i] = make([]int64, m)
		for j := i + 1; j < m; j++ {
			d.Marginal[i][j] = net.MarginalFLOPs(i, j)
		}
	}
	return d, nil
}

// CheckFits verifies the deployment against the device storage budget.
func (d *Deployed) CheckFits(dev *mcu.Device) error {
	if !dev.FitsStorage(d.WeightBytes) {
		return fmt.Errorf("core: model is %d bytes but %s has only %d bytes of weight storage",
			d.WeightBytes, dev.Name, dev.WeightStorageBytes)
	}
	return nil
}

// RuntimeConfig parameterizes a simulation run.
type RuntimeConfig struct {
	Mode PolicyMode
	// Device defaults to mcu.MSP432().
	Device *mcu.Device
	// Storage defaults to energy.DefaultStorage().
	Storage *energy.Storage
	// ConfidenceThreshold is the static incremental-inference threshold
	// (default 0.65).
	ConfidenceThreshold float64
	// DisableIncremental turns off incremental inference (ablation).
	DisableIncremental bool
	// EnergyBins/PowerBins/ConfBins discretize the Q-state (defaults
	// 10/6/8).
	EnergyBins int
	PowerBins  int
	ConfBins   int
	// Seed drives exploration and surrogate correctness draws.
	Seed uint64
	// TestSet, when non-nil, switches to empirical mode: events must
	// carry SampleIndex into this set.
	TestSet *dataset.Set
	// Backend selects how empirical-mode inference executes (default
	// BackendPlan: the compiled zero-allocation plan, bit-identical to
	// the layer walk). Surrogate runs ignore it.
	Backend InferBackend
	// Calibration supplies held-out images (CHW, [0,1] pixels) for the
	// int8 backend's activation-scale calibration. When empty, the
	// first samples of TestSet are used — convenient, but that leaks
	// evaluation data into the quantization scales, so pass training or
	// held-out samples when reporting int8 accuracy.
	Calibration []*tensor.Tensor
	// PowerWindow is the trailing window (s) for the charging-efficiency
	// observation (default 60).
	PowerWindow int
	// IncrementalEnergyPenalty shapes the continue-action reward:
	// r(continue) = correctness − penalty·(marginalCost/capacity). The
	// paper specifies the incremental decision's state (confidence,
	// energy) but not its reward; without an energy term the learner
	// degenerates to "always continue" since deeper exits are never
	// less accurate. Default 0.6.
	IncrementalEnergyPenalty float64
	// SkipFitCheck bypasses the storage-fit check (for deliberately
	// oversized ablations).
	SkipFitCheck bool
}

func (c *RuntimeConfig) fillDefaults() {
	if c.Device == nil {
		c.Device = mcu.MSP432()
	}
	if c.Storage == nil {
		c.Storage = energy.DefaultStorage()
	}
	if c.ConfidenceThreshold == 0 {
		c.ConfidenceThreshold = 0.65
	}
	if c.EnergyBins == 0 {
		c.EnergyBins = 10
	}
	if c.PowerBins == 0 {
		c.PowerBins = 6
	}
	if c.ConfBins == 0 {
		c.ConfBins = 8
	}
	if c.PowerWindow == 0 {
		c.PowerWindow = 60
	}
	if c.IncrementalEnergyPenalty == 0 {
		c.IncrementalEnergyPenalty = 0.6
	}
}

// Runtime executes event schedules against a deployed network. Its
// Q-tables persist across Run calls, so successive runs implement the
// learning episodes of Fig. 7a.
type Runtime struct {
	cfg      RuntimeConfig
	deployed *Deployed

	exitAgent *qlearn.ExitAgent
	incrAgent *qlearn.IncrementalAgent
	static    *qlearn.StaticLUT
	rng       *tensor.RNG

	// costs[i] is the energy cost of exit i on the configured device —
	// computed once here, reused by every Run.
	costs []float64

	// exec/planState drive empirical-mode inference on the compiled plan
	// (nil on the legacy backend, or when the deployment cannot be
	// compiled and the runtime fell back to the layer walk). One State is
	// reused across all events; the plan arena makes the inference path
	// allocation-free.
	exec      *plan.Exec
	planState *plan.State

	// lastTrace/lastPeak memoize tracePeak across Runs: learning loops
	// re-run the same trace dozens of times, and the peak is a pure
	// function of the trace.
	lastTrace *energy.Trace
	lastPeak  float64

	// pending is the exit-agent transition awaiting its successor state,
	// which is only observed at the next event (the event-level MDP's
	// true transition). Held by value — re-boxing it per event was the
	// episode loop's dominant allocation.
	pending    pendingUpdate
	hasPending bool
}

type pendingUpdate struct {
	state  int
	action int
	reward float64
}

// queueExitUpdate stages the exit agent's transition until the successor
// state is observed at the next event.
func (r *Runtime) queueExitUpdate(state, action int, reward float64) {
	if r.cfg.Mode != PolicyQLearning {
		return
	}
	r.pending = pendingUpdate{state: state, action: action, reward: reward}
	r.hasPending = true
}

// NewRuntime builds a runtime for the deployment.
func NewRuntime(d *Deployed, cfg RuntimeConfig) (*Runtime, error) {
	cfg.fillDefaults()
	if !cfg.SkipFitCheck {
		if err := d.CheckFits(cfg.Device); err != nil {
			return nil, err
		}
	}
	costs := make([]float64, len(d.ExitFLOPs))
	for i, f := range d.ExitFLOPs {
		costs[i] = cfg.Device.ComputeEnergyMJ(f)
	}
	r := &Runtime{
		cfg:      cfg,
		deployed: d,
		static:   qlearn.NewStaticLUT(costs, cfg.ConfidenceThreshold),
		rng:      tensor.NewRNG(cfg.Seed + 0xc0fe),
		costs:    costs,
	}
	if cfg.Backend == BackendDefault {
		// No explicit choice anywhere up the stack: the deployment's own
		// default (e.g. the backend a loaded artifact was packaged with)
		// applies before the global plan default.
		cfg.Backend = d.DefaultBackend
	}
	cfg.Backend = cfg.Backend.Resolve()
	r.cfg.Backend = cfg.Backend
	if cfg.TestSet != nil && cfg.Backend != BackendLegacy {
		// Empirical mode on a compiled backend: build the executor once.
		if cfg.Backend == BackendInt8 || cfg.Backend == BackendInt8Fast {
			// An integer backend was explicitly requested; a deployment
			// that cannot lower must not silently produce float results.
			calib := cfg.Calibration
			if len(calib) == 0 && d.Int8Calibration == nil {
				calib = calibrationSamples(cfg.TestSet, 8)
			}
			p, perr := d.int8Plan(calib, cfg.Backend == BackendInt8Fast)
			if perr != nil {
				return nil, fmt.Errorf("core: %s backend unavailable for this deployment: %w", cfg.Backend, perr)
			}
			r.exec = p.NewExec()
			r.planState = p.NewState()
		} else if p, perr := d.FloatPlan(); perr == nil {
			// The float plan is bit-identical to the layer walk, so a
			// deployment that cannot compile (exotic architecture)
			// falls back to the walk — same results, just slower.
			r.exec = p.NewExec()
			r.planState = p.NewState()
		}
	}
	const maxPowerInit = 0.05 // mW; rebinned per-run from the trace peak
	r.exitAgent = qlearn.NewExitAgent(len(costs), cfg.EnergyBins, cfg.PowerBins, cfg.Storage.CapacityMJ, maxPowerInit)
	r.incrAgent = qlearn.NewIncrementalAgent(cfg.ConfBins, cfg.EnergyBins, cfg.Storage.CapacityMJ)
	// Start from an uninformed policy: small random Q-values make the
	// initial exit preferences arbitrary (Fig. 7a's learning curve
	// starts well below the converged value), and learning overwrites
	// them within a few episodes.
	for s := 0; s < r.exitAgent.Table.NumStates; s++ {
		for a := 0; a < r.exitAgent.Table.NumActions; a++ {
			r.exitAgent.Table.SetQ(s, a, 0.05*r.rng.Float64())
		}
	}
	return r, nil
}

// calibrationSamples collects up to n deterministic calibration images
// (the set's first samples) for the int8 lowering.
func calibrationSamples(set *dataset.Set, n int) []*tensor.Tensor {
	if set.Len() < n {
		n = set.Len()
	}
	imgs := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		imgs = append(imgs, set.Samples[i].Image)
	}
	return imgs
}

// Backend reports the effective inference backend: the configured one,
// downgraded to legacy when no plan could be compiled.
func (r *Runtime) Backend() InferBackend {
	if r.cfg.TestSet != nil && r.exec == nil {
		return BackendLegacy
	}
	return r.cfg.Backend
}

// ExitAgent exposes the exit Q-learner (tests and diagnostics).
func (r *Runtime) ExitAgent() *qlearn.ExitAgent { return r.exitAgent }

// IncrementalAgent exposes the incremental Q-learner.
func (r *Runtime) IncrementalAgent() *qlearn.IncrementalAgent { return r.incrAgent }

// SetExploration sets ε on both Q-tables (0 for greedy evaluation).
func (r *Runtime) SetExploration(eps float64) {
	r.exitAgent.Table.Epsilon = eps
	r.incrAgent.Table.Epsilon = eps
}

// eventCtx carries the per-event surrogate or empirical inference state.
// The runtime reuses one value across all events of a Run.
type eventCtx struct {
	// u is the surrogate difficulty draw.
	u float64
	// sample/state for empirical mode.
	sample *dataset.Sample
	state  *multiexit.State
	label  int
	// planStarted marks the runtime's reusable plan state as holding
	// this event's inference.
	planStarted bool
}

// correctAt reports whether the event's result at the given exit is
// correct, and the confidence of that result.
//
//ehlint:hotpath
func (r *Runtime) correctAt(ctx *eventCtx, exit int) (bool, float64) {
	if r.cfg.TestSet != nil && ctx.sample != nil {
		if r.exec != nil {
			// Compiled backend: zero-allocation InferTo/Resume on the
			// runtime's pooled plan state.
			if !ctx.planStarted {
				r.exec.InferTo(r.planState, ctx.sample.Image, exit)
				ctx.planStarted = true
			} else if exit > r.planState.Exit {
				r.exec.Resume(r.planState, exit)
			}
			return r.planState.Predicted() == ctx.label, r.planState.Confidence()
		}
		if ctx.state == nil {
			ctx.state = r.deployed.Net.InferTo(ctx.sample.Image, exit)
		} else if exit > ctx.state.Exit {
			ctx.state = r.deployed.Net.Resume(ctx.state, exit)
		}
		return ctx.state.Predicted() == ctx.label, ctx.state.Confidence()
	}
	acc := r.deployed.ExitAccs[exit]
	correct := ctx.u < acc
	// Confidence correlates with the margin between difficulty and the
	// exit's capability, mirroring entropy at a real classifier head:
	// easy events (u ≪ acc) are confident, borderline ones are not.
	var conf float64
	if correct {
		conf = 0.55 + 0.45*(acc-ctx.u)/math.Max(acc, 1e-9)
	} else {
		conf = 0.55 - 0.35*(ctx.u-acc)/math.Max(1-acc, 1e-9)
	}
	conf += 0.05 * r.rng.NormFloat64()
	if conf < 0 {
		conf = 0
	}
	if conf > 1 {
		conf = 1
	}
	return correct, conf
}

// Run simulates one pass of the schedule over the trace and returns the
// outcome report. Q-tables carry over between calls.
func (r *Runtime) Run(trace *energy.Trace, schedule *energy.Schedule) (*metrics.Report, error) {
	store := *r.cfg.Storage // fresh copy per run
	engine, err := intermittent.New(r.cfg.Device, &store, trace)
	if err != nil {
		return nil, err
	}
	// Rebin the power observation to the trace's scale.
	if trace != r.lastTrace {
		r.lastTrace, r.lastPeak = trace, tracePeak(trace)
	}
	if p := r.lastPeak; p > 0 {
		r.exitAgent.MaxPowerMW = p
	}

	// Exit costs depend only on the configured device, so they were
	// computed once in NewRuntime (engine.EnergyFor would yield the
	// identical values).
	m := r.deployed.Net.NumExits()
	costs := r.costs
	report := &metrics.Report{
		System:   "multi-exit/" + r.cfg.Mode.String(),
		NumExits: m,
	}

	events := schedule.Events
	report.Outcomes = make([]metrics.EventOutcome, 0, len(events))
	// One context serves every event; the per-event reset below replaces
	// the old allocate-per-event pattern (~1 heap alloc per event).
	var ctx eventCtx
	for idx, ev := range events {
		deadline := float64(trace.Duration())
		if idx+1 < len(events) {
			deadline = float64(events[idx+1].T)
		}
		outcome := metrics.EventOutcome{T: ev.T, Exit: -1}

		if engine.Now() > float64(ev.T) {
			// Device still busy with the previous event. The miss is the
			// previous decisions' fault: zero out the pending exit
			// reward and charge the last continue decision.
			report.Outcomes = append(report.Outcomes, outcome)
			continue
		}
		engine.AdvanceTo(float64(ev.T))

		ctx = eventCtx{u: r.rng.Float64(), label: ev.Class}
		if r.cfg.TestSet != nil {
			if ev.SampleIndex < 0 || ev.SampleIndex >= r.cfg.TestSet.Len() {
				return nil, fmt.Errorf("core: event %d has no sample attached for empirical mode", idx)
			}
			ctx.sample = &r.cfg.TestSet.Samples[ev.SampleIndex]
			ctx.label = ctx.sample.Label
		}

		r.handleEvent(engine, &ctx, costs, deadline, &outcome)
		report.Outcomes = append(report.Outcomes, outcome)
	}
	// Flush the final event's pending Q-update (episode boundary).
	if r.hasPending {
		r.exitAgent.Table.UpdateTerminal(r.pending.state, r.pending.action, r.pending.reward)
		r.hasPending = false
	}
	// Drain the rest of the trace so harvested-energy accounting covers
	// the full duration (IEpmJ divides by total trace energy).
	engine.AdvanceTo(float64(trace.Duration()))
	report.HarvestedMJ = engine.Stats().HarvestedMJ
	return report, nil
}

// boolReward maps a correctness bit to the paper's 0/1 reward signal.
func boolReward(c bool) float64 {
	if c {
		return 1
	}
	return 0
}

// handleEvent implements the two sequential decisions of §IV.
//
//ehlint:hotpath
func (r *Runtime) handleEvent(engine *intermittent.Engine, ctx *eventCtx, costs []float64, deadline float64, outcome *metrics.EventOutcome) {
	store := engine.Store
	m := len(costs)

	obsEnergy := store.Available()
	obsPower := engine.RecentPower(r.cfg.PowerWindow)
	state := r.exitAgent.State(obsEnergy, obsPower)

	// Complete the previous event's Q-update now that its successor
	// state (this event's state) is known.
	if r.hasPending {
		r.exitAgent.Table.Update(r.pending.state, r.pending.action, r.pending.reward, state)
		r.hasPending = false
	}

	// Decision 1: select the exit. The action is capped at the deepest
	// exit the current buffer supports (§IV: exits are selected from
	// what "current energy can support"); the Q-agent's leverage is
	// choosing a *cheaper* exit than affordable to reserve energy for
	// future events. If nothing is affordable, the device waits for the
	// cheapest exit, preempted by the next event.
	var chosen int
	if r.cfg.Mode == PolicyQLearning {
		chosen = r.exitAgent.Table.Select(state, r.rng)
	} else {
		chosen = r.static.SelectExit(obsEnergy)
		if chosen < 0 {
			// A fixed LUT has no wait action: with no affordable exit
			// the event is missed — exactly the §IV failure mode the
			// adaptive runtime fixes (and why Fig. 7b's static policy
			// processes fewer events than Q-learning).
			return
		}
	}
	exit := chosen
	for exit > 0 && store.Available() < costs[exit] {
		exit--
	}

	// Wait for the cheapest exit if even that is unaffordable.
	if store.Available() < costs[exit] {
		if !engine.WaitForEnergy(costs[exit], deadline) {
			r.queueExitUpdate(state, chosen, 0) // missed: no energy arrived in time
			return
		}
	}
	res, ok := engine.RunAtomic(r.deployed.ExitFLOPs[exit])
	if !ok {
		r.queueExitUpdate(state, chosen, 0)
		return
	}
	correct, conf := r.correctAt(ctx, exit)
	outcome.Processed = true
	outcome.Exit = exit
	outcome.EnergyMJ = res.EnergyMJ
	outcome.InferenceFLOPs = r.deployed.ExitFLOPs[exit]
	outcome.FinishSec = res.FinishedAt

	// Exit-agent update: reward is the selected exit's accuracy (§IV).
	r.queueExitUpdate(state, chosen, r.deployed.ExitAccs[exit])

	// Decision 2: incremental inference toward deeper exits.
	for exit < m-1 && !r.cfg.DisableIncremental {
		marginal := r.deployed.Marginal[exit][exit+1]
		margCost := engine.EnergyFor(marginal)
		incrState := r.incrAgent.State(conf, store.Available())
		var goOn bool
		if r.cfg.Mode == PolicyQLearning {
			goOn = r.incrAgent.Table.Select(incrState, r.rng) == qlearn.ActionContinue
		} else {
			goOn = r.static.Continue(conf, margCost, store.Available())
		}
		// Continuing pays an energy opportunity cost (see
		// IncrementalEnergyPenalty): refining this result spends budget
		// future events will need.
		continuePenalty := r.cfg.IncrementalEnergyPenalty * margCost / r.cfg.Storage.CapacityMJ
		if !goOn {
			if r.cfg.Mode == PolicyQLearning {
				r.incrAgent.Table.UpdateTerminal(incrState, qlearn.ActionStop, boolReward(correct))
			}
			break
		}
		if store.Available() < margCost {
			// Suspending across a charging period checkpoints the
			// inference state (the paper's State → FRAM write) and pays
			// a restore before resuming.
			if !engine.WaitForEnergy(margCost, deadline) {
				// Energy never arrived; emit the current result.
				if r.cfg.Mode == PolicyQLearning {
					r.incrAgent.Table.UpdateTerminal(incrState, qlearn.ActionContinue, boolReward(correct)-continuePenalty)
				}
				break
			}
		}
		res, ok := engine.RunAtomic(marginal)
		if !ok {
			break
		}
		exit++
		correct, conf = r.correctAt(ctx, exit)
		outcome.Exit = exit
		outcome.Incremental = true
		outcome.EnergyMJ += res.EnergyMJ
		outcome.InferenceFLOPs += marginal
		outcome.FinishSec = res.FinishedAt
		if r.cfg.Mode == PolicyQLearning {
			nextState := r.incrAgent.State(conf, store.Available())
			r.incrAgent.Table.Update(incrState, qlearn.ActionContinue, boolReward(correct)-continuePenalty, nextState)
		}
	}
	outcome.Correct = correct
}

// tracePeak returns the maximum power of the trace for state binning.
func tracePeak(t *energy.Trace) float64 {
	var max float64
	for _, p := range t.Power {
		if p > max {
			max = p
		}
	}
	return max
}
