package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/tensor"
)

func TestParseBackend(t *testing.T) {
	cases := map[string]InferBackend{
		"": BackendDefault, "plan": BackendPlan, "float32": BackendPlan,
		"legacy": BackendLegacy, "int8": BackendInt8, "int8fast": BackendInt8Fast,
	}
	for name, want := range cases {
		got, err := ParseBackend(name)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseBackend("cuda"); err == nil {
		t.Fatal("expected error for unknown backend")
	}
	if BackendPlan.String() != "plan" || BackendLegacy.String() != "legacy" ||
		BackendInt8.String() != "int8" || BackendInt8Fast.String() != "int8fast" {
		t.Fatal("backend names drifted from the registry")
	}
	if BackendDefault.Resolve() != BackendPlan || BackendInt8.Resolve() != BackendInt8 {
		t.Fatal("Resolve must map only the unset sentinel to the plan backend")
	}
}

// TestInt8BackendUnavailableErrors verifies an explicit int8 request on
// a deployment that cannot lower returns an error instead of silently
// running float arithmetic.
func TestInt8BackendUnavailableErrors(t *testing.T) {
	// A trunk with no conv layer defeats plan.InferGeometry, so neither
	// backend can compile this deployment.
	fc := nn.NewDense("fc", 12, 4)
	fc.Final = true
	net := &multiexit.Network{
		Segments: []*nn.Sequential{nn.NewSequential("seg0", nn.NewFlatten("flat"))},
		Branches: []*nn.Sequential{nn.NewSequential("branch0", fc)},
		Classes:  4,
	}
	accs := []float64{0.5}
	d, err := NewDeployed(net, accs)
	if err != nil {
		t.Fatal(err)
	}
	_, test := dataset.TrainTest(dataset.SynthConfig{Seed: 1}, 2, 4)
	_, err = NewRuntime(d, RuntimeConfig{
		TestSet: test, Backend: BackendInt8, SkipFitCheck: true,
	})
	if err == nil {
		t.Fatal("int8 backend on an uncompilable deployment must error, not fall back to float")
	}
	// The plan backend may fall back to the (bit-identical) layer walk.
	rt, err := NewRuntime(d, RuntimeConfig{
		TestSet: test, Backend: BackendPlan, SkipFitCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendLegacy {
		t.Fatalf("expected reported fallback to legacy, got %v", rt.Backend())
	}
}

// empiricalSetup builds a deployed network plus a scenario whose events
// carry real samples.
func empiricalSetup(t *testing.T, seed uint64) (*Deployed, *Scenario, *dataset.Set) {
	t.Helper()
	_, test := dataset.TrainTest(dataset.SynthConfig{Seed: seed}, 10, 60)
	net := multiexit.LeNetEE(tensor.NewRNG(seed))
	accs := multiexit.EvalExits(net, test)
	d, err := NewDeployed(net, accs)
	if err != nil {
		t.Fatal(err)
	}
	sc := smallScenario(seed)
	byClass := make([][]int, 10)
	for i, s := range test.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	if err := sc.Schedule.AttachSamples(byClass, seed); err != nil {
		t.Fatal(err)
	}
	return d, sc, test
}

// runEmpirical executes one empirical episode on the given backend.
func runEmpirical(t *testing.T, d *Deployed, sc *Scenario, test *dataset.Set, b InferBackend) (*Runtime, *metrics.Report) {
	t.Helper()
	rt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyQLearning, Storage: sc.Storage, Seed: sc.Seed, TestSet: test,
		Backend: b, SkipFitCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(sc.Trace, sc.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return rt, rep
}

// TestBackendPlanMatchesLegacy is the integration half of the plan
// parity gate: a full empirical episode (Q-learning decisions, waits,
// incremental refinement) must produce a byte-identical report on the
// compiled plan and the legacy layer walk, at worker counts 1 and 4.
func TestBackendPlanMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical test skipped in -short")
	}
	d, sc, test := empiricalSetup(t, 97)
	for _, workers := range []int{1, 4} {
		prev := tensor.SetWorkers(workers)
		rtPlan, repPlan := runEmpirical(t, d, sc, test, BackendPlan)
		_, repLegacy := runEmpirical(t, d, sc, test, BackendLegacy)
		tensor.SetWorkers(prev)

		if rtPlan.Backend() != BackendPlan {
			t.Fatalf("plan runtime fell back to %v", rtPlan.Backend())
		}
		if !reflect.DeepEqual(repPlan, repLegacy) {
			t.Fatalf("workers=%d: plan-backend report differs from legacy backend", workers)
		}
		if repPlan.ProcessedCount() == 0 {
			t.Fatal("episode processed nothing — parity check is vacuous")
		}
	}
}

// TestBackendInt8Runs checks the int8 backend completes an empirical
// episode and produces a structurally sane report.
func TestBackendInt8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical test skipped in -short")
	}
	d, sc, test := empiricalSetup(t, 53)
	rt, rep := runEmpirical(t, d, sc, test, BackendInt8)
	if rt.Backend() != BackendInt8 {
		t.Fatalf("int8 runtime fell back to %v", rt.Backend())
	}
	if rep.ProcessedCount() == 0 {
		t.Fatal("int8 episode processed nothing")
	}
}

// TestBackendInt8FastRuns checks the packed-weight fast backend
// completes an empirical episode and produces a structurally sane
// report.
func TestBackendInt8FastRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical test skipped in -short")
	}
	d, sc, test := empiricalSetup(t, 53)
	rt, rep := runEmpirical(t, d, sc, test, BackendInt8Fast)
	if rt.Backend() != BackendInt8Fast {
		t.Fatalf("int8-fast runtime fell back to %v", rt.Backend())
	}
	if rep.ProcessedCount() == 0 {
		t.Fatal("int8-fast episode processed nothing")
	}
}

// TestPinnedPlansConcurrentFirstUse hammers the deployment's lazy plan
// caches from many goroutines at once — the serving layer's access
// pattern when a burst of first requests race target creation. Run
// under -race this pins the once-guarded compile; every caller must see
// the same compiled plan.
func TestPinnedPlansConcurrentFirstUse(t *testing.T) {
	d := testDeployed(t, 7)
	const g = 16
	var wg sync.WaitGroup
	slow := make([]*plan.Plan, g)
	fast := make([]*plan.Plan, g)
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p8, err := d.Int8PlanPinned()
			if err != nil {
				t.Errorf("Int8PlanPinned: %v", err)
			}
			pf, err := d.Int8FastPlanPinned()
			if err != nil {
				t.Errorf("Int8FastPlanPinned: %v", err)
			}
			slow[i], fast[i] = p8, pf
		}(i)
	}
	wg.Wait()
	for i := 1; i < g; i++ {
		if slow[i] != slow[0] || fast[i] != fast[0] {
			t.Fatal("pinned plan caches handed out different plans across racing first uses")
		}
	}
	if slow[0] == fast[0] {
		t.Fatal("fast and bit-exact pinned plans must be cached independently")
	}
	if !fast[0].Int8Fast() || slow[0].Int8Fast() {
		t.Fatal("pinned plan flags wrong")
	}
}

// TestFloatPlanCachedOnDeployed verifies plan compilation is memoized on
// the deployment (one compile per deployment key, as the experiment
// engine's DeployCache shares Deployed values across runs).
func TestFloatPlanCachedOnDeployed(t *testing.T) {
	d := testDeployed(t, 3)
	p1, err := d.FloatPlan()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.FloatPlan()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("FloatPlan recompiled instead of returning the cached plan")
	}
}

// TestInt8CalibrationOverride verifies a caller-supplied calibration set
// is used instead of the test-set fallback.
func TestInt8CalibrationOverride(t *testing.T) {
	d, sc, test := empiricalSetup(t, 11)
	rng := tensor.NewRNG(99)
	calib := make([]*tensor.Tensor, 4)
	for i := range calib {
		calib[i] = tensor.New(3, 32, 32)
		tensor.FillUniform(calib[i], rng, 0, 1)
	}
	rt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyStaticLUT, Storage: sc.Storage, Seed: sc.Seed, TestSet: test,
		Backend: BackendInt8, Calibration: calib, SkipFitCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendInt8 {
		t.Fatalf("int8 runtime fell back to %v", rt.Backend())
	}
	if _, err := rt.Run(sc.Trace, sc.Schedule); err != nil {
		t.Fatal(err)
	}
}
