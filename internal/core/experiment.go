package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/accmodel"
	"repro/internal/baselines"
	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/metrics"
	"repro/internal/multiexit"
	"repro/internal/tensor"
)

// Scenario bundles the shared experimental setup of §V: the solar trace,
// the 500-event schedule, the storage and device models.
type Scenario struct {
	Trace    *energy.Trace
	Schedule *energy.Schedule
	Device   *mcu.Device
	Storage  *energy.Storage
	Seed     uint64
	// TestSet, when non-nil, switches the scenario to empirical mode:
	// events must carry SampleIndex into this set (see
	// Schedule.AttachSamples) and the deployed network actually executes
	// on the configured inference backend instead of the accuracy
	// surrogate.
	TestSet *dataset.Set
}

// DefaultScenario reproduces the paper's setup: a 6-hour solar harvesting
// trace in the weak-EH regime (≈ 15 µW mean — a baseline inference costs
// more than one capacitor charge, so single-exit baselines span multiple
// power cycles per inference, matching the paper's premise) and 500
// events uniformly distributed over the trace. The 6 mJ capacitor covers
// the compressed final exit (≈ 1.5 mJ) only when well charged, so deep
// exits are reachable but rationed — the dynamics behind Fig. 7b's exit
// shares.
func DefaultScenario(seed uint64) *Scenario {
	trace := energy.SyntheticSolarTrace(energy.SolarConfig{
		Seconds:   21600,
		PeakPower: 0.032,
		Seed:      seed,
	})
	schedule := energy.UniformSchedule(500, trace.Duration(), 10, seed)
	return &Scenario{
		Trace:    trace,
		Schedule: schedule,
		Device:   mcu.MSP432(),
		Storage: &energy.Storage{
			CapacityMJ:       6,
			TurnOnMJ:         0.5,
			BrownOutMJ:       0.05,
			ChargeEfficiency: 0.9,
			LeakMWPerS:       0.0002,
		},
		Seed: seed,
	}
}

// BuildDeployed constructs the paper's deployed system: LeNet-EE
// compressed with the given policy, with surrogate per-exit accuracies.
func BuildDeployed(policy *compress.Policy, seed uint64) (*Deployed, error) {
	net := multiexit.LeNetEE(tensor.NewRNG(seed + 0xdeb7))
	sur, err := accmodel.New(net, nil)
	if err != nil {
		return nil, err
	}
	accs := sur.ExitAccuracies(policy)
	if err := compress.Apply(net, policy); err != nil {
		return nil, err
	}
	return NewDeployed(net, accs)
}

// SystemRow is one line of the Fig. 5 / §V-D comparison.
type SystemRow struct {
	System        string
	IEpmJ         float64
	AccAll        float64
	AccProcessed  float64
	MeanLatencyS  float64
	MeanInfFLOPs  float64
	ProcessedFrac float64
	ExitShares    []float64
}

// ReportRow flattens a report into a SystemRow. Latency and FLOPs are 0
// (not NaN) when no event was processed, so rows marshal cleanly to JSON.
func ReportRow(r *metrics.Report) SystemRow {
	lat := r.MeanEventLatency()
	if math.IsNaN(lat) {
		lat = 0
	}
	flops := r.MeanInferenceFLOPs()
	if math.IsNaN(flops) {
		flops = 0
	}
	return SystemRow{
		System:        r.System,
		IEpmJ:         r.IEpmJ(),
		AccAll:        r.AccuracyAllEvents(),
		AccProcessed:  r.AccuracyProcessed(),
		MeanLatencyS:  lat,
		MeanInfFLOPs:  flops,
		ProcessedFrac: float64(r.ProcessedCount()) / float64(max(1, r.Events())),
		ExitShares:    r.ExitPercentages(),
	}
}

// CompareConfig tweaks the full-system comparison.
type CompareConfig struct {
	// WarmupEpisodes pre-trains the Q-tables before the measured pass
	// (default 8).
	WarmupEpisodes int
	// Mode for the proposed system (default PolicyQLearning).
	Mode PolicyMode
	// Backend selects the empirical-mode inference backend (default
	// BackendPlan); surrogate runs ignore it.
	Backend InferBackend
}

// RunProposed runs the paper's proposed runtime on the scenario — with
// annealed-exploration Q-learning warmup when the mode calls for it — and
// returns the measured report. It is the single-system building block the
// experiment engine (internal/exper) schedules; CompareSystems wraps it
// with the three baselines. Cancellation is cooperative: the context is
// checked between training episodes, so an abort never tears a simulated
// episode in half (episodes that do run are bit-identical to an
// uncancelled run).
func RunProposed(ctx context.Context, sc *Scenario, d *Deployed, cfg CompareConfig) (*metrics.Report, error) {
	if cfg.WarmupEpisodes == 0 {
		cfg.WarmupEpisodes = 12
	}
	rt, err := NewRuntime(d, RuntimeConfig{
		Mode:    cfg.Mode,
		Device:  sc.Device,
		Storage: sc.Storage,
		Seed:    sc.Seed,
		Backend: cfg.Backend,
		TestSet: sc.TestSet,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Mode == PolicyQLearning {
		for ep := 0; ep < cfg.WarmupEpisodes; ep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Annealed exploration: broad early, nearly greedy late.
			rt.SetExploration(0.3*float64(cfg.WarmupEpisodes-ep)/float64(cfg.WarmupEpisodes) + 0.01)
			if _, err := rt.Run(sc.Trace, sc.Schedule); err != nil {
				return nil, err
			}
		}
		rt.SetExploration(0.02)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rt.Run(sc.Trace, sc.Schedule)
}

// CompareSystems runs the proposed system and the three baselines on the
// scenario — the data behind Fig. 5 and the §V-D latency comparison.
// Row order: ours, SonicNet, SpArSeNet, LeNet-Cifar. The context is
// checked between systems (and between the proposed system's training
// episodes); on cancellation the row set so far is discarded and ctx.Err()
// returned.
func CompareSystems(ctx context.Context, sc *Scenario, d *Deployed, cfg CompareConfig) ([]SystemRow, error) {
	ourReport, err := RunProposed(ctx, sc, d, cfg)
	if err != nil {
		return nil, err
	}
	ourRow := ReportRow(ourReport)
	ourRow.System = "Our Approach"
	rows := []SystemRow{ourRow}

	for _, b := range baselines.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := RunBaseline(b, sc.Trace, sc.Schedule, BaselineConfig{
			Device:  sc.Device,
			Storage: sc.Storage,
			Seed:    sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ReportRow(rep))
	}
	return rows, nil
}

// LearningCurve runs the Fig. 7a experiment: per-episode average accuracy
// (over all events) for the Q-learning runtime and the static LUT. The
// context is checked between episodes; on cancellation the curves built so
// far are returned alongside ctx.Err().
func LearningCurve(ctx context.Context, sc *Scenario, d *Deployed, episodes int) (qcurve, staticCurve []float64, err error) {
	qrt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyQLearning, Device: sc.Device, Storage: sc.Storage, Seed: sc.Seed, TestSet: sc.TestSet,
	})
	if err != nil {
		return nil, nil, err
	}
	srt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyStaticLUT, Device: sc.Device, Storage: sc.Storage, Seed: sc.Seed, TestSet: sc.TestSet,
	})
	if err != nil {
		return nil, nil, err
	}
	for ep := 0; ep < episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return qcurve, staticCurve, err
		}
		// Annealed exploration reproduces Fig. 7a's rising curve: early
		// episodes pay an exploration cost, later ones exploit.
		qrt.SetExploration(0.3*float64(episodes-ep)/float64(episodes) + 0.01)
		qr, err := qrt.Run(sc.Trace, sc.Schedule)
		if err != nil {
			return nil, nil, err
		}
		sr, err := srt.Run(sc.Trace, sc.Schedule)
		if err != nil {
			return nil, nil, err
		}
		qcurve = append(qcurve, qr.AccuracyAllEvents())
		staticCurve = append(staticCurve, sr.AccuracyAllEvents())
	}
	return qcurve, staticCurve, nil
}

// ExitUsage runs the Fig. 7b experiment: exit-usage histograms (counts of
// processed events per exit) for trained Q-learning vs the static LUT.
// The context is checked between warm-up episodes.
func ExitUsage(ctx context.Context, sc *Scenario, d *Deployed, warmup int) (qhist, shist []int, qproc, sproc int, err error) {
	qrt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyQLearning, Device: sc.Device, Storage: sc.Storage, Seed: sc.Seed, TestSet: sc.TestSet,
	})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	for ep := 0; ep < warmup; ep++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, 0, err
		}
		qrt.SetExploration(0.3*float64(warmup-ep)/float64(warmup) + 0.01)
		if _, err := qrt.Run(sc.Trace, sc.Schedule); err != nil {
			return nil, nil, 0, 0, err
		}
	}
	qrt.SetExploration(0.02)
	qr, err := qrt.Run(sc.Trace, sc.Schedule)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	srt, err := NewRuntime(d, RuntimeConfig{
		Mode: PolicyStaticLUT, Device: sc.Device, Storage: sc.Storage, Seed: sc.Seed, TestSet: sc.TestSet,
	})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	sr, err := srt.Run(sc.Trace, sc.Schedule)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return qr.ExitHistogram(), sr.ExitHistogram(), qr.ProcessedCount(), sr.ProcessedCount(), nil
}

// Fig1bRow is one group of the compression-accuracy comparison.
type Fig1bRow struct {
	Scheme   string
	ExitAccs []float64
}

// Fig1b computes the full-precision / uniform / nonuniform per-exit
// accuracies with the calibrated surrogate.
func Fig1b() ([]Fig1bRow, error) {
	net := multiexit.LeNetEE(nil)
	sur, err := accmodel.New(net, nil)
	if err != nil {
		return nil, err
	}
	rows := []Fig1bRow{
		{Scheme: "Full-precision", ExitAccs: sur.ExitAccuracies(compress.FullPrecision(net))},
		{Scheme: "Uniform compression", ExitAccs: sur.ExitAccuracies(compress.Fig1bUniform(net))},
		{Scheme: "Nonuniform compression", ExitAccs: sur.ExitAccuracies(compress.Fig1bNonuniform())},
	}
	return rows, nil
}

// Fig6Row is one bar group of the FLOPs comparison.
type Fig6Row struct {
	Name        string
	BeforeFLOPs int64
	AfterFLOPs  int64
}

// Fig6 computes per-exit FLOPs before/after the given compression policy
// plus the baseline FLOPs.
func Fig6(policy *compress.Policy) ([]Fig6Row, error) {
	before := multiexit.LeNetEE(nil)
	after := multiexit.LeNetEE(tensor.NewRNG(7))
	if err := compress.Apply(after, policy); err != nil {
		return nil, err
	}
	var rows []Fig6Row
	for i := 0; i < before.NumExits(); i++ {
		rows = append(rows, Fig6Row{
			Name:        fmt.Sprintf("Exit%d", i+1),
			BeforeFLOPs: before.ExitFLOPs(i),
			AfterFLOPs:  after.ExitFLOPs(i),
		})
	}
	for _, b := range baselines.All() {
		rows = append(rows, Fig6Row{Name: b.Name, BeforeFLOPs: b.FLOPs, AfterFLOPs: b.FLOPs})
	}
	return rows, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
