package core

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/compress"
)

// TestRuntimeDeterminism: identical seeds must produce bit-identical
// simulation outcomes — the property every experiment in EXPERIMENTS.md
// relies on for reproducibility.
func TestRuntimeDeterminism(t *testing.T) {
	run := func() []int {
		sc := smallScenario(99)
		d, err := BuildDeployed(compress.Fig1bNonuniform(), 99)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Storage: sc.Storage, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run(sc.Trace, sc.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		var sig []int
		for _, o := range rep.Outcomes {
			v := o.Exit
			if o.Correct {
				v += 100
			}
			sig = append(sig, v)
		}
		return sig
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatal("different outcome counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestScenarioDeterminism: DefaultScenario is a pure function of the seed.
func TestScenarioDeterminism(t *testing.T) {
	a := DefaultScenario(7)
	b := DefaultScenario(7)
	if a.Trace.TotalEnergy() != b.Trace.TotalEnergy() {
		t.Fatal("traces differ for the same seed")
	}
	for i := range a.Schedule.Events {
		if a.Schedule.Events[i] != b.Schedule.Events[i] {
			t.Fatal("schedules differ for the same seed")
		}
	}
	c := DefaultScenario(8)
	if a.Trace.TotalEnergy() == c.Trace.TotalEnergy() {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestBaselineDeterminism: baseline simulation is seed-deterministic too.
func TestBaselineDeterminism(t *testing.T) {
	sc := smallScenario(5)
	run := func() float64 {
		rep, err := RunBaseline(sonicForTest(), sc.Trace, sc.Schedule, BaselineConfig{
			Device: sc.Device, Storage: sc.Storage, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.AccuracyAllEvents()
	}
	if run() != run() {
		t.Fatal("baseline runs diverge under the same seed")
	}
}

func sonicForTest() baselines.Baseline { return baselines.SonicNet() }
