package compress

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// policyJSON is the external form of a Policy.
type policyJSON struct {
	Format int               `json:"format"`
	Layers []layerPolicyJSON `json:"layers"`
}

type layerPolicyJSON struct {
	Layer         string  `json:"layer"`
	PreserveRatio float64 `json:"preserve_ratio"`
	WeightBits    int     `json:"weight_bits"`
	ActBits       int     `json:"act_bits"`
}

const policyFormatVersion = 1

// WriteJSON serializes the policy (e.g. a search result) so a deployment
// pipeline can apply it later without rerunning the search.
func (p *Policy) WriteJSON(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	out := policyJSON{Format: policyFormatVersion}
	for _, lp := range p.Layers {
		out.Layers = append(out.Layers, layerPolicyJSON{
			Layer:         lp.Layer,
			PreserveRatio: lp.PreserveRatio,
			WeightBits:    lp.WeightBits,
			ActBits:       lp.ActBits,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadPolicyJSON parses a policy written by WriteJSON and validates it.
func ReadPolicyJSON(r io.Reader) (*Policy, error) {
	var in policyJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("compress: decode policy: %w", err)
	}
	if in.Format != policyFormatVersion {
		return nil, fmt.Errorf("compress: unsupported policy format %d", in.Format)
	}
	p := &Policy{}
	for _, lp := range in.Layers {
		p.Layers = append(p.Layers, LayerPolicy{
			Layer:         lp.Layer,
			PreserveRatio: lp.PreserveRatio,
			WeightBits:    lp.WeightBits,
			ActBits:       lp.ActBits,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SaveJSON writes the policy to a file path.
func (p *Policy) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadPolicyJSON reads a policy from a file path.
func LoadPolicyJSON(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPolicyJSON(f)
}
