package compress

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestKeepCount(t *testing.T) {
	cases := []struct {
		c    int
		a    float64
		want int
	}{
		{10, 0.5, 5},
		{10, 0.05, 1}, // floor at 1
		{3, 0.9, 3},
		{3, 0.05, 1},
		{6, 0.35, 2},
		{6, 1.0, 6},
	}
	for _, c := range cases {
		if got := KeepCount(c.c, c.a); got != c.want {
			t.Errorf("KeepCount(%d, %.2f) = %d, want %d", c.c, c.a, got, c.want)
		}
	}
}

func TestChannelImportanceOrdering(t *testing.T) {
	// Two output filters, three input channels, 1x1 kernel; channel 1 is
	// strongest, channel 0 weakest.
	w := []float32{
		0.1, 5, 1, // filter 0 over channels 0,1,2
		-0.1, -5, 1, // filter 1
	}
	imp := ChannelImportance(w, 2, 3, 1)
	if !(imp[1] > imp[2] && imp[2] > imp[0]) {
		t.Fatalf("importance %v, want ch1 > ch2 > ch0", imp)
	}
	if math.Abs(imp[1]-10) > 1e-6 {
		t.Fatalf("|W| sum wrong: %v", imp)
	}
}

func TestPruneConvZeroesWeakChannels(t *testing.T) {
	l := nn.NewConv2D("c", 4, 2, 1, 1, 1, 0)
	// Channel strengths: 0 weak, 1 strong, 2 medium, 3 weakest.
	copy(l.W.Value.Data, []float32{
		0.2, 9, 1, 0.1,
		0.2, 9, 1, 0.1,
	})
	PruneConvChannels(l, 0.5)
	if l.KeptInC != 2 {
		t.Fatalf("KeptInC = %d", l.KeptInC)
	}
	for o := 0; o < 2; o++ {
		if l.W.Value.Data[o*4+0] != 0 || l.W.Value.Data[o*4+3] != 0 {
			t.Fatalf("weak channels not zeroed: %v", l.W.Value.Data)
		}
		if l.W.Value.Data[o*4+1] == 0 || l.W.Value.Data[o*4+2] == 0 {
			t.Fatalf("strong channels wrongly zeroed: %v", l.W.Value.Data)
		}
	}
}

func TestPruneDensePreservesStrongInputs(t *testing.T) {
	l := nn.NewDense("d", 4, 1)
	copy(l.W.Value.Data, []float32{0.1, 3, 0.2, 2})
	PruneDenseInputs(l, 0.5)
	if l.KeptIn != 2 {
		t.Fatalf("KeptIn = %d", l.KeptIn)
	}
	if l.W.Value.Data[1] == 0 || l.W.Value.Data[3] == 0 {
		t.Fatal("strong inputs pruned")
	}
	if l.W.Value.Data[0] != 0 || l.W.Value.Data[2] != 0 {
		t.Fatal("weak inputs kept")
	}
}

func TestPruneKeepCountProperty(t *testing.T) {
	// After pruning at ratio α, exactly KeepCount channels have nonzero
	// weights (given all-nonzero initial weights).
	f := func(seed uint64, aRaw float64) bool {
		a := MinPreserve + math.Mod(math.Abs(aRaw), MaxPreserve-MinPreserve)
		l := nn.NewConv2D("c", 8, 3, 3, 3, 1, 1)
		rng := tensor.NewRNG(seed | 1)
		tensor.FillUniform(l.W.Value, rng, 0.1, 1) // strictly positive
		PruneConvChannels(l, a)
		nonzero := 0
		for j := 0; j < 8; j++ {
			var s float64
			for o := 0; o < 3; o++ {
				for k := 0; k < 9; k++ {
					s += math.Abs(float64(l.W.Value.Data[(o*8+j)*9+k]))
				}
			}
			if s > 0 {
				nonzero++
			}
		}
		return nonzero == KeepCount(8, a) && nonzero == l.KeptInC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeWeightsLevels(t *testing.T) {
	rng := tensor.NewRNG(2)
	w := make([]float32, 200)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	QuantizeWeights(w, 3) // ≤ 2^3 = 8 distinct levels
	levels := map[float32]bool{}
	for _, v := range w {
		levels[v] = true
	}
	if len(levels) > 8 {
		t.Fatalf("3-bit quantization produced %d levels", len(levels))
	}
}

func TestQuantizeErrorDecreasesWithBits(t *testing.T) {
	rng := tensor.NewRNG(3)
	w := make([]float32, 500)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	prev := 2.0
	for bits := 1; bits <= 8; bits++ {
		e := QuantizationError(w, bits)
		if e > prev+1e-9 {
			t.Fatalf("quantization error increased at %d bits: %g > %g", bits, e, prev)
		}
		prev = e
	}
	if QuantizationError(w, 8) > 0.02 {
		t.Fatalf("8-bit error too large: %g", QuantizationError(w, 8))
	}
}

func TestQuantizeAllZerosNoop(t *testing.T) {
	w := make([]float32, 10)
	QuantizeWeights(w, 4)
	for _, v := range w {
		if v != 0 {
			t.Fatal("zero weights must stay zero")
		}
	}
}

func TestQuantizeClampProperty(t *testing.T) {
	// Quantized values never exceed the original max magnitude by more
	// than one quantization step.
	f := func(vals []float32, bitsRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		bits := int(bitsRaw%8) + 1
		w := make([]float32, len(vals))
		var maxAbs float64
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 1
			}
			w[i] = v
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		orig := append([]float32(nil), w...)
		QuantizeWeights(w, bits)
		for i := range w {
			if math.Abs(float64(w[i])) > maxAbs*1.51+1e-6 {
				t.Logf("bits=%d w=%v orig=%v", bits, w[i], orig[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyValidate(t *testing.T) {
	good := LayerPolicy{Layer: "x", PreserveRatio: 0.5, WeightBits: 4, ActBits: 8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PreserveRatio = 0
	if bad.Validate() == nil {
		t.Fatal("zero preserve accepted")
	}
	bad = good
	bad.WeightBits = 9
	if bad.Validate() == nil {
		t.Fatal("9-bit accepted")
	}
	bad = good
	bad.ActBits = 0
	if bad.Validate() == nil {
		t.Fatal("0-bit accepted")
	}
	dup := &Policy{Layers: []LayerPolicy{good, good}}
	if dup.Validate() == nil {
		t.Fatal("duplicate layer accepted")
	}
	if (&Policy{}).Validate() == nil {
		t.Fatal("empty policy accepted")
	}
}

func TestSnapPreserve(t *testing.T) {
	if got := SnapPreserve(0.52); math.Abs(got-0.50) > 1e-9 {
		t.Fatalf("SnapPreserve(0.52) = %v", got)
	}
	if got := SnapPreserve(0.0); got != MinPreserve {
		t.Fatalf("SnapPreserve(0) = %v", got)
	}
	if got := SnapPreserve(2.0); got != MaxPreserve {
		t.Fatalf("SnapPreserve(2) = %v", got)
	}
}

func TestQuantizeRatioMapping(t *testing.T) {
	if QuantizeRatio(0, 1, 8) != 1 {
		t.Fatal("action 0 must map to min bits")
	}
	if QuantizeRatio(1, 1, 8) != 8 {
		t.Fatal("action 1 must map to max bits")
	}
	if QuantizeRatio(-5, 1, 8) != 1 || QuantizeRatio(5, 1, 8) != 8 {
		t.Fatal("out-of-range actions must clamp")
	}
}

func TestApplyAndSnapshotRestore(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(5))
	snap := NewSnapshot(net)
	origFLOPs := net.ModelFLOPs()
	origBytes := net.WeightBytes()
	origW := net.Params()[0].Value.Clone()

	if err := Apply(net, Fig1bNonuniform()); err != nil {
		t.Fatal(err)
	}
	if net.ModelFLOPs() >= origFLOPs {
		t.Fatal("compression did not reduce FLOPs")
	}
	if net.WeightBytes() >= origBytes {
		t.Fatal("compression did not reduce weight size")
	}

	snap.Restore()
	if net.ModelFLOPs() != origFLOPs || net.WeightBytes() != origBytes {
		t.Fatal("Restore did not reset accounting")
	}
	if net.Params()[0].Value.L2Distance(origW) != 0 {
		t.Fatal("Restore did not reset weights")
	}
}

func TestApplyUnknownLayerFails(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(6))
	p := &Policy{Layers: []LayerPolicy{{Layer: "ghost", PreserveRatio: 0.5, WeightBits: 8, ActBits: 8}}}
	if err := Apply(net, p); err == nil {
		t.Fatal("unknown layer accepted")
	}
}

func TestReferencePoliciesMeetPaperConstraints(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(7))
	if err := Apply(net, Fig1bNonuniform()); err != nil {
		t.Fatal(err)
	}
	m := MeasureNetwork(net)
	if m.ModelFLOPs > PaperFTargetFLOPs {
		t.Errorf("nonuniform reference F_model = %d > %d", m.ModelFLOPs, PaperFTargetFLOPs)
	}
	if m.WeightBytes > PaperSTargetBytes {
		t.Errorf("nonuniform reference S_model = %d > %d", m.WeightBytes, PaperSTargetBytes)
	}
}

func TestFig6ExitRatiosShape(t *testing.T) {
	// The nonuniform reference must reproduce the paper's Fig. 6 shape:
	// exit-1 compressed hardest (≈0.31×), exit-3 least (≈0.67×).
	net := multiexit.LeNetEE(tensor.NewRNG(8))
	before := []float64{}
	for i := 0; i < 3; i++ {
		before = append(before, float64(net.ExitFLOPs(i)))
	}
	if err := Apply(net, Fig1bNonuniform()); err != nil {
		t.Fatal(err)
	}
	ratios := []float64{}
	for i := 0; i < 3; i++ {
		ratios = append(ratios, float64(net.ExitFLOPs(i))/before[i])
	}
	if !(ratios[0] < ratios[1] && ratios[1] < ratios[2]) {
		t.Fatalf("exit ratios %v must increase with depth (paper: 0.31, 0.44, 0.67)", ratios)
	}
	paper := []float64{0.31, 0.44, 0.67}
	for i := range ratios {
		if math.Abs(ratios[i]-paper[i]) > 0.08 {
			t.Errorf("exit %d ratio %.3f, paper %.2f (tolerance 0.08)", i+1, ratios[i], paper[i])
		}
	}
}

func TestUniformPolicyCoversAllLayers(t *testing.T) {
	net := multiexit.LeNetEE(nil)
	p := Uniform(net, 0.5, 4, 4)
	if len(p.Layers) != len(multiexit.LeNetEELayerNames) {
		t.Fatalf("uniform policy has %d layers", len(p.Layers))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyStringRendersTable(t *testing.T) {
	p := Fig1bNonuniform()
	s := p.String()
	if !strings.Contains(s, "Conv1") || !strings.Contains(s, "FC-B32") {
		t.Fatalf("policy table missing layers:\n%s", s)
	}
}

func TestCompressedNetworkStillInfers(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(9))
	if err := Apply(net, Fig1bNonuniform()); err != nil {
		t.Fatal(err)
	}
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(10), 0, 1)
	st := net.InferTo(img, 2)
	if st.Logits.Len() != 10 {
		t.Fatal("compressed inference broken")
	}
	for _, v := range st.Logits.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("compressed inference produced NaN/Inf")
		}
	}
}
