package compress

import (
	"repro/internal/multiexit"
	"repro/internal/nn"
)

// Snapshot captures a network's trained weights and compression state so a
// search algorithm can Apply a candidate policy, measure it, and Restore
// the pristine network — the inner loop of the RL search.
type Snapshot struct {
	values [][]float32
	params []*nn.Param
	layers []nn.Layer
}

// NewSnapshot captures the current weights of net.
func NewSnapshot(net *multiexit.Network) *Snapshot {
	s := &Snapshot{layers: net.CompressibleLayers()}
	for _, p := range net.Params() {
		s.params = append(s.params, p)
		s.values = append(s.values, append([]float32(nil), p.Value.Data...))
	}
	return s
}

// Restore writes the captured weights back and clears all pruning masks,
// quantization bitwidths, and activation-quantization tags.
func (s *Snapshot) Restore() {
	for i, p := range s.params {
		copy(p.Value.Data, s.values[i])
	}
	for _, l := range s.layers {
		switch layer := l.(type) {
		case *nn.Conv2D:
			layer.KeptInC = 0
			layer.WeightBitsPerValue = 32
			layer.ActBits = 0
		case *nn.Dense:
			layer.KeptIn = 0
			layer.WeightBitsPerValue = 32
			layer.ActBits = 0
		}
	}
}

// Measure summarizes a compressed network's cost: whole-model FLOPs
// (F_model), weight bytes (S_model), and per-exit FLOPs.
type Measure struct {
	ModelFLOPs  int64
	WeightBytes int64
	ExitFLOPs   []int64
}

// MeasureNetwork computes the cost summary of net at its current
// compression state.
func MeasureNetwork(net *multiexit.Network) Measure {
	m := Measure{
		ModelFLOPs:  net.ModelFLOPs(),
		WeightBytes: net.WeightBytes(),
	}
	for i := 0; i < net.NumExits(); i++ {
		m.ExitFLOPs = append(m.ExitFLOPs, net.ExitFLOPs(i))
	}
	return m
}
