package compress

import "repro/internal/multiexit"

// Reference policies for the Fig. 1b comparison. Both target the paper's
// F_target = 1.15 MFLOPs budget on LeNet-EE.
//
// The uniform policy applies one (α, bw, ba) triple everywhere, like the
// single-exit compression pipelines the paper criticizes. At the matched
// FLOPs budget it needs 2-bit weights to approach the storage target;
// meeting 16 KB exactly with uniform settings requires 1-bit weights
// everywhere, which collapses accuracy (the ablation bench shows this).
//
// The nonuniform policy is the hand-calibrated reference shaped like the
// paper's Fig. 4 result: shallow/trunk layers preserved at high precision
// (Conv1 at 8 bits, no pruning — it feeds every exit), deep trunk layers
// pruned and quantized hard, and the large branch FC layers (FC-B21,
// FC-B31) at 1-bit weights, which §V-B observes tolerate extreme
// quantization. The RL search (internal/search) discovers policies of
// this shape automatically; this fixed reference keeps the Fig. 1b bench
// deterministic.

// Fig1bUniform returns the uniform reference policy.
func Fig1bUniform(net *multiexit.Network) *Policy {
	return Uniform(net, 0.70, 2, 6)
}

// Fig1bNonuniform returns the nonuniform reference policy for LeNet-EE.
// Shallow exits keep precision (their layers are the most fragile and the
// runtime selects them most often under weak harvesting); deep trunk
// layers keep their channels (preserving exit-3 FLOPs near the paper's
// ×0.67) but drop to 1–2 bit weights to meet the 16 KB budget; the large
// branch FCs take 1-bit weights as in the paper's Fig. 4.
func Fig1bNonuniform() *Policy {
	return &Policy{Layers: []LayerPolicy{
		{Layer: "Conv1", PreserveRatio: 1.00, WeightBits: 8, ActBits: 8},
		{Layer: "ConvB1", PreserveRatio: 0.35, WeightBits: 8, ActBits: 8},
		{Layer: "Conv2", PreserveRatio: 0.65, WeightBits: 4, ActBits: 6},
		{Layer: "ConvB2", PreserveRatio: 0.60, WeightBits: 3, ActBits: 6},
		{Layer: "Conv3", PreserveRatio: 1.00, WeightBits: 2, ActBits: 5},
		{Layer: "Conv4", PreserveRatio: 1.00, WeightBits: 1, ActBits: 5},
		{Layer: "FC-B1", PreserveRatio: 0.40, WeightBits: 8, ActBits: 8},
		{Layer: "FC-B21", PreserveRatio: 0.25, WeightBits: 1, ActBits: 4},
		{Layer: "FC-B22", PreserveRatio: 0.80, WeightBits: 6, ActBits: 6},
		{Layer: "FC-B31", PreserveRatio: 0.35, WeightBits: 1, ActBits: 4},
		{Layer: "FC-B32", PreserveRatio: 0.80, WeightBits: 6, ActBits: 6},
	}}
}

// PaperFTargetFLOPs is the paper's FLOPs constraint (1.15 MFLOPs).
const PaperFTargetFLOPs = 1_150_000

// PaperSTargetBytes is the paper's weight-size constraint (16 KB).
const PaperSTargetBytes = 16 * 1024
