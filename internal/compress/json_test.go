package compress

import (
	"bytes"
	"strings"
	"testing"
)

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := Fig1bNonuniform()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPolicyJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Layers) != len(p.Layers) {
		t.Fatalf("layer count %d after round trip", len(back.Layers))
	}
	for i := range p.Layers {
		if back.Layers[i] != p.Layers[i] {
			t.Fatalf("layer %d differs: %+v vs %+v", i, back.Layers[i], p.Layers[i])
		}
	}
}

func TestReadPolicyJSONValidates(t *testing.T) {
	bad := `{"format":1,"layers":[{"layer":"Conv1","preserve_ratio":2.0,"weight_bits":8,"act_bits":8}]}`
	if _, err := ReadPolicyJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-range preserve ratio accepted")
	}
	if _, err := ReadPolicyJSON(strings.NewReader(`{"format":99}`)); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := ReadPolicyJSON(strings.NewReader(`garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPolicyJSONFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/policy.json"
	p := Fig1bNonuniform()
	if err := p.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPolicyJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Layers) != len(p.Layers) {
		t.Fatal("file round trip lost layers")
	}
}
