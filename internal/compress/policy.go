// Package compress implements the paper's §III network compression
// machinery: channel pruning driven by L1 input-channel importance
// (Eq. 2) and linear quantization of weights and activations with an
// L2-error-minimizing scale (Eq. 3), both applied per layer under a
// Policy. Uniform and nonuniform policies can be applied, measured
// (FLOPs/weight-size accounting), and rolled back via Snapshot so search
// algorithms can evaluate many candidate policies against one trained
// network.
package compress

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/multiexit"
	"repro/internal/nn"
)

// Bitwidth limits from §III-B: quantization bitwidths are searched in
// {1..8}; 32 denotes "unquantized" (full precision).
const (
	MinBits  = 1
	MaxBits  = 8
	FullBits = 32
)

// Pruning-rate bounds from §III-A: α ∈ [0.05, 1.0] with step 0.05.
const (
	MinPreserve  = 0.05
	MaxPreserve  = 1.0
	PreserveStep = 0.05
)

// LayerPolicy is the per-layer compression decision.
type LayerPolicy struct {
	Layer         string  // layer name (must exist in the network)
	PreserveRatio float64 // α: fraction of input channels kept
	WeightBits    int     // weight bitwidth (1..8, or 32 = full precision)
	ActBits       int     // activation bitwidth (1..8, or 32 = full precision)
}

// Validate checks bounds.
func (p LayerPolicy) Validate() error {
	if p.PreserveRatio < MinPreserve-1e-9 || p.PreserveRatio > MaxPreserve+1e-9 {
		return fmt.Errorf("compress: layer %q preserve ratio %.3f outside [%.2f, %.2f]",
			p.Layer, p.PreserveRatio, MinPreserve, MaxPreserve)
	}
	validBits := func(b int) bool { return b == FullBits || (b >= MinBits && b <= MaxBits) }
	if !validBits(p.WeightBits) {
		return fmt.Errorf("compress: layer %q weight bits %d invalid", p.Layer, p.WeightBits)
	}
	if !validBits(p.ActBits) {
		return fmt.Errorf("compress: layer %q activation bits %d invalid", p.Layer, p.ActBits)
	}
	return nil
}

// Policy is a full-network compression policy in layer order.
type Policy struct {
	Layers []LayerPolicy
}

// Validate checks all layer policies.
func (p *Policy) Validate() error {
	if len(p.Layers) == 0 {
		return fmt.Errorf("compress: empty policy")
	}
	seen := make(map[string]bool, len(p.Layers))
	for _, lp := range p.Layers {
		if err := lp.Validate(); err != nil {
			return err
		}
		if seen[lp.Layer] {
			return fmt.Errorf("compress: duplicate layer %q in policy", lp.Layer)
		}
		seen[lp.Layer] = true
	}
	return nil
}

// ByLayer returns the policy entry for the named layer.
func (p *Policy) ByLayer(name string) (LayerPolicy, bool) {
	for _, lp := range p.Layers {
		if lp.Layer == name {
			return lp, true
		}
	}
	return LayerPolicy{}, false
}

// String renders a Fig. 4-style table.
func (p *Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %6s %6s\n", "layer", "preserve", "w-bit", "a-bit")
	for _, lp := range p.Layers {
		fmt.Fprintf(&b, "%-8s %9.2f %6d %6d\n", lp.Layer, lp.PreserveRatio, lp.WeightBits, lp.ActBits)
	}
	return b.String()
}

// Uniform builds a policy applying the same preserve ratio and bitwidths
// to every compressible layer of net — the baseline of Fig. 1b.
func Uniform(net *multiexit.Network, preserve float64, weightBits, actBits int) *Policy {
	var p Policy
	for _, l := range net.CompressibleLayers() {
		p.Layers = append(p.Layers, LayerPolicy{
			Layer:         l.Name(),
			PreserveRatio: preserve,
			WeightBits:    weightBits,
			ActBits:       actBits,
		})
	}
	return &p
}

// FullPrecision builds the identity policy (no pruning, 32-bit).
func FullPrecision(net *multiexit.Network) *Policy {
	return Uniform(net, 1.0, FullBits, FullBits)
}

// QuantizeRatio snaps a continuous action in [0, 1] to a discrete
// bitwidth in [minBits, maxBits] (§III-B action mapping).
func QuantizeRatio(a float64, minBits, maxBits int) int {
	if a < 0 {
		a = 0
	}
	if a > 1 {
		a = 1
	}
	b := minBits + int(a*float64(maxBits-minBits)+0.5)
	if b > maxBits {
		b = maxBits
	}
	return b
}

// SnapPreserve rounds a continuous preserve ratio onto the paper's
// 0.05-step grid, clamped to [MinPreserve, MaxPreserve].
func SnapPreserve(a float64) float64 {
	steps := int(a/PreserveStep + 0.5)
	v := float64(steps) * PreserveStep
	if v < MinPreserve {
		v = MinPreserve
	}
	if v > MaxPreserve {
		v = MaxPreserve
	}
	return v
}

// Apply compresses net in place according to policy: channel pruning then
// weight quantization then activation-bitwidth tagging, per layer. The
// original weights are destroyed; capture a Snapshot first to roll back.
func Apply(net *multiexit.Network, policy *Policy) error {
	if err := policy.Validate(); err != nil {
		return err
	}
	layers := net.CompressibleLayers()
	byName := make(map[string]nn.Layer, len(layers))
	for _, l := range layers {
		byName[l.Name()] = l
	}
	for _, lp := range policy.Layers {
		l, ok := byName[lp.Layer]
		if !ok {
			return fmt.Errorf("compress: policy names unknown layer %q", lp.Layer)
		}
		switch layer := l.(type) {
		case *nn.Conv2D:
			PruneConvChannels(layer, lp.PreserveRatio)
			if lp.WeightBits != FullBits {
				QuantizeWeights(layer.W.Value.Data, lp.WeightBits)
				layer.WeightBitsPerValue = lp.WeightBits
			}
			if lp.ActBits != FullBits {
				layer.ActBits = lp.ActBits
			}
		case *nn.Dense:
			PruneDenseInputs(layer, lp.PreserveRatio)
			if lp.WeightBits != FullBits {
				QuantizeWeights(layer.W.Value.Data, lp.WeightBits)
				layer.WeightBitsPerValue = lp.WeightBits
			}
			if lp.ActBits != FullBits {
				layer.ActBits = lp.ActBits
			}
		default:
			return fmt.Errorf("compress: layer %q is not compressible", lp.Layer)
		}
	}
	return nil
}

// KeepCount returns the number of channels kept out of c at ratio α,
// never below 1.
func KeepCount(c int, preserve float64) int {
	kept := int(preserve*float64(c) + 0.5)
	if kept < 1 {
		kept = 1
	}
	if kept > c {
		kept = c
	}
	return kept
}

// ChannelImportance computes the paper's Eq. 2 importance of each input
// channel of a conv weight tensor [outC, inC, kh, kw]: s_j = Σ_i |W_i,j|.
func ChannelImportance(w []float32, outC, inC, spatial int) []float64 {
	imp := make([]float64, inC)
	for o := 0; o < outC; o++ {
		for j := 0; j < inC; j++ {
			base := (o*inC + j) * spatial
			var s float64
			for _, v := range w[base : base+spatial] {
				if v < 0 {
					s -= float64(v)
				} else {
					s += float64(v)
				}
			}
			imp[j] += s
		}
	}
	return imp
}

// prunedChannelSet returns the indices of the (inC − kept) least
// important channels.
func prunedChannelSet(imp []float64, kept int) map[int]bool {
	type ch struct {
		idx int
		imp float64
	}
	chans := make([]ch, len(imp))
	for i, v := range imp {
		chans[i] = ch{i, v}
	}
	sort.Slice(chans, func(a, b int) bool {
		if chans[a].imp != chans[b].imp {
			return chans[a].imp < chans[b].imp
		}
		return chans[a].idx < chans[b].idx
	})
	pruned := make(map[int]bool)
	for _, c := range chans[:len(imp)-kept] {
		pruned[c.idx] = true
	}
	return pruned
}

// PruneConvChannels zero-masks the least-important input channels of a
// convolution so that ceil(α·inC) survive, and records the kept count for
// FLOPs/storage accounting.
func PruneConvChannels(l *nn.Conv2D, preserve float64) {
	kept := KeepCount(l.InC, preserve)
	l.KeptInC = kept
	if kept == l.InC {
		return
	}
	spatial := l.KH * l.KW
	imp := ChannelImportance(l.W.Value.Data, l.OutC, l.InC, spatial)
	pruned := prunedChannelSet(imp, kept)
	w := l.W.Value.Data
	for o := 0; o < l.OutC; o++ {
		for j := 0; j < l.InC; j++ {
			if !pruned[j] {
				continue
			}
			base := (o*l.InC + j) * spatial
			for k := 0; k < spatial; k++ {
				w[base+k] = 0
			}
		}
	}
}

// PruneDenseInputs zero-masks the least-important input activations of a
// dense layer (kernel size 1 in the paper's formulation).
func PruneDenseInputs(l *nn.Dense, preserve float64) {
	kept := KeepCount(l.In, preserve)
	l.KeptIn = kept
	if kept == l.In {
		return
	}
	imp := ChannelImportance(l.W.Value.Data, l.Out, l.In, 1)
	pruned := prunedChannelSet(imp, kept)
	w := l.W.Value.Data
	for o := 0; o < l.Out; o++ {
		row := w[o*l.In : (o+1)*l.In]
		for j := range row {
			if pruned[j] {
				row[j] = 0
			}
		}
	}
}
