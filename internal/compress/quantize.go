package compress

import "math"

// QuantizeWeights applies the paper's Eq. 3 linear quantization in place:
//
//	w' = clamp(round(w/s), −2^{k−1}, 2^{k−1}−1) × s
//
// with the scaling factor s chosen to minimize ‖w' − w‖². The search
// evaluates a deterministic grid of candidate scales between the
// no-clipping scale and an aggressive fraction of it, which is how
// HAQ-style linear quantizers pick s in practice.
func QuantizeWeights(w []float32, bits int) {
	if bits <= 0 || bits >= 32 || len(w) == 0 {
		return
	}
	s := OptimalWeightScale(w, bits)
	if s == 0 {
		return
	}
	lb := -math.Exp2(float64(bits - 1))
	ub := math.Exp2(float64(bits-1)) - 1
	for i, v := range w {
		q := math.Round(float64(v) / s)
		if q < lb {
			q = lb
		} else if q > ub {
			q = ub
		}
		w[i] = float32(q * s)
	}
}

// OptimalWeightScale returns the L2-error-minimizing scale for symmetric
// k-bit quantization of w (0 if w is all zeros).
func OptimalWeightScale(w []float32, bits int) float64 {
	var maxAbs float64
	for _, v := range w {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	ub := math.Exp2(float64(bits-1)) - 1
	if ub < 1 {
		// 1-bit: representable levels are {−s, 0}; the clamp upper bound
		// is 0, so scan scales against that degenerate grid too.
		ub = 0
	}
	lb := -math.Exp2(float64(bits - 1))

	// No-clipping scale: every value representable (up to rounding).
	s0 := maxAbs / math.Max(ub, -lb)
	best := s0
	bestErr := quantError(w, s0, lb, ub)
	// Shrinking the scale trades clipping error for resolution; scan a
	// fixed grid for the best trade-off.
	const steps = 32
	for i := 1; i <= steps; i++ {
		s := s0 * (1 - 0.75*float64(i)/steps)
		if s <= 0 {
			break
		}
		if e := quantError(w, s, lb, ub); e < bestErr {
			bestErr = e
			best = s
		}
	}
	return best
}

func quantError(w []float32, s, lb, ub float64) float64 {
	var e float64
	for _, v := range w {
		q := math.Round(float64(v) / s)
		if q < lb {
			q = lb
		} else if q > ub {
			q = ub
		}
		d := float64(v) - q*s
		e += d * d
	}
	return e
}

// QuantizationError returns the relative L2 error ‖w'−w‖/‖w‖ that k-bit
// quantization would introduce, without modifying w. Used by tests and
// the accuracy surrogate's validation.
func QuantizationError(w []float32, bits int) float64 {
	if len(w) == 0 {
		return 0
	}
	s := OptimalWeightScale(w, bits)
	var norm float64
	for _, v := range w {
		norm += float64(v) * float64(v)
	}
	if norm == 0 {
		return 0
	}
	if s == 0 {
		return 0
	}
	lb := -math.Exp2(float64(bits - 1))
	ub := math.Exp2(float64(bits-1)) - 1
	return math.Sqrt(quantError(w, s, lb, ub) / norm)
}
