package energy

import (
	"fmt"
	"math"
	"sort"
)

// TraceStats summarizes a harvesting trace.
type TraceStats struct {
	Seconds  int
	MeanMW   float64
	PeakMW   float64
	P50MW    float64
	P95MW    float64
	TotalMJ  float64
	ZeroFrac float64 // fraction of seconds with no harvest
}

// Stats computes summary statistics of the trace.
func (t *Trace) Stats() TraceStats {
	s := TraceStats{Seconds: t.Duration(), TotalMJ: t.TotalEnergy(), MeanMW: t.MeanPower()}
	if t.Duration() == 0 {
		return s
	}
	sorted := append([]float64(nil), t.Power...)
	sort.Float64s(sorted)
	s.PeakMW = sorted[len(sorted)-1]
	s.P50MW = percentile(sorted, 0.50)
	s.P95MW = percentile(sorted, 0.95)
	zeros := 0
	for _, p := range t.Power {
		if p == 0 {
			zeros++
		}
	}
	s.ZeroFrac = float64(zeros) / float64(t.Duration())
	return s
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the stats compactly.
func (s TraceStats) String() string {
	return fmt.Sprintf("%ds mean=%.1fµW p50=%.1fµW p95=%.1fµW peak=%.1fµW total=%.1fmJ idle=%.0f%%",
		s.Seconds, 1000*s.MeanMW, 1000*s.P50MW, 1000*s.P95MW, 1000*s.PeakMW, s.TotalMJ, 100*s.ZeroFrac)
}

// Scaled returns a copy of the trace with every power value multiplied
// by factor — the knob for exploring stronger/weaker harvesting regimes
// with the same temporal structure.
func (t *Trace) Scaled(factor float64) *Trace {
	if factor < 0 {
		panic(fmt.Sprintf("energy: negative scale factor %g", factor))
	}
	out := &Trace{Power: make([]float64, len(t.Power))}
	for i, p := range t.Power {
		out.Power[i] = p * factor
	}
	return out
}

// Resampled returns the trace resampled to a new duration by linear
// interpolation, preserving the power envelope's shape.
func (t *Trace) Resampled(seconds int) *Trace {
	if seconds <= 0 {
		panic(fmt.Sprintf("energy: invalid resample duration %d", seconds))
	}
	if t.Duration() == 0 {
		return ConstantTrace(seconds, 0)
	}
	out := &Trace{Power: make([]float64, seconds)}
	for i := 0; i < seconds; i++ {
		pos := float64(i) / float64(seconds) * float64(t.Duration()-1)
		lo := int(math.Floor(pos))
		hi := lo + 1
		if hi >= t.Duration() {
			out.Power[i] = t.Power[t.Duration()-1]
			continue
		}
		frac := pos - float64(lo)
		out.Power[i] = t.Power[lo]*(1-frac) + t.Power[hi]*frac
	}
	return out
}

// Concat joins traces end to end (multi-day simulations).
func Concat(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		out.Power = append(out.Power, t.Power...)
	}
	return out
}
