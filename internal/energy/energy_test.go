package energy

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSyntheticSolarTraceShape(t *testing.T) {
	tr := SyntheticSolarTrace(SolarConfig{Seconds: 3600, PeakPower: 1, Seed: 1})
	if tr.Duration() != 3600 {
		t.Fatalf("duration %d", tr.Duration())
	}
	for i, p := range tr.Power {
		if p < 0 || p > 1 {
			t.Fatalf("power[%d] = %v outside [0, peak]", i, p)
		}
	}
	// Midday should out-power dawn on average.
	dawn := tr.Slice(0, 300).MeanPower()
	noon := tr.Slice(1650, 1950).MeanPower()
	if noon <= dawn {
		t.Fatalf("no diurnal arc: dawn %v, noon %v", dawn, noon)
	}
}

func TestSolarTraceDeterminism(t *testing.T) {
	a := SyntheticSolarTrace(SolarConfig{Seconds: 100, Seed: 5})
	b := SyntheticSolarTrace(SolarConfig{Seconds: 100, Seed: 5})
	for i := range a.Power {
		if a.Power[i] != b.Power[i] {
			t.Fatal("same seed must give identical traces")
		}
	}
	c := SyntheticSolarTrace(SolarConfig{Seconds: 100, Seed: 6})
	same := true
	for i := range a.Power {
		if a.Power[i] != c.Power[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical traces")
	}
}

func TestKineticTraceBursty(t *testing.T) {
	tr := SyntheticKineticTrace(KineticConfig{Seconds: 10000, Seed: 2})
	zero, nonzero := 0, 0
	for _, p := range tr.Power {
		if p == 0 {
			zero++
		} else {
			nonzero++
		}
	}
	if zero == 0 || nonzero == 0 {
		t.Fatalf("kinetic trace not bursty: %d zero, %d active", zero, nonzero)
	}
}

func TestConstantTrace(t *testing.T) {
	tr := ConstantTrace(10, 0.5)
	if tr.TotalEnergy() != 5 {
		t.Fatalf("total = %v", tr.TotalEnergy())
	}
	if tr.MeanPower() != 0.5 {
		t.Fatalf("mean = %v", tr.MeanPower())
	}
}

func TestTraceAtClamps(t *testing.T) {
	tr := ConstantTrace(5, 1)
	if tr.At(-1) != 0 || tr.At(5) != 0 {
		t.Fatal("out-of-range At must be 0")
	}
	if tr.At(2) != 1 {
		t.Fatal("in-range At wrong")
	}
}

func TestStorageValidate(t *testing.T) {
	if err := DefaultStorage().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultStorage()
	bad.TurnOnMJ = bad.CapacityMJ + 1
	if bad.Validate() == nil {
		t.Fatal("turn-on above capacity accepted")
	}
	bad = DefaultStorage()
	bad.ChargeEfficiency = 1.5
	if bad.Validate() == nil {
		t.Fatal("efficiency > 1 accepted")
	}
	bad = DefaultStorage()
	bad.BrownOutMJ = bad.TurnOnMJ + 1
	if bad.Validate() == nil {
		t.Fatal("brown-out above turn-on accepted")
	}
}

func TestStorageHarvestAndSpend(t *testing.T) {
	s := &Storage{CapacityMJ: 10, TurnOnMJ: 1, BrownOutMJ: 0.1, ChargeEfficiency: 0.5}
	s.SetLevel(0)
	if s.On() {
		t.Fatal("empty storage must be off")
	}
	s.Harvest(4, 1) // stores 2 mJ
	if !s.On() {
		t.Fatal("storage past turn-on must power the device")
	}
	if math.Abs(s.Level()-2) > 1e-9 {
		t.Fatalf("level = %v, want 2", s.Level())
	}
	if math.Abs(s.Available()-1.9) > 1e-9 {
		t.Fatalf("available = %v, want 1.9", s.Available())
	}
	if !s.Spend(1) {
		t.Fatal("affordable spend failed")
	}
	if math.Abs(s.Level()-1) > 1e-9 {
		t.Fatalf("level after spend = %v", s.Level())
	}
}

func TestStorageOverspendBrownsOut(t *testing.T) {
	s := &Storage{CapacityMJ: 10, TurnOnMJ: 1, BrownOutMJ: 0.1, ChargeEfficiency: 1}
	s.SetLevel(2)
	if s.Spend(5) {
		t.Fatal("overspend must fail")
	}
	if s.On() {
		t.Fatal("overspend must brown out")
	}
	if s.Level() != 0.1 {
		t.Fatalf("level after brown-out = %v, want brown-out floor", s.Level())
	}
}

func TestStorageHysteresis(t *testing.T) {
	s := &Storage{CapacityMJ: 10, TurnOnMJ: 2, BrownOutMJ: 0.5, ChargeEfficiency: 1}
	s.SetLevel(3)
	s.Spend(2.4) // 0.6 left: above brown-out, stays on
	if !s.On() {
		t.Fatal("should stay on above brown-out")
	}
	s.Spend(0.09) // just above floor
	if s.Available() <= 0 {
		t.Fatal("still marginally available")
	}
	s.Spend(s.Available()) // drains to floor exactly → off
	if s.On() {
		t.Fatal("draining to the floor must turn off")
	}
	// Needs to pass turn-on again, not just brown-out.
	s.Harvest(1, 1) // level 1.5 < turn-on 2
	if s.On() {
		t.Fatal("below turn-on must stay off (hysteresis)")
	}
	s.Harvest(1, 1) // 2.5 ≥ 2
	if !s.On() {
		t.Fatal("past turn-on must wake")
	}
}

func TestStorageCapacityClamp(t *testing.T) {
	s := &Storage{CapacityMJ: 5, TurnOnMJ: 1, BrownOutMJ: 0, ChargeEfficiency: 1}
	s.SetLevel(0)
	s.Harvest(100, 1)
	if s.Level() != 5 {
		t.Fatalf("level %v exceeds capacity", s.Level())
	}
}

func TestStorageLeakage(t *testing.T) {
	s := &Storage{CapacityMJ: 5, TurnOnMJ: 1, BrownOutMJ: 0, ChargeEfficiency: 1, LeakMWPerS: 0.1}
	s.SetLevel(1)
	s.Harvest(0, 5) // 0.5 mJ leaks
	if math.Abs(s.Level()-0.5) > 1e-9 {
		t.Fatalf("level after leak = %v", s.Level())
	}
}

// Property: energy level never negative and never above capacity under
// arbitrary harvest/spend sequences.
func TestStorageBoundsProperty(t *testing.T) {
	f := func(ops []float32) bool {
		s := DefaultStorage()
		s.SetLevel(0)
		for _, op := range ops {
			v := float64(op)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v >= 0 {
				s.Harvest(math.Mod(v, 100), 1)
			} else {
				s.Spend(math.Mod(-v, 100))
			}
			if s.Level() < 0 || s.Level() > s.CapacityMJ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformScheduleProperties(t *testing.T) {
	s := UniformSchedule(500, 21600, 10, 3)
	if s.Len() != 500 {
		t.Fatalf("len %d", s.Len())
	}
	if !sort.SliceIsSorted(s.Events, func(a, b int) bool { return s.Events[a].T < s.Events[b].T }) {
		t.Fatal("events must be time-ordered")
	}
	counts := make(map[int]int)
	for _, e := range s.Events {
		if e.T < 0 || e.T >= 21600 {
			t.Fatalf("event time %d out of range", e.T)
		}
		counts[e.Class]++
	}
	for c := 0; c < 10; c++ {
		if counts[c] != 50 {
			t.Fatalf("class %d has %d events, want 50", c, counts[c])
		}
	}
}

func TestBurstySchedule(t *testing.T) {
	s := BurstySchedule(200, 10000, 10, 5, 4)
	if s.Len() != 200 {
		t.Fatalf("len %d", s.Len())
	}
	if !sort.SliceIsSorted(s.Events, func(a, b int) bool { return s.Events[a].T < s.Events[b].T }) {
		t.Fatal("bursty events must be time-ordered")
	}
	// Burstiness: count adjacent gaps ≤ 1 s.
	tight := 0
	for i := 1; i < s.Len(); i++ {
		if s.Events[i].T-s.Events[i-1].T <= 1 {
			tight++
		}
	}
	if tight < 20 {
		t.Fatalf("only %d tight gaps; schedule not bursty", tight)
	}
}

func TestAttachSamples(t *testing.T) {
	s := UniformSchedule(20, 100, 2, 5)
	byClass := [][]int{{0, 1, 2}, {3, 4}}
	if err := s.AttachSamples(byClass, 1); err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Events {
		if e.SampleIndex < 0 {
			t.Fatal("sample not attached")
		}
		want := byClass[e.Class]
		found := false
		for _, idx := range want {
			if idx == e.SampleIndex {
				found = true
			}
		}
		if !found {
			t.Fatalf("event class %d got sample %d from the wrong class", e.Class, e.SampleIndex)
		}
	}
}

func TestAttachSamplesMissingClass(t *testing.T) {
	s := UniformSchedule(5, 100, 3, 6)
	if err := s.AttachSamples([][]int{{0}}, 1); err == nil {
		t.Fatal("missing class accepted")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	tr := SyntheticSolarTrace(SolarConfig{Seconds: 50, Seed: 7})
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Duration() != 50 {
		t.Fatalf("round-trip duration %d", back.Duration())
	}
	for i := range tr.Power {
		if math.Abs(tr.Power[i]-back.Power[i]) > 1e-12 {
			t.Fatal("round-trip power mismatch")
		}
	}
}

func TestReadTraceCSVRejectsNegative(t *testing.T) {
	if _, err := ReadTraceCSV(bytes.NewBufferString("t,power\n0,-1\n")); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestScheduleCSVRoundTrip(t *testing.T) {
	s := UniformSchedule(30, 1000, 10, 8)
	var buf bytes.Buffer
	if err := WriteScheduleCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScheduleCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 30 {
		t.Fatalf("round-trip len %d", back.Len())
	}
	for i := range s.Events {
		if s.Events[i].T != back.Events[i].T || s.Events[i].Class != back.Events[i].Class {
			t.Fatal("round-trip event mismatch")
		}
	}
}
