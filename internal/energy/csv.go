package energy

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
)

// WriteTraceCSV writes a trace as "t,power_mw" rows with a header.
func WriteTraceCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds", "power_mw"}); err != nil {
		return err
	}
	for i, p := range t.Power {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(p, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraceCSV parses a trace written by WriteTraceCSV, or any CSV whose
// final column is power in mW (a header row is skipped if non-numeric).
// Real NREL RSR exports can be fed through this after unit conversion.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	trace := &Trace{}
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("energy: parse trace CSV: %w", err)
		}
		row++
		if len(rec) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("energy: trace CSV row %d: %w", row, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("energy: trace CSV row %d: negative power %g", row, v)
		}
		trace.Power = append(trace.Power, v)
	}
	return trace, nil
}

// csvTraceCache memoizes parsed trace files process-wide, keyed by
// path, so every TraceFromCSV builder for the same file — including the
// fresh closures a grid's per-point TraceSpec.Build calls create —
// shares one parse.
var csvTraceCache sync.Map // path -> *csvTraceEntry

type csvTraceEntry struct {
	once  sync.Once
	trace *Trace
	err   error
}

// TraceFromCSV returns a trace builder backed by a CSV file on disk —
// the registry-compatible form of LoadTraceCSV (see exper.RegisterTrace),
// which is also what makes a measured trace usable as a grid axis value.
// The file is read once per process and the parsed trace cached (a
// many-point grid does not re-parse it per point; rewriting the file
// under a running process is not observed — use a new path for new
// data). The seed parameter is ignored: a measured trace has no
// stochastic component. Builders are safe for concurrent use.
func TraceFromCSV(path string) func(seed uint64) (*Trace, error) {
	return func(uint64) (*Trace, error) {
		e, _ := csvTraceCache.LoadOrStore(path, &csvTraceEntry{})
		entry := e.(*csvTraceEntry)
		entry.once.Do(func() { entry.trace, entry.err = LoadTraceCSV(path) })
		if entry.err != nil {
			// Failed parses are not pinned: drop this exact entry so a
			// later call retries (the file may exist by then). The
			// compare guard keeps a stale failure from evicting a fresh
			// entry another goroutine already parsed successfully.
			csvTraceCache.CompareAndDelete(path, e)
		}
		return entry.trace, entry.err
	}
}

// LoadTraceCSV reads a trace file from disk.
func LoadTraceCSV(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTraceCSV(f)
}

// SaveTraceCSV writes a trace file to disk.
func SaveTraceCSV(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTraceCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteScheduleCSV writes events as "t,class" rows.
func WriteScheduleCSV(w io.Writer, s *Schedule) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds", "class"}); err != nil {
		return err
	}
	for _, e := range s.Events {
		if err := cw.Write([]string{strconv.Itoa(e.T), strconv.Itoa(e.Class)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadScheduleCSV parses events written by WriteScheduleCSV.
func ReadScheduleCSV(r io.Reader) (*Schedule, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	s := &Schedule{}
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("energy: parse schedule CSV: %w", err)
		}
		row++
		if len(rec) < 2 {
			continue
		}
		t, err1 := strconv.Atoi(rec[0])
		c, err2 := strconv.Atoi(rec[1])
		if err1 != nil || err2 != nil {
			if row == 1 {
				continue // header
			}
			return nil, fmt.Errorf("energy: schedule CSV row %d malformed", row)
		}
		s.Events = append(s.Events, Event{T: t, Class: c, SampleIndex: -1})
	}
	return s, nil
}
