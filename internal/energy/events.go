package energy

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Event is one sensing trigger: at time T (seconds into the trace) an
// input with the given class appears and should be classified.
type Event struct {
	// T is the trigger time in seconds.
	T int
	// Class is the ground-truth label of the event's input.
	Class int
	// SampleIndex selects a concrete test-set sample for empirical
	// inference (−1 when the simulation is accuracy-model driven).
	SampleIndex int
}

// Schedule is a time-ordered set of events.
type Schedule struct {
	Events []Event
}

// Len returns the number of events.
func (s *Schedule) Len() int { return len(s.Events) }

// UniformSchedule draws n events uniformly at random over [0, duration)
// seconds with round-robin class labels — the paper's "500 events
// randomly distributed across the duration of the EH power trace".
func UniformSchedule(n, duration, classes int, seed uint64) *Schedule {
	if n < 0 || duration <= 0 || classes <= 0 {
		panic(fmt.Sprintf("energy: invalid schedule n=%d duration=%d classes=%d", n, duration, classes))
	}
	rng := tensor.NewRNG(seed + 0xe7e47)
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{
			T:           rng.Intn(duration),
			Class:       i % classes,
			SampleIndex: -1,
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].T < events[b].T })
	return &Schedule{Events: events}
}

// BurstySchedule draws events in Poisson-like bursts: burst start times
// uniform, burst sizes geometric, spacing ~1 s. It models the
// wildlife-camera scenario where animal activity clusters.
func BurstySchedule(n, duration, classes int, meanBurst float64, seed uint64) *Schedule {
	if meanBurst < 1 {
		meanBurst = 1
	}
	rng := tensor.NewRNG(seed + 0xb0457)
	var events []Event
	for len(events) < n {
		start := rng.Intn(duration)
		size := 1
		for rng.Float64() < 1-1/meanBurst && size < 16 {
			size++
		}
		for b := 0; b < size && len(events) < n; b++ {
			t := start + b
			if t >= duration {
				break
			}
			events = append(events, Event{T: t, Class: len(events) % classes, SampleIndex: -1})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].T < events[b].T })
	return &Schedule{Events: events}
}

// AttachSamples assigns each event a concrete sample index with the
// event's class from the given per-class index lists, cycling when a
// class has fewer samples than events.
func (s *Schedule) AttachSamples(byClass [][]int, seed uint64) error {
	rng := tensor.NewRNG(seed + 0xa77ac4)
	used := make([]int, len(byClass))
	for i := range s.Events {
		c := s.Events[i].Class
		if c < 0 || c >= len(byClass) || len(byClass[c]) == 0 {
			return fmt.Errorf("energy: no samples available for class %d", c)
		}
		pick := byClass[c][used[c]%len(byClass[c])]
		used[c]++
		// Occasionally randomize within the class so repeats differ.
		if used[c] >= len(byClass[c]) {
			pick = byClass[c][rng.Intn(len(byClass[c]))]
		}
		s.Events[i].SampleIndex = pick
	}
	return nil
}
