package energy

import (
	"math"
	"strings"
	"testing"
)

func TestTraceStatsConstant(t *testing.T) {
	s := ConstantTrace(100, 0.5).Stats()
	if s.MeanMW != 0.5 || s.PeakMW != 0.5 || s.P50MW != 0.5 || s.P95MW != 0.5 {
		t.Fatalf("constant-trace stats wrong: %+v", s)
	}
	if s.ZeroFrac != 0 {
		t.Fatal("no zeros expected")
	}
	if s.TotalMJ != 50 {
		t.Fatalf("total %v", s.TotalMJ)
	}
}

func TestTraceStatsOrdering(t *testing.T) {
	tr := SyntheticSolarTrace(SolarConfig{Seconds: 2000, Seed: 1})
	s := tr.Stats()
	if !(s.P50MW <= s.P95MW && s.P95MW <= s.PeakMW) {
		t.Fatalf("percentile ordering violated: %+v", s)
	}
	if !strings.Contains(s.String(), "mean=") {
		t.Fatal("String misses fields")
	}
}

func TestKineticZeroFrac(t *testing.T) {
	tr := SyntheticKineticTrace(KineticConfig{Seconds: 5000, Seed: 2})
	s := tr.Stats()
	if s.ZeroFrac <= 0 || s.ZeroFrac >= 1 {
		t.Fatalf("kinetic idle fraction %v implausible", s.ZeroFrac)
	}
}

func TestScaled(t *testing.T) {
	tr := ConstantTrace(10, 2)
	half := tr.Scaled(0.5)
	if half.TotalEnergy() != 10 {
		t.Fatalf("scaled total %v", half.TotalEnergy())
	}
	if tr.TotalEnergy() != 20 {
		t.Fatal("Scaled must not mutate the original")
	}
}

func TestScaledNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConstantTrace(1, 1).Scaled(-1)
}

func TestResampledPreservesShape(t *testing.T) {
	tr := &Trace{Power: []float64{0, 1, 0}}
	up := tr.Resampled(5)
	if up.Duration() != 5 {
		t.Fatalf("duration %d", up.Duration())
	}
	// Peak stays in the middle.
	max, arg := 0.0, 0
	for i, p := range up.Power {
		if p > max {
			max, arg = p, i
		}
	}
	if arg != 2 || max < 0.8 {
		t.Fatalf("resampled peak at %d value %v (expect mid-trace, near the original peak)", arg, max)
	}
	// Mean power approximately preserved.
	if math.Abs(up.MeanPower()-tr.MeanPower()) > 0.2 {
		t.Fatalf("mean drifted: %v vs %v", up.MeanPower(), tr.MeanPower())
	}
}

func TestConcat(t *testing.T) {
	day := ConstantTrace(10, 1)
	night := ConstantTrace(10, 0)
	twoDays := Concat(day, night, day)
	if twoDays.Duration() != 30 {
		t.Fatalf("duration %d", twoDays.Duration())
	}
	if twoDays.TotalEnergy() != 20 {
		t.Fatalf("total %v", twoDays.TotalEnergy())
	}
}
