// Package energy models the energy-harvesting side of the system: solar
// harvesting traces, the capacitor energy store with turn-on/brown-out
// thresholds, and the event schedule that triggers inferences.
//
// The paper powers its MSP432 from a measured NREL solar profile [17].
// That dataset is not available offline, so SyntheticSolarTrace generates
// a diurnal irradiance arc modulated by an AR(1) cloud-occlusion process
// (DESIGN.md §2); real traces can be loaded with LoadTraceCSV. All
// energies are in millijoules and times in seconds (the paper's "time
// unit" is 1 s).
package energy

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Trace is a harvesting power profile: Power[t] is the average harvested
// power (mW) during second t.
type Trace struct {
	// Power in milliwatts per 1-second step.
	Power []float64
}

// Duration returns the trace length in seconds.
func (t *Trace) Duration() int { return len(t.Power) }

// TotalEnergy returns the total harvestable energy (mJ) over the trace.
func (t *Trace) TotalEnergy() float64 {
	var e float64
	for _, p := range t.Power {
		e += p // mW × 1 s = mJ
	}
	return e
}

// MeanPower returns the mean harvested power in mW.
func (t *Trace) MeanPower() float64 {
	if len(t.Power) == 0 {
		return 0
	}
	return t.TotalEnergy() / float64(len(t.Power))
}

// At returns the harvesting power at second ti, clamping out-of-range
// indices to zero.
func (t *Trace) At(ti int) float64 {
	if ti < 0 || ti >= len(t.Power) {
		return 0
	}
	return t.Power[ti]
}

// Slice returns the sub-trace [from, to).
func (t *Trace) Slice(from, to int) *Trace {
	if from < 0 {
		from = 0
	}
	if to > len(t.Power) {
		to = len(t.Power)
	}
	if from >= to {
		return &Trace{}
	}
	return &Trace{Power: t.Power[from:to]}
}

// SolarConfig parameterizes SyntheticSolarTrace.
type SolarConfig struct {
	// Seconds is the trace duration (default 6 h = 21600 s).
	Seconds int
	// PeakPower is the clear-sky midday harvesting power in mW
	// (default 0.45 mW — small-panel indoor/outdoor EH regime that
	// yields the multi-power-cycle-per-inference behaviour the paper
	// targets).
	PeakPower float64
	// CloudTau is the AR(1) correlation time of cloud occlusion in
	// seconds (default 120 s).
	CloudTau float64
	// CloudDepth in [0, 1] scales how much clouds attenuate (default
	// 0.6).
	CloudDepth float64
	// Seed drives the cloud process.
	Seed uint64
}

func (c *SolarConfig) fillDefaults() {
	if c.Seconds == 0 {
		c.Seconds = 21600
	}
	if c.PeakPower == 0 {
		c.PeakPower = 0.45
	}
	if c.CloudTau == 0 {
		c.CloudTau = 120
	}
	if c.CloudDepth == 0 {
		c.CloudDepth = 0.6
	}
}

// SyntheticSolarTrace generates a diurnal solar harvesting profile: a
// half-sine day arc (sunrise at t=0, sunset at t=Seconds) multiplied by a
// mean-reverting cloud process, qualitatively matching the rotating-
// shadowband-radiometer profile the paper uses: smooth diurnal envelope
// with minute-scale stochastic dips.
func SyntheticSolarTrace(cfg SolarConfig) *Trace {
	cfg.fillDefaults()
	rng := tensor.NewRNG(cfg.Seed + 0x5017a)
	power := make([]float64, cfg.Seconds)
	// AR(1) occlusion state in [0, 1]; 0 = clear sky.
	occ := 0.3
	rho := math.Exp(-1 / cfg.CloudTau)
	noiseStd := math.Sqrt(1-rho*rho) * 0.35
	for t := 0; t < cfg.Seconds; t++ {
		dayArc := math.Sin(math.Pi * float64(t) / float64(cfg.Seconds))
		occ = rho*occ + (1-rho)*0.3 + noiseStd*rng.NormFloat64()
		if occ < 0 {
			occ = 0
		}
		if occ > 1 {
			occ = 1
		}
		p := cfg.PeakPower * dayArc * (1 - cfg.CloudDepth*occ)
		if p < 0 {
			p = 0
		}
		power[t] = p
	}
	return &Trace{Power: power}
}

// ConstantTrace returns a trace with fixed harvesting power (mW) — useful
// for tests and controlled ablations.
func ConstantTrace(seconds int, mw float64) *Trace {
	if seconds < 0 {
		panic(fmt.Sprintf("energy: negative trace duration %d", seconds))
	}
	power := make([]float64, seconds)
	for i := range power {
		power[i] = mw
	}
	return &Trace{Power: power}
}

// KineticConfig parameterizes SyntheticKineticTrace, a bursty
// motion-harvester profile (e.g. the paper's cited shoe-mounted
// harvesters): near-zero baseline with activity bursts.
type KineticConfig struct {
	Seconds int
	// BurstPower is the power during activity bursts in mW (default 0.9).
	BurstPower float64
	// BurstMean is the mean burst length in seconds (default 180).
	BurstMean float64
	// IdleMean is the mean idle gap in seconds (default 600).
	IdleMean float64
	Seed     uint64
}

func (c *KineticConfig) fillDefaults() {
	if c.Seconds == 0 {
		c.Seconds = 21600
	}
	if c.BurstPower == 0 {
		c.BurstPower = 0.9
	}
	if c.BurstMean == 0 {
		c.BurstMean = 180
	}
	if c.IdleMean == 0 {
		c.IdleMean = 600
	}
}

// SyntheticKineticTrace generates an on/off kinetic harvesting profile
// with exponentially distributed burst and idle durations.
func SyntheticKineticTrace(cfg KineticConfig) *Trace {
	cfg.fillDefaults()
	rng := tensor.NewRNG(cfg.Seed + 0x4a3e71c)
	power := make([]float64, cfg.Seconds)
	t := 0
	active := false
	for t < cfg.Seconds {
		var dur int
		mean := cfg.IdleMean
		if active {
			mean = cfg.BurstMean
		}
		dur = int(-mean*math.Log(1-rng.Float64())) + 1
		for i := 0; i < dur && t < cfg.Seconds; i++ {
			if active {
				// Jittered burst power.
				power[t] = cfg.BurstPower * (0.7 + 0.6*rng.Float64())
			}
			t++
		}
		active = !active
	}
	return &Trace{Power: power}
}
