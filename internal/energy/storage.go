package energy

import "fmt"

// Storage models the capacitor-backed energy buffer of an intermittently
// powered device. Harvested energy charges the buffer (with a charging
// efficiency < 1); computation drains it. The device can compute only
// while the buffer is above the brown-out threshold, and after a power
// failure it must recharge past the turn-on threshold before resuming —
// the classic intermittent-computing hysteresis.
type Storage struct {
	// CapacityMJ is the usable buffer capacity in mJ.
	CapacityMJ float64
	// TurnOnMJ is the level required to (re)start computing after a
	// brown-out.
	TurnOnMJ float64
	// BrownOutMJ is the level below which computation halts.
	BrownOutMJ float64
	// ChargeEfficiency scales harvested energy into stored energy.
	ChargeEfficiency float64
	// LeakMWPerS is a constant leakage drain in mW.
	LeakMWPerS float64

	level float64
	on    bool
}

// DefaultStorage returns the buffer used throughout the experiments:
// a 10 mJ usable capacitor (≈ 470 µF class at MSP432 voltages) with 70%
// charging efficiency and a 1 mJ turn-on / 0.05 mJ brown-out window.
func DefaultStorage() *Storage {
	return &Storage{
		CapacityMJ:       10,
		TurnOnMJ:         1.0,
		BrownOutMJ:       0.05,
		ChargeEfficiency: 0.7,
		LeakMWPerS:       0.001,
	}
}

// Validate reports configuration errors.
func (s *Storage) Validate() error {
	switch {
	case s.CapacityMJ <= 0:
		return fmt.Errorf("energy: storage capacity must be positive, got %g", s.CapacityMJ)
	case s.TurnOnMJ < s.BrownOutMJ:
		return fmt.Errorf("energy: turn-on threshold %g below brown-out %g", s.TurnOnMJ, s.BrownOutMJ)
	case s.TurnOnMJ > s.CapacityMJ:
		return fmt.Errorf("energy: turn-on threshold %g exceeds capacity %g", s.TurnOnMJ, s.CapacityMJ)
	case s.ChargeEfficiency <= 0 || s.ChargeEfficiency > 1:
		return fmt.Errorf("energy: charging efficiency %g outside (0, 1]", s.ChargeEfficiency)
	case s.BrownOutMJ < 0 || s.LeakMWPerS < 0:
		return fmt.Errorf("energy: negative threshold or leakage")
	}
	return nil
}

// Level returns the current stored energy (mJ).
func (s *Storage) Level() float64 { return s.level }

// SetLevel forces the stored energy (clamped to [0, capacity]); tests and
// simulation warm-up use this.
func (s *Storage) SetLevel(mj float64) {
	if mj < 0 {
		mj = 0
	}
	if mj > s.CapacityMJ {
		mj = s.CapacityMJ
	}
	s.level = mj
	s.on = s.level >= s.TurnOnMJ
}

// On reports whether the device is currently powered (past turn-on and
// not browned out).
func (s *Storage) On() bool { return s.on }

// Harvest charges the buffer with harvested energy (mJ, pre-efficiency)
// over dt seconds, applying charging efficiency, leakage, and the
// capacity clamp. It returns the energy actually stored.
func (s *Storage) Harvest(mj, dt float64) float64 {
	stored := mj * s.ChargeEfficiency
	before := s.level
	s.level += stored
	s.level -= s.LeakMWPerS * dt
	if s.level < 0 {
		s.level = 0
	}
	if s.level > s.CapacityMJ {
		s.level = s.CapacityMJ
	}
	if !s.on && s.level >= s.TurnOnMJ {
		s.on = true
	}
	return s.level - before
}

// Available returns the energy spendable before brown-out (mJ).
func (s *Storage) Available() float64 {
	if !s.on {
		return 0
	}
	a := s.level - s.BrownOutMJ
	if a < 0 {
		return 0
	}
	return a
}

// Spend drains mj from the buffer for computation. It returns false —
// and drains only down to the brown-out floor, turning the device off —
// if the request exceeds the available energy (a power failure mid-task).
func (s *Storage) Spend(mj float64) bool {
	if mj < 0 {
		panic(fmt.Sprintf("energy: negative spend %g", mj))
	}
	if !s.on {
		return false
	}
	if mj <= s.Available() {
		s.level -= mj
		if s.level <= s.BrownOutMJ {
			s.on = false
		}
		return true
	}
	s.level = s.BrownOutMJ
	s.on = false
	return false
}
