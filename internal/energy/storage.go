package energy

import "fmt"

// Storage models the capacitor-backed energy buffer of an intermittently
// powered device. Harvested energy charges the buffer (with a charging
// efficiency < 1); computation drains it. The device can compute only
// while the buffer is above the brown-out threshold, and after a power
// failure it must recharge past the turn-on threshold before resuming —
// the classic intermittent-computing hysteresis.
type Storage struct {
	// CapacityMJ is the usable buffer capacity in mJ.
	CapacityMJ float64
	// TurnOnMJ is the level required to (re)start computing after a
	// brown-out.
	TurnOnMJ float64
	// BrownOutMJ is the level below which computation halts.
	BrownOutMJ float64
	// ChargeEfficiency scales harvested energy into stored energy.
	ChargeEfficiency float64
	// LeakMWPerS is a constant leakage drain in mW.
	LeakMWPerS float64

	level float64
	on    bool
}

// DefaultStorage returns the buffer used throughout the experiments:
// a 10 mJ usable capacitor (≈ 470 µF class at MSP432 voltages) with 70%
// charging efficiency and a 1 mJ turn-on / 0.05 mJ brown-out window.
func DefaultStorage() *Storage {
	return &Storage{
		CapacityMJ:       10,
		TurnOnMJ:         1.0,
		BrownOutMJ:       0.05,
		ChargeEfficiency: 0.7,
		LeakMWPerS:       0.001,
	}
}

// Validate reports configuration errors.
func (s *Storage) Validate() error {
	switch {
	case s.CapacityMJ <= 0:
		return fmt.Errorf("energy: storage capacity must be positive, got %g", s.CapacityMJ)
	case s.TurnOnMJ < s.BrownOutMJ:
		return fmt.Errorf("energy: turn-on threshold %g below brown-out %g", s.TurnOnMJ, s.BrownOutMJ)
	case s.TurnOnMJ > s.CapacityMJ:
		return fmt.Errorf("energy: turn-on threshold %g exceeds capacity %g", s.TurnOnMJ, s.CapacityMJ)
	case s.ChargeEfficiency <= 0 || s.ChargeEfficiency > 1:
		return fmt.Errorf("energy: charging efficiency %g outside (0, 1]", s.ChargeEfficiency)
	case s.BrownOutMJ < 0 || s.LeakMWPerS < 0:
		return fmt.Errorf("energy: negative threshold or leakage")
	}
	return nil
}

// Level returns the current stored energy (mJ).
func (s *Storage) Level() float64 { return s.level }

// SetLevel forces the stored energy (clamped to [0, capacity]); tests and
// simulation warm-up use this.
func (s *Storage) SetLevel(mj float64) {
	if mj < 0 {
		mj = 0
	}
	if mj > s.CapacityMJ {
		mj = s.CapacityMJ
	}
	s.level = mj
	s.on = s.level >= s.TurnOnMJ
}

// On reports whether the device is currently powered (past turn-on and
// not browned out).
func (s *Storage) On() bool { return s.on }

// Harvest charges the buffer with harvested energy (mJ, pre-efficiency)
// over dt seconds, applying charging efficiency, leakage, and the
// capacity clamp. It returns the energy actually stored.
func (s *Storage) Harvest(mj, dt float64) float64 {
	stored := mj * s.ChargeEfficiency
	before := s.level
	s.level += stored
	s.level -= s.LeakMWPerS * dt
	if s.level < 0 {
		s.level = 0
	}
	if s.level > s.CapacityMJ {
		s.level = s.CapacityMJ
	}
	if !s.on && s.level >= s.TurnOnMJ {
		s.on = true
	}
	return s.level - before
}

// HarvestSeconds charges the buffer over consecutive whole seconds of a
// power trace, one Harvest(p, 1) step per entry, with the storage state
// held in registers across the run. harvestedAcc/storedAcc are the
// caller's running energy ledgers; they are threaded through and
// returned (rather than summed locally and added once) so the
// floating-point accumulation chain — and therefore every downstream
// result — is bit-identical to calling Harvest second by second. This is
// the simulation engine's hottest loop: a 6-hour trace crosses it 21 600
// times per episode.
func (s *Storage) HarvestSeconds(power []float64, harvestedAcc, storedAcc float64) (float64, float64) {
	eff, leak := s.ChargeEfficiency, s.LeakMWPerS
	capacity, turnOn := s.CapacityMJ, s.TurnOnMJ
	level, on := s.level, s.on
	for _, p := range power {
		harvestedAcc += p // mW × 1 s = mJ, pre-efficiency
		before := level
		level += p * eff
		level -= leak
		if level < 0 {
			level = 0
		}
		if level > capacity {
			level = capacity
		}
		if !on && level >= turnOn {
			on = true
		}
		storedAcc += level - before
	}
	s.level, s.on = level, on
	return harvestedAcc, storedAcc
}

// HarvestPairsUntil is the engine's fused energy-wait kernel: it
// harvests up to n whole 1-second wait steps starting at clock t (with
// sec0 = int(t) the first trace second, power[k] = trace power of
// second sec0+k, so len(power) ≥ n+1), and checks the availability
// target between steps exactly where the stepping loop checks it.
//
// Each step is decomposed into the same two spans the engine's stepper
// would use — [t_k, sec_k+1) then [sec_k+1, t_k+1) — with the span
// lengths and the clock RE-DERIVED per step from the rounded float
// chain (t_{k+1} = t_k + 1.0 exactly as the stepper advances; for a
// clock carrying a full 53-bit fraction that add rounds, so the spans
// are NOT loop constants). All state stays in registers; the float
// accumulation chains — level, clock, and the harvested/stored ledgers
// threaded through hAcc/stAcc — are bit-identical to calling Harvest
// span by span. target must be positive. Steps stop when the chained
// clock can no longer take a full second before limit — the same
// per-iteration test the stepper applies, on the same rounded clock.
// Returns the steps consumed, the clock after them, the updated
// ledgers, and whether the target was met.
func (s *Storage) HarvestPairsUntil(power []float64, n, sec0 int, t, limit, target, hAcc, stAcc float64) (steps int, now, h, st float64, met bool) {
	eff, leak := s.ChargeEfficiency, s.LeakMWPerS
	capacity, turnOn, brown := s.CapacityMJ, s.TurnOnMJ, s.BrownOutMJ
	level, on := s.level, s.on
	for k := 0; k < n; k++ {
		if t+1.0 > limit {
			// The stepper would clip this step to a fraction; leave it
			// (and everything after) to the generic path.
			s.level, s.on = level, on
			return k, t, hAcc, stAcc, false
		}
		// t_k ∈ [sec0+k, sec0+k+1) by construction, and the rounded
		// end never dips below the boundary, so a ∈ (0, 1] and b ≥ 0;
		// when the clock sits exactly on the boundary, b = 0 and span 2
		// degenerates to an exact identity — matching the stepper,
		// which runs a single whole-second span there.
		boundary := float64(sec0 + k + 1)
		end := t + 1.0
		a := boundary - t
		// Span 1: the tail of second sec0+k.
		mj := power[k] * a
		hAcc += mj
		before := level
		level += mj * eff
		level -= leak * a
		if level < 0 {
			level = 0
		}
		if level > capacity {
			level = capacity
		}
		if !on && level >= turnOn {
			on = true
		}
		stAcc += level - before
		// Span 2: the head of second sec0+k+1.
		b := end - boundary
		mj = power[k+1] * b
		hAcc += mj
		before = level
		level += mj * eff
		level -= leak * b
		if level < 0 {
			level = 0
		}
		if level > capacity {
			level = capacity
		}
		if !on && level >= turnOn {
			on = true
		}
		stAcc += level - before
		t = end
		if on && level-brown >= target {
			s.level, s.on = level, on
			return k + 1, t, hAcc, stAcc, true
		}
	}
	s.level, s.on = level, on
	return n, t, hAcc, stAcc, false
}

// DrainZero applies n whole 1-second wait steps of zero-power
// harvesting from clock t (with sec0 = int(t)): per step, the same two
// leak-only spans the stepper would run, with span lengths and the
// clock re-derived from the rounded float chain each step (see
// HarvestPairsUntil) and the stored-energy ledger threaded through.
// With zero harvest the remaining Harvest steps (adding 0 stored
// energy, the capacity clamp, the turn-on check) are exact identities,
// so this reproduces Harvest(0, dt1); Harvest(0, dt2) per second bit
// for bit. Once the buffer is empty the physical state stops changing
// and only the clock chain is replayed — cheap adds — which is what
// lets the engine sleep through a harvesting night. Steps stop when the
// chained clock can no longer take a full second before limit, like the
// stepper. Returns the clock after the steps and the updated ledger.
func (s *Storage) DrainZero(n, sec0 int, t, limit, storedAcc float64) (now, st float64) {
	leak, turnOn := s.LeakMWPerS, s.TurnOnMJ
	level, on := s.level, s.on
	for k := 0; k < n; k++ {
		if t+1.0 > limit {
			break
		}
		boundary := float64(sec0 + k + 1)
		end := t + 1.0
		before := level
		level -= leak * (boundary - t)
		if level < 0 {
			level = 0
		}
		// Harvest's turn-on transition: reachable here only when
		// TurnOnMJ == BrownOutMJ (a browned-out buffer otherwise sits
		// strictly below turn-on and draining cannot raise it), but it
		// must fire exactly where the stepper would.
		if !on && level >= turnOn {
			on = true
		}
		storedAcc += level - before
		before = level
		level -= leak * (end - boundary)
		if level < 0 {
			level = 0
		}
		if !on && level >= turnOn {
			on = true
		}
		storedAcc += level - before
		t = end
		if level == 0 {
			// Physical state is now a fixed point: level stays 0, and
			// the turn-on check cannot newly fire (with turnOn == 0 it
			// already fired on this span; with turnOn > 0 an empty
			// buffer sits below it). Subsequent seconds change nothing
			// but the clock.
			for k++; k < n && t+1.0 <= limit; k++ {
				t += 1.0
			}
			break
		}
	}
	s.level, s.on = level, on
	return t, storedAcc
}

// Available returns the energy spendable before brown-out (mJ).
func (s *Storage) Available() float64 {
	if !s.on {
		return 0
	}
	a := s.level - s.BrownOutMJ
	if a < 0 {
		return 0
	}
	return a
}

// Spend drains mj from the buffer for computation. It returns false —
// and drains only down to the brown-out floor, turning the device off —
// if the request exceeds the available energy (a power failure mid-task).
func (s *Storage) Spend(mj float64) bool {
	if mj < 0 {
		panic(fmt.Sprintf("energy: negative spend %g", mj))
	}
	if !s.on {
		return false
	}
	if mj <= s.Available() {
		s.level -= mj
		if s.level <= s.BrownOutMJ {
			s.on = false
		}
		return true
	}
	s.level = s.BrownOutMJ
	s.on = false
	return false
}
