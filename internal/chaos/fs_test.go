package chaos_test

import (
	"errors"
	"testing"

	"repro/internal/chaos"
	"repro/internal/store"
)

// TestFaultFSShortWrite proves the store's crash safety under injected
// torn writes: a Put that fails mid-write leaves no trace after
// recovery, and artifacts stored before the fault survive.
func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put("a1", "pre-fault", []byte("healthy artifact payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	spec, err := chaos.ParseSpec("seed=1;shortwrite:store.write:p=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	faulty, err := store.Open(dir, store.WithFS(chaos.FaultFS(store.OSFS{}, chaos.New(spec))))
	if err != nil {
		t.Fatalf("Open with faults: %v", err)
	}
	err = faulty.Put("a2", "doomed", []byte("this write is torn"))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Put under shortwrite = %v, want ErrInjected", err)
	}

	// A clean restart serves a1; the torn write left nothing behind (the
	// failed Put already unlinked its temp file — a true crash leaving
	// the temp on disk is covered by store's TestRecoveryOrphanTemp).
	clean, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	arts, err := clean.Artifacts()
	if err != nil {
		t.Fatalf("Artifacts: %v", err)
	}
	if len(arts) != 1 || arts[0].ID != "a1" {
		t.Fatalf("recovered %+v, want only a1", arts)
	}
	if st := clean.Recovery(); st.Quarantined != 0 || st.TornManifest != 0 {
		t.Fatalf("recovery = %+v, want no corruption visible", st)
	}
}

// TestFaultFSFsyncError: every fsync fails, so no Put can claim
// durability — it must surface ErrInjected instead of acking a write
// that would not survive power loss.
func TestFaultFSFsyncError(t *testing.T) {
	spec, err := chaos.ParseSpec("seed=1;error:store.fsync:p=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	s, err := store.Open(t.TempDir(), store.WithFS(chaos.FaultFS(store.OSFS{}, chaos.New(spec))))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put("a1", "x", []byte("payload")); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Put under fsync fault = %v, want ErrInjected", err)
	}
}
