package chaos

import (
	"fmt"
	"time"

	"repro/internal/store"
)

// Fault sites the wrapped filesystem probes. Rules target them by
// prefix: "store" arms all three, "store.fsync" only flush failures.
const (
	SiteStoreWrite  = "store.write"
	SiteStoreFsync  = "store.fsync"
	SiteStoreRename = "store.rename"
)

// FaultFS wraps a store filesystem so every write, fsync, and rename
// probes the injector — short writes tear data files mid-append, fsync
// failures hit exactly where the durability contract lives. A nil
// injector returns fs unchanged.
func FaultFS(fs store.FS, in *Injector) store.FS {
	if in == nil {
		return fs
	}
	return &faultFS{FS: fs, in: in}
}

type faultFS struct {
	store.FS
	in *Injector
}

func (f *faultFS) Create(path string) (store.File, error) {
	file, err := f.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: f.in}, nil
}

func (f *faultFS) OpenAppend(path string) (store.File, error) {
	file, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, in: f.in}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := apply(f.in, SiteStoreRename); err != nil {
		return err
	}
	return f.FS.Rename(oldpath, newpath)
}

type faultFile struct {
	store.File
	in *Injector
}

func (f *faultFile) Write(p []byte) (int, error) {
	fault := f.in.Eval(SiteStoreWrite)
	switch fault.Kind {
	case KindLatency:
		time.Sleep(fault.Sleep)
	case KindPanic:
		panic(fmt.Sprintf("chaos: injected panic at %s", SiteStoreWrite))
	case KindError:
		return 0, fault.Err
	case KindDrop:
		return 0, fmt.Errorf("%w: drop at %s", ErrInjected, SiteStoreWrite)
	case KindShortWrite:
		// Persist a prefix, then fail — the torn-write crash model.
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fault.Err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := apply(f.in, SiteStoreFsync); err != nil {
		return err
	}
	return f.File.Sync()
}

// apply evaluates a probe where the only expressible faults are delay,
// error, or panic; drop and shortwrite degrade to error.
func apply(in *Injector, site string) error {
	fault := in.Eval(site)
	switch fault.Kind {
	case KindLatency:
		time.Sleep(fault.Sleep)
	case KindPanic:
		panic(fmt.Sprintf("chaos: injected panic at %s", site))
	case KindError, KindShortWrite, KindDrop:
		if fault.Err != nil {
			return fault.Err
		}
		return fmt.Errorf("%w: %s at %s", ErrInjected, fault.Kind, site)
	}
	return nil
}
