package chaos

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=7;latency:http:p=0.1,d=20ms;error:store.fsync:p=0.2;panic:batch.dispatch:p=0.02")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 7 {
		t.Fatalf("seed = %d, want 7", spec.Seed)
	}
	if len(spec.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(spec.Rules))
	}
	want := []Rule{
		{Kind: KindLatency, Site: "http", Prob: 0.1, Latency: 20 * time.Millisecond},
		{Kind: KindError, Site: "store.fsync", Prob: 0.2},
		{Kind: KindPanic, Site: "batch.dispatch", Prob: 0.02},
	}
	for i, w := range want {
		if spec.Rules[i] != w {
			t.Errorf("rule %d = %+v, want %+v", i, spec.Rules[i], w)
		}
	}
}

func TestParseSpecEmpty(t *testing.T) {
	spec, err := ParseSpec("  ")
	if err != nil {
		t.Fatalf("ParseSpec(blank): %v", err)
	}
	if spec != nil {
		t.Fatalf("ParseSpec(blank) = %+v, want nil", spec)
	}
	if in := New(spec); in.Eval("anything").Injected() {
		t.Fatal("nil injector injected a fault")
	}
}

func TestParseSpecDefaultSeed(t *testing.T) {
	spec, err := ParseSpec("drop:http:p=0.5")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 1 {
		t.Fatalf("default seed = %d, want 1", spec.Seed)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"seed=x",                     // non-numeric seed
		"seed=3",                     // seed but no rules
		"latency:http",               // missing params
		"latency:http:p=0.1",         // latency needs d=
		"latency:http:d=5ms",         // missing p=
		"flood:http:p=0.1",           // unknown kind
		"error:http:p=1.5",           // probability out of range
		"error:http:p=0.1,q=2",       // unknown param
		"error:http:p=0.1,d=-5ms",    // negative duration
		"latency:http:p=0.1,d=bogus", // unparsable duration
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", s)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	const in = "seed=42;latency:http:p=0.25,d=15ms;drop:http./v1/infer:p=0.05"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := spec.String(); got != in {
		t.Fatalf("String() = %q, want %q", got, in)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if again.String() != in {
		t.Fatalf("round trip drifted: %q", again.String())
	}
}

// TestEvalDeterministic is the determinism contract: two injectors built
// from the same spec produce identical fault sequences probe by probe.
func TestEvalDeterministic(t *testing.T) {
	spec, err := ParseSpec("seed=9;error:store:p=0.3;latency:http:p=0.5,d=1ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	a, b := New(spec), New(spec)
	sites := []string{"store.write", "store.fsync", "http./v1/infer", "batch.dispatch"}
	for i := 0; i < 4000; i++ {
		site := sites[i%len(sites)]
		fa, fb := a.Eval(site), b.Eval(site)
		if fa.Kind != fb.Kind || fa.Sleep != fb.Sleep || (fa.Err == nil) != (fb.Err == nil) {
			t.Fatalf("probe %d at %s diverged: %+v vs %+v", i, site, fa, fb)
		}
	}
}

func TestEvalSeedChangesStream(t *testing.T) {
	mk := func(seed string) *Injector {
		spec, err := ParseSpec("seed=" + seed + ";error:store:p=0.5")
		if err != nil {
			t.Fatalf("ParseSpec: %v", err)
		}
		return New(spec)
	}
	a, b := mk("1"), mk("2")
	same := true
	for i := 0; i < 256; i++ {
		if a.Eval("store.write").Injected() != b.Eval("store.write").Injected() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 256-probe decision streams")
	}
}

// TestEvalRate checks the injection frequency converges near the rule
// probability — the mixer actually behaves uniformly.
func TestEvalRate(t *testing.T) {
	spec, err := ParseSpec("seed=5;error:store:p=0.2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	in := New(spec)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if in.Eval("store.write").Injected() {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("injection rate %.4f, want 0.2 ± 0.02", rate)
	}
	if got := in.Probes(0); got != n {
		t.Fatalf("Probes(0) = %d, want %d", got, n)
	}
}

func TestEvalFirstMatchWins(t *testing.T) {
	spec, err := ParseSpec("seed=3;error:store.fsync:p=1;panic:store:p=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	in := New(spec)
	if f := in.Eval("store.fsync"); f.Kind != KindError {
		t.Fatalf("store.fsync matched %q, want error rule first", f.Kind)
	}
	if f := in.Eval("store.write"); f.Kind != KindPanic {
		t.Fatalf("store.write matched %q, want fall-through panic rule", f.Kind)
	}
	if f := in.Eval("http./v1/infer"); f.Injected() {
		t.Fatalf("unmatched site injected %q", f.Kind)
	}
}

func TestEvalErrIsInjected(t *testing.T) {
	spec, err := ParseSpec("seed=1;shortwrite:store.write:p=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	f := New(spec).Eval("store.write")
	if f.Kind != KindShortWrite {
		t.Fatalf("kind = %q, want shortwrite", f.Kind)
	}
	if !errors.Is(f.Err, ErrInjected) {
		t.Fatalf("fault error %v does not wrap ErrInjected", f.Err)
	}
}

func TestOnFaultHook(t *testing.T) {
	spec, err := ParseSpec("seed=1;error:store:p=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	in := New(spec)
	var mu sync.Mutex
	calls := map[string]int{}
	in.OnFault = func(site string, kind Kind) {
		mu.Lock()
		calls[site+"/"+string(kind)]++
		mu.Unlock()
	}
	for i := 0; i < 3; i++ {
		in.Eval("store.fsync")
	}
	if calls["store.fsync/error"] != 3 {
		t.Fatalf("OnFault calls = %v, want 3 at store.fsync/error", calls)
	}
}

// TestEvalConcurrent exercises the probe counters under the race
// detector; total injections must equal what a serial replay of the same
// probe count decides (order-insensitive because the decision for probe n
// is independent of which goroutine drew it).
func TestEvalConcurrent(t *testing.T) {
	spec, err := ParseSpec("seed=11;error:store:p=0.3")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	in := New(spec)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	hits := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if in.Eval("store.write").Injected() {
					hits[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	serial := New(spec)
	want := 0
	for i := 0; i < workers*per; i++ {
		if serial.Eval("store.write").Injected() {
			want++
		}
	}
	if total != want {
		t.Fatalf("concurrent injections = %d, serial replay = %d", total, want)
	}
}
