// Package chaos is a deterministic, seed-driven fault injector for the
// serving stack. An Injector evaluates named call sites ("http./v1/infer",
// "store.fsync", "batch.dispatch", ...) against a declarative Spec of
// rules and decides — reproducibly, from the spec seed and a per-rule
// probe counter — whether the k-th probe at a site suffers a fault and
// which kind: added latency, an injected error, a panic, a short write
// with a failed flush, or a dropped connection.
//
// Determinism contract: for a fixed Spec (seed included), the decision
// sequence of every rule is a pure function of its probe index. Two runs
// that issue the same number of probes per site observe the same faults
// in the same per-site order, regardless of goroutine scheduling — which
// is what makes a 30-second chaos soak replayable from one seed.
//
// The injector is wired in, never ambient: code under test receives an
// *Injector (or an FS wrapped by FaultFS) explicitly, and a nil Injector
// injects nothing at zero cost.
package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind is a fault category.
type Kind string

// The injectable fault kinds.
const (
	// KindLatency delays the operation by the rule's duration.
	KindLatency Kind = "latency"
	// KindError fails the operation with ErrInjected.
	KindError Kind = "error"
	// KindPanic panics at the site — exercising the recover guards
	// (HTTP middleware, batch queue worker) that keep the daemon alive.
	KindPanic Kind = "panic"
	// KindShortWrite makes a write persist only a prefix and then fail —
	// the torn-write crash model durable storage must survive.
	KindShortWrite Kind = "shortwrite"
	// KindDrop aborts the HTTP connection without a response.
	KindDrop Kind = "drop"
)

// ErrInjected marks every chaos-injected failure, so tests and error
// taxonomies can tell injected faults from organic ones with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Rule arms one fault kind at the sites matching a prefix.
type Rule struct {
	// Kind is the fault to inject.
	Kind Kind `json:"kind"`
	// Site is a call-site prefix ("" or "*" matches every site; "store"
	// matches "store.write" and "store.fsync"; "http./v1/infer" matches
	// exactly that route's probes).
	Site string `json:"site"`
	// Prob is the per-probe injection probability in [0, 1].
	Prob float64 `json:"prob"`
	// Latency is the injected delay for KindLatency rules.
	Latency time.Duration `json:"latency,omitempty"`
}

// matches reports whether the rule arms the given site.
func (r Rule) matches(site string) bool {
	return r.Site == "" || r.Site == "*" || strings.HasPrefix(site, r.Site)
}

// Spec is a parsed chaos specification: a seed and an ordered rule list
// (first matching rule wins per probe).
type Spec struct {
	Seed  uint64 `json:"seed"`
	Rules []Rule `json:"rules"`
}

// ParseSpec parses the -chaos-spec flag syntax: semicolon-separated
// entries, each either "seed=N" or "kind:site:p=P[,d=DUR]".
//
//	seed=7;latency:http:p=0.1,d=20ms;error:store.fsync:p=0.2;panic:batch.dispatch:p=0.02
//
// An empty string yields a nil Spec (chaos disabled).
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec := &Spec{Seed: 1}
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if after, ok := strings.CutPrefix(entry, "seed="); ok {
			seed, err := strconv.ParseUint(after, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %w", after, err)
			}
			spec.Seed = seed
			continue
		}
		rule, err := parseRule(entry)
		if err != nil {
			return nil, err
		}
		spec.Rules = append(spec.Rules, rule)
	}
	if len(spec.Rules) == 0 {
		return nil, fmt.Errorf("chaos: spec %q has no rules", s)
	}
	return spec, nil
}

// parseRule parses one "kind:site:p=P[,d=DUR]" entry.
func parseRule(entry string) (Rule, error) {
	parts := strings.SplitN(entry, ":", 3)
	if len(parts) != 3 {
		return Rule{}, fmt.Errorf("chaos: rule %q is not kind:site:p=P[,d=DUR]", entry)
	}
	r := Rule{Kind: Kind(parts[0]), Site: parts[1]}
	switch r.Kind {
	case KindLatency, KindError, KindPanic, KindShortWrite, KindDrop:
	default:
		return Rule{}, fmt.Errorf("chaos: unknown fault kind %q in rule %q", parts[0], entry)
	}
	for _, kv := range strings.Split(parts[2], ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Rule{}, fmt.Errorf("chaos: rule %q parameter %q is not key=value", entry, kv)
		}
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Rule{}, fmt.Errorf("chaos: rule %q probability %q must be in [0,1]", entry, val)
			}
			r.Prob = p
		case "d":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("chaos: rule %q duration %q: must be a non-negative duration", entry, val)
			}
			r.Latency = d
		default:
			return Rule{}, fmt.Errorf("chaos: rule %q has unknown parameter %q", entry, key)
		}
	}
	if r.Prob == 0 {
		return Rule{}, fmt.Errorf("chaos: rule %q needs p=P with P > 0", entry)
	}
	if r.Kind == KindLatency && r.Latency == 0 {
		return Rule{}, fmt.Errorf("chaos: latency rule %q needs d=DUR", entry)
	}
	return r, nil
}

// String renders the spec back into flag syntax.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.Seed)
	for _, r := range s.Rules {
		fmt.Fprintf(&b, ";%s:%s:p=%g", r.Kind, r.Site, r.Prob)
		if r.Latency > 0 {
			fmt.Fprintf(&b, ",d=%s", r.Latency)
		}
	}
	return b.String()
}

// Fault is one injection decision. The zero value means "no fault".
type Fault struct {
	Kind Kind
	// Sleep is the injected delay for KindLatency faults.
	Sleep time.Duration
	// Err carries ErrInjected (wrapped with the site) for KindError and
	// KindShortWrite faults.
	Err error
}

// Injected reports whether the decision carries a fault.
func (f Fault) Injected() bool { return f.Kind != "" }

// Injector evaluates sites against a Spec. Safe for concurrent use; a
// nil *Injector evaluates everything to "no fault".
type Injector struct {
	spec *Spec
	// probes[i] counts rule i's evaluation index — the deterministic
	// input to its decision stream.
	probes []atomic.Uint64
	// OnFault, when set, observes every injected fault (metrics hook).
	// Set it before the injector is shared; it must be safe for
	// concurrent calls.
	OnFault func(site string, kind Kind)
}

// New builds an injector for the spec. A nil spec yields a nil injector,
// which is valid and injects nothing.
func New(spec *Spec) *Injector {
	if spec == nil {
		return nil
	}
	return &Injector{spec: spec, probes: make([]atomic.Uint64, len(spec.Rules))}
}

// Eval decides the fault (if any) for one probe of site. The first rule
// matching the site consumes the probe; its decision is a pure function
// of (spec seed, rule index, probe index).
func (in *Injector) Eval(site string) Fault {
	if in == nil {
		return Fault{}
	}
	for i, r := range in.spec.Rules {
		if !r.matches(site) {
			continue
		}
		n := in.probes[i].Add(1) - 1
		if unit(in.spec.Seed, uint64(i), n) >= r.Prob {
			return Fault{}
		}
		f := Fault{Kind: r.Kind}
		switch r.Kind {
		case KindLatency:
			f.Sleep = r.Latency
		case KindError, KindShortWrite:
			f.Err = fmt.Errorf("%w: %s at %s", ErrInjected, r.Kind, site)
		}
		if in.OnFault != nil {
			in.OnFault(site, r.Kind)
		}
		return f
	}
	return Fault{}
}

// Probes returns how many probes rule i has consumed — test telemetry.
func (in *Injector) Probes(i int) uint64 {
	if in == nil || i < 0 || i >= len(in.probes) {
		return 0
	}
	return in.probes[i].Load()
}

// unit maps (seed, rule, probe) to a uniform float in [0, 1) through two
// splitmix64 avalanche rounds — the same mixing discipline the experiment
// engine uses for per-point seed derivation.
func unit(seed, rule, probe uint64) float64 {
	z := seed + 0x9e3779b97f4a7c15*(rule+1) + 0x632be59bd9b4e019*(probe+1)
	for i := 0; i < 2; i++ {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z = z ^ (z >> 31)
	}
	return float64(z>>11) / (1 << 53)
}
