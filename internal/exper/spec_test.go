package exper

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGridSpecDefaultsToPaperGrid(t *testing.T) {
	g, err := (&GridSpec{}).Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 1 {
		t.Fatalf("empty spec must resolve to the 1-point paper scenario, got %d points", g.Size())
	}
	if g.Devices[0].Name != "MSP432" || g.Policies[0].Name != "nonuniform" {
		t.Fatalf("paper defaults expected, got device %q policy %q", g.Devices[0].Name, g.Policies[0].Name)
	}
	if g.Traces[0].Kind != TraceSolar {
		t.Fatalf("default trace must be solar, got %q", g.Traces[0].Kind)
	}
}

func TestGridSpecRoundTripsThroughJSON(t *testing.T) {
	raw := `{
		"name": "wire",
		"baseSeed": 9,
		"events": 20,
		"baselines": true,
		"traces": [{"name": "s", "kind": "solar", "seconds": 900, "peakPower": 0.05}],
		"devices": ["MSP432", "ApolloM4"],
		"policies": ["nonuniform", "full-precision"],
		"exits": [{"name": "q", "mode": 0, "warmup": 2}, {"name": "static", "mode": 1}],
		"storages": [{"name": "3mJ", "storage": {"CapacityMJ": 3, "TurnOnMJ": 0.5, "BrownOutMJ": 0.05, "ChargeEfficiency": 0.9, "LeakMWPerS": 0.0002}}],
		"seeds": [1, 2]
	}`
	var spec GridSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	g, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 1*2*2*2*1*2 {
		t.Fatalf("want 16 points, got %d", g.Size())
	}
	if !g.Baselines || g.BaseSeed != 9 || g.Events != 20 {
		t.Fatalf("scalar fields lost in resolution: %+v", g)
	}
}

func TestGridSpecRejectsUnknownNames(t *testing.T) {
	if _, err := (&GridSpec{Devices: []string{"Z80"}}).Grid(); err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Fatalf("want unknown-device error, got %v", err)
	}
	if _, err := (&GridSpec{Policies: []string{"nope"}}).Grid(); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("want unknown-policy error, got %v", err)
	}
}

func TestRegistriesResolveEveryName(t *testing.T) {
	for _, name := range DeviceNames() {
		d, err := LookupDevice(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Build() == nil {
			t.Fatalf("device %q builds nil", name)
		}
	}
	for _, name := range PolicyNames() {
		p, err := LookupPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Build() == nil {
			t.Fatalf("policy %q builds nil", name)
		}
	}
}

func TestGridSpecBackend(t *testing.T) {
	g, err := (&GridSpec{Backend: "int8"}).Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Backend != "int8" {
		t.Fatalf("backend not carried: %q", g.Backend)
	}
	if _, err := (&GridSpec{Backend: "no-such-backend"}).Grid(); err == nil {
		t.Fatal("unknown backend must be rejected at grid validation")
	}
	if names := BackendNames(); len(names) != 4 {
		t.Fatalf("backend registry drifted: %v", names)
	}
	if g, err := (&GridSpec{Backend: "int8fast"}).Grid(); err != nil || g.Backend != "int8fast" {
		t.Fatalf("int8fast backend not carried: %v %v", g, err)
	}
}
