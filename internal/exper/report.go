package exper

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// GridResult is a completed grid run: one Result per point, in the
// grid's enumeration order.
type GridResult struct {
	Grid    *Grid    `json:"grid"`
	Results []Result `json:"results"`
	// Workers is the resolved worker-pool size that executed the run —
	// recorded for reproducibility logs (the "how was this produced"
	// line). Like Elapsed it is excluded from JSON, because the engine's
	// contract is that serialized output is identical at any worker
	// count.
	Workers int `json:"-"`
	// Elapsed is wall-clock telemetry; it is excluded from JSON so the
	// serialized output of a grid is reproducible byte for byte.
	Elapsed time.Duration `json:"-"`
}

// Errs returns the failed points' error strings (empty when all points
// succeeded). Points a canceled run never reached are skipped, not
// failed, and are excluded — count them with Skipped.
func (gr *GridResult) Errs() []string {
	var errs []string
	for _, r := range gr.Results {
		if r.Err != "" && !r.Skipped {
			errs = append(errs, fmt.Sprintf("point %d (%s seed %d): %s",
				r.Point.Index, r.Point.GroupKey(), r.Point.Seed, r.Err))
		}
	}
	return errs
}

// Skipped counts the points a canceled run never reached.
func (gr *GridResult) Skipped() int {
	n := 0
	for _, r := range gr.Results {
		if r.Skipped {
			n++
		}
	}
	return n
}

// JSON serializes the grid, every per-point row, and the across-seed
// aggregates, deterministically: same grid ⇒ same bytes, at any worker
// count. Per-point results are in enumeration order and aggregate rows
// are key-sorted, so no map-iteration or scheduling order leaks into the
// output and serialized reports diff cleanly across runs.
func (gr *GridResult) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Grid       *Grid    `json:"grid"`
		Results    []Result `json:"results"`
		Aggregates []AggRow `json:"aggregates"`
	}{gr.Grid, gr.Results, gr.Aggregate()}, "", "  ")
}

// AggRow is one across-seed aggregate: a (scenario, system) pair with
// the headline metrics summarized over the grid's seed axis.
type AggRow struct {
	Trace   string `json:"trace"`
	Device  string `json:"device"`
	Policy  string `json:"policy"`
	Exit    string `json:"exit"`
	Storage string `json:"storage"`
	System  string `json:"system"`

	IEpmJ        *metrics.Aggregate `json:"iepmj"`
	AccAll       *metrics.Aggregate `json:"accAll"`
	AccProcessed *metrics.Aggregate `json:"accProcessed"`
	LatencyS     *metrics.Aggregate `json:"latencyS"`
}

// SortKey is the row's stable ordering identity: the scenario key (all
// axes except seed) followed by the system name.
func (r AggRow) SortKey() string {
	return r.Trace + "|" + r.Device + "|" + r.Policy + "|" + r.Exit + "|" + r.Storage + "|" + r.System
}

// Aggregate groups results by scenario (all axes except seed) and system,
// and summarizes IEpmJ, accuracy, and latency across seeds. Values are
// accumulated in enumeration order and rows are sorted by (scenario,
// system) key, so the output is deterministic and key-order-stable no
// matter how the grid's axes are permuted. Failed points are skipped.
func (gr *GridResult) Aggregate() []AggRow {
	type key struct{ group, system string }
	index := map[key]int{}
	var rows []AggRow
	for _, r := range gr.Results {
		if r.Err != "" {
			continue
		}
		for _, row := range r.Rows {
			k := key{r.Point.GroupKey(), row.System}
			i, ok := index[k]
			if !ok {
				i = len(rows)
				index[k] = i
				rows = append(rows, AggRow{
					Trace: r.Point.Trace.Name, Device: r.Point.Device.Name,
					Policy: r.Point.Policy.Name, Exit: r.Point.Exit.Name,
					Storage: r.Point.Storage.Name, System: row.System,
					IEpmJ:        metrics.NewAggregate("IEpmJ"),
					AccAll:       metrics.NewAggregate("accAll"),
					AccProcessed: metrics.NewAggregate("accProcessed"),
					LatencyS:     metrics.NewAggregate("latencyS"),
				})
			}
			rows[i].IEpmJ.Add(row.IEpmJ)
			rows[i].AccAll.Add(row.AccAll)
			rows[i].AccProcessed.Add(row.AccProcessed)
			if row.ProcessedFrac > 0 {
				// Runs that processed nothing have no latency to report;
				// counting their zero would bias the mean low (same
				// convention as metrics.AggregateReports).
				rows[i].LatencyS.Add(row.MeanLatencyS)
			}
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].SortKey() < rows[b].SortKey() })
	return rows
}

// AggTable renders the across-seed aggregates as an aligned text table:
// one line per (scenario, system), IEpmJ and accuracy as mean ± std.
func (gr *GridResult) AggTable() string {
	rows := gr.Aggregate()
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-14s %-14s %-12s %-8s %-14s | %-17s %-17s %9s %6s\n",
		"trace", "device", "policy", "exit", "cap", "system",
		"IEpmJ (mean±std)", "acc-all (mean±std)", "lat s", "n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-14s %-14s %-12s %-8s %-14s | %8.3f ± %-6.3f %8.1f%% ± %-5.1f %9.1f %6d\n",
			r.Trace, r.Device, r.Policy, r.Exit, r.Storage, r.System,
			r.IEpmJ.Mean(), r.IEpmJ.Std(),
			100*r.AccAll.Mean(), 100*r.AccAll.Std(),
			r.LatencyS.Mean(), r.IEpmJ.N())
	}
	return b.String()
}

// Table renders every per-point row (no aggregation) — the long-form
// view for small grids.
func (gr *GridResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %-18s %-14s %-14s %-12s %-8s %6s %-14s %8s %9s %9s\n",
		"point", "trace", "device", "policy", "exit", "cap", "seed", "system", "IEpmJ", "acc-all", "lat s")
	for _, r := range gr.Results {
		if r.Err != "" {
			fmt.Fprintf(&b, "%5d %-18s ERROR: %s\n", r.Point.Index, r.Point.Trace.Name, r.Err)
			continue
		}
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%5d %-18s %-14s %-14s %-12s %-8s %6d %-14s %8.3f %8.1f%% %9.1f\n",
				r.Point.Index, r.Point.Trace.Name, r.Point.Device.Name,
				r.Point.Policy.Name, r.Point.Exit.Name, r.Point.Storage.Name,
				r.Point.Seed, row.System, row.IEpmJ, 100*row.AccAll, row.MeanLatencyS)
		}
	}
	return b.String()
}
