package exper

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/multiexit"
)

// The axis registries map the names a declarative GridSpec may use to
// the Go constructors behind them. They ship pre-populated with the
// paper's built-in axes and are open: RegisterDevice, RegisterPolicy,
// RegisterTrace, RegisterSchedule, and RegisterDeployment add
// user-defined axis values at runtime, after which any GridSpec —
// including one submitted over the ehserved HTTP API — can reference
// them by name.
//
// All registry access is guarded by one RWMutex, so registrations may
// race grid resolution and /v1/registry listings safely. Names are
// write-once: registering a duplicate (including a built-in) is an
// error, because a name that silently changed meaning would break the
// "same spec ⇒ same results" contract grids are built on.
var (
	regMu sync.RWMutex

	// deviceRegistry maps the MCU names a declarative spec may use.
	deviceRegistry = map[string]func() *mcu.Device{
		"MSP432":       mcu.MSP432,
		"MSP430FR5994": mcu.MSP430FR5994,
		"ApolloM4":     mcu.ApolloM4,
	}

	// policyRegistry maps the compression-policy names a declarative
	// spec may use. Policies that are defined relative to an
	// architecture are anchored to the paper's LeNet-EE, which is what
	// every policy-built grid deploys.
	policyRegistry = map[string]func() *compress.Policy{
		"nonuniform": compress.Fig1bNonuniform,
		"fig1b-uniform": func() *compress.Policy {
			return compress.Fig1bUniform(multiexit.LeNetEE(nil))
		},
		"full-precision": func() *compress.Policy {
			return compress.FullPrecision(multiexit.LeNetEE(nil))
		},
		"uniform-half-8bit": func() *compress.Policy {
			return compress.Uniform(multiexit.LeNetEE(nil), 0.5, 8, 8)
		},
	}

	// traceRegistry maps named trace builders usable via TraceSpec kind
	// "registered". The builder receives the point's derived seed.
	traceRegistry = map[string]TraceBuilder{
		"paper-solar": func(seed uint64) (*energy.Trace, error) {
			return energy.SyntheticSolarTrace(energy.SolarConfig{
				Seconds: 21600, PeakPower: 0.032, Seed: seed,
			}), nil
		},
		"paper-kinetic": func(seed uint64) (*energy.Trace, error) {
			return energy.SyntheticKineticTrace(energy.KineticConfig{
				Seconds: 21600, BurstPower: 0.9, Seed: seed,
			}), nil
		},
	}

	// scheduleRegistry maps the event-schedule generators a Grid's
	// Schedule field may name ("" selects "uniform").
	scheduleRegistry = map[string]ScheduleBuilder{
		"uniform": func(n, duration, classes int, seed uint64) *energy.Schedule {
			return energy.UniformSchedule(n, duration, classes, seed)
		},
		"bursty": func(n, duration, classes int, seed uint64) *energy.Schedule {
			return energy.BurstySchedule(n, duration, classes, 4, seed)
		},
	}

	// deployRegistry maps names to pre-built deployments (typically
	// loaded from artifacts). LookupPolicy falls back to it, so a
	// registered deployment is usable anywhere a policy name is.
	deployRegistry = map[string]*core.Deployed{}
)

// TraceBuilder materializes a registered trace axis value from the grid
// point's derived seed. Builders must be deterministic in the seed and
// safe for concurrent use.
type TraceBuilder func(seed uint64) (*energy.Trace, error)

// ScheduleBuilder generates a point's event schedule. Builders must be
// deterministic in their arguments and safe for concurrent use.
type ScheduleBuilder func(events, durationSeconds, classes int, seed uint64) *energy.Schedule

func register[V any](m map[string]V, kind, name string, v V, zero func(V) bool) error {
	if name == "" {
		return fmt.Errorf("exper: %s registration needs a name", kind)
	}
	if zero(v) {
		return fmt.Errorf("exper: %s %q registration is nil", kind, name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := m[name]; dup {
		return fmt.Errorf("exper: %s %q is already registered", kind, name)
	}
	m[name] = v
	return nil
}

// RegisterDevice adds an MCU model under the given name. The constructor
// runs once per grid point, so concurrent points never share a Device.
func RegisterDevice(name string, build func() *mcu.Device) error {
	return register(deviceRegistry, "device", name, build, func(f func() *mcu.Device) bool { return f == nil })
}

// RegisterPolicy adds a compression policy under the given name. The
// constructor must return equivalent policies on every call — the name
// keys the engine's deployment cache. Policies and deployments resolve
// through the same LookupPolicy namespace, so a name may live in only
// one of the two registries.
func RegisterPolicy(name string, build func() *compress.Policy) error {
	if name == "" {
		return fmt.Errorf("exper: policy registration needs a name")
	}
	if build == nil {
		return fmt.Errorf("exper: policy %q registration is nil", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := policyRegistry[name]; dup {
		return fmt.Errorf("exper: policy %q is already registered", name)
	}
	if _, dup := deployRegistry[name]; dup {
		return fmt.Errorf("exper: policy %q is already registered as a deployment", name)
	}
	policyRegistry[name] = build
	return nil
}

// RegisterTrace adds a named trace builder, referenced by a TraceSpec
// with Kind "registered".
func RegisterTrace(name string, build TraceBuilder) error {
	return register(traceRegistry, "trace", name, build, func(f TraceBuilder) bool { return f == nil })
}

// RegisterSchedule adds a named event-schedule generator, referenced by
// a Grid's (or GridSpec's) Schedule field.
func RegisterSchedule(name string, build ScheduleBuilder) error {
	return register(scheduleRegistry, "schedule", name, build, func(f ScheduleBuilder) bool { return f == nil })
}

// RegisterDeployment adds a pre-built deployment (e.g. one loaded from
// a saved artifact) under the given name. The deployment is shared
// read-only across all grid points that name it, like any cached
// deployment. Deployments and policies resolve through the same
// LookupPolicy namespace, so a name may live in only one of the two
// registries.
func RegisterDeployment(name string, d *core.Deployed) error {
	if name == "" {
		return fmt.Errorf("exper: deployment registration needs a name")
	}
	if d == nil {
		return fmt.Errorf("exper: deployment %q registration is nil", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := deployRegistry[name]; dup {
		return fmt.Errorf("exper: deployment %q is already registered", name)
	}
	if _, dup := policyRegistry[name]; dup {
		return fmt.Errorf("exper: deployment %q is already registered as a policy", name)
	}
	deployRegistry[name] = d
	return nil
}

// LookupDevice resolves a registry device name to an axis value.
func LookupDevice(name string) (DeviceSpec, error) {
	regMu.RLock()
	build, ok := deviceRegistry[name]
	regMu.RUnlock()
	if !ok {
		return DeviceSpec{}, fmt.Errorf("exper: unknown device %q (known: %v)", name, DeviceNames())
	}
	return Device(name, build), nil
}

// LookupPolicy resolves a registry policy name to an axis value. Names
// registered as deployments resolve to pre-built deployment axis values.
func LookupPolicy(name string) (PolicySpec, error) {
	regMu.RLock()
	build, ok := policyRegistry[name]
	dep, depOK := deployRegistry[name]
	regMu.RUnlock()
	if ok {
		return Policy(name, build), nil
	}
	if depOK {
		return PolicyFromDeployed(name, dep), nil
	}
	return PolicySpec{}, fmt.Errorf("exper: unknown policy %q (known policies: %v, deployments: %v)",
		name, PolicyNames(), DeploymentNames())
}

// LookupTrace resolves a registered trace name.
func LookupTrace(name string) (TraceBuilder, error) {
	regMu.RLock()
	build, ok := traceRegistry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("exper: unknown registered trace %q (known: %v)", name, TraceNames())
	}
	return build, nil
}

// LookupSchedule resolves a schedule-generator name; "" selects
// "uniform".
func LookupSchedule(name string) (ScheduleBuilder, error) {
	if name == "" {
		name = "uniform"
	}
	regMu.RLock()
	build, ok := scheduleRegistry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("exper: unknown schedule %q (known: %v)", name, ScheduleNames())
	}
	return build, nil
}

// LookupDeployment resolves a registered deployment name.
func LookupDeployment(name string) (*core.Deployed, error) {
	regMu.RLock()
	d, ok := deployRegistry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("exper: unknown deployment %q (known: %v)", name, DeploymentNames())
	}
	return d, nil
}

// DeviceNames lists the registry device names, sorted.
func DeviceNames() []string { return sortedKeys(deviceRegistry) }

// PolicyNames lists the registry policy names, sorted.
func PolicyNames() []string { return sortedKeys(policyRegistry) }

// TraceNames lists the registered trace names, sorted.
func TraceNames() []string { return sortedKeys(traceRegistry) }

// ScheduleNames lists the registered schedule-generator names, sorted.
func ScheduleNames() []string { return sortedKeys(scheduleRegistry) }

// DeploymentNames lists the registered deployment names, sorted.
func DeploymentNames() []string { return sortedKeys(deployRegistry) }

// BackendNames lists the inference-backend names a declarative spec may
// use, sorted.
func BackendNames() []string { return core.BackendNames() }

func sortedKeys[V any](m map[string]V) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
