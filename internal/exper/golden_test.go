package exper

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenGrid is small enough to run in milliseconds but exercises both
// runtime policies, a failing-free multi-seed axis, and aggregation.
func goldenGrid() *Grid {
	return &Grid{
		Name:     "golden",
		BaseSeed: 11,
		Events:   20,
		Traces:   []TraceSpec{SolarTrace(900, 0.05)},
		Devices:  []DeviceSpec{MSP432Device()},
		Policies: []PolicySpec{NonuniformPolicy()},
		Exits:    []ExitSpec{QLearningExit(2), StaticExit()},
		Storages: []StorageSpec{Capacitor(3)},
		Seeds:    []uint64{1, 2},
	}
}

// TestGridResultJSONGolden pins the serialized report format byte for
// byte: per-point results in enumeration order, aggregate rows sorted by
// (scenario, system) key, no map-iteration or scheduling order anywhere.
// If the format changes intentionally, regenerate with:
//
//	go test ./internal/exper -run GridResultJSONGolden -update
//
// The simulation itself is pure float64 arithmetic on derived seeds, so
// the bytes are stable across runs and worker counts by the engine's
// determinism contract.
func TestGridResultJSONGolden(t *testing.T) {
	res, err := NewEngine(4).Run(goldenGrid())
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) != 0 {
		t.Fatal(errs)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "grid_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("serialized GridResult drifted from %s — if intentional, regenerate with -update.\ngot %d bytes, want %d", path, len(got), len(want))
	}
}
