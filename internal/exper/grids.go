package exper

import (
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/mcu"
)

// Canonical axis values shared by the commands and examples. Each is a
// function so every grid gets independent spec values.

// QLearningExit is the paper's adaptive runtime with the given warm-up
// episode count (0 = default 12).
func QLearningExit(warmup int) ExitSpec {
	return ExitSpec{Name: "qlearning", Mode: core.PolicyQLearning, Warmup: warmup}
}

// StaticExit is the static-LUT baseline runtime.
func StaticExit() ExitSpec {
	return ExitSpec{Name: "static", Mode: core.PolicyStaticLUT}
}

// NonuniformPolicy is the paper's searched nonuniform compression shape.
func NonuniformPolicy() PolicySpec {
	return Policy("nonuniform", compress.Fig1bNonuniform)
}

// MSP432Device is the paper's target device axis value.
func MSP432Device() DeviceSpec { return Device("MSP432", mcu.MSP432) }

// PaperSolarTrace is the §V trace: 6 h of weak solar harvesting.
func PaperSolarTrace(peakMW float64) TraceSpec { return SolarTrace(21600, peakMW) }

// seedRange returns {base, base+1, …, base+n−1}.
func seedRange(base uint64, n int) []uint64 {
	if n < 1 {
		n = 1
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

// PaperCompareGrid is the Fig. 5 / §V-D setup as a one-point grid: the
// paper's scenario with the proposed system and all three baselines.
func PaperCompareGrid(seed uint64, warmup int, mode core.PolicyMode) *Grid {
	exit := QLearningExit(warmup)
	if mode == core.PolicyStaticLUT {
		exit = StaticExit()
	}
	return &Grid{
		Name:      "paper-compare",
		BaseSeed:  seed,
		Events:    500,
		Baselines: true,
		Traces:    []TraceSpec{PaperSolarTrace(0.032)},
		Devices:   []DeviceSpec{MSP432Device()},
		Policies:  []PolicySpec{NonuniformPolicy()},
		Exits:     []ExitSpec{exit},
		Storages:  []StorageSpec{Capacitor(6)},
		Seeds:     []uint64{seed},
	}
}

// PaperSweepGrid is cmd/sweep's design-space grid: harvesting peak ×
// capacitor size, replicated over seeds, with baselines for comparison.
// This is the single source of the scenario construction that used to be
// duplicated between cmd/sweep and cmd/paperbench.
func PaperSweepGrid(peaksMW, capsMJ []float64, seeds, events int) *Grid {
	g := &Grid{
		Name:      "paper-sweep",
		BaseSeed:  100,
		Events:    events,
		Baselines: true,
		Devices:   []DeviceSpec{MSP432Device()},
		Policies:  []PolicySpec{NonuniformPolicy()},
		Exits:     []ExitSpec{QLearningExit(8)},
		Seeds:     seedRange(100, seeds),
	}
	for _, p := range peaksMW {
		g.Traces = append(g.Traces, PaperSolarTrace(p))
	}
	for _, c := range capsMJ {
		g.Storages = append(g.Storages, Capacitor(c))
	}
	return g
}

// FleetGrid is the multi-device fleet sweep: three MCU classes under
// solar and kinetic harvesting, adaptive vs static runtime — 12 scenarios
// per seed, the "same model, whole deployment fleet" question.
func FleetGrid(seeds []uint64, events int) *Grid {
	return &Grid{
		Name:     "fleet-sweep",
		BaseSeed: 0xf1ee7,
		Events:   events,
		Traces: []TraceSpec{
			PaperSolarTrace(0.032),
			KineticTrace(21600, 0.9),
		},
		Devices: []DeviceSpec{
			MSP432Device(),
			Device("MSP430FR5994", mcu.MSP430FR5994),
			Device("ApolloM4", mcu.ApolloM4),
		},
		Policies: []PolicySpec{NonuniformPolicy()},
		Exits:    []ExitSpec{QLearningExit(8), StaticExit()},
		Storages: []StorageSpec{Capacitor(6)},
		Seeds:    seeds,
	}
}

// SeedReplicationGrid replicates the paper's default scenario over n
// seeds — the "how seed-sensitive are the headline numbers" experiment.
func SeedReplicationGrid(n, events int) *Grid {
	return &Grid{
		Name:      "seed-replication",
		BaseSeed:  0x5eed,
		Events:    events,
		Baselines: true,
		Traces:    []TraceSpec{PaperSolarTrace(0.032)},
		Devices:   []DeviceSpec{MSP432Device()},
		Policies:  []PolicySpec{NonuniformPolicy()},
		Exits:     []ExitSpec{QLearningExit(8)},
		Storages:  []StorageSpec{Capacitor(6)},
		Seeds:     seedRange(1, n),
	}
}
