package exper

import (
	"sync"

	"repro/internal/compress"
	"repro/internal/core"
)

// maxDeployCacheEntries bounds the cache so a long-running service fed
// client-chosen (policy, base seed) pairs cannot grow it without limit;
// a Deployed holds a full compressed network, so entries are not free.
const maxDeployCacheEntries = 128

// deployKey identifies one shared deployment: which policy (by its axis
// name) built from which deployment seed.
type deployKey struct {
	policy string
	seed   uint64
}

// deployEntry memoizes one build. The once gate means a deployment is
// built at most once even when concurrent grid runs request it together,
// and the expensive build runs outside the cache-wide lock so unrelated
// keys never serialize behind each other.
type deployEntry struct {
	once sync.Once
	d    *core.Deployed
	err  string
}

// DeployCache memoizes BuildDeployed outcomes across grid runs, so a
// session that executes many grids over the same policy axis builds each
// (policy, deploy seed) deployment exactly once. Failed builds are cached
// too — a policy that cannot deploy will not be retried every run.
//
// Deployments are shared read-only (the engine's worker/determinism
// contract already depends on that), so handing the same *Deployed to
// many concurrent grid runs is safe. The cache assumes a policy name is a
// stable identity: two PolicySpecs with the same Name and deploy seed
// must build the same policy. The canonical specs in grids.go satisfy
// this; custom specs should pick distinct names for distinct policies.
//
// Capacity is bounded (maxDeployCacheEntries); past the bound an
// arbitrary entry is evicted. Eviction only costs a rebuild — results
// are a pure function of (policy, seed), so it never changes outputs.
type DeployCache struct {
	mu sync.Mutex
	m  map[deployKey]*deployEntry
}

// NewDeployCache returns an empty cache, ready for concurrent use.
func NewDeployCache() *DeployCache {
	return &DeployCache{m: make(map[deployKey]*deployEntry)}
}

// Len reports how many (policy, seed) deployments the cache holds.
func (c *DeployCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// getOrBuild returns the cached deployment for (name, seed), building
// and recording it on first use. Concurrent callers of the same key wait
// for one build; different keys build in parallel.
func (c *DeployCache) getOrBuild(name string, seed uint64, build func() *compress.Policy) (*core.Deployed, string) {
	key := deployKey{policy: name, seed: seed}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		if len(c.m) >= maxDeployCacheEntries {
			for k := range c.m {
				delete(c.m, k)
				break
			}
		}
		e = &deployEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		d, err := core.BuildDeployed(build(), seed)
		if err != nil {
			e.err = err.Error()
			return
		}
		e.d = d
	})
	return e.d, e.err
}
