package exper

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// Result is the outcome of one grid point: the proposed system's row
// first, then (when Grid.Baselines is set) SonicNet, SpArSeNet, and
// LeNet-Cifar. A point that fails records Err and carries no rows; one
// bad point never aborts the rest of the grid.
type Result struct {
	Point Point            `json:"point"`
	Rows  []core.SystemRow `json:"rows,omitempty"`
	Err   string           `json:"err,omitempty"`
	// Skipped marks a point that never ran because the grid was canceled
	// before a worker reached it. Skipped points carry Err = ErrSkipped
	// and are excluded from aggregation like any other failed point.
	Skipped bool `json:"skipped,omitempty"`
}

// ErrSkipped is the Err string recorded on points a canceled run never
// reached.
const ErrSkipped = "exper: point skipped (grid canceled)"

// Engine shards a grid's points across a goroutine worker pool. The zero
// value is ready to use and runs on GOMAXPROCS workers.
type Engine struct {
	// Workers caps the pool size (<= 0 means GOMAXPROCS). WorkerCount is
	// the single place the cap is resolved; NewEngine clamps negative
	// values, so a Workers set directly to a negative number behaves like
	// zero too.
	Workers int
	// Cache, when set, memoizes policy deployments across grid runs
	// keyed by (policy name, deploy seed), so repeated grids stop
	// rebuilding identical Deployed models. Deployments are read-only
	// during simulation, which is what makes sharing them safe.
	Cache *DeployCache
	// OnResult, when set, observes each completed point. It may be called
	// from any worker but never concurrently; point completion order is
	// scheduling-dependent, so treat it as progress telemetry only.
	OnResult func(Result)
	// Backend is the default empirical-mode inference backend for grids
	// that do not name one themselves (zero value: the compiled plan).
	Backend core.InferBackend
	// Completed injects already-finished results by point index before
	// the run starts: those slots are filled verbatim, never re-run, and
	// never reported through OnResult. This is the resume path for a
	// checkpointed grid — because every point derives its RNG from
	// (BaseSeed, Index, Seed) alone, a run resumed this way produces a
	// GridResult byte-identical to one that was never interrupted.
	Completed map[int]Result
}

// NewEngine returns an engine with the given worker cap. Negative caps
// are clamped to 0 (= one worker per core); this is the one place the
// user-facing worker knob is validated.
func NewEngine(workers int) *Engine {
	if workers < 0 {
		workers = 0
	}
	return &Engine{Workers: workers}
}

// WorkerCount returns the effective pool size for this engine.
func (e *Engine) WorkerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every point of the grid with no cancellation deadline; it
// is RunContext with a background context.
//
// Deprecated: use RunContext so callers can cancel long sweeps; Run
// exists for pre-context call sites and mints an uncancellable root.
func (e *Engine) Run(g *Grid) (*GridResult, error) {
	return e.RunContext(context.Background(), g)
}

// RunContext executes every point of the grid and returns the collected
// results in enumeration order. Each point derives its own RNG streams
// from (BaseSeed, Index, Seed) and shares no mutable state with its
// siblings, so the returned GridResult is byte-identical for any worker
// count.
//
// Cancellation is cooperative and preserves partial results: the context
// is checked between grid points (and, inside a point, between training
// episodes). A context that is already dead before the run starts
// returns (nil, ctx.Err()). Once started, cancellation returns ctx.Err()
// together with a non-nil GridResult in which every completed point
// keeps its rows and every unreached point is marked Skipped. Points
// that did complete are bit-identical to the ones an uncancelled run
// produces.
func (e *Engine) RunContext(ctx context.Context, g *Grid) (*GridResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	points := g.Points()
	results := make([]Result, len(points))
	ran := make([]bool, len(points))
	for i, r := range e.Completed {
		if i < 0 || i >= len(points) {
			return nil, fmt.Errorf("exper: completed index %d outside grid of %d points", i, len(points))
		}
		results[i] = r
		ran[i] = true
	}

	// One registry lookup for the whole run: Validate vetted the name,
	// and the write-once registries cannot lose it afterwards.
	schedule, err := LookupSchedule(g.Schedule)
	if err != nil {
		return nil, err
	}

	start := time.Now()

	// Build each policy's deployment once, up front (or fetch it from the
	// engine's cross-run cache). Deployments are read-only during
	// surrogate-mode simulation (events carry no samples, so the network
	// never runs), which makes sharing one copy across all workers both
	// safe and the paper-faithful semantics: one deployed model, many
	// conditions. A failed build is recorded and charged to every point
	// using that policy.
	// A resumed run only needs deployments for policies that still have
	// pending points; on a fresh run every policy is pending.
	pending := make(map[string]bool, len(g.Policies))
	npending := 0
	for i, p := range points {
		if !ran[i] {
			pending[p.Policy.Name] = true
			npending++
		}
	}
	deps := make(map[string]*core.Deployed, len(g.Policies))
	depErrs := make(map[string]string, len(g.Policies))
	for i, ps := range g.Policies {
		if !pending[ps.Name] {
			continue
		}
		if ctx.Err() != nil {
			// Canceled mid-build: the run has started, so keep the
			// documented shape — every point skipped, error alongside.
			break
		}
		d, errMsg := e.buildDeployed(ps, g.DeploySeedFor(i))
		if errMsg != "" {
			depErrs[ps.Name] = errMsg
			continue
		}
		deps[ps.Name] = d
	}
	nw := e.WorkerCount()
	if nw > npending {
		nw = npending
	}

	var notify func(Result)
	if e.OnResult != nil {
		var mu sync.Mutex
		notify = func(r Result) {
			mu.Lock()
			e.OnResult(r)
			mu.Unlock()
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Results land at the point's own slot, so collection
				// order is deterministic even though completion order
				// is not.
				ran[i] = true
				if ctx.Err() != nil {
					// A job handed over in the same instant the context
					// died: skip it rather than start a doomed point.
					results[i] = Result{Point: points[i], Err: ErrSkipped, Skipped: true}
					continue
				}
				if msg, bad := depErrs[points[i].Policy.Name]; bad {
					results[i] = Result{Point: points[i], Err: msg}
				} else {
					results[i] = runPoint(ctx, g, points[i], deps[points[i].Policy.Name], e.Backend, schedule)
				}
				if notify != nil {
					notify(results[i])
				}
			}
		}()
	}
	// The jobs channel is unbuffered, so a cancelled context stops new
	// points from starting as soon as every in-flight point returns.
feed:
	for i := range points {
		if ran[i] {
			continue // restored from a checkpoint; never re-run
		}
		if ctx.Err() != nil {
			break feed
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	gr := &GridResult{
		Grid:    g,
		Results: results,
		Workers: nw,
		Elapsed: time.Since(start),
	}
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !ran[i] {
				results[i] = Result{Point: points[i], Err: ErrSkipped, Skipped: true}
			}
		}
		return gr, err
	}
	return gr, nil
}

// buildDeployed resolves one policy's shared deployment, through the
// cache when the engine has one. Pre-built deployment axis values
// (PolicyFromDeployed) bypass both the build and the cache — they are
// already the shared read-only object.
func (e *Engine) buildDeployed(ps PolicySpec, seed uint64) (*core.Deployed, string) {
	if ps.Deployed != nil {
		if d := ps.Deployed(); d != nil {
			return d, ""
		}
		return nil, fmt.Sprintf("exper: policy %q returned a nil deployment", ps.Name)
	}
	if e.Cache != nil {
		return e.Cache.getOrBuild(ps.Name, seed, ps.Build)
	}
	d, err := core.BuildDeployed(ps.Build(), seed)
	if err != nil {
		return nil, err.Error()
	}
	return d, ""
}

// runPoint materializes and simulates one scenario. Everything the
// simulation mutates — trace, schedule, device, storage, runtime — is
// constructed locally from the point's derived seed; the deployment is
// the policy's shared read-only copy (built fresh when deployed is nil).
// The grid's named backend wins over the engine default.
func runPoint(ctx context.Context, g *Grid, p Point, deployed *core.Deployed, defaultBackend core.InferBackend, schedule ScheduleBuilder) Result {
	res := Result{Point: p}

	trace, err := p.Trace.Build(p.RunSeed)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if trace.Duration() == 0 {
		res.Err = fmt.Sprintf("exper: trace %q is empty", p.Trace.Name)
		return res
	}
	store := p.Storage.Storage // copy; simulations mutate the charge state
	sc := &core.Scenario{
		Trace:    trace,
		Schedule: schedule(g.events(), trace.Duration(), g.classes(), p.RunSeed),
		Device:   p.Device.Build(),
		Storage:  &store,
		Seed:     p.RunSeed,
	}
	if deployed == nil {
		// Direct runPoint use outside RunContext's hoisted-deployment
		// path: resolve exactly like Engine.buildDeployed, including the
		// nil-deployment error.
		if p.Policy.Deployed != nil {
			if deployed = p.Policy.Deployed(); deployed == nil {
				res.Err = fmt.Sprintf("exper: policy %q returned a nil deployment", p.Policy.Name)
				return res
			}
		} else {
			deployed, err = core.BuildDeployed(p.Policy.Build(), p.DeploySeed)
			if err != nil {
				res.Err = err.Error()
				return res
			}
		}
	}
	backend := defaultBackend
	if g.Backend != "" {
		// Validate() vetted the name; a malformed grid that skipped
		// validation falls back to the default backend.
		if b, err := core.ParseBackend(g.Backend); err == nil {
			backend = b
		}
	}
	cfg := core.CompareConfig{Mode: p.Exit.Mode, WarmupEpisodes: p.Exit.Warmup, Backend: backend}

	if g.Baselines {
		rows, err := core.CompareSystems(ctx, sc, deployed, cfg)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Rows = rows
		return res
	}
	rep, err := core.RunProposed(ctx, sc, deployed, cfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	row := core.ReportRow(rep)
	row.System = "Our Approach"
	res.Rows = []core.SystemRow{row}
	return res
}
