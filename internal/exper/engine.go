package exper

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
)

// Result is the outcome of one grid point: the proposed system's row
// first, then (when Grid.Baselines is set) SonicNet, SpArSeNet, and
// LeNet-Cifar. A point that fails records Err and carries no rows; one
// bad point never aborts the rest of the grid.
type Result struct {
	Point Point            `json:"point"`
	Rows  []core.SystemRow `json:"rows,omitempty"`
	Err   string           `json:"err,omitempty"`
}

// Engine shards a grid's points across a goroutine worker pool. The zero
// value is ready to use and runs on GOMAXPROCS workers.
type Engine struct {
	// Workers caps the pool size (<= 0 means GOMAXPROCS).
	Workers int
	// OnResult, when set, observes each completed point. It may be called
	// from any worker but never concurrently; point completion order is
	// scheduling-dependent, so treat it as progress telemetry only.
	OnResult func(Result)
}

// NewEngine returns an engine with the given worker cap.
func NewEngine(workers int) *Engine { return &Engine{Workers: workers} }

// WorkerCount returns the effective pool size for this engine.
func (e *Engine) WorkerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every point of the grid and returns the collected results
// in enumeration order. Each point derives its own RNG streams from
// (BaseSeed, Index, Seed) and shares no mutable state with its siblings,
// so the returned GridResult is byte-identical for any worker count.
func (e *Engine) Run(g *Grid) (*GridResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	points := g.Points()
	results := make([]Result, len(points))

	start := time.Now()

	// Build each policy's deployment once, up front. Deployments are
	// read-only during surrogate-mode simulation (events carry no
	// samples, so the network never runs), which makes sharing one copy
	// across all workers both safe and the paper-faithful semantics: one
	// deployed model, many conditions. A failed build is recorded and
	// charged to every point using that policy.
	deps := make(map[string]*core.Deployed, len(g.Policies))
	depErrs := make(map[string]string, len(g.Policies))
	for i, ps := range g.Policies {
		d, err := core.BuildDeployed(ps.Build(), g.DeploySeedFor(i))
		if err != nil {
			depErrs[ps.Name] = err.Error()
			continue
		}
		deps[ps.Name] = d
	}
	nw := e.WorkerCount()
	if nw > len(points) {
		nw = len(points)
	}

	var notify func(Result)
	if e.OnResult != nil {
		var mu sync.Mutex
		notify = func(r Result) {
			mu.Lock()
			e.OnResult(r)
			mu.Unlock()
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Results land at the point's own slot, so collection
				// order is deterministic even though completion order
				// is not.
				if msg, bad := depErrs[points[i].Policy.Name]; bad {
					results[i] = Result{Point: points[i], Err: msg}
				} else {
					results[i] = runPoint(g, points[i], deps[points[i].Policy.Name])
				}
				if notify != nil {
					notify(results[i])
				}
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return &GridResult{Grid: g, Results: results, Elapsed: time.Since(start)}, nil
}

// runPoint materializes and simulates one scenario. Everything the
// simulation mutates — trace, schedule, device, storage, runtime — is
// constructed locally from the point's derived seed; the deployment is
// the policy's shared read-only copy (built fresh when deployed is nil).
func runPoint(g *Grid, p Point, deployed *core.Deployed) Result {
	res := Result{Point: p}

	trace, err := p.Trace.Build(p.RunSeed)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if trace.Duration() == 0 {
		res.Err = fmt.Sprintf("exper: trace %q is empty", p.Trace.Name)
		return res
	}
	store := p.Storage.Storage // copy; simulations mutate the charge state
	sc := &core.Scenario{
		Trace:    trace,
		Schedule: energy.UniformSchedule(g.events(), trace.Duration(), g.classes(), p.RunSeed),
		Device:   p.Device.Build(),
		Storage:  &store,
		Seed:     p.RunSeed,
	}
	if deployed == nil {
		deployed, err = core.BuildDeployed(p.Policy.Build(), p.DeploySeed)
		if err != nil {
			res.Err = err.Error()
			return res
		}
	}
	cfg := core.CompareConfig{Mode: p.Exit.Mode, WarmupEpisodes: p.Exit.Warmup}

	if g.Baselines {
		rows, err := core.CompareSystems(sc, deployed, cfg)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Rows = rows
		return res
	}
	rep, err := core.RunProposed(sc, deployed, cfg)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	row := core.ReportRow(rep)
	row.System = "Our Approach"
	res.Rows = []core.SystemRow{row}
	return res
}
