package exper

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
)

func TestRegisterDuplicateAndEmptyNames(t *testing.T) {
	if err := RegisterDevice("", mcu.MSP432); err == nil {
		t.Error("empty device name must be rejected")
	}
	if err := RegisterDevice("MSP432", mcu.MSP432); err == nil {
		t.Error("duplicate device name must be rejected")
	}
	if err := RegisterDevice("reg-dup-test", nil); err == nil {
		t.Error("nil device constructor must be rejected")
	}
	if err := RegisterDevice("reg-dup-test", mcu.MSP432); err != nil {
		t.Fatal(err)
	}
	if err := RegisterDevice("reg-dup-test", mcu.MSP432); err == nil {
		t.Error("re-registration must be rejected")
	}
	if err := RegisterPolicy("nonuniform", compress.Fig1bNonuniform); err == nil {
		t.Error("duplicate policy name must be rejected")
	}
	if err := RegisterSchedule("uniform", nil); err == nil {
		t.Error("duplicate/nil schedule must be rejected")
	}
}

// TestRegisteredAxesResolve runs a tiny grid whose device, trace, and
// schedule are all runtime registrations.
func TestRegisteredAxesResolve(t *testing.T) {
	if err := RegisterDevice("reg-axes-mcu", func() *mcu.Device {
		d := mcu.MSP432()
		d.Name = "reg-axes-mcu"
		return d
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterTrace("reg-axes-trace", func(seed uint64) (*energy.Trace, error) {
		return energy.ConstantTrace(600, 0.05), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterSchedule("reg-axes-sched", func(n, duration, classes int, seed uint64) *energy.Schedule {
		return energy.UniformSchedule(n, duration, classes, seed)
	}); err != nil {
		t.Fatal(err)
	}
	spec := GridSpec{
		Name:     "registered-axes",
		Events:   20,
		Devices:  []string{"reg-axes-mcu"},
		Schedule: "reg-axes-sched",
		Traces:   []TraceSpec{RegisteredTrace("reg-axes-trace")},
		Seeds:    []uint64{1},
	}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(1).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) != 0 {
		t.Fatalf("grid errors: %v", errs)
	}
	if res.Results[0].Point.Device.Name != "reg-axes-mcu" {
		t.Fatal("registered device did not reach the point")
	}
}

// TestRegisteredDeploymentResolvesAsPolicy verifies a pre-built
// deployment registered by name is usable through the policy axis and
// produces the exact result of using the deployment directly.
func TestRegisteredDeploymentResolvesAsPolicy(t *testing.T) {
	d, err := core.BuildDeployed(compress.Fig1bNonuniform(), 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := RegisterDeployment("reg-deploy-test", d); err != nil {
		t.Fatal(err)
	}
	if err := RegisterDeployment("reg-deploy-test", d); err == nil {
		t.Error("duplicate deployment registration must be rejected")
	}
	// The two registries share the LookupPolicy namespace: a name in one
	// may not be claimed in the other (it would be silently shadowed).
	if err := RegisterPolicy("reg-deploy-test", compress.Fig1bNonuniform); err == nil {
		t.Error("policy registration over a deployment name must be rejected")
	}
	if err := RegisterDeployment("nonuniform", d); err == nil {
		t.Error("deployment registration over a built-in policy name must be rejected")
	}
	spec := GridSpec{Name: "dep", Events: 20, Policies: []string{"reg-deploy-test"}, Seeds: []uint64{1}}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	viaRegistry, err := NewEngine(1).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if errs := viaRegistry.Errs(); len(errs) != 0 {
		t.Fatalf("grid errors: %v", errs)
	}

	direct := &Grid{
		Name: "dep", Events: 20,
		Traces:   []TraceSpec{PaperSolarTrace(0.032)},
		Devices:  []DeviceSpec{MSP432Device()},
		Policies: []PolicySpec{PolicyFromDeployed("reg-deploy-test", d)},
		Exits:    []ExitSpec{QLearningExit(0)},
		Storages: []StorageSpec{Capacitor(6)},
		Seeds:    []uint64{1},
	}
	want, err := NewEngine(1).Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	a, err := viaRegistry.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Elapsed is wall-clock; compare the deterministic parts by zeroing
	// it out of both documents.
	if stripElapsed(string(a)) != stripElapsed(string(b)) {
		t.Fatal("registry-resolved deployment diverges from direct use")
	}
}

func stripElapsed(s string) string {
	out := s
	for {
		i := strings.Index(out, `"elapsed"`)
		if i < 0 {
			return out
		}
		j := i
		for j < len(out) && out[j] != ',' && out[j] != '}' {
			j++
		}
		out = out[:i] + out[j:]
	}
}

// TestCSVTraceAsGridAxis: a trace file written with the tracegen codec
// is usable as a grid axis — both directly (kind "csv") and registered
// by name through energy.TraceFromCSV — and the two paths are
// bit-identical.
func TestCSVTraceAsGridAxis(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measured.csv")
	if err := energy.SaveTraceCSV(path, energy.ConstantTrace(600, 0.06)); err != nil {
		t.Fatal(err)
	}
	if err := RegisterTrace("csv-axis-test", energy.TraceFromCSV(path)); err != nil {
		t.Fatal(err)
	}
	// The two specs describe the same file differently, so the embedded
	// grids differ; the simulated rows must not.
	run := func(ts TraceSpec) string {
		t.Helper()
		g := &Grid{
			Name: "csv-axis", Events: 20,
			Traces:   []TraceSpec{ts},
			Devices:  []DeviceSpec{MSP432Device()},
			Policies: []PolicySpec{NonuniformPolicy()},
			Exits:    []ExitSpec{QLearningExit(2)},
			Storages: []StorageSpec{Capacitor(6)},
			Seeds:    []uint64{1},
		}
		res, err := NewEngine(1).Run(g)
		if err != nil {
			t.Fatal(err)
		}
		if errs := res.Errs(); len(errs) != 0 {
			t.Fatalf("grid errors: %v", errs)
		}
		rows, err := json.Marshal(res.Results[0].Rows)
		if err != nil {
			t.Fatal(err)
		}
		return string(rows)
	}
	direct := run(TraceSpec{Name: "csv-axis-test", Kind: TraceCSV, Path: path})
	registered := run(RegisteredTrace("csv-axis-test"))
	if direct != registered {
		t.Fatal("csv-kind and registered-kind trace axes diverge on the same file")
	}
}

// TestRegistryConcurrency races registrations against lookups and name
// listings — the data race the RWMutex closes (run with -race).
func TestRegistryConcurrency(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(3)
		go func(i int) {
			defer wg.Done()
			_ = RegisterDevice(fmt.Sprintf("race-mcu-%d", i), mcu.MSP432)
			_ = RegisterPolicy(fmt.Sprintf("race-pol-%d", i), compress.Fig1bNonuniform)
			_ = RegisterSchedule(fmt.Sprintf("race-sched-%d", i), func(n, d, c int, s uint64) *energy.Schedule {
				return energy.UniformSchedule(n, d, c, s)
			})
		}(i)
		go func() {
			defer wg.Done()
			_ = DeviceNames()
			_ = PolicyNames()
			_ = ScheduleNames()
			_ = TraceNames()
			_ = DeploymentNames()
		}()
		go func(i int) {
			defer wg.Done()
			_, _ = LookupDevice(fmt.Sprintf("race-mcu-%d", i))
			_, _ = LookupPolicy("nonuniform")
			_, _ = LookupSchedule("")
		}(i)
	}
	wg.Wait()
}
