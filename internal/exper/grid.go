package exper

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mcu"
)

// TraceKind selects the energy-trace generator for a TraceSpec.
type TraceKind string

// Supported trace kinds.
const (
	TraceSolar   TraceKind = "solar"
	TraceKinetic TraceKind = "kinetic"
	TraceCSV     TraceKind = "csv"
	// TraceRegistered resolves the spec's Name against the open trace
	// registry (see RegisterTrace) — how user-defined and file-backed
	// trace builders become grid axis values.
	TraceRegistered TraceKind = "registered"
)

// TraceSpec declaratively describes one energy trace axis value. It is
// pure data (JSON-serializable) so a grid can be logged alongside its
// results; the trace itself is materialized per point with the point's
// derived seed.
type TraceSpec struct {
	// Name labels the axis value in tables and aggregation keys.
	Name string    `json:"name"`
	Kind TraceKind `json:"kind"`
	// Seconds is the trace duration (0 = generator default, 6 h).
	Seconds int `json:"seconds,omitempty"`
	// PeakPower is the solar clear-sky peak or kinetic burst power in mW
	// (0 = generator default).
	PeakPower float64 `json:"peakPower,omitempty"`
	// Path locates the CSV file for TraceCSV specs.
	Path string `json:"path,omitempty"`
}

// Build materializes the trace with the given seed.
func (ts TraceSpec) Build(seed uint64) (*energy.Trace, error) {
	switch ts.Kind {
	case TraceSolar:
		return energy.SyntheticSolarTrace(energy.SolarConfig{
			Seconds: ts.Seconds, PeakPower: ts.PeakPower, Seed: seed,
		}), nil
	case TraceKinetic:
		return energy.SyntheticKineticTrace(energy.KineticConfig{
			Seconds: ts.Seconds, BurstPower: ts.PeakPower, Seed: seed,
		}), nil
	case TraceCSV:
		return energy.TraceFromCSV(ts.Path)(seed)
	case TraceRegistered:
		build, err := LookupTrace(ts.Name)
		if err != nil {
			return nil, err
		}
		return build(seed)
	default:
		return nil, fmt.Errorf("exper: unknown trace kind %q", ts.Kind)
	}
}

// RegisteredTrace references a trace builder registered under name (see
// RegisterTrace) as an axis value.
func RegisteredTrace(name string) TraceSpec {
	return TraceSpec{Name: name, Kind: TraceRegistered}
}

// SolarTrace is the common solar axis value.
func SolarTrace(seconds int, peakMW float64) TraceSpec {
	return TraceSpec{
		Name: fmt.Sprintf("solar-%.3fmW", peakMW),
		Kind: TraceSolar, Seconds: seconds, PeakPower: peakMW,
	}
}

// KineticTrace is the common kinetic axis value.
func KineticTrace(seconds int, burstMW float64) TraceSpec {
	return TraceSpec{
		Name: fmt.Sprintf("kinetic-%.3fmW", burstMW),
		Kind: TraceKinetic, Seconds: seconds, PeakPower: burstMW,
	}
}

// DeviceSpec names one MCU axis value. Build constructs a fresh device
// per point so concurrent points never share model state.
type DeviceSpec struct {
	Name  string             `json:"name"`
	Build func() *mcu.Device `json:"-"`
}

// Device wraps a device constructor as an axis value.
func Device(name string, build func() *mcu.Device) DeviceSpec {
	return DeviceSpec{Name: name, Build: build}
}

// PolicySpec names one deployment axis value: either a compression
// policy (Build constructs a fresh policy per deployment; the engine
// compresses LeNet-EE with it) or a pre-built deployment (Deployed
// returns a shared read-only *core.Deployed — e.g. one restored from a
// saved artifact — and Build is nil).
type PolicySpec struct {
	Name  string                  `json:"name"`
	Build func() *compress.Policy `json:"-"`
	// Deployed, when non-nil, wins over Build: the axis value is the
	// returned pre-built deployment and no compression runs.
	Deployed func() *core.Deployed `json:"-"`
}

// Policy wraps a policy constructor as an axis value.
func Policy(name string, build func() *compress.Policy) PolicySpec {
	return PolicySpec{Name: name, Build: build}
}

// PolicyFromDeployed wraps a pre-built deployment as an axis value. The
// deployment is shared read-only by every point that uses it.
func PolicyFromDeployed(name string, d *core.Deployed) PolicySpec {
	return PolicySpec{Name: name, Deployed: func() *core.Deployed { return d }}
}

// ExitSpec names one runtime exit-policy axis value.
type ExitSpec struct {
	Name string          `json:"name"`
	Mode core.PolicyMode `json:"mode"`
	// Warmup is the number of Q-learning warm-up episodes (0 = the
	// CompareConfig default of 12; ignored by the static LUT).
	Warmup int `json:"warmup,omitempty"`
}

// StorageSpec names one capacitor axis value. The Storage is copied per
// point, so the template is never mutated by a simulation.
type StorageSpec struct {
	Name    string         `json:"name"`
	Storage energy.Storage `json:"storage"`
}

// Capacitor is the common storage axis value: the paper's default
// thresholds at the given capacity.
func Capacitor(capacityMJ float64) StorageSpec {
	return StorageSpec{
		Name: fmt.Sprintf("%.1fmJ", capacityMJ),
		Storage: energy.Storage{
			CapacityMJ: capacityMJ, TurnOnMJ: 0.5, BrownOutMJ: 0.05,
			ChargeEfficiency: 0.9, LeakMWPerS: 0.0002,
		},
	}
}

// Grid is a declarative cross product of scenario axes. Every combination
// of trace × device × policy × exit × storage × seed is one Point; the
// engine shards points across workers.
type Grid struct {
	// Name labels the grid in tables and JSON output.
	Name string `json:"name"`
	// BaseSeed perturbs every point's derived seed, so two grids with the
	// same axes but different base seeds are independent replications.
	BaseSeed uint64 `json:"baseSeed"`
	// Events is the number of schedule events per point (default 500).
	Events int `json:"events,omitempty"`
	// EventClasses is the label alphabet size (default 10).
	EventClasses int `json:"eventClasses,omitempty"`
	// Baselines additionally runs SonicNet, SpArSeNet, and LeNet-Cifar on
	// every point (3 extra simulations per point).
	Baselines bool `json:"baselines,omitempty"`
	// Backend names the empirical-mode inference backend ("plan" — the
	// default compiled zero-allocation plan —, "legacy", or "int8"; see
	// core.BackendNames). Surrogate-mode points never execute the
	// network, so it only affects grids whose runs attach samples.
	Backend string `json:"backend,omitempty"`
	// Schedule names the event-schedule generator applied per point
	// ("" = "uniform"; see ScheduleNames and RegisterSchedule).
	Schedule string `json:"schedule,omitempty"`

	Traces   []TraceSpec   `json:"traces"`
	Devices  []DeviceSpec  `json:"devices"`
	Policies []PolicySpec  `json:"policies"`
	Exits    []ExitSpec    `json:"exits"`
	Storages []StorageSpec `json:"storages"`
	Seeds    []uint64      `json:"seeds"`
}

// Validate reports an unusable grid.
func (g *Grid) Validate() error {
	switch {
	case len(g.Traces) == 0:
		return fmt.Errorf("exper: grid %q has no traces", g.Name)
	case len(g.Devices) == 0:
		return fmt.Errorf("exper: grid %q has no devices", g.Name)
	case len(g.Policies) == 0:
		return fmt.Errorf("exper: grid %q has no policies", g.Name)
	case len(g.Exits) == 0:
		return fmt.Errorf("exper: grid %q has no exit policies", g.Name)
	case len(g.Storages) == 0:
		return fmt.Errorf("exper: grid %q has no storages", g.Name)
	case len(g.Seeds) == 0:
		return fmt.Errorf("exper: grid %q has no seeds", g.Name)
	case g.Events < 0:
		return fmt.Errorf("exper: grid %q has negative event count", g.Name)
	}
	if _, err := core.ParseBackend(g.Backend); err != nil {
		return fmt.Errorf("exper: grid %q: %w", g.Name, err)
	}
	if _, err := LookupSchedule(g.Schedule); err != nil {
		return fmt.Errorf("exper: grid %q: %w", g.Name, err)
	}
	// Vet every named trace axis up front, like the other named axes, so
	// a typo fails the submission instead of every point at run time.
	for _, ts := range g.Traces {
		switch ts.Kind {
		case TraceSolar, TraceKinetic:
		case TraceCSV:
			if ts.Path == "" {
				return fmt.Errorf("exper: grid %q: csv trace %q has no path", g.Name, ts.Name)
			}
		case TraceRegistered:
			if _, err := LookupTrace(ts.Name); err != nil {
				return fmt.Errorf("exper: grid %q: %w", g.Name, err)
			}
		default:
			return fmt.Errorf("exper: grid %q: unknown trace kind %q", g.Name, ts.Kind)
		}
	}
	names := map[string]bool{}
	for _, p := range g.Policies {
		if p.Name == "" || names[p.Name] {
			return fmt.Errorf("exper: grid %q needs unique non-empty policy names (got %q twice or empty)", g.Name, p.Name)
		}
		if p.Build == nil && p.Deployed == nil {
			return fmt.Errorf("exper: grid %q policy %q has neither a policy constructor nor a deployment", g.Name, p.Name)
		}
		names[p.Name] = true
	}
	return nil
}

func (g *Grid) events() int {
	if g.Events > 0 {
		return g.Events
	}
	return 500
}

func (g *Grid) classes() int {
	if g.EventClasses > 0 {
		return g.EventClasses
	}
	return 10
}

// Size returns the number of points in the cross product.
func (g *Grid) Size() int {
	return len(g.Traces) * len(g.Devices) * len(g.Policies) * len(g.Exits) * len(g.Storages) * len(g.Seeds)
}

// Point is one fully-resolved scenario of the grid.
type Point struct {
	// Index is the point's position in row-major enumeration order
	// (trace outermost, seed innermost).
	Index int `json:"index"`

	Trace   TraceSpec   `json:"trace"`
	Device  DeviceSpec  `json:"device"`
	Policy  PolicySpec  `json:"policy"`
	Exit    ExitSpec    `json:"exit"`
	Storage StorageSpec `json:"storage"`
	// Seed is the user-visible replicate seed from the grid's Seeds axis.
	Seed uint64 `json:"seed"`
	// RunSeed is the derived seed that actually drives the point's trace,
	// schedule, and runtime RNG streams. It is a pure function of
	// (BaseSeed, Index, Seed) — never of shared state or scheduling
	// order — which is what makes engine output independent of the worker
	// count.
	RunSeed uint64 `json:"runSeed"`
	// DeploySeed drives the deployment (network init + compression). It
	// depends only on (BaseSeed, policy index): the paper deploys ONE
	// compressed model and varies the conditions around it, so all points
	// sharing a policy share a bit-identical deployment — which also lets
	// the engine build each deployment once instead of once per point.
	DeploySeed uint64 `json:"deploySeed"`
}

// GroupKey identifies the point's scenario with the seed axis removed —
// the grouping used for across-seed aggregation.
func (p Point) GroupKey() string {
	return fmt.Sprintf("%s|%s|%s|%s|%s",
		p.Trace.Name, p.Device.Name, p.Policy.Name, p.Exit.Name, p.Storage.Name)
}

// deploySalt separates the deployment seed space from the per-point
// stream space.
const deploySalt = 0xdeb7_0000_0000

// DeploySeedFor returns the deployment seed for the i-th policy axis
// value.
func (g *Grid) DeploySeedFor(policyIdx int) uint64 {
	return deriveSeed(g.BaseSeed, deploySalt, uint64(policyIdx))
}

// Points enumerates the cross product in deterministic row-major order.
func (g *Grid) Points() []Point {
	pts := make([]Point, 0, g.Size())
	idx := 0
	for _, tr := range g.Traces {
		for _, dev := range g.Devices {
			for pi, pol := range g.Policies {
				for _, ex := range g.Exits {
					for _, st := range g.Storages {
						for _, seed := range g.Seeds {
							pts = append(pts, Point{
								Index: idx, Trace: tr, Device: dev, Policy: pol,
								Exit: ex, Storage: st, Seed: seed,
								RunSeed:    deriveSeed(g.BaseSeed, uint64(idx), seed),
								DeploySeed: g.DeploySeedFor(pi),
							})
							idx++
						}
					}
				}
			}
		}
	}
	return pts
}

// DeriveSeed exposes the engine's stream-derivation mix for callers that
// need sibling streams outside a grid (the Session façade derives its
// per-use RNGs through this, so session-scoped randomness and grid
// randomness share one scheme).
func DeriveSeed(base, stream, salt uint64) uint64 {
	return deriveSeed(base, stream, salt)
}

// deriveSeed mixes the grid base seed, the point index, and the replicate
// seed through two splitmix64 avalanche rounds. Distinct inputs map to
// well-separated streams, and the result depends only on the point's
// identity — per-shard determinism falls out of that.
func deriveSeed(base, index, seed uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(index+1) + 0x632be59bd9b4e019*(seed+1)
	for i := 0; i < 2; i++ {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z = z ^ (z >> 31)
	}
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return z
}
