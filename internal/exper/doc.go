// Package exper is the parallel experiment engine: it executes a
// declarative grid of intermittent-inference scenarios — energy trace ×
// MCU device × compression policy × exit policy × seed — on a goroutine
// worker pool and aggregates the outcomes into metrics tables and JSON.
//
// # Determinism contract
//
// Engine output is bit-identical at any worker count. Three rules make
// that hold, and extensions must preserve them:
//
//  1. Every point's randomness flows from Point.RunSeed, a pure function
//     of (Grid.BaseSeed, point index, replicate seed) — never from shared
//     RNG state or scheduling order.
//  2. A point constructs everything it mutates (trace, schedule, device,
//     storage, runtime) locally. The only cross-point sharing is the
//     per-policy deployment, which is read-only during simulation and
//     seeded by (BaseSeed, policy index) alone — the paper's "one
//     deployed model, many conditions" semantics.
//  3. Workers write results into the point's own slot of a pre-sized
//     slice, so collection order equals enumeration order regardless of
//     completion order.
//
// The determinism test in exper_test.go pins the contract by comparing
// the serialized output of workers=1 and workers=8 runs byte for byte.
//
// # Usage
//
//	grid := exper.PaperSweepGrid([]float64{0.02, 0.032}, []float64{3, 6}, 3, 500)
//	res, err := exper.NewEngine(0).Run(grid) // 0 ⇒ GOMAXPROCS workers
//	fmt.Print(res.AggTable())
//
// RunContext adds cooperative cancellation (checked between points and,
// via internal/core, between training episodes) with partial results
// preserved; Engine.Cache (a DeployCache) memoizes per-policy
// deployments across runs; GridSpec is the fully-declarative JSON twin
// of Grid used by the HTTP serving layer. The public entry point for all
// of this is the root package's Session.
//
// Underneath, the hot tensor kernels (tensor.MatMulInto and the conv
// im2col-GEMM path) are themselves row-band parallel with pooled scratch
// buffers, so a single large inference also spreads across cores.
package exper
