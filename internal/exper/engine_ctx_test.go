package exper

import (
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunContextCancelPreservesPartialResults pins the cancellation
// contract: canceling mid-grid returns ctx.Err() together with a non-nil
// GridResult in which every completed point keeps its rows and every
// unreached point is marked Skipped.
func TestRunContextCancelPreservesPartialResults(t *testing.T) {
	grid := testGrid() // 8 points
	ctx, cancel := context.WithCancel(context.Background())

	e := NewEngine(1)
	var seen atomic.Int32
	e.OnResult = func(Result) {
		if seen.Add(1) == 1 {
			cancel() // cancel as soon as the first point lands
		}
	}
	res, err := e.RunContext(ctx, grid)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("canceled run must still return the partial GridResult")
	}
	if len(res.Results) != grid.Size() {
		t.Fatalf("results slice must keep enumeration shape: %d vs %d", len(res.Results), grid.Size())
	}
	var completed, skipped, aborted int
	for _, r := range res.Results {
		switch {
		case len(r.Rows) > 0 && r.Err == "":
			completed++
		case r.Skipped:
			if r.Err != ErrSkipped {
				t.Fatalf("skipped point carries Err %q", r.Err)
			}
			skipped++
		case r.Err != "":
			aborted++ // canceled mid-point: recorded as a failed point
		default:
			t.Fatalf("point %d is neither completed, skipped, nor aborted: %+v", r.Point.Index, r)
		}
	}
	if completed == 0 {
		t.Fatal("at least the first point must have completed")
	}
	if skipped == 0 {
		t.Fatal("with 1 worker and an early cancel, some points must be skipped")
	}
	t.Logf("completed=%d aborted=%d skipped=%d", completed, aborted, skipped)

	// Completed points must be bit-identical to an uncancelled run.
	full, err := NewEngine(1).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Results {
		if len(r.Rows) == 0 || r.Err != "" {
			continue
		}
		if got, want := mustJSON(t, r), mustJSON(t, full.Results[i]); got != want {
			t.Fatalf("completed point %d differs from uncancelled run:\n%s\nvs\n%s", i, got, want)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunContextPreCanceled: a context dead on arrival runs nothing.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewEngine(2).RunContext(ctx, testGrid())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("a run that never started should not fabricate a GridResult")
	}
}

// TestNewEngineClampsNegativeWorkers pins the single-place worker-cap
// validation: negative caps behave exactly like 0 (GOMAXPROCS).
func TestNewEngineClampsNegativeWorkers(t *testing.T) {
	if got, want := NewEngine(-5).WorkerCount(), NewEngine(0).WorkerCount(); got != want {
		t.Fatalf("negative cap resolves to %d, want %d", got, want)
	}
	if NewEngine(3).WorkerCount() != 3 {
		t.Fatal("positive caps must be respected")
	}
}

// TestGridResultRecordsWorkers: the resolved pool size is surfaced for
// reproducibility records (and clamped to the point count).
func TestGridResultRecordsWorkers(t *testing.T) {
	grid := testGrid()
	grid.Baselines = false
	grid.Seeds = []uint64{1}
	grid.Storages = grid.Storages[:1] // 2 points
	res, err := NewEngine(8).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Fatalf("8 workers over 2 points must resolve to 2, got %d", res.Workers)
	}
}

// TestDeployCacheReusesDeployments: two runs over the same policy axis
// build the deployment once, and the cached run is bit-identical to the
// uncached one.
func TestDeployCacheReusesDeployments(t *testing.T) {
	grid := testGrid()
	cache := NewDeployCache()

	e := NewEngine(2)
	e.Cache = cache
	r1, err := e.Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("one policy × one deploy seed must cache 1 deployment, got %d", cache.Len())
	}
	r2, err := e.Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("second run must not grow the cache, got %d", cache.Len())
	}

	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("cached rerun diverged from first run")
	}

	// And against a cache-less engine: the cache is an optimization, not
	// a semantic.
	r3, err := NewEngine(2).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := r3.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j3) {
		t.Fatal("cached run diverged from uncached engine path")
	}
}
