package exper

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestResumeByteIdentical is the checkpoint/replay contract: a run that
// restores half its points from a prior run's results — round-tripped
// through JSON, exactly as a journal replay would deliver them — must
// serialize byte-identically to an uninterrupted run.
func TestResumeByteIdentical(t *testing.T) {
	grid := testGrid()

	full, err := NewEngine(2).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// Replay every other point through the JSON round trip a journal
	// imposes; SystemRow is exactly float64/string-shaped, so the trip
	// is lossless.
	completed := make(map[int]Result)
	for i, res := range full.Results {
		if i%2 != 0 {
			continue
		}
		line, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		var replayed Result
		if err := json.Unmarshal(line, &replayed); err != nil {
			t.Fatal(err)
		}
		completed[i] = replayed
	}

	e := NewEngine(4)
	e.Completed = completed
	var notified int
	e.OnResult = func(Result) { notified++ }
	resumed, err := e.RunContext(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed JSON differs from uninterrupted run:\n--- full ---\n%s\n--- resumed ---\n%s", want, got)
	}
	// Restored points are filled, not re-run: only the remaining half is
	// reported as progress.
	if wantRun := len(grid.Points()) - len(completed); notified != wantRun {
		t.Fatalf("OnResult fired %d times, want %d (restored points must not re-report)", notified, wantRun)
	}
}

// TestResumeAllComplete: restoring every point runs zero workers and
// still produces the identical document.
func TestResumeAllComplete(t *testing.T) {
	grid := testGrid()
	full, err := NewEngine(2).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.JSON()
	if err != nil {
		t.Fatal(err)
	}
	completed := make(map[int]Result, len(full.Results))
	for i, res := range full.Results {
		completed[i] = res
	}
	e := NewEngine(4)
	e.Completed = completed
	e.OnResult = func(Result) { t.Error("OnResult fired on a fully-restored run") }
	resumed, err := e.RunContext(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("fully-restored run serialized differently")
	}
}

// TestResumeRejectsOutOfRangeIndex: a corrupt journal index must fail
// loudly, not silently drop or misplace a result.
func TestResumeRejectsOutOfRangeIndex(t *testing.T) {
	grid := testGrid()
	e := NewEngine(1)
	e.Completed = map[int]Result{grid.Size(): {}}
	if _, err := e.RunContext(context.Background(), grid); err == nil {
		t.Fatal("out-of-range completed index accepted")
	}
}
