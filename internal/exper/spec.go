package exper

// GridSpec is the fully-declarative, JSON-serializable twin of Grid: the
// device and policy axes are named instead of carrying Go constructors,
// so a grid can cross a process boundary (the ehserved HTTP API submits
// these). Empty axes default to the paper's §V values, which keeps the
// minimal spec — `{"seeds":[1]}` — runnable. Names resolve against the
// open axis registries (see RegisterDevice and friends), so components
// registered at runtime are immediately addressable.
type GridSpec struct {
	Name         string `json:"name,omitempty"`
	BaseSeed     uint64 `json:"baseSeed,omitempty"`
	Events       int    `json:"events,omitempty"`
	EventClasses int    `json:"eventClasses,omitempty"`
	Baselines    bool   `json:"baselines,omitempty"`
	// Backend names the empirical-mode inference backend; see
	// BackendNames for the registry ("" selects the compiled plan).
	Backend string `json:"backend,omitempty"`
	// Schedule names the event-schedule generator; see ScheduleNames
	// ("" selects "uniform").
	Schedule string `json:"schedule,omitempty"`

	Traces []TraceSpec `json:"traces,omitempty"`
	// Devices names MCU axis values; see DeviceNames for the registry.
	Devices []string `json:"devices,omitempty"`
	// Policies names compression-policy axis values (see PolicyNames) or
	// registered deployments (see RegisterDeployment).
	Policies []string      `json:"policies,omitempty"`
	Exits    []ExitSpec    `json:"exits,omitempty"`
	Storages []StorageSpec `json:"storages,omitempty"`
	Seeds    []uint64      `json:"seeds,omitempty"`
}

// Grid resolves the named axes against the axis registries and returns a
// validated, runnable grid.
func (s *GridSpec) Grid() (*Grid, error) { return s.GridResolved(nil) }

// GridResolved is Grid with a caller-supplied policy resolver consulted
// before the registries — how ehserved maps "artifact:<id>" policy names
// onto its uploaded artifacts without publishing them process-wide.
func (s *GridSpec) GridResolved(lookup func(name string) (PolicySpec, bool)) (*Grid, error) {
	g := &Grid{
		Name:         s.Name,
		BaseSeed:     s.BaseSeed,
		Events:       s.Events,
		EventClasses: s.EventClasses,
		Baselines:    s.Baselines,
		Backend:      s.Backend,
		Schedule:     s.Schedule,
		Traces:       s.Traces,
		Exits:        s.Exits,
		Storages:     s.Storages,
		Seeds:        s.Seeds,
	}
	if g.Name == "" {
		g.Name = "grid"
	}
	if len(g.Traces) == 0 {
		g.Traces = []TraceSpec{PaperSolarTrace(0.032)}
	}
	if len(g.Exits) == 0 {
		g.Exits = []ExitSpec{QLearningExit(0)}
	}
	if len(g.Storages) == 0 {
		g.Storages = []StorageSpec{Capacitor(6)}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1}
	}
	devices := s.Devices
	if len(devices) == 0 {
		devices = []string{"MSP432"}
	}
	for _, name := range devices {
		d, err := LookupDevice(name)
		if err != nil {
			return nil, err
		}
		g.Devices = append(g.Devices, d)
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []string{"nonuniform"}
	}
	for _, name := range policies {
		if lookup != nil {
			if p, ok := lookup(name); ok {
				g.Policies = append(g.Policies, p)
				continue
			}
		}
		p, err := LookupPolicy(name)
		if err != nil {
			return nil, err
		}
		g.Policies = append(g.Policies, p)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
