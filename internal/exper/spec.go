package exper

import (
	"fmt"
	"sort"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/mcu"
	"repro/internal/multiexit"
)

// GridSpec is the fully-declarative, JSON-serializable twin of Grid: the
// device and policy axes are named instead of carrying Go constructors,
// so a grid can cross a process boundary (the ehserved HTTP API submits
// these). Empty axes default to the paper's §V values, which keeps the
// minimal spec — `{"seeds":[1]}` — runnable.
type GridSpec struct {
	Name         string `json:"name,omitempty"`
	BaseSeed     uint64 `json:"baseSeed,omitempty"`
	Events       int    `json:"events,omitempty"`
	EventClasses int    `json:"eventClasses,omitempty"`
	Baselines    bool   `json:"baselines,omitempty"`
	// Backend names the empirical-mode inference backend; see
	// BackendNames for the registry ("" selects the compiled plan).
	Backend string `json:"backend,omitempty"`

	Traces []TraceSpec `json:"traces,omitempty"`
	// Devices names MCU axis values; see DeviceNames for the registry.
	Devices []string `json:"devices,omitempty"`
	// Policies names compression-policy axis values; see PolicyNames.
	Policies []string      `json:"policies,omitempty"`
	Exits    []ExitSpec    `json:"exits,omitempty"`
	Storages []StorageSpec `json:"storages,omitempty"`
	Seeds    []uint64      `json:"seeds,omitempty"`
}

// Grid resolves the named axes against the device and policy registries
// and returns a validated, runnable grid.
func (s *GridSpec) Grid() (*Grid, error) {
	g := &Grid{
		Name:         s.Name,
		BaseSeed:     s.BaseSeed,
		Events:       s.Events,
		EventClasses: s.EventClasses,
		Baselines:    s.Baselines,
		Backend:      s.Backend,
		Traces:       s.Traces,
		Exits:        s.Exits,
		Storages:     s.Storages,
		Seeds:        s.Seeds,
	}
	if g.Name == "" {
		g.Name = "grid"
	}
	if len(g.Traces) == 0 {
		g.Traces = []TraceSpec{PaperSolarTrace(0.032)}
	}
	if len(g.Exits) == 0 {
		g.Exits = []ExitSpec{QLearningExit(0)}
	}
	if len(g.Storages) == 0 {
		g.Storages = []StorageSpec{Capacitor(6)}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1}
	}
	devices := s.Devices
	if len(devices) == 0 {
		devices = []string{"MSP432"}
	}
	for _, name := range devices {
		d, err := LookupDevice(name)
		if err != nil {
			return nil, err
		}
		g.Devices = append(g.Devices, d)
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []string{"nonuniform"}
	}
	for _, name := range policies {
		p, err := LookupPolicy(name)
		if err != nil {
			return nil, err
		}
		g.Policies = append(g.Policies, p)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// deviceRegistry maps the MCU names a declarative spec may use.
var deviceRegistry = map[string]func() *mcu.Device{
	"MSP432":       mcu.MSP432,
	"MSP430FR5994": mcu.MSP430FR5994,
	"ApolloM4":     mcu.ApolloM4,
}

// policyRegistry maps the compression-policy names a declarative spec may
// use. Policies that are defined relative to an architecture are anchored
// to the paper's LeNet-EE, which is what every grid deploys.
var policyRegistry = map[string]func() *compress.Policy{
	"nonuniform": compress.Fig1bNonuniform,
	"fig1b-uniform": func() *compress.Policy {
		return compress.Fig1bUniform(multiexit.LeNetEE(nil))
	},
	"full-precision": func() *compress.Policy {
		return compress.FullPrecision(multiexit.LeNetEE(nil))
	},
	"uniform-half-8bit": func() *compress.Policy {
		return compress.Uniform(multiexit.LeNetEE(nil), 0.5, 8, 8)
	},
}

// LookupDevice resolves a registry device name to an axis value.
func LookupDevice(name string) (DeviceSpec, error) {
	build, ok := deviceRegistry[name]
	if !ok {
		return DeviceSpec{}, fmt.Errorf("exper: unknown device %q (known: %v)", name, DeviceNames())
	}
	return Device(name, build), nil
}

// LookupPolicy resolves a registry policy name to an axis value.
func LookupPolicy(name string) (PolicySpec, error) {
	build, ok := policyRegistry[name]
	if !ok {
		return PolicySpec{}, fmt.Errorf("exper: unknown policy %q (known: %v)", name, PolicyNames())
	}
	return Policy(name, build), nil
}

// DeviceNames lists the registry device names, sorted.
func DeviceNames() []string { return sortedKeys(deviceRegistry) }

// PolicyNames lists the registry policy names, sorted.
func PolicyNames() []string { return sortedKeys(policyRegistry) }

// BackendNames lists the inference-backend names a declarative spec may
// use, sorted.
func BackendNames() []string { return core.BackendNames() }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
