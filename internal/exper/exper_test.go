package exper

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"repro/internal/core"
)

// testGrid is a small but non-trivial grid: 2 traces × 2 storages ×
// 2 seeds = 8 points, with baselines, short traces, and few events so it
// stays fast under -race.
func testGrid() *Grid {
	return &Grid{
		Name:      "determinism-test",
		BaseSeed:  7,
		Events:    40,
		Baselines: true,
		Traces: []TraceSpec{
			SolarTrace(1800, 0.04),
			KineticTrace(1800, 0.9),
		},
		Devices:  []DeviceSpec{MSP432Device()},
		Policies: []PolicySpec{NonuniformPolicy()},
		Exits:    []ExitSpec{QLearningExit(2)},
		Storages: []StorageSpec{Capacitor(3), Capacitor(6)},
		Seeds:    []uint64{1, 2},
	}
}

// TestEngineDeterministicAcrossWorkerCounts is the engine's contract
// test: the aggregated, serialized output of a grid run must be byte
// identical at workers=1 and workers=8.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	grid := testGrid()

	r1, err := NewEngine(1).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := NewEngine(8).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if errs := r1.Errs(); len(errs) != 0 {
		t.Fatalf("workers=1 run had point errors: %v", errs)
	}

	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j8, err := r8.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatalf("workers=1 and workers=8 JSON differ:\n--- w1 ---\n%s\n--- w8 ---\n%s", j1, j8)
	}
	if a1, a8 := r1.AggTable(), r8.AggTable(); a1 != a8 {
		t.Fatalf("aggregate tables differ:\n--- w1 ---\n%s\n--- w8 ---\n%s", a1, a8)
	}
}

func TestGridEnumeration(t *testing.T) {
	grid := testGrid()
	pts := grid.Points()
	if len(pts) != grid.Size() || len(pts) != 8 {
		t.Fatalf("got %d points, Size()=%d, want 8", len(pts), grid.Size())
	}
	seen := map[uint64]bool{}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
		if seen[p.RunSeed] {
			t.Fatalf("duplicate RunSeed %#x at point %d", p.RunSeed, i)
		}
		seen[p.RunSeed] = true
	}
	// Enumeration is row-major with seeds innermost.
	if pts[0].Seed != 1 || pts[1].Seed != 2 {
		t.Fatalf("seeds not innermost: %d, %d", pts[0].Seed, pts[1].Seed)
	}
	if pts[0].Storage.Name == pts[2].Storage.Name {
		t.Fatalf("storage did not advance at point 2")
	}
}

func TestDeriveSeedStability(t *testing.T) {
	// The derivation is part of the reproducibility contract: same
	// inputs, same stream — across processes and PRs.
	if a, b := deriveSeed(7, 3, 1), deriveSeed(7, 3, 1); a != b {
		t.Fatalf("deriveSeed not a pure function: %#x vs %#x", a, b)
	}
	if deriveSeed(7, 3, 1) == deriveSeed(7, 4, 1) {
		t.Fatal("index does not separate streams")
	}
	if deriveSeed(7, 3, 1) == deriveSeed(8, 3, 1) {
		t.Fatal("base seed does not separate streams")
	}
	if deriveSeed(7, 3, 1) == deriveSeed(7, 3, 2) {
		t.Fatal("replicate seed does not separate streams")
	}
	if deriveSeed(0, 0, 0) == 0 {
		t.Fatal("derived seed must never be zero (RNG remaps 0)")
	}
}

func TestEngineRecordsPointErrors(t *testing.T) {
	grid := testGrid()
	// An unknown trace kind is now rejected by Validate up front; a CSV
	// trace whose file is missing passes validation (the path is only
	// opened per point) and exercises the point-level error path.
	grid.Traces = []TraceSpec{
		{Name: "bogus", Kind: TraceCSV, Path: "/does/not/exist.csv"},
		SolarTrace(1800, 0.04),
	}
	grid.Baselines = false
	grid.Seeds = []uint64{1}
	grid.Storages = grid.Storages[:1]
	res, err := NewEngine(4).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs()) != 1 {
		t.Fatalf("want 1 point error, got %v", res.Errs())
	}
	// The healthy point still produced rows.
	var rows int
	for _, r := range res.Results {
		rows += len(r.Rows)
	}
	if rows != 1 {
		t.Fatalf("want 1 surviving row, got %d", rows)
	}
}

func TestAggregateGroupsAcrossSeeds(t *testing.T) {
	grid := testGrid()
	res, err := NewEngine(0).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Aggregate()
	// 4 scenarios (2 traces × 2 storages) × 4 systems (ours + 3 baselines).
	if len(rows) != 16 {
		t.Fatalf("want 16 aggregate rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.IEpmJ.N() != len(grid.Seeds) {
			t.Fatalf("row %s/%s aggregates %d values, want %d seeds",
				r.Trace, r.System, r.IEpmJ.N(), len(grid.Seeds))
		}
	}
	if !sort.SliceIsSorted(rows, func(a, b int) bool { return rows[a].SortKey() < rows[b].SortKey() }) {
		t.Fatal("aggregate rows are not sorted by (scenario, system) key")
	}
}

func TestValidateRejectsEmptyAxes(t *testing.T) {
	grid := testGrid()
	grid.Devices = nil
	if _, err := NewEngine(1).Run(grid); err == nil {
		t.Fatal("expected validation error for empty device axis")
	}
}

func TestPaperCompareGridMatchesCompareSystems(t *testing.T) {
	// The engine's one-point paper grid must agree with driving core
	// directly at the same derived seed — the engine adds scheduling, not
	// semantics.
	grid := PaperCompareGrid(42, 2, core.PolicyQLearning)
	grid.Events = 60
	grid.Traces = []TraceSpec{SolarTrace(1800, 0.04)}
	res, err := NewEngine(3).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) != 0 {
		t.Fatal(errs)
	}
	if len(res.Results) != 1 || len(res.Results[0].Rows) != 4 {
		t.Fatalf("want 1 point × 4 systems, got %+v", res.Results)
	}

	p := grid.Points()[0]
	sched, err := LookupSchedule(grid.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	direct := runPoint(context.Background(), grid, p, nil, core.BackendPlan, sched)
	if direct.Err != "" {
		t.Fatal(direct.Err)
	}
	for i, row := range res.Results[0].Rows {
		d := direct.Rows[i]
		if row.System != d.System || row.IEpmJ != d.IEpmJ || row.AccAll != d.AccAll ||
			row.MeanLatencyS != d.MeanLatencyS {
			t.Fatalf("row %d differs: %+v vs %+v", i, row, d)
		}
	}
}
