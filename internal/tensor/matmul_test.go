package tensor

import (
	"math"
	"testing"
)

func TestMatMulHandValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("C[%d] = %v, want %v (C=%v)", i, c.Data[i], w, c.Data)
		}
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := New(4, 4)
	FillNormal(a, rng, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if math.Abs(float64(c.Data[i]-a.Data[i])) > 1e-6 {
			t.Fatal("A×I must equal A")
		}
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a := New(3, 5)
	b := New(4, 5)
	FillNormal(a, rng, 1)
	FillNormal(b, rng, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose2D(b))
	if got.L2Distance(want) > 1e-4 {
		t.Fatalf("MatMulTransB diverges from explicit transpose by %g", got.L2Distance(want))
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(3)
	a := New(5, 3)
	b := New(5, 4)
	FillNormal(a, rng, 1)
	FillNormal(b, rng, 1)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose2D(a), b)
	if got.L2Distance(want) > 1e-4 {
		t.Fatalf("MatMulTransA diverges from explicit transpose by %g", got.L2Distance(want))
	}
}

func TestTranspose2DInvolution(t *testing.T) {
	rng := NewRNG(4)
	a := New(3, 7)
	FillNormal(a, rng, 1)
	b := Transpose2D(Transpose2D(a))
	if a.L2Distance(b) != 0 {
		t.Fatal("double transpose must be identity")
	}
}

func TestMatMulIntoReusesStorage(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2)
	dst.Fill(99) // must be overwritten, not accumulated
	MatMulInto(dst, a, b)
	if dst.Data[0] != 5 || dst.Data[3] != 8 {
		t.Fatalf("MatMulInto = %v", dst.Data)
	}
}

// TestGemmTransBSerialRowBatched checks the property the batched
// inference executor (internal/plan.BatchExec) relies on for its dense
// stages: stacking many inputs as extra A rows in one GemmTransBSerial
// call yields, row for row, bit-identical output to m=1 calls per input
// — every output element is one self-contained ascending-p dot product.
func TestGemmTransBSerialRowBatched(t *testing.T) {
	rng := NewRNG(11)
	for _, dims := range [][3]int{
		{3, 7, 2}, {4, 16, 6}, {5, 9, 7}, {16, 75, 49}, {7, 31, 1},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		a := New(m, k)
		b := New(n, k)
		FillNormal(a, rng, 1)
		FillNormal(b, rng, 1)
		wide := make([]float32, m*n)
		one := make([]float32, n)
		GemmTransBSerial(wide, a.Data, b.Data, m, k, n)
		for i := 0; i < m; i++ {
			GemmTransBSerial(one, a.Data[i*k:(i+1)*k], b.Data, 1, k, n)
			for j := range one {
				if wide[i*n+j] != one[j] {
					t.Fatalf("m=%d k=%d n=%d: row %d element %d = %x, want %x (must be bit-identical)",
						m, k, n, i, j, wide[i*n+j], one[j])
				}
			}
		}
	}
}
