package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core)
// shared by weight initialization, the synthetic dataset, the solar trace
// model, and the RL exploration noise. A dedicated generator keeps every
// experiment reproducible from a single seed without depending on global
// math/rand state.
type RNG struct {
	state uint64
	// Box-Muller spare value.
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed. Seed 0 is remapped so the
// zero value still produces a usable stream.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Reseed rewinds the generator to the start of the stream for seed,
// exactly as NewRNG(seed) would, but in place — arena-style callers (the
// fleet simulator's per-device schedule streams) reuse one generator
// value instead of allocating a fresh RNG per episode. Seed 0 is
// remapped like NewRNG's.
func (r *RNG) Reseed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r.state = seed
	r.hasSpare = false
	r.spare = 0
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard-normal sample (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.hasSpare = true
	return u * mul
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from the current stream, letting
// subsystems (dataset, trace, agents) consume randomness without
// perturbing each other's sequences.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}

// FillNormal fills t with N(0, std²) samples.
func FillNormal(t *Tensor, r *RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64() * std)
	}
}

// FillUniform fills t with U[lo, hi) samples.
func FillUniform(t *Tensor, r *RNG, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Range(lo, hi))
	}
}
