package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if got := tt.Len(); got != 24 {
		t.Fatalf("Len = %d, want 24", got)
	}
	if tt.Rank() != 3 || tt.Dim(0) != 2 || tt.Dim(1) != 3 || tt.Dim(2) != 4 {
		t.Fatalf("bad shape %v", tt.Shape())
	}
	for _, v := range tt.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRowMajorLayout(t *testing.T) {
	tt := New(2, 3)
	tt.Set(5, 1, 2)
	if tt.Data[1*3+2] != 5 {
		t.Fatalf("Set wrote to wrong offset: %v", tt.Data)
	}
	if tt.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", tt.At(1, 2))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceAdoptsData(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	tt := FromSlice(data, 2, 2)
	tt.Set(9, 0, 0)
	if data[0] != 9 {
		t.Fatal("FromSlice must share backing storage")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesDataAndInfers(t *testing.T) {
	tt := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := tt.Reshape(3, -1)
	if r.Dim(0) != 3 || r.Dim(1) != 2 {
		t.Fatalf("inferred shape %v, want [3 2]", r.Shape())
	}
	r.Set(42, 0, 0)
	if tt.At(0, 0) != 42 {
		t.Fatal("Reshape must be a view")
	}
}

func TestReshapeBadVolumePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 7
	if a.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.AddInPlace(b)
	if a.Data[2] != 33 {
		t.Fatalf("AddInPlace: %v", a.Data)
	}
	a.AxpyInPlace(2, b)
	if a.Data[0] != 31 {
		t.Fatalf("AxpyInPlace: %v", a.Data)
	}
	a.ScaleInPlace(0.5)
	if a.Data[0] != 15.5 {
		t.Fatalf("ScaleInPlace: %v", a.Data)
	}
}

func TestSumAbsSumMaxAbs(t *testing.T) {
	a := FromSlice([]float32{-1, 2, -3}, 3)
	if a.Sum() != -2 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.AbsSum() != 6 {
		t.Fatalf("AbsSum = %v", a.AbsSum())
	}
	if a.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestArgMax(t *testing.T) {
	if got := FromSlice([]float32{1, 5, 3}, 3).ArgMax(); got != 1 {
		t.Fatalf("ArgMax = %d", got)
	}
	if got := (&Tensor{}).ArgMax(); got != -1 {
		t.Fatalf("empty ArgMax = %d, want -1", got)
	}
}

func TestL2Distance(t *testing.T) {
	a := FromSlice([]float32{0, 0}, 2)
	b := FromSlice([]float32{3, 4}, 2)
	if d := a.L2Distance(b); math.Abs(d-5) > 1e-6 {
		t.Fatalf("L2Distance = %v, want 5", d)
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("identical shapes should match")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("different shapes should not match")
	}
	if New(2, 3).SameShape(New(2, 3, 1)) {
		t.Fatal("different ranks should not match")
	}
}

// Property: Axpy with alpha 1 equals Add.
func TestAxpyEqualsAddProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		a1 := FromSlice(append([]float32(nil), vals...), len(vals))
		a2 := FromSlice(append([]float32(nil), vals...), len(vals))
		b := FromSlice(append([]float32(nil), vals...), len(vals))
		a1.AddInPlace(b)
		a2.AxpyInPlace(1, b)
		for i := range a1.Data {
			if a1.Data[i] != a2.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
