package tensor

import "fmt"

// Integer kernels for the int8 inference backend: uint8 activations ×
// int8 weights accumulated in int32, the arithmetic an MSP432-class MCU
// (or any SIMD dot-product unit) executes natively. The float32 plans in
// internal/plan lower onto these when the int8 backend is selected; the
// layouts mirror the float kernels (row-major GEMM over an im2col
// lowering) so a plan compiles to either backend with the same geometry.

// MatMulInt8Into computes dst = A×B with int32 accumulators over raw
// row-major slices: A is an m×k int8 weight matrix, B is a k×n uint8
// activation matrix, dst is m×n and fully overwritten. The loop is
// ikj-order like the float kernel so the B row stays in cache; zero
// weights are skipped the same way (with 8-bit weights, pruned channels
// are exact zeros).
func MatMulInt8Into(dst []int32, a []int8, b []uint8, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: MatMulInt8Into slice sizes %d/%d/%d too small for %dx%dx%d", len(a), len(b), len(dst), m, k, n))
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := dst[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
		for p, av := range arow {
			if av == 0 {
				continue
			}
			w := int32(av)
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += w * int32(bv)
			}
		}
	}
}

// Im2ColU8 lowers a uint8 CHW image into a [C*KH*KW, OutH*OutW] matrix,
// the integer twin of Im2ColSlice. Padded taps contribute the zero code,
// which is exact for the backend's unsigned activation quantization
// (zero point 0).
func Im2ColU8(dst, src []uint8, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := outH * outW
	if len(src) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2ColU8 image volume %d does not match geometry %+v", len(src), g))
	}
	if len(dst) < rows*cols {
		panic(fmt.Sprintf("tensor: Im2ColU8 dst length %d below %d for geometry %+v", len(dst), rows*cols, g))
	}
	dst = dst[:rows*cols]
	for i := range dst {
		dst[i] = 0
	}
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				dstRow := dst[row*cols : (row+1)*cols]
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						continue
					}
					srcRow := src[chanBase+ih*g.InW:]
					outBase := oh * outW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							continue
						}
						dstRow[outBase+ow] = srcRow[iw]
					}
				}
			}
		}
	}
}

// MaxPool2U8 applies kernel×kernel/stride max pooling on a uint8 CHW
// tensor (max pooling commutes with monotone quantization, so it runs on
// the integer codes directly). dst must hold c*outH*outW values.
func MaxPool2U8(dst, src []uint8, c, h, w, kernel, stride int) (outH, outW int) {
	outH = (h-kernel)/stride + 1
	outW = (w-kernel)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: MaxPool2U8 empty output for %dx%d input, kernel %d stride %d", h, w, kernel, stride))
	}
	if len(src) < c*h*w || len(dst) < c*outH*outW {
		panic(fmt.Sprintf("tensor: MaxPool2U8 slice sizes %d/%d too small for %dx%dx%d", len(src), len(dst), c, h, w))
	}
	for ci := 0; ci < c; ci++ {
		planeBase := ci * h * w
		outBase := ci * outH * outW
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := src[planeBase+(oy*stride)*w+ox*stride]
				for ky := 0; ky < kernel; ky++ {
					rowBase := planeBase + (oy*stride+ky)*w
					for kx := 0; kx < kernel; kx++ {
						if v := src[rowBase+ox*stride+kx]; v > best {
							best = v
						}
					}
				}
				dst[outBase+oy*outW+ox] = best
			}
		}
	}
	return outH, outW
}
