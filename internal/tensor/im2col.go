package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	StrideH       int
	StrideW       int
	PadH          int
	PadW          int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate reports an error if the geometry is degenerate.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive kernel %+v", g)
	case g.StrideH <= 0 || g.StrideW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive stride %+v", g)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("tensor: conv geometry has negative padding %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("tensor: conv geometry yields empty output %+v", g)
	}
	return nil
}

// Im2Col lowers one image (CHW) into a [C*KH*KW, OutH*OutW] matrix so that
// convolution becomes a single matmul with the [outC, C*KH*KW] filter
// matrix. Out-of-bounds (padded) taps contribute zero.
func Im2Col(img *Tensor, g ConvGeom) *Tensor {
	col := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	Im2ColInto(col, img, g)
	return col
}

// Im2ColInto lowers img into col (shape [C*KH*KW, OutH*OutW]), reusing
// col's storage — the allocation-free path the conv layers drive with
// pooled buffers. col is fully overwritten, so a dirty recycled buffer is
// fine.
func Im2ColInto(col, img *Tensor, g ConvGeom) {
	if img.Len() != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col image volume %d does not match geometry %+v", img.Len(), g))
	}
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := outH * outW
	if col.Dim(0) != rows || col.Dim(1) != cols {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v does not match geometry %+v", col.Shape(), g))
	}
	Im2ColSlice(col.Data, img.Data, g)
}

// Im2ColSlice is Im2ColInto over raw slices: dst must hold
// InC*KH*KW × OutH*OutW values and is fully overwritten. Compiled
// inference plans call it directly against arena storage so the lowering
// allocates nothing.
func Im2ColSlice(dst, src []float32, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := outH * outW
	if len(src) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2ColSlice image volume %d does not match geometry %+v", len(src), g))
	}
	if len(dst) < rows*cols {
		panic(fmt.Sprintf("tensor: Im2ColSlice dst length %d below %d for geometry %+v", len(dst), rows*cols, g))
	}
	dst = dst[:rows*cols]
	// Padded taps contribute zero and the copy loops below skip them, so
	// clear the destination first.
	for i := range dst {
		dst[i] = 0
	}
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				dstRow := dst[row*cols : (row+1)*cols]
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						continue
					}
					srcRow := src[chanBase+ih*g.InW:]
					outBase := oh * outW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							continue
						}
						dstRow[outBase+ow] = srcRow[iw]
					}
				}
			}
		}
	}
}

// Im2ColTSlice lowers a CHW image into the TRANSPOSED im2col layout
// [OutH*OutW, C*KH*KW]: one contiguous row of filter taps per output
// position. Compiled plans convolve against this layout with the
// dot-product GEMM (GemmTransBSerial), which keeps every accumulator in
// a register instead of sweeping the output row per tap — the same sums
// in the same per-element order, substantially faster. Padded taps are
// written as zero.
func Im2ColTSlice(dst, src []float32, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := outH * outW
	if len(src) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2ColTSlice image volume %d does not match geometry %+v", len(src), g))
	}
	if len(dst) < rows*cols {
		panic(fmt.Sprintf("tensor: Im2ColTSlice dst length %d below %d for geometry %+v", len(dst), rows*cols, g))
	}
	d := 0
	for oh := 0; oh < outH; oh++ {
		for ow := 0; ow < outW; ow++ {
			iw0 := ow*g.StrideW - g.PadW
			interiorW := iw0 >= 0 && iw0+g.KW <= g.InW
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for kh := 0; kh < g.KH; kh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for kw := 0; kw < g.KW; kw++ {
							dst[d] = 0
							d++
						}
						continue
					}
					srcRow := src[chanBase+ih*g.InW:]
					if interiorW {
						// Fully in-bounds tap row: branch-free copy with
						// both slices bounds-check-eliminated.
						seg := srcRow[iw0 : iw0+g.KW]
						dseg := dst[d : d+g.KW]
						for x, v := range seg {
							dseg[x] = v
						}
						d += g.KW
						continue
					}
					iw := iw0
					for kw := 0; kw < g.KW; kw++ {
						if iw < 0 || iw >= g.InW {
							dst[d] = 0
						} else {
							dst[d] = srcRow[iw]
						}
						d++
						iw++
					}
				}
			}
		}
	}
}

// Col2Im scatters a [C*KH*KW, OutH*OutW] gradient matrix back onto a CHW
// image gradient, accumulating overlapping taps. It is the adjoint of
// Im2Col and is used by the convolution backward pass.
func Col2Im(col *Tensor, g ConvGeom) *Tensor {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := outH * outW
	if col.Dim(0) != rows || col.Dim(1) != cols {
		panic(fmt.Sprintf("tensor: Col2Im shape %v does not match geometry %+v", col.Shape(), g))
	}
	img := New(g.InC, g.InH, g.InW)
	src := col.Data
	dst := img.Data
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				srcRow := src[row*cols : (row+1)*cols]
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						continue
					}
					dstRow := dst[chanBase+ih*g.InW:]
					outBase := oh * outW
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							continue
						}
						dstRow[iw] += srcRow[outBase+ow]
					}
				}
			}
		}
	}
	return img
}
