package tensor

import "testing"

// TestMatMulInt8Into checks the integer GEMM against a scalar reference,
// including the zero-weight skip path.
func TestMatMulInt8Into(t *testing.T) {
	m, k, n := 3, 4, 5
	a := []int8{1, -2, 0, 3, -128, 127, 5, 0, 0, 0, -1, 2}
	b := make([]uint8, k*n)
	for i := range b {
		b[i] = uint8((i * 37) % 256)
	}
	dst := make([]int32, m*n)
	for i := range dst {
		dst[i] = -999 // must be overwritten
	}
	MatMulInt8Into(dst, a, b, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want int32
			for p := 0; p < k; p++ {
				want += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			if dst[i*n+j] != want {
				t.Fatalf("dst[%d,%d] = %d, want %d", i, j, dst[i*n+j], want)
			}
		}
	}
}

// TestIm2ColU8MatchesFloat lowers the same image through the float and
// uint8 im2col paths and compares code-for-code.
func TestIm2ColU8MatchesFloat(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	imgU := make([]uint8, g.InC*g.InH*g.InW)
	imgF := make([]float32, len(imgU))
	for i := range imgU {
		imgU[i] = uint8((i*13)%255 + 1)
		imgF[i] = float32(imgU[i])
	}
	rows, cols := g.InC*g.KH*g.KW, g.OutH()*g.OutW()
	colU := make([]uint8, rows*cols)
	for i := range colU {
		colU[i] = 77 // stale contents must be cleared
	}
	colF := make([]float32, rows*cols)
	Im2ColU8(colU, imgU, g)
	Im2ColSlice(colF, imgF, g)
	for i := range colU {
		if float32(colU[i]) != colF[i] {
			t.Fatalf("col[%d]: u8 %d vs float %g", i, colU[i], colF[i])
		}
	}
}

// TestMaxPool2U8 checks pooling geometry and max selection.
func TestMaxPool2U8(t *testing.T) {
	c, h, w := 2, 4, 4
	src := make([]uint8, c*h*w)
	for i := range src {
		src[i] = uint8(i)
	}
	dst := make([]uint8, c*2*2)
	oh, ow := MaxPool2U8(dst, src, c, h, w, 2, 2)
	if oh != 2 || ow != 2 {
		t.Fatalf("out dims %dx%d, want 2x2", oh, ow)
	}
	// Each 2×2 window's max is its bottom-right element for this ramp.
	want := []uint8{5, 7, 13, 15, 21, 23, 29, 31}
	for i, v := range dst {
		if v != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, v, want[i])
		}
	}
}

// TestGemmSerialMatchesMatMul cross-checks the raw-slice serial kernels
// against the tensor-level kernels that the conv/dense layers use, which
// is the bit-identity the compiled plans rely on.
func TestGemmSerialMatchesMatMul(t *testing.T) {
	rng := NewRNG(11)
	m, k, n := 7, 13, 9
	a, b := New(m, k), New(k, n)
	FillUniform(a, rng, -1, 1)
	FillUniform(b, rng, -1, 1)
	want := MatMul(a, b)
	got := make([]float32, m*n)
	GemmSerial(got, a.Data, b.Data, m, k, n)
	for i := range got {
		if got[i] != want.Data[i] {
			t.Fatalf("GemmSerial[%d] = %g, want %g", i, got[i], want.Data[i])
		}
	}

	bt := New(n, k)
	FillUniform(bt, rng, -1, 1)
	wantT := MatMulTransB(a, bt)
	gotT := make([]float32, m*n)
	GemmTransBSerial(gotT, a.Data, bt.Data, m, k, n)
	for i := range gotT {
		if gotT[i] != wantT.Data[i] {
			t.Fatalf("GemmTransBSerial[%d] = %g, want %g", i, gotT[i], wantT.Data[i])
		}
	}
}
