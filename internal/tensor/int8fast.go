package tensor

import (
	"encoding/binary"
	"fmt"
)

// Packed integer kernels for the int8 *fast* inference backend
// (plan.CompileInt8Fast). Unlike the bit-exact int8 path in int8.go —
// which keeps the layer walk's operand layouts and a float requantize
// round-trip — these kernels restructure the integer pipeline for
// throughput:
//
//   - Weights are repacked ONCE, at plan-compile time, into K-major
//     dual-row panels (PackInt8Panels): each panel interleaves two
//     output rows, rebiased to unsigned, into the 32-bit lanes of one
//     uint64 per K step. A single 64-bit multiply by an activation byte
//     then computes BOTH rows' products exactly (each lane product is
//     < 2^16, so lanes never interfere), doubling multiplier throughput
//     over one-product-per-multiply scalar code — the scalar-ISA
//     equivalent of a SIMD dot-product unit. The unsigned rebias adds
//     128·Σb to every accumulator; the GEMM subtracts that per-column
//     sum back out in the epilogue.
//   - Activations flow through the transposed im2col layout
//     (Im2ColU8Packed), written directly in the column-major panel
//     order the GEMM consumes, so every accumulator lives in a register
//     for the whole dot product instead of sweeping an int32 output row
//     per tap.
//   - The requantize+ReLU epilogue is fused into the GEMM
//     (GemmInt8PackedReq): accumulators go straight from registers to
//     uint8 activation codes through an integer fixed-point multiplier
//     (mul, shift), never touching an int32 accumulator slab or a float
//     unit. Classifier heads use GemmInt8PackedDeq, the one place the
//     fast integer pipeline dequantizes to float32 logits.
//
// Products are accumulated in ascending K order, independent of
// blocking — results are deterministic (integer adds are associative),
// just not bit-equal to the float reference; the fast backend's
// accuracy contract is statistical (per-exit accuracy within ε),
// enforced by plan's parity tests.

// int8PanelRows is the row width of a packed weight panel: two output
// rows share every activation load AND every multiply through the
// dual-lane uint64 trick; the GEMM hot loop runs two panels (4 rows)
// per pass, matching the float kernels' 4-wide row blocking.
const int8PanelRows = 2

// MaxInt8FastK bounds the reduction depth of the packed kernels: a
// k-deep unsigned lane accumulates at most k·255·255, which must stay
// below 2^31 so lane extraction fits int32 (and lanes can never carry
// into each other). The compile layer rejects deeper layers.
const MaxInt8FastK = (1 << 31) / (255 * 255)

// PackedInt8 is an m×k int8 weight matrix repacked for the fused
// dual-lane integer GEMM: full panels of int8PanelRows rows rebiased to
// unsigned (w+128) and interleaved K-major into uint64 lane pairs,
// followed by one plain int8 tail row when m is odd. Packing happens
// once at plan-compile time; the pack is immutable and safe to share
// across executors.
type PackedInt8 struct {
	panels []uint64 // pair p of rows (2p, 2p+1): panels[p*k+q] = lo|hi lanes
	tail   []int8   // last row, row-major, when m is odd
	m, k   int
}

// Rows returns the packed matrix's row count (output channels).
func (p *PackedInt8) Rows() int { return p.m }

// Cols returns the packed matrix's column count (reduction depth).
func (p *PackedInt8) Cols() int { return p.k }

// PackInt8Panels repacks a row-major m×k int8 weight matrix into the
// dual-lane panel layout the fused integer GEMM consumes. It panics
// when the reduction depth could overflow lane accumulation — the
// compile layer must reject such layers rather than serve wrong
// answers.
func PackInt8Panels(w []int8, m, k int) *PackedInt8 {
	if len(w) < m*k {
		panic(fmt.Sprintf("tensor: PackInt8Panels weight slice %d too small for %dx%d", len(w), m, k))
	}
	if k > MaxInt8FastK {
		panic(fmt.Sprintf("tensor: PackInt8Panels reduction depth %d exceeds lane-safe bound %d", k, MaxInt8FastK))
	}
	p := &PackedInt8{m: m, k: k}
	pairs := m / 2
	p.panels = make([]uint64, pairs*k)
	for pr := 0; pr < pairs; pr++ {
		r0 := w[(2*pr)*k : (2*pr+1)*k]
		r1 := w[(2*pr+1)*k : (2*pr+2)*k]
		dst := p.panels[pr*k : (pr+1)*k]
		for q := range dst {
			lo := uint64(uint8(int16(r0[q]) + 128))
			hi := uint64(uint8(int16(r1[q]) + 128))
			dst[q] = lo | hi<<32
		}
	}
	if m%2 == 1 {
		p.tail = make([]int8, k)
		copy(p.tail, w[(m-1)*k:m*k])
	}
	return p
}

// Im2ColU8Packed lowers a uint8 CHW image into the transposed im2col
// layout [OutH*OutW, C*KH*KW] — one contiguous column of filter taps
// per output position, written directly in the order the packed GEMM
// consumes (no separate transpose pass). Padded taps are the zero code,
// exact for the backend's unsigned zero-point-0 quantization. The
// integer twin of Im2ColTSlice.
//
//ehlint:hotpath
func Im2ColU8Packed(dst, src []uint8, g ConvGeom) {
	outH, outW := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := outH * outW
	if len(src) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2ColU8Packed image volume %d does not match geometry %+v", len(src), g))
	}
	if len(dst) < rows*cols {
		panic(fmt.Sprintf("tensor: Im2ColU8Packed dst length %d below %d for geometry %+v", len(dst), rows*cols, g))
	}
	d := 0
	for oh := 0; oh < outH; oh++ {
		for ow := 0; ow < outW; ow++ {
			iw0 := ow*g.StrideW - g.PadW
			interiorW := iw0 >= 0 && iw0+g.KW <= g.InW
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for kh := 0; kh < g.KH; kh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for kw := 0; kw < g.KW; kw++ {
							dst[d] = 0
							d++
						}
						continue
					}
					srcRow := src[chanBase+ih*g.InW:]
					if interiorW {
						// Fully in-bounds tap row: the common kernel widths
						// copy as one fixed-size array assignment (a couple
						// of word moves) instead of a per-byte loop.
						switch g.KW {
						case 5:
							*(*[5]uint8)(dst[d:]) = *(*[5]uint8)(srcRow[iw0:])
						case 3:
							*(*[3]uint8)(dst[d:]) = *(*[3]uint8)(srcRow[iw0:])
						default:
							copy(dst[d:d+g.KW], srcRow[iw0:iw0+g.KW])
						}
						d += g.KW
						continue
					}
					iw := iw0
					for kw := 0; kw < g.KW; kw++ {
						if iw < 0 || iw >= g.InW {
							dst[d] = 0
						} else {
							dst[d] = srcRow[iw]
						}
						d++
						iw++
					}
				}
			}
		}
	}
}

// requantFix requantizes one int32 accumulator to a uint8 activation
// code through the integer fixed-point multiplier (mul, shift):
// q = round(a · mul / 2^shift), saturating at 255. ReLU is the a <= 0
// clamp. shift is at least 1, so the rounding bias never underflows.
//
//ehlint:hotpath
func requantFix(a, mul int32, shift uint) uint8 {
	if a <= 0 {
		return 0
	}
	q := (int64(a)*int64(mul) + int64(1)<<(shift-1)) >> shift
	if q > 255 {
		return 255
	}
	return uint8(q)
}

// colSumU8 returns 128·Σ(column bytes) — the unsigned-rebias correction
// every lane accumulator of that column carries.
//
//ehlint:hotpath
func colSumU8(c []uint8) int32 {
	// SWAR over 64-bit loads: split each 8-byte word into odd and even
	// bytes spread across 16-bit lanes and add — one load plus four ALU
	// ops sums eight bytes. A 16-bit lane holds at most 2·255 per word,
	// so lanes are folded out every 64 words, well before they carry.
	const mask = 0x00ff00ff00ff00ff
	var s uint64
	p := 0
	for n := len(c) &^ 7; p < n; {
		lim := p + 64*8
		if lim > n {
			lim = n
		}
		var acc uint64
		for ; p < lim; p += 8 {
			v := binary.LittleEndian.Uint64(c[p:])
			acc += v&mask + v>>8&mask
		}
		s += acc&0xffff + acc>>16&0xffff + acc>>32&0xffff + acc>>48&0xffff
	}
	t := int32(s)
	for ; p < len(c); p++ {
		t += int32(c[p])
	}
	return t * 128
}

// GemmInt8PackedReq computes dst = requant(W×B + bias) in one fused
// pass: W is a packed m×k int8 weight matrix, bt the TRANSPOSED k-deep
// activation matrix ([n][k] uint8, one contiguous column per output
// position, e.g. from Im2ColU8Packed), bias the per-row int32
// accumulator offsets, and (mul, shift) the layer's fixed-point
// requantization pair. dst is row-major m×n uint8 and fully
// overwritten.
//
// The hot loop runs two dual-lane panels (4 output rows) against two
// activation columns at once: per K step it issues four 64-bit
// multiplies that yield EIGHT products into four lane-pair
// accumulators, and the epilogue extracts lanes, subtracts the
// unsigned-rebias correction, and requantizes straight out of
// registers.
//
//ehlint:hotpath
func GemmInt8PackedReq(dst []uint8, w *PackedInt8, bt []uint8, bias []int32, n int, mul int32, shift uint) {
	m, k := w.m, w.k
	if len(dst) < m*n || len(bt) < k*n || len(bias) < m {
		panic(fmt.Sprintf("tensor: GemmInt8PackedReq slice sizes %d/%d/%d too small for %dx%dx%d", len(dst), len(bt), len(bias), m, k, n))
	}
	pairs := m / 2
	for j := 0; j < n; j += 2 {
		c0 := bt[j*k : j*k+k : j*k+k]
		wide := j+1 < n
		var c1 []uint8
		s1 := int32(0)
		if wide {
			c1 = bt[(j+1)*k : (j+1)*k+k : (j+1)*k+k]
			s1 = colSumU8(c1)
		}
		s0 := colSumU8(c0)
		pr := 0
		// Widest block first: three dual-lane panels (6 output rows)
		// against two columns — twelve products per K step from six
		// multiplies, one pass over the columns for a whole LeNet conv1.
		for ; wide && pr+3 <= pairs; pr += 3 {
			wpA := w.panels[pr*k:][:len(c0)]
			wpB := w.panels[(pr+1)*k:][:len(c0)]
			wpC := w.panels[(pr+2)*k:][:len(c0)]
			c1v := c1[:len(c0)]
			var a00, a01, a10, a11, a20, a21 uint64
			for p, v := range c0 {
				w0 := wpA[p]
				w1 := wpB[p]
				w2 := wpC[p]
				v0 := uint64(v)
				v1 := uint64(c1v[p])
				a00 += w0 * v0
				a01 += w0 * v1
				a10 += w1 * v0
				a11 += w1 * v1
				a20 += w2 * v0
				a21 += w2 * v1
			}
			i := 2 * pr
			dst[i*n+j] = requantFix(int32(uint32(a00))+bias[i]-s0, mul, shift)
			dst[i*n+j+1] = requantFix(int32(uint32(a01))+bias[i]-s1, mul, shift)
			dst[(i+1)*n+j] = requantFix(int32(uint32(a00>>32))+bias[i+1]-s0, mul, shift)
			dst[(i+1)*n+j+1] = requantFix(int32(uint32(a01>>32))+bias[i+1]-s1, mul, shift)
			dst[(i+2)*n+j] = requantFix(int32(uint32(a10))+bias[i+2]-s0, mul, shift)
			dst[(i+2)*n+j+1] = requantFix(int32(uint32(a11))+bias[i+2]-s1, mul, shift)
			dst[(i+3)*n+j] = requantFix(int32(uint32(a10>>32))+bias[i+3]-s0, mul, shift)
			dst[(i+3)*n+j+1] = requantFix(int32(uint32(a11>>32))+bias[i+3]-s1, mul, shift)
			dst[(i+4)*n+j] = requantFix(int32(uint32(a20))+bias[i+4]-s0, mul, shift)
			dst[(i+4)*n+j+1] = requantFix(int32(uint32(a21))+bias[i+4]-s1, mul, shift)
			dst[(i+5)*n+j] = requantFix(int32(uint32(a20>>32))+bias[i+5]-s0, mul, shift)
			dst[(i+5)*n+j+1] = requantFix(int32(uint32(a21>>32))+bias[i+5]-s1, mul, shift)
		}
		for ; wide && pr+2 <= pairs; pr += 2 {
			// Re-slicing everything to len(c0) lets the compiler drop
			// bounds checks on all four streams in the hot loop.
			wpA := w.panels[pr*k:][:len(c0)]
			wpB := w.panels[(pr+1)*k:][:len(c0)]
			c1v := c1[:len(c0)]
			var a00, a01, a10, a11 uint64
			for p, v := range c0 {
				w0 := wpA[p]
				w1 := wpB[p]
				v0 := uint64(v)
				v1 := uint64(c1v[p])
				a00 += w0 * v0
				a01 += w0 * v1
				a10 += w1 * v0
				a11 += w1 * v1
			}
			i := 2 * pr
			dst[i*n+j] = requantFix(int32(uint32(a00))+bias[i]-s0, mul, shift)
			dst[i*n+j+1] = requantFix(int32(uint32(a01))+bias[i]-s1, mul, shift)
			dst[(i+1)*n+j] = requantFix(int32(uint32(a00>>32))+bias[i+1]-s0, mul, shift)
			dst[(i+1)*n+j+1] = requantFix(int32(uint32(a01>>32))+bias[i+1]-s1, mul, shift)
			dst[(i+2)*n+j] = requantFix(int32(uint32(a10))+bias[i+2]-s0, mul, shift)
			dst[(i+2)*n+j+1] = requantFix(int32(uint32(a11))+bias[i+2]-s1, mul, shift)
			dst[(i+3)*n+j] = requantFix(int32(uint32(a10>>32))+bias[i+3]-s0, mul, shift)
			dst[(i+3)*n+j+1] = requantFix(int32(uint32(a11>>32))+bias[i+3]-s1, mul, shift)
		}
		for ; pr < pairs; pr++ {
			wp := w.panels[pr*k:][:len(c0)]
			var a0, a1 uint64
			if wide {
				c1v := c1[:len(c0)]
				for p, v := range c0 {
					wv := wp[p]
					a0 += wv * uint64(v)
					a1 += wv * uint64(c1v[p])
				}
			} else {
				for p, v := range c0 {
					a0 += wp[p] * uint64(v)
				}
			}
			i := 2 * pr
			dst[i*n+j] = requantFix(int32(uint32(a0))+bias[i]-s0, mul, shift)
			dst[(i+1)*n+j] = requantFix(int32(uint32(a0>>32))+bias[i+1]-s0, mul, shift)
			if wide {
				dst[i*n+j+1] = requantFix(int32(uint32(a1))+bias[i]-s1, mul, shift)
				dst[(i+1)*n+j+1] = requantFix(int32(uint32(a1>>32))+bias[i+1]-s1, mul, shift)
			}
		}
		if w.tail != nil {
			i := m - 1
			var a0, a1 int32
			for p, wv := range w.tail {
				wv32 := int32(wv)
				a0 += wv32 * int32(c0[p])
				if wide {
					a1 += wv32 * int32(c1[p])
				}
			}
			dst[i*n+j] = requantFix(a0+bias[i], mul, shift)
			if wide {
				dst[i*n+j+1] = requantFix(a1+bias[i], mul, shift)
			}
		}
	}
}

// GemmInt8PackedDeq is the classifier-head variant of GemmInt8PackedReq:
// instead of requantizing, it dequantizes the int32 accumulators to
// float32 logits (dst[i*n+j] = float32(acc) · scale) — the single place
// the fast integer pipeline touches the float unit.
//
//ehlint:hotpath
func GemmInt8PackedDeq(dst []float32, w *PackedInt8, bt []uint8, bias []int32, n int, scale float32) {
	m, k := w.m, w.k
	if len(dst) < m*n || len(bt) < k*n || len(bias) < m {
		panic(fmt.Sprintf("tensor: GemmInt8PackedDeq slice sizes %d/%d/%d too small for %dx%dx%d", len(dst), len(bt), len(bias), m, k, n))
	}
	pairs := m / 2
	for j := 0; j < n; j++ {
		c0 := bt[j*k : j*k+k : j*k+k]
		s0 := colSumU8(c0)
		for pr := 0; pr < pairs; pr++ {
			wp := w.panels[pr*k:][:len(c0)]
			var a0 uint64
			for p, v := range c0 {
				a0 += wp[p] * uint64(v)
			}
			i := 2 * pr
			dst[i*n+j] = float32(int32(uint32(a0))+bias[i]-s0) * scale
			dst[(i+1)*n+j] = float32(int32(uint32(a0>>32))+bias[i+1]-s0) * scale
		}
		if w.tail != nil {
			i := m - 1
			var a int32
			for p, wv := range w.tail {
				a += int32(wv) * int32(c0[p])
			}
			dst[i*n+j] = float32(a+bias[i]) * scale
		}
	}
}

// MaxPool2U8Into is MaxPool2U8 against precomputed output dims: the
// fast exec path's pooling step (identical window walk, no dim
// recompute in the hot loop).
//
//ehlint:hotpath
func MaxPool2U8Into(dst, src []uint8, c, h, w, kernel, stride, outH, outW int) {
	if len(src) < c*h*w || len(dst) < c*outH*outW {
		panic(fmt.Sprintf("tensor: MaxPool2U8Into slice sizes %d/%d too small for %dx%dx%d", len(src), len(dst), c, h, w))
	}
	if kernel == 2 && stride == 2 {
		// The architecture's only pooling shape: max over 2×2 windows,
		// two row slices per output row, no per-window index math.
		for ci := 0; ci < c; ci++ {
			planeBase := ci * h * w
			outBase := ci * outH * outW
			for oy := 0; oy < outH; oy++ {
				r0 := src[planeBase+2*oy*w:][:outW*2]
				r1 := src[planeBase+(2*oy+1)*w:][:outW*2]
				orow := dst[outBase+oy*outW:][:outW]
				for ox := range orow {
					best := r0[2*ox]
					if v := r0[2*ox+1]; v > best {
						best = v
					}
					if v := r1[2*ox]; v > best {
						best = v
					}
					if v := r1[2*ox+1]; v > best {
						best = v
					}
					orow[ox] = best
				}
			}
		}
		return
	}
	for ci := 0; ci < c; ci++ {
		planeBase := ci * h * w
		outBase := ci * outH * outW
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				best := src[planeBase+(oy*stride)*w+ox*stride]
				for ky := 0; ky < kernel; ky++ {
					rowBase := planeBase + (oy*stride+ky)*w
					for kx := 0; kx < kernel; kx++ {
						if v := src[rowBase+ox*stride+kx]; v > best {
							best = v
						}
					}
				}
				dst[outBase+oy*outW+ox] = best
			}
		}
	}
}
