package tensor

import (
	"math/rand"
	"testing"
)

// refRequant mirrors requantFix for the reference GEMM path.
func refRequant(a, mul int32, shift uint) uint8 {
	if a <= 0 {
		return 0
	}
	q := (int64(a)*int64(mul) + int64(1)<<(shift-1)) >> shift
	if q > 255 {
		return 255
	}
	return uint8(q)
}

func randInt8(r *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(r.Intn(256) - 128)
	}
	return out
}

func randUint8(r *rand.Rand, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(r.Intn(256))
	}
	return out
}

// transposeU8 converts a row-major k×n matrix into the n×k column-panel
// layout the packed GEMM consumes.
func transposeU8(b []uint8, k, n int) []uint8 {
	bt := make([]uint8, k*n)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt[j*k+p] = b[p*n+j]
		}
	}
	return bt
}

func TestPackInt8PanelsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 7}, {3, 5}, {4, 9}, {6, 75}, {17, 33}, {36, 150}} {
		m, k := dims[0], dims[1]
		w := randInt8(r, m*k)
		p := PackInt8Panels(w, m, k)
		if p.Rows() != m || p.Cols() != k {
			t.Fatalf("pack dims %dx%d, want %dx%d", p.Rows(), p.Cols(), m, k)
		}
		// Unpack: full panels are K-major dual-lane uint64s (rows
		// rebiased to unsigned), the odd tail row plain int8.
		got := make([]int8, m*k)
		for pr := 0; pr < m/2; pr++ {
			for q := 0; q < k; q++ {
				v := p.panels[pr*k+q]
				got[(2*pr)*k+q] = int8(int16(uint8(v)) - 128)
				got[(2*pr+1)*k+q] = int8(int16(uint8(v>>32)) - 128)
			}
		}
		if m%2 == 1 {
			copy(got[(m-1)*k:m*k], p.tail)
		}
		for idx := range w {
			if got[idx] != w[idx] {
				t.Fatalf("%dx%d: unpacked[%d] = %d, want %d", m, k, idx, got[idx], w[idx])
			}
		}
	}
}

func TestPackInt8PanelsOverflowGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackInt8Panels accepted an int32-unsafe reduction depth")
		}
	}()
	k := MaxInt8FastK + 1
	PackInt8Panels(make([]int8, k), 1, k)
}

func TestIm2ColU8PackedMatchesTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	geoms := []ConvGeom{
		{InC: 3, InH: 32, InW: 32, KH: 5, KW: 5, StrideH: 1, StrideW: 1},
		{InC: 6, InH: 14, InW: 14, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 9, InW: 7, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	}
	for _, g := range geoms {
		src := randUint8(r, g.InC*g.InH*g.InW)
		rows := g.InC * g.KH * g.KW
		cols := g.OutH() * g.OutW()
		plain := make([]uint8, rows*cols)
		Im2ColU8(plain, src, g)
		want := transposeU8(plain, rows, cols)
		got := make([]uint8, rows*cols)
		Im2ColU8Packed(got, src, g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("geom %+v: packed[%d] = %d, want %d", g, i, got[i], want[i])
			}
		}
	}
}

// TestGemmInt8PackedReq pins the fused kernel against the reference
// pipeline (MatMulInt8Into + bias + requant) across row counts covering
// every panel/tail combination and both column parities.
func TestGemmInt8PackedReq(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const mul, shift = 123456789, 33
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 36} {
		for _, n := range []int{1, 2, 5, 25, 100} {
			k := 37
			w := randInt8(r, m*k)
			b := randUint8(r, k*n)
			bias := make([]int32, m)
			for i := range bias {
				bias[i] = int32(r.Intn(20001) - 10000)
			}
			acc := make([]int32, m*n)
			MatMulInt8Into(acc, w, b, m, k, n)
			want := make([]uint8, m*n)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					want[i*n+j] = refRequant(acc[i*n+j]+bias[i], mul, shift)
				}
			}
			got := make([]uint8, m*n)
			GemmInt8PackedReq(got, PackInt8Panels(w, m, k), transposeU8(b, k, n), bias, n, mul, shift)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("m=%d n=%d: fused[%d] = %d, want %d", m, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemmInt8PackedDeq(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const scale = 0.00125
	for _, m := range []int{1, 4, 5, 10} {
		k, n := 96, 1
		w := randInt8(r, m*k)
		b := randUint8(r, k*n)
		bias := make([]int32, m)
		for i := range bias {
			bias[i] = int32(r.Intn(2001) - 1000)
		}
		acc := make([]int32, m*n)
		MatMulInt8Into(acc, w, b, m, k, n)
		got := make([]float32, m*n)
		GemmInt8PackedDeq(got, PackInt8Panels(w, m, k), transposeU8(b, k, n), bias, n, scale)
		for i := 0; i < m; i++ {
			want := float32(acc[i]+bias[i]) * scale
			if got[i] != want {
				t.Fatalf("m=%d: logit[%d] = %v, want %v", m, i, got[i], want)
			}
		}
	}
}

func TestMaxPool2U8IntoMatchesMaxPool2U8(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c, h, w := 6, 28, 28
	src := randUint8(r, c*h*w)
	want := make([]uint8, c*14*14)
	oh, ow := MaxPool2U8(want, src, c, h, w, 2, 2)
	got := make([]uint8, c*oh*ow)
	MaxPool2U8Into(got, src, c, h, w, 2, 2, oh, ow)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pool[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Benchmarks comparing the fused packed kernel against the reference
// int8 pipeline on the repo's conv shapes (LeNet-EE conv1 and conv2).
func BenchmarkGemmInt8PackedConv1(b *testing.B) { benchPackedGemm(b, 6, 75, 784) }
func BenchmarkGemmInt8PackedConv2(b *testing.B) { benchPackedGemm(b, 36, 150, 100) }
func BenchmarkMatMulInt8IntoConv1(b *testing.B) { benchRefGemm(b, 6, 75, 784) }
func BenchmarkMatMulInt8IntoConv2(b *testing.B) { benchRefGemm(b, 36, 150, 100) }

func benchPackedGemm(b *testing.B, m, k, n int) {
	r := rand.New(rand.NewSource(6))
	w := PackInt8Panels(randInt8(r, m*k), m, k)
	bt := randUint8(r, k*n)
	bias := make([]int32, m)
	dst := make([]uint8, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmInt8PackedReq(dst, w, bt, bias, n, 1<<20, 25)
	}
}

func benchRefGemm(b *testing.B, m, k, n int) {
	r := rand.New(rand.NewSource(6))
	w := randInt8(r, m*k)
	bb := randUint8(r, k*n)
	bias := make([]int32, m)
	acc := make([]int32, m*n)
	dst := make([]uint8, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInt8Into(acc, w, bb, m, k, n)
		for oc := 0; oc < m; oc++ {
			bv := bias[oc]
			accRow := acc[oc*n : (oc+1)*n]
			outRow := dst[oc*n : (oc+1)*n]
			for j, a := range accRow {
				outRow[j] = refRequant(a+bv, 1<<20, 25)
			}
		}
	}
}
