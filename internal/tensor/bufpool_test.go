package tensor

import (
	"runtime/debug"
	"sync"
	"testing"
)

// TestGetBufReuse verifies the pool's two contracts: a returned buffer is
// handed out again for a fitting request, and an undersized pooled buffer
// is re-pooled (not dropped) when a larger request forces a fresh
// allocation.
func TestGetBufReuse(t *testing.T) {
	// A GC cycle may purge sync.Pool contents mid-test; hold it off so
	// the reuse assertions are deterministic.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Drain anything tests before us left behind so the identity checks
	// below see only our buffers.
	for bufPool.Get() != nil {
	}

	// sync.Pool deliberately drops a fraction of Puts under the race
	// detector, so each property is asserted over a bounded retry loop:
	// losing every attempt is astronomically unlikely unless the
	// property is actually broken.
	const attempts = 64

	reused := false
	for i := 0; i < attempts && !reused; i++ {
		small := GetBuf(8)
		small[0] = 42
		PutBuf(small)
		got := GetBuf(4)
		reused = cap(got) >= 8 && got[0] == 42
		PutBuf(got)
	}
	if !reused {
		t.Fatal("pooled buffer never reused by a fitting request")
	}

	// An oversized request must not silently drop the small pooled buffer:
	// after the miss, a small request should still find a pooled buffer.
	repooled := false
	for i := 0; i < attempts && !repooled; i++ {
		for bufPool.Get() != nil { // fresh pool each attempt
		}
		PutBuf(make([]float32, 8))
		big := GetBuf(1 << 12)
		if len(big) != 1<<12 {
			t.Fatalf("oversized request returned len %d", len(big))
		}
		again := GetBuf(4)
		repooled = cap(again) >= 8 && cap(again) < 1<<12
	}
	if !repooled {
		t.Fatal("undersized buffer was dropped on pool miss instead of being re-pooled")
	}
}

// TestGetBufZeroCap verifies PutBuf discards zero-capacity slices instead
// of pooling useless headers.
func TestGetBufZeroCap(t *testing.T) {
	PutBuf(nil)
	PutBuf([]float32{})
	b := GetBuf(3)
	if len(b) != 3 {
		t.Fatalf("GetBuf(3) returned len %d", len(b))
	}
	PutBuf(b)
}

// TestGetBufConcurrent hammers the pool from many goroutines with mixed
// sizes; run under -race this is the pool's data-race regression test,
// and the content check catches cross-goroutine buffer sharing.
func TestGetBufConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(tag float32) {
			defer wg.Done()
			sizes := []int{4, 64, 1024, 16}
			for i := 0; i < 500; i++ {
				b := GetBuf(sizes[i%len(sizes)])
				for j := range b {
					b[j] = tag
				}
				for j := range b {
					if b[j] != tag {
						t.Errorf("buffer shared across goroutines: got %v want %v", b[j], tag)
						return
					}
				}
				PutBuf(b)
			}
		}(float32(g))
	}
	wg.Wait()
}
