package tensor

import (
	"math"
	"testing"
)

func TestConvGeomDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 5, KW: 5, StrideH: 1, StrideW: 1}
	if g.OutH() != 28 || g.OutW() != 28 {
		t.Fatalf("valid 5x5: %dx%d, want 28x28", g.OutH(), g.OutW())
	}
	g.PadH, g.PadW = 2, 2
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same 5x5: %dx%d, want 32x32", g.OutH(), g.OutW())
	}
	g.StrideH, g.StrideW = 2, 2
	if g.OutH() != 16 || g.OutW() != 16 {
		t.Fatalf("strided: %dx%d, want 16x16", g.OutH(), g.OutW())
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := good
	bad.KH = 9 // kernel larger than input with no padding
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized kernel accepted")
	}
	bad = good
	bad.StrideH = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero stride accepted")
	}
}

// naiveConv computes a single-channel-out convolution directly.
func naiveConv(img *Tensor, w *Tensor, g ConvGeom) *Tensor {
	out := New(g.OutH(), g.OutW())
	for oy := 0; oy < g.OutH(); oy++ {
		for ox := 0; ox < g.OutW(); ox++ {
			var acc float64
			for c := 0; c < g.InC; c++ {
				for ky := 0; ky < g.KH; ky++ {
					for kx := 0; kx < g.KW; kx++ {
						iy := oy*g.StrideH - g.PadH + ky
						ix := ox*g.StrideW - g.PadW + kx
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							continue
						}
						acc += float64(img.At(c, iy, ix)) * float64(w.At(c, ky, kx))
					}
				}
			}
			out.Set(float32(acc), oy, ox)
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConvolution(t *testing.T) {
	rng := NewRNG(5)
	g := ConvGeom{InC: 2, InH: 6, InW: 7, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	img := New(g.InC, g.InH, g.InW)
	w := New(g.InC, g.KH, g.KW)
	FillNormal(img, rng, 1)
	FillNormal(w, rng, 1)

	col := Im2Col(img, g)
	wRow := w.Reshape(1, g.InC*g.KH*g.KW)
	got := MatMul(wRow, col).Reshape(g.OutH(), g.OutW())
	want := naiveConv(img, w, g)
	if got.L2Distance(want) > 1e-4 {
		t.Fatalf("im2col conv diverges from naive by %g", got.L2Distance(want))
	}
}

func TestIm2ColStridedNoPad(t *testing.T) {
	rng := NewRNG(6)
	g := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	img := New(g.InC, g.InH, g.InW)
	w := New(g.InC, g.KH, g.KW)
	FillNormal(img, rng, 1)
	FillNormal(w, rng, 1)
	col := Im2Col(img, g)
	got := MatMul(w.Reshape(1, -1), col).Reshape(g.OutH(), g.OutW())
	want := naiveConv(img, w, g)
	if got.L2Distance(want) > 1e-4 {
		t.Fatal("strided im2col diverges from naive conv")
	}
}

// The adjoint identity <Im2Col(x), y> == <x, Col2Im(y)> must hold for the
// conv backward pass to be a true gradient.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	rng := NewRNG(7)
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	x := New(g.InC, g.InH, g.InW)
	FillNormal(x, rng, 1)
	y := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	FillNormal(y, rng, 1)

	ax := Im2Col(x, g)
	aty := Col2Im(y, g)

	var lhs, rhs float64
	for i := range ax.Data {
		lhs += float64(ax.Data[i]) * float64(y.Data[i])
	}
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(aty.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*(math.Abs(lhs)+1) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestIm2ColPaddingContributesZero(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	img := FromSlice([]float32{1, 1, 1, 1}, 1, 2, 2)
	col := Im2Col(img, g)
	// Center tap of the kernel sees all four pixels; corner taps see one.
	var total float64
	for _, v := range col.Data {
		total += float64(v)
	}
	// Each input pixel appears exactly 9 times minus the out-of-bounds
	// placements: total placements = sum over taps of in-bounds counts.
	// For a 2x2 image with 3x3 kernel, stride 1, pad 1: 16 placements.
	if total != 16 {
		t.Fatalf("padded im2col total = %v, want 16", total)
	}
}
