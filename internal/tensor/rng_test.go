package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(12345)
	b := NewRNG(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed should still generate entropy")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := NewRNG(10)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(12)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(13)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children should differ")
	}
}

func TestFillHelpers(t *testing.T) {
	r := NewRNG(14)
	a := New(1000)
	FillUniform(a, r, -2, 3)
	for _, v := range a.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
	b := New(1000)
	FillNormal(b, r, 0.5)
	var sumSq float64
	for _, v := range b.Data {
		sumSq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumSq / 1000)
	if std < 0.4 || std > 0.6 {
		t.Fatalf("FillNormal std = %v, want ≈0.5", std)
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(15)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 6)
		if v < 5 || v >= 6 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}
