package tensor

import "fmt"

// MatMul computes C = A×B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. The inner loop is written ikj-order so the B row stays in
// cache; this is the workhorse behind both conv (via im2col) and dense
// layers.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v × %v", a.Shape(), b.Shape()))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A×B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape(), m, n))
	}
	ad, bd, cd := a.Data, b.Data, dst.Data
	for i := range cd {
		cd[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A×Bᵀ for A (m×k) and B (n×k), returning m×n.
// Used by dense-layer backward passes where the weight gradient naturally
// pairs transposed operands.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			cd[i*n+j] = s
		}
	}
	return c
}

// MatMulTransA computes C = Aᵀ×B for A (k×m) and B (k×n), returning m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank-2, got %v", a.Shape()))
	}
	m, n := a.Dim(0), a.Dim(1)
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return t
}
