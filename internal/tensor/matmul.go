package tensor

import "fmt"

// MatMul computes C = A×B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. The inner loop is written ikj-order so the B row stays in
// cache; this is the workhorse behind both conv (via im2col) and dense
// layers.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v × %v", a.Shape(), b.Shape()))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A×B, reusing dst's storage. dst must be m×n.
//
// Large products are partitioned into contiguous row bands executed on up
// to Workers() goroutines. Each band owns a disjoint slice of dst and runs
// the identical serial kernel, so the floating-point operation order per
// output row — and therefore the result, bit for bit — is independent of
// the worker count.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape(), m, n))
	}
	ad, bd, cd := a.Data, b.Data, dst.Data
	if int64(m)*int64(k)*int64(n) < parallelFlopThreshold || Workers() == 1 {
		matMulRows(cd, ad, bd, 0, m, k, n)
		return
	}
	ParallelFor(m, func(lo, hi int) {
		matMulRows(cd, ad, bd, lo, hi, k, n)
	})
}

// MatMulSerialInto computes dst = A×B on the calling goroutine only.
// Use it inside an already-parallel region (e.g. a batch banded across
// workers) where MatMulInto's own fan-out would just oversubscribe the
// cores. Bit-identical to MatMulInto.
func MatMulSerialInto(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulSerialInto dst shape %v, want [%d %d]", dst.Shape(), m, n))
	}
	matMulRows(dst.Data, a.Data, b.Data, 0, m, k, n)
}

// matMulRows runs the ikj-order kernel over output rows [lo, hi).
func matMulRows(cd, ad, bd []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A×Bᵀ for A (m×k) and B (n×k), returning m×n.
// Used by dense-layer backward passes where the weight gradient naturally
// pairs transposed operands.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	if int64(m)*int64(k)*int64(n) < parallelFlopThreshold || Workers() == 1 {
		matMulTransBRows(cd, ad, bd, 0, m, k, n)
		return c
	}
	ParallelFor(m, func(lo, hi int) {
		matMulTransBRows(cd, ad, bd, lo, hi, k, n)
	})
	return c
}

// matMulTransBRows runs the dot-product kernel over output rows [lo, hi).
func matMulTransBRows(cd, ad, bd []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			cd[i*n+j] = s
		}
	}
}

// MatMulTransA computes C = Aᵀ×B for A (k×m) and B (k×n), returning m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank-2, got %v", a.Shape()))
	}
	m, n := a.Dim(0), a.Dim(1)
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return t
}
