package tensor

import "fmt"

// MatMul computes C = A×B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. The inner loop is written ikj-order so the B row stays in
// cache; this is the workhorse behind both conv (via im2col) and dense
// layers.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v × %v", a.Shape(), b.Shape()))
	}
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes dst = A×B, reusing dst's storage. dst must be m×n.
//
// Large products are partitioned into contiguous row bands executed on up
// to Workers() goroutines. Each band owns a disjoint slice of dst and runs
// the identical serial kernel, so the floating-point operation order per
// output row — and therefore the result, bit for bit — is independent of
// the worker count.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape(), m, n))
	}
	ad, bd, cd := a.Data, b.Data, dst.Data
	if int64(m)*int64(k)*int64(n) < parallelFlopThreshold || Workers() == 1 {
		matMulRows(cd, ad, bd, 0, m, k, n)
		return
	}
	ParallelFor(m, func(lo, hi int) {
		matMulRows(cd, ad, bd, lo, hi, k, n)
	})
}

// MatMulSerialInto computes dst = A×B on the calling goroutine only.
// Use it inside an already-parallel region (e.g. a batch banded across
// workers) where MatMulInto's own fan-out would just oversubscribe the
// cores. Bit-identical to MatMulInto.
func MatMulSerialInto(dst, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulSerialInto dst shape %v, want [%d %d]", dst.Shape(), m, n))
	}
	matMulRows(dst.Data, a.Data, b.Data, 0, m, k, n)
}

// GemmSerial computes dst = A×B over raw row-major slices on the calling
// goroutine: A is m×k, B is k×n, dst is m×n and fully overwritten. It is
// the allocation-free kernel compiled inference plans (internal/plan)
// drive directly against arena storage, and it is bit-identical to
// MatMulInto at any worker count because both run the same per-row
// serial loop.
func GemmSerial(dst, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: GemmSerial slice sizes %d/%d/%d too small for %dx%dx%d", len(a), len(b), len(dst), m, k, n))
	}
	matMulRows(dst, a, b, 0, m, k, n)
}

// matMulRows runs the ikj-order kernel over output rows [lo, hi).
//
// Rows are processed four at a time so each B-row load feeds four
// accumulator rows — the kernel is load-bound, and the blocking roughly
// triples throughput on these LeNet-scale shapes. Bitwise the result is
// unchanged: every output element still accumulates its products in
// ascending p order, and adding a zero product (a lane whose a-value is
// 0 while a sibling lane's is not) is an exact identity for the finite
// activations these layers produce. The all-lanes-zero skip still fires
// on pruned input channels, which zero whole A columns.
func matMulRows(cd, ad, bd []float32, lo, hi, k, n int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := ad[i*k : (i+1)*k]
		a1 := ad[(i+1)*k : (i+2)*k]
		a2 := ad[(i+2)*k : (i+3)*k]
		a3 := ad[(i+3)*k : (i+4)*k]
		c0 := cd[i*n : (i+1)*n]
		c1 := cd[(i+1)*n : (i+2)*n]
		c2 := cd[(i+2)*n : (i+3)*n]
		c3 := cd[(i+3)*n : (i+4)*n]
		for j := range c0 {
			c0[j], c1[j], c2[j], c3[j] = 0, 0, 0, 0
		}
		for p := 0; p < k; p++ {
			av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				c0[j] += av0 * bv
				c1[j] += av1 * bv
				c2[j] += av2 * bv
				c3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A×Bᵀ for A (m×k) and B (n×k), returning m×n.
// Used by dense-layer backward passes where the weight gradient naturally
// pairs transposed operands.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	if int64(m)*int64(k)*int64(n) < parallelFlopThreshold || Workers() == 1 {
		matMulTransBRows(cd, ad, bd, 0, m, k, n)
		return c
	}
	ParallelFor(m, func(lo, hi int) {
		matMulTransBRows(cd, ad, bd, lo, hi, k, n)
	})
	return c
}

// GemmTransBSerial computes dst = A×Bᵀ over raw row-major slices on the
// calling goroutine: A is m×k, B is n×k, dst is m×n and fully
// overwritten. Bit-identical to MatMulTransB (each output element is one
// self-contained dot product, so banding never changes it); compiled
// plans use it for dense layers.
func GemmTransBSerial(dst, a, b []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(dst) < m*n {
		panic(fmt.Sprintf("tensor: GemmTransBSerial slice sizes %d/%d/%d too small for %dx%dx%d", len(a), len(b), len(dst), m, k, n))
	}
	matMulTransBRows(dst, a, b, 0, m, k, n)
}

// matMulTransBRows runs the dot-product kernel over output rows [lo, hi).
//
// The hot path dots six B rows (output columns) per A-row pass: six
// independent accumulator chains hide the FP-add latency a single dot
// product serializes on, and each loaded a-value feeds six accumulators.
// Per-element accumulation order is unchanged (ascending p), so results
// are bit-identical to the plain loop; 1x6 with no inner branch measured
// fastest across this repo's conv/dense shapes.
func matMulTransBRows(cd, ad, bd []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		j := 0
		for ; j+6 <= n; j += 6 {
			b0 := bd[j*k : (j+1)*k]
			b1 := bd[(j+1)*k : (j+2)*k]
			b2 := bd[(j+2)*k : (j+3)*k]
			b3 := bd[(j+3)*k : (j+4)*k]
			b4 := bd[(j+4)*k : (j+5)*k]
			b5 := bd[(j+5)*k : (j+6)*k]
			var s0, s1, s2, s3, s4, s5 float32
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
				s4 += av * b4[p]
				s5 += av * b5[p]
			}
			crow[j], crow[j+1], crow[j+2] = s0, s1, s2
			crow[j+3], crow[j+4], crow[j+5] = s3, s4, s5
		}
		for ; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
}

// MatMulTransA computes C = Aᵀ×B for A (k×m) and B (k×n), returning m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.Shape(), b.Shape()))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank-2, got %v", a.Shape()))
	}
	m, n := a.Dim(0), a.Dim(1)
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return t
}
