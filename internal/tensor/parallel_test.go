package tensor

import (
	"fmt"
	"testing"
)

// refMatMul is an intentionally naive triple loop used as the oracle for
// the banded kernels.
func refMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return c
}

func randTensor(rng *RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
		// Sprinkle exact zeros to exercise the skip-zero fast path.
		if rng.Float64() < 0.1 {
			t.Data[i] = 0
		}
	}
	return t
}

// oddShapes stresses band splitting: primes, singletons, and sizes just
// past the parallel threshold with every kind of remainder.
var oddShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{17, 31, 13},
	{2, 1000, 1},
	{1, 7, 997},
	{129, 65, 33},
	{64, 64, 64},
	{101, 53, 89},
}

func TestMatMulParallelMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, s := range oddShapes {
			t.Run(fmt.Sprintf("w%d_%dx%dx%d", workers, s.m, s.k, s.n), func(t *testing.T) {
				rng := NewRNG(uint64(s.m*1000 + s.k*10 + s.n))
				a := randTensor(rng, s.m, s.k)
				b := randTensor(rng, s.k, s.n)
				want := refMatMul(a, b)

				prev := SetWorkers(workers)
				defer SetWorkers(prev)
				got := MatMul(a, b)
				if len(got.Data) != len(want.Data) {
					t.Fatalf("size mismatch %d vs %d", len(got.Data), len(want.Data))
				}
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("C[%d] = %g, want %g (workers=%d shape %v)", i, got.Data[i], want.Data[i], workers, s)
					}
				}
			})
		}
	}
}

func TestMatMulBitIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := NewRNG(7)
	a := randTensor(rng, 123, 77)
	b := randTensor(rng, 77, 91)

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	serial := MatMul(a, b)
	for _, workers := range []int{2, 4, 8, 16} {
		SetWorkers(workers)
		got := MatMul(a, b)
		for i := range got.Data {
			if got.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d diverges from serial at %d: %g vs %g", workers, i, got.Data[i], serial.Data[i])
			}
		}
	}
}

func TestMatMulTransBParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(11)
	for _, s := range oddShapes {
		a := randTensor(rng, s.m, s.k)
		bt := randTensor(rng, s.n, s.k) // B stored transposed: n×k
		prev := SetWorkers(1)
		want := MatMulTransB(a, bt)
		SetWorkers(8)
		got := MatMulTransB(a, bt)
		SetWorkers(prev)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: C[%d] = %g, want %g", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestParallelForCoversRangeDisjointly(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	for _, n := range []int{0, 1, 2, 4, 5, 7, 64, 1001} {
		hits := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad band [%d, %d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestIm2ColIntoReusesDirtyBuffer(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	rng := NewRNG(3)
	img := randTensor(rng, 2, 5, 5)
	want := Im2Col(img, g)

	buf := GetBuf(want.Len())
	for i := range buf {
		buf[i] = 42 // poison: Im2ColInto must fully overwrite
	}
	dst := FromSlice(buf, want.Dim(0), want.Dim(1))
	Im2ColInto(dst, img, g)
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("col[%d] = %g, want %g", i, dst.Data[i], want.Data[i])
		}
	}
	PutBuf(buf)
	if b2 := GetBuf(8); cap(b2) < 8 {
		t.Fatalf("pool returned undersized buffer")
	}
}

func BenchmarkMatMulParallel(b *testing.B) {
	rng := NewRNG(1)
	a := randTensor(rng, 256, 256)
	bb := randTensor(rng, 256, 256)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, bb)
	}
}
