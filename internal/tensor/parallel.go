package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the package-level goroutine budget for parallel kernels.
// Zero means "use runtime.GOMAXPROCS(0)". It is stored atomically so
// tests (and the experiment engine) can adjust it while simulations run
// on other goroutines.
var workers atomic.Int64

// SetWorkers fixes the number of goroutines parallel kernels may use.
// n <= 0 restores the default (GOMAXPROCS). It returns the previous
// setting so callers can restore it.
func SetWorkers(n int) int {
	prev := int(workers.Swap(int64(n)))
	return prev
}

// Workers returns the effective worker count for parallel kernels.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor splits the index range [0, n) into at most Workers()
// contiguous bands and runs f(lo, hi) on each band concurrently. Band
// boundaries depend only on n and the worker count, and each invocation
// owns a disjoint range, so kernels that write disjoint outputs per index
// produce bit-identical results at any worker count. With one worker (or
// n <= 1) f runs inline with no goroutine overhead.
func ParallelFor(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nw := Workers()
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(nw)
	// Distribute the remainder one extra element to the first bands so
	// band sizes differ by at most one.
	q, r := n/nw, n%nw
	lo := 0
	for w := 0; w < nw; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// bufPool recycles float32 scratch slices across im2col/GEMM calls,
// killing the per-call allocations that dominated the naive conv path.
var bufPool = sync.Pool{}

// GetBuf returns a float32 scratch slice of length n. Contents are
// arbitrary; callers that need zeroed storage must clear it (Im2ColInto
// and MatMulInto both overwrite their destination fully).
//
// When the pooled slice is too small for the request it is returned to
// the pool instead of being dropped: a workload that interleaves small
// and large scratch requests would otherwise leak every small buffer the
// moment a large request drew it, slowly degrading the pool to
// allocate-per-call. The fresh allocation satisfies the oversized
// request; the undersized buffer stays available for the next small one.
func GetBuf(n int) []float32 {
	if v := bufPool.Get(); v != nil {
		b := v.([]float32)
		if cap(b) >= n {
			return b[:n]
		}
		PutBuf(b)
	}
	return make([]float32, n)
}

// PutBuf returns a scratch slice to the pool.
func PutBuf(b []float32) {
	if cap(b) == 0 {
		return
	}
	bufPool.Put(b[:0:cap(b)]) //nolint:staticcheck // slice headers are cheap relative to the buffers they carry
}

// parallelFlopThreshold is the approximate MAC count below which a
// matmul is not worth fanning out: goroutine startup (~1 µs) must be
// amortized against the band's arithmetic.
const parallelFlopThreshold = 64 * 1024
