// Package tensor provides the minimal dense float32 tensor substrate used
// by the neural-network, compression, and reinforcement-learning packages.
//
// Tensors are row-major with an explicit shape. Convolutional data uses the
// NCHW layout (batch, channels, height, width), matching the layout the
// paper's MCU kernels operate on. The package is intentionally BLAS-free:
// everything is written against the Go standard library so the module
// builds offline.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor.
//
// The zero value is an empty tensor. Use New or the helper constructors to
// build tensors with a shape.
type Tensor struct {
	shape   []int
	strides []int
	// Data is the backing storage, exposed so kernels (im2col, matmul,
	// quantizers) can operate on it directly without per-element calls.
	Data []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		Data:  make([]float32, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// FromSlice returns a tensor that adopts data as its backing storage.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		Data:  data,
	}
	t.strides = computeStrides(t.shape)
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the tensor with a new shape sharing the same
// backing data. It panics if the volumes differ. One dimension may be -1,
// in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: at most one dimension may be -1 in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for shape %v from %d elements", shape, len(t.Data)))
		}
		shape[infer] = len(t.Data) / n
		n *= shape[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v incompatible with %d elements", shape, len(t.Data)))
	}
	return &Tensor{shape: shape, strides: computeStrides(shape), Data: t.Data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace adds o element-wise into t. Shapes must have equal volume.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: AddInPlace volume mismatch %d vs %d", len(t.Data), len(o.Data)))
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// AxpyInPlace computes t += alpha*o element-wise.
func (t *Tensor) AxpyInPlace(alpha float32, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: AxpyInPlace volume mismatch %d vs %d", len(t.Data), len(o.Data)))
	}
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
}

// ScaleInPlace multiplies every element by alpha.
func (t *Tensor) ScaleInPlace(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Sum returns the sum of all elements in float64 for numerical stability.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// AbsSum returns the sum of absolute values of all elements.
func (t *Tensor) AbsSum() float64 {
	var s float64
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// MaxAbs returns the maximum absolute value of any element (0 for empty).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the largest element in the flattened tensor.
// It returns -1 for an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		return -1
	}
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}

// L2Distance returns the Euclidean distance between t and o.
func (t *Tensor) L2Distance(o *Tensor) float64 {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: L2Distance volume mismatch %d vs %d", len(t.Data), len(o.Data)))
	}
	var s float64
	for i, v := range t.Data {
		d := float64(v - o.Data[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short diagnostic description.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.shape, len(t.Data))
}
