// Package artifact defines the versioned deployment bundle — the
// "compress once, flash once" unit of the paper's workflow made
// portable. A bundle serializes a core.Deployed end to end: the network
// architecture as a declarative multiexit.Spec (names, geometry, and
// compression metadata included, so the rebuilt network reproduces
// FLOPs, weight-size accounting, and inference bit-for-bit), the
// compressed weights, the per-exit accuracies, the compression policy
// that produced it (provenance), pinned int8 calibration scales, and
// the deployment's default inference backend.
//
// # Wire format (version 1)
//
//	offset  size       field
//	0       4          magic "EHDA"
//	4       4          format version, uint32 little-endian
//	8       4          manifest length M, uint32 little-endian
//	12      M          manifest, JSON (see manifest)
//	12+M    …          tensor sections: each parameter's float32 data,
//	                   little-endian, concatenated in manifest order
//
// Nothing follows the last section. Decoding is strict: bad magic, an
// unknown format version, unknown manifest fields, truncated sections,
// shape mismatches, and trailing bytes are all distinct errors rather
// than best-effort repairs — an artifact either round-trips exactly or
// does not load.
//
// # Version policy
//
// The format version is a single integer gate: a reader accepts exactly
// the versions it knows how to decode bit-faithfully and rejects
// everything else. Any manifest change — even an additive field — bumps
// the version, which is why decoding also rejects unknown manifest
// fields: a version-1 manifest containing fields this build does not
// know about is evidence of version skew, not extensibility.
package artifact

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/multiexit"
	"repro/internal/plan"
)

// Magic identifies a deployment-artifact stream ("EH Deployment
// Artifact").
const Magic = "EHDA"

// FormatVersion is the artifact format this build writes and reads.
const FormatVersion = 1

const (
	// maxManifestBytes bounds the JSON manifest; real manifests are a
	// few KB.
	maxManifestBytes = 16 << 20
	// maxParamValues bounds the total float32 count a manifest may
	// declare (256 MB of weights), so a corrupted or hostile manifest
	// cannot request absurd allocations before section reads fail.
	maxParamValues = 64 << 20
	// maxDim bounds any single declared layer dimension.
	maxDim = 1 << 24
)

// Bundle is the in-memory form of a deployment artifact.
type Bundle struct {
	// Name labels the artifact (optional; surfaced by tools and the
	// ehserved artifact listing).
	Name string
	// Deployed is the packaged deployment. Its DefaultBackend and
	// Int8Calibration fields are persisted with it.
	Deployed *core.Deployed
	// Policy optionally records the compression policy the deployment
	// was built with — provenance, and reusable as a grid axis.
	Policy *compress.Policy
}

// manifest is the JSON header of the wire format.
type manifest struct {
	Name     string            `json:"name,omitempty"`
	Arch     *multiexit.Spec   `json:"arch"`
	ExitAccs []float64         `json:"exitAccs"`
	Backend  string            `json:"backend,omitempty"`
	Policy   *compress.Policy  `json:"policy,omitempty"`
	Int8Cal  *plan.Calibration `json:"int8Calibration,omitempty"`
	Params   []paramSection    `json:"params"`
}

// paramSection describes one tensor section: which parameter it
// restores, its shape, and how many float32 values follow.
type paramSection struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
	Count int    `json:"count"`
}

// Encode writes the bundle to w in the versioned wire format.
func Encode(w io.Writer, b *Bundle) error {
	if b == nil || b.Deployed == nil || b.Deployed.Net == nil {
		return fmt.Errorf("artifact: nil bundle or deployment")
	}
	d := b.Deployed
	spec, err := multiexit.Describe(d.Net)
	if err != nil {
		return fmt.Errorf("artifact: describe network: %w", err)
	}
	if b.Policy != nil {
		if err := b.Policy.Validate(); err != nil {
			return fmt.Errorf("artifact: bundle policy: %w", err)
		}
	}
	m := manifest{
		Name:     b.Name,
		Arch:     spec,
		ExitAccs: d.ExitAccs,
		Policy:   b.Policy,
		Int8Cal:  d.Int8Calibration,
	}
	if d.DefaultBackend != core.BackendDefault {
		m.Backend = d.DefaultBackend.String()
	}
	params := d.Net.Params()
	for _, p := range params {
		m.Params = append(m.Params, paramSection{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape()...),
			Count: p.Value.Len(),
		})
	}
	mdata, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("artifact: encode manifest: %w", err)
	}

	var header [12]byte
	copy(header[:4], Magic)
	binary.LittleEndian.PutUint32(header[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(header[8:12], uint32(len(mdata)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("artifact: write header: %w", err)
	}
	if _, err := w.Write(mdata); err != nil {
		return fmt.Errorf("artifact: write manifest: %w", err)
	}
	buf := make([]byte, 0, 64<<10)
	for _, p := range params {
		buf = buf[:0]
		for _, v := range p.Value.Data {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("artifact: write section %q: %w", p.Name, err)
		}
	}
	return nil
}

// Decode reads a bundle from r, strictly: every structural defect is an
// error. The reader must be positioned at the magic and must end at the
// last tensor section.
func Decode(r io.Reader) (*Bundle, error) {
	var header [12]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("artifact: read header: %w", err)
	}
	if string(header[:4]) != Magic {
		return nil, fmt.Errorf("artifact: bad magic %q (not a deployment artifact)", header[:4])
	}
	version := binary.LittleEndian.Uint32(header[4:8])
	if version != FormatVersion {
		return nil, fmt.Errorf("artifact: unsupported format version %d (this build reads version %d)", version, FormatVersion)
	}
	mlen := binary.LittleEndian.Uint32(header[8:12])
	if mlen == 0 || mlen > maxManifestBytes {
		return nil, fmt.Errorf("artifact: manifest length %d outside (0, %d]", mlen, maxManifestBytes)
	}
	mdata := make([]byte, mlen)
	if _, err := io.ReadFull(r, mdata); err != nil {
		return nil, fmt.Errorf("artifact: truncated manifest: %w", err)
	}
	var m manifest
	dec := json.NewDecoder(bytes.NewReader(mdata))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("artifact: decode manifest: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("artifact: trailing data inside manifest")
	}
	if m.Arch == nil {
		return nil, fmt.Errorf("artifact: manifest has no architecture")
	}
	if err := checkSpecBudget(m.Arch); err != nil {
		return nil, err
	}
	net, err := multiexit.FromSpec(m.Arch)
	if err != nil {
		return nil, fmt.Errorf("artifact: rebuild network: %w", err)
	}

	params := net.Params()
	if len(params) != len(m.Params) {
		return nil, fmt.Errorf("artifact: manifest declares %d tensor sections, architecture has %d parameters",
			len(m.Params), len(params))
	}
	var total int64
	for i, sec := range m.Params {
		p := params[i]
		if sec.Name != p.Name {
			return nil, fmt.Errorf("artifact: section %d is %q, architecture parameter is %q", i, sec.Name, p.Name)
		}
		if !shapeEqual(sec.Shape, p.Value.Shape()) {
			return nil, fmt.Errorf("artifact: section %q has shape %v, architecture expects %v",
				sec.Name, sec.Shape, p.Value.Shape())
		}
		if sec.Count != p.Value.Len() {
			return nil, fmt.Errorf("artifact: section %q declares %d values for shape %v (%d values)",
				sec.Name, sec.Count, sec.Shape, p.Value.Len())
		}
		total += int64(sec.Count)
		if total > maxParamValues {
			return nil, fmt.Errorf("artifact: declared weight volume exceeds %d values", maxParamValues)
		}
	}
	buf := make([]byte, 0, 64<<10)
	for i, sec := range m.Params {
		need := sec.Count * 4
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("artifact: truncated section %q (%d of %d): %w", sec.Name, i+1, len(m.Params), err)
		}
		dst := params[i].Value.Data
		for j := range dst {
			dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
	}
	var tail [1]byte
	if _, err := io.ReadFull(r, tail[:]); err == nil {
		return nil, fmt.Errorf("artifact: trailing data after last tensor section")
	} else if err != io.EOF {
		return nil, fmt.Errorf("artifact: read past last section: %w", err)
	}

	d, err := core.NewDeployed(net, m.ExitAccs)
	if err != nil {
		return nil, fmt.Errorf("artifact: rebuild deployment: %w", err)
	}
	backend, err := core.ParseBackend(m.Backend)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	d.DefaultBackend = backend
	if m.Int8Cal != nil {
		if err := checkCalibration(m.Int8Cal, m.Arch, net.NumExits()); err != nil {
			return nil, err
		}
		d.Int8Calibration = m.Int8Cal
	}
	if m.Policy != nil {
		if err := m.Policy.Validate(); err != nil {
			return nil, fmt.Errorf("artifact: bundled policy: %w", err)
		}
	}
	return &Bundle{Name: m.Name, Deployed: d, Policy: m.Policy}, nil
}

// checkCalibration verifies pinned int8 scales cover the architecture
// exactly: one ceiling per weighted (conv/dense) layer of every
// sequential (an all-empty slice means "uncalibrated", which is
// legitimate). Anything partial would silently fall back to the static
// default ceiling for the missing layers — a quantization that differs
// from the deployment the artifact was saved from, which the strict
// decode contract forbids.
func checkCalibration(cal *plan.Calibration, spec *multiexit.Spec, exits int) error {
	if len(cal.Segments) != exits || len(cal.Branches) != exits {
		return fmt.Errorf("artifact: int8 calibration covers %d/%d sequentials for %d exits",
			len(cal.Segments), len(cal.Branches), exits)
	}
	check := func(kind string, scales [][]float64, seqs []multiexit.SequentialSpec) error {
		for i, s := range scales {
			if len(s) == 0 {
				continue
			}
			weighted := 0
			for _, ls := range seqs[i].Layers {
				if ls.Kind == multiexit.LayerConv || ls.Kind == multiexit.LayerDense {
					weighted++
				}
			}
			if len(s) != weighted {
				return fmt.Errorf("artifact: int8 calibration has %d ceilings for %s %d's %d weighted layers",
					len(s), kind, i, weighted)
			}
			// A zero ceiling is a legitimate "this layer saw no
			// activations" marker (both the saver and the loader fall
			// back to the static default for it, identically); only
			// values no calibration pass can produce are rejected.
			for j, v := range s {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("artifact: int8 calibration ceiling %d of %s %d is %g", j, kind, i, v)
				}
			}
		}
		return nil
	}
	if err := check("segment", cal.Segments, spec.Segments); err != nil {
		return err
	}
	return check("branch", cal.Branches, spec.Branches)
}

// checkSpecBudget rejects architecture specs whose declared dimensions
// would allocate unreasonable parameter volumes, before FromSpec builds
// anything.
func checkSpecBudget(s *multiexit.Spec) error {
	var total int64
	// addWeights accumulates the product of the dims with an overflow-
	// free early bail: every factor is ≤ maxDim (2^24) and the running
	// product is checked against maxParamValues (≪ 2^63 / maxDim) after
	// each multiplication, so the product can never wrap.
	addWeights := func(name string, dims ...int) error {
		p := int64(1)
		for _, d := range dims {
			p *= int64(d)
			if p > maxParamValues {
				return fmt.Errorf("artifact: layer %q exceeds %d weight values", name, maxParamValues)
			}
		}
		total += p
		if total > maxParamValues {
			return fmt.Errorf("artifact: declared architecture exceeds %d weight values", maxParamValues)
		}
		return nil
	}
	walk := func(specs []multiexit.SequentialSpec) error {
		for _, ss := range specs {
			for _, ls := range ss.Layers {
				dims := []int{ls.InC, ls.OutC, ls.KH, ls.KW, ls.In, ls.Out, ls.NomH, ls.NomW}
				for _, d := range dims {
					if d < 0 || d > maxDim {
						return fmt.Errorf("artifact: layer %q dimension %d outside [0, %d]", ls.Name, d, maxDim)
					}
				}
				switch ls.Kind {
				case multiexit.LayerConv:
					if err := addWeights(ls.Name, ls.InC, ls.OutC, ls.KH, ls.KW); err != nil {
						return err
					}
				case multiexit.LayerDense:
					if err := addWeights(ls.Name, ls.In, ls.Out); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := walk(s.Segments); err != nil {
		return err
	}
	return walk(s.Branches)
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteFile saves the bundle to path.
func WriteFile(path string, b *Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a bundle from path.
func ReadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
