package artifact

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/tensor"
)

// testBundle builds a deterministic compressed deployment with a bound
// int8 calibration and a default backend — every optional field
// populated, so round trips exercise the whole manifest.
func testBundle(t *testing.T) *Bundle {
	t.Helper()
	policy := compress.Fig1bNonuniform()
	d, err := core.BuildDeployed(policy, 11)
	if err != nil {
		t.Fatal(err)
	}
	d.DefaultBackend = core.BackendInt8
	_, test := dataset.TrainTest(dataset.SynthConfig{Seed: 11}, 2, 6)
	var imgs []*tensor.Tensor
	for i := 0; i < 4; i++ {
		imgs = append(imgs, test.Samples[i].Image)
	}
	d.BindInt8Calibration(imgs)
	return &Bundle{Name: "test-bundle", Deployed: d, Policy: policy}
}

func encodeBytes(t *testing.T, b *Bundle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	b := testBundle(t)
	data := encodeBytes(t, b)

	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name {
		t.Errorf("name %q, want %q", got.Name, b.Name)
	}
	d, d2 := b.Deployed, got.Deployed
	if !reflect.DeepEqual(d2.ExitAccs, d.ExitAccs) {
		t.Errorf("exit accuracies diverge: %v vs %v", d2.ExitAccs, d.ExitAccs)
	}
	if !reflect.DeepEqual(d2.ExitFLOPs, d.ExitFLOPs) {
		t.Errorf("exit FLOPs diverge: %v vs %v", d2.ExitFLOPs, d.ExitFLOPs)
	}
	if !reflect.DeepEqual(d2.Marginal, d.Marginal) {
		t.Error("marginal cost matrix diverges")
	}
	if d2.WeightBytes != d.WeightBytes {
		t.Errorf("weight bytes %d, want %d", d2.WeightBytes, d.WeightBytes)
	}
	if d2.DefaultBackend != core.BackendInt8 {
		t.Errorf("default backend %v, want int8", d2.DefaultBackend)
	}
	if !reflect.DeepEqual(d2.Int8Calibration, d.Int8Calibration) {
		t.Error("int8 calibration diverges")
	}
	if !reflect.DeepEqual(got.Policy, b.Policy) {
		t.Error("policy diverges")
	}
	p1, p2 := d.Net.Params(), d2.Net.Params()
	if len(p1) != len(p2) {
		t.Fatalf("param count %d, want %d", len(p2), len(p1))
	}
	for i := range p1 {
		if !reflect.DeepEqual(p1[i].Value.Data, p2[i].Value.Data) {
			t.Fatalf("param %q weights diverge", p1[i].Name)
		}
	}

	// Encoding is deterministic: re-encoding the decoded bundle yields
	// the same bytes.
	if !bytes.Equal(encodeBytes(t, got), data) {
		t.Error("re-encoded artifact bytes differ")
	}
}

func TestFileRoundTrip(t *testing.T) {
	b := testBundle(t)
	path := filepath.Join(t.TempDir(), "d.ehar")
	if err := WriteFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Deployed.WeightBytes != b.Deployed.WeightBytes {
		t.Error("file round trip lost the deployment")
	}
}

// TestDecodeStrict corrupts a valid artifact in every structural way the
// format guards against and demands a decode error for each.
func TestDecodeStrict(t *testing.T) {
	data := encodeBytes(t, testBundle(t))

	mlen := binary.LittleEndian.Uint32(data[8:12])
	sectionsAt := 12 + int(mlen)

	mutate := func(fn func(d []byte) []byte) []byte {
		d := append([]byte(nil), data...)
		return fn(d)
	}
	cases := map[string][]byte{
		"empty": {},
		"bad magic": mutate(func(d []byte) []byte {
			copy(d[:4], "NOPE")
			return d
		}),
		"version skew": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:8], FormatVersion+1)
			return d
		}),
		"zero version": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:8], 0)
			return d
		}),
		"zero manifest length": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:12], 0)
			return d
		}),
		"oversized manifest length": mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:12], 1<<31)
			return d
		}),
		"corrupt manifest JSON": mutate(func(d []byte) []byte {
			d[12] = '!'
			return d
		}),
		"truncated header":        data[:7],
		"truncated manifest":      data[:12+int(mlen)/2],
		"truncated first section": data[:sectionsAt+3],
		"truncated last section":  data[:len(data)-1],
		"trailing garbage":        append(append([]byte(nil), data...), 0xAA),
		"manifest/section length skew": mutate(func(d []byte) []byte {
			// Claim a longer manifest so section reads start mid-stream.
			binary.LittleEndian.PutUint32(d[8:12], mlen+4)
			return d
		}),
	}
	for name, corrupted := range cases {
		if _, err := Decode(bytes.NewReader(corrupted)); err == nil {
			t.Errorf("%s: decode accepted a corrupted artifact", name)
		}
	}
}

// TestDecodeRejectsUnknownManifestFields: unknown fields signal version
// skew and must be refused, per the format's version policy.
func TestDecodeRejectsUnknownManifestFields(t *testing.T) {
	data := encodeBytes(t, testBundle(t))
	mlen := binary.LittleEndian.Uint32(data[8:12])
	man := data[12 : 12+int(mlen)]
	patched := bytes.Replace(man, []byte(`{"name"`), []byte(`{"fromTheFuture":1,"name"`), 1)
	if len(patched) == len(man) {
		t.Fatal("manifest patch did not apply")
	}
	var out bytes.Buffer
	out.Write(data[:8])
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(patched)))
	out.Write(l[:])
	out.Write(patched)
	out.Write(data[12+int(mlen):])
	_, err := Decode(bytes.NewReader(out.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("expected manifest error for unknown field, got %v", err)
	}
}

// TestDecodeShapeMismatch flips a declared section shape and expects the
// decode to name the parameter.
func TestDecodeShapeMismatch(t *testing.T) {
	data := encodeBytes(t, testBundle(t))
	mlen := binary.LittleEndian.Uint32(data[8:12])
	man := data[12 : 12+int(mlen)]
	// Conv1.W is [6,3,5,5]; declare [6,3,5,6] instead (same text length).
	patched := bytes.Replace(man, []byte(`"shape":[6,3,5,5]`), []byte(`"shape":[6,3,5,6]`), 1)
	if bytes.Equal(patched, man) {
		t.Fatal("shape patch did not apply")
	}
	var out bytes.Buffer
	out.Write(data[:12])
	out.Write(patched)
	out.Write(data[12+int(mlen):])
	_, err := Decode(bytes.NewReader(out.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("expected shape mismatch error, got %v", err)
	}
}

// TestDecodeRejectsPartialCalibration: pinned int8 scales that cover
// only some of a sequential's weighted layers would silently fall back
// to the static ceiling for the rest — a quantization differing from
// the saved deployment — so the strict decode refuses them.
func TestDecodeRejectsPartialCalibration(t *testing.T) {
	b := testBundle(t)
	// LeNet-EE's branch 1 has three weighted layers (ConvB2, FC-B21,
	// FC-B22), so dropping one ceiling yields a non-empty partial slice.
	br1 := b.Deployed.Int8Calibration.Branches[1]
	if len(br1) < 2 {
		t.Fatalf("expected ≥2 calibrated layers in branch 1, got %d", len(br1))
	}
	b.Deployed.Int8Calibration.Branches[1] = br1[:len(br1)-1]
	data := encodeBytes(t, b)
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Fatal("decode accepted a partially-calibrated artifact")
	}

	// The all-empty form ("uncalibrated") stays legal.
	b2 := testBundle(t)
	for i := range b2.Deployed.Int8Calibration.Segments {
		b2.Deployed.Int8Calibration.Segments[i] = nil
		b2.Deployed.Int8Calibration.Branches[i] = nil
	}
	if _, err := Decode(bytes.NewReader(encodeBytes(t, b2))); err != nil {
		t.Fatalf("decode rejected the legal uncalibrated form: %v", err)
	}
}

// TestEncodeRejects covers unencodable bundles.
func TestEncodeRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil); err == nil {
		t.Error("nil bundle must not encode")
	}
	if err := Encode(&buf, &Bundle{}); err == nil {
		t.Error("bundle without deployment must not encode")
	}
	b := testBundle(t)
	b.Policy = &compress.Policy{} // invalid: empty
	if err := Encode(&buf, b); err == nil {
		t.Error("bundle with invalid policy must not encode")
	}
}
