package artifact

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/multiexit"
	"repro/internal/nn"
)

// fuzzSeed builds a tiny valid artifact for the fuzz corpus.
func fuzzSeed(tb testing.TB) []byte {
	conv := nn.NewConv2D("c", 1, 2, 3, 3, 1, 1)
	conv.NomH, conv.NomW = 4, 4
	fc := nn.NewDense("f", 2*4*4, 2)
	fc.Final = true
	net := &multiexit.Network{
		Segments: []*nn.Sequential{nn.NewSequential("s0", conv, nn.NewReLU("r"))},
		Branches: []*nn.Sequential{nn.NewSequential("b0", nn.NewFlatten("fl"), fc)},
		Classes:  2,
	}
	d, err := core.NewDeployed(net, []float64{0.5})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, &Bundle{Name: "fuzz", Deployed: d}); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode asserts Decode never panics and never mistakes a mutated
// stream for a different valid artifact silently: whatever it returns
// must itself re-encode.
func FuzzDecode(f *testing.F) {
	seed := fuzzSeed(f)
	f.Add(seed)
	// Targeted corpus seeds: version skew, truncations, corrupted
	// section lengths.
	for _, cut := range []int{0, 4, 8, 11, len(seed) / 2, len(seed) - 1} {
		if cut <= len(seed) {
			f.Add(seed[:cut])
		}
	}
	skew := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(skew[4:8], 99)
	f.Add(skew)
	badLen := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(badLen[8:12], uint32(len(seed)))
	f.Add(badLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must re-encode (internal consistency).
		var buf bytes.Buffer
		if err := Encode(&buf, b); err != nil {
			t.Fatalf("decoded artifact failed to re-encode: %v", err)
		}
	})
}

// TestDecodeRejectsOverflowingSpec pins the overflow-free budget check:
// dimensions that individually pass maxDim but whose product would wrap
// int64 must produce the strict decode error, not a makeslice panic.
func TestDecodeRejectsOverflowingSpec(t *testing.T) {
	seed := fuzzSeed(t)
	mlen := binary.LittleEndian.Uint32(seed[8:12])
	man := seed[12 : 12+int(mlen)]
	// Inflate the conv geometry to 2^24 × 2^24 × 2^15 × 1 (product 2^63).
	patched := bytes.Replace(man,
		[]byte(`"inC":1,"outC":2,"kh":3,"kw":3`),
		[]byte(`"inC":16777216,"outC":16777216,"kh":32768,"kw":1`), 1)
	if bytes.Equal(patched, man) {
		t.Fatal("geometry patch did not apply")
	}
	var out bytes.Buffer
	out.Write(seed[:8])
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(patched)))
	out.Write(l[:])
	out.Write(patched)
	out.Write(seed[12+int(mlen):])
	if _, err := Decode(bytes.NewReader(out.Bytes())); err == nil {
		t.Fatal("decode accepted an int64-overflowing architecture")
	}
}
