package accmodel

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/multiexit"
)

func newSur(t *testing.T) (*Surrogate, *multiexit.Network) {
	t.Helper()
	net := multiexit.LeNetEE(nil)
	sur, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sur, net
}

func TestFullPrecisionMatchesAnchorsExactly(t *testing.T) {
	sur, net := newSur(t)
	accs := sur.ExitAccuracies(compress.FullPrecision(net))
	want := []float64{0.649, 0.720, 0.730}
	for i := range want {
		if math.Abs(accs[i]-want[i]) > 1e-9 {
			t.Fatalf("full-precision exit %d = %v, want %v", i+1, accs[i], want[i])
		}
	}
}

func TestUniformAnchorsWithinTolerance(t *testing.T) {
	sur, net := newSur(t)
	accs := sur.ExitAccuracies(compress.Fig1bUniform(net))
	want := []float64{0.573, 0.652, 0.675} // paper Fig. 1b uniform bars
	for i := range want {
		if math.Abs(accs[i]-want[i]) > 0.03 {
			t.Errorf("uniform exit %d = %.3f, paper %.3f (tolerance 0.03)", i+1, accs[i], want[i])
		}
	}
}

func TestNonuniformAnchorsWithinTolerance(t *testing.T) {
	sur, _ := newSur(t)
	accs := sur.ExitAccuracies(compress.Fig1bNonuniform())
	want := []float64{0.619, 0.685, 0.699} // paper Fig. 1b nonuniform bars
	for i := range want {
		if math.Abs(accs[i]-want[i]) > 0.03 {
			t.Errorf("nonuniform exit %d = %.3f, paper %.3f (tolerance 0.03)", i+1, accs[i], want[i])
		}
	}
}

func TestNonuniformBeatsUniformEverywhere(t *testing.T) {
	// The headline claim of Fig. 1b.
	sur, net := newSur(t)
	uni := sur.ExitAccuracies(compress.Fig1bUniform(net))
	non := sur.ExitAccuracies(compress.Fig1bNonuniform())
	full := sur.ExitAccuracies(compress.FullPrecision(net))
	for i := range uni {
		if !(non[i] > uni[i]) {
			t.Errorf("exit %d: nonuniform %.3f not above uniform %.3f", i+1, non[i], uni[i])
		}
		if !(full[i] > non[i]) {
			t.Errorf("exit %d: full %.3f not above nonuniform %.3f", i+1, full[i], non[i])
		}
	}
}

func TestMonotoneInBits(t *testing.T) {
	sur, net := newSur(t)
	prev := 0.0
	for bits := 1; bits <= 8; bits++ {
		accs := sur.ExitAccuracies(compress.Uniform(net, 1.0, bits, 8))
		if accs[2] < prev-1e-12 {
			t.Fatalf("accuracy not monotone in weight bits at %d: %v < %v", bits, accs[2], prev)
		}
		prev = accs[2]
	}
}

func TestMonotoneInPreserveRatio(t *testing.T) {
	sur, net := newSur(t)
	prev := 0.0
	for a := 0.1; a <= 1.0; a += 0.1 {
		accs := sur.ExitAccuracies(compress.Uniform(net, a, 8, 8))
		if accs[0] < prev-1e-12 {
			t.Fatalf("accuracy not monotone in preserve ratio at %.1f", a)
		}
		prev = accs[0]
	}
}

func TestExtremePruningIsSevere(t *testing.T) {
	// The search must not find free lunch in near-total pruning. The
	// calibration is deliberately paper-faithful (the paper claims only
	// a few points of loss at 0.31× FLOPs), so the requirement here is
	// a large drop relative to full precision, not collapse to chance.
	sur, net := newSur(t)
	accs := sur.ExitAccuracies(compress.Uniform(net, 0.05, 8, 8))
	if accs[2] > 0.55 {
		t.Fatalf("pruning to 5%% still predicts %.3f accuracy — surrogate too generous", accs[2])
	}
	mild := sur.ExitAccuracies(compress.Uniform(net, 0.75, 8, 8))
	if accs[2] > mild[2]-0.1 {
		t.Fatalf("extreme pruning (%.3f) not clearly below mild pruning (%.3f)", accs[2], mild[2])
	}
}

func TestShallowLayersMoreSensitive(t *testing.T) {
	sur, _ := newSur(t)
	// Same compression applied to Conv1 (feeds exit 1) vs Conv4 (exit 3
	// only) must hurt exit 3 more through Conv1.
	pConv1 := &compress.Policy{Layers: []compress.LayerPolicy{
		{Layer: "Conv1", PreserveRatio: 1.0, WeightBits: 2, ActBits: 8},
	}}
	pConv4 := &compress.Policy{Layers: []compress.LayerPolicy{
		{Layer: "Conv4", PreserveRatio: 1.0, WeightBits: 2, ActBits: 8},
	}}
	a1 := sur.ExitAccuracies(pConv1)[2]
	a4 := sur.ExitAccuracies(pConv4)[2]
	if !(a1 < a4) {
		t.Fatalf("quantizing Conv1 (%.4f) should hurt exit 3 more than Conv4 (%.4f)", a1, a4)
	}
}

func TestLayersOffPathDoNotAffectExit(t *testing.T) {
	sur, _ := newSur(t)
	// Branch-2 layers are not on exit 1's path.
	p := &compress.Policy{Layers: []compress.LayerPolicy{
		{Layer: "FC-B31", PreserveRatio: 0.05, WeightBits: 1, ActBits: 1},
	}}
	accs := sur.ExitAccuracies(p)
	if accs[0] != 0.649 {
		t.Fatalf("compressing FC-B31 changed exit 1 accuracy: %v", accs[0])
	}
	if accs[2] >= 0.730 {
		t.Fatal("compressing FC-B31 should hurt exit 3")
	}
}

func TestCustomFullAccuracies(t *testing.T) {
	net := multiexit.LeNetEE(nil)
	sur, err := New(net, []float64{0.5, 0.6, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	accs := sur.ExitAccuracies(compress.FullPrecision(net))
	if accs[0] != 0.5 || accs[2] != 0.7 {
		t.Fatalf("custom anchors ignored: %v", accs)
	}
}

func TestWrongAccuracyCountRejected(t *testing.T) {
	net := multiexit.LeNetEE(nil)
	if _, err := New(net, []float64{0.5}); err == nil {
		t.Fatal("wrong-length accuracies accepted")
	}
}

func TestDiscretePruningPlateau(t *testing.T) {
	sur, _ := newSur(t)
	// Conv1 has 3 input channels: α=0.9 still keeps all 3, so no damage.
	p := &compress.Policy{Layers: []compress.LayerPolicy{
		{Layer: "Conv1", PreserveRatio: 0.9, WeightBits: 32, ActBits: 32},
	}}
	accs := sur.ExitAccuracies(p)
	if accs[0] != 0.649 {
		t.Fatalf("α=0.9 on a 3-channel input should be free, got %v", accs[0])
	}
}
