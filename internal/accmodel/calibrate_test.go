package accmodel

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/multiexit"
)

// TestCalibrateRecoversObservations: generate observations from a known
// coefficient set, perturb the calibration, and verify Calibrate fits the
// observations back to low error without permanently mutating the
// package state.
func TestCalibrateRecoversObservations(t *testing.T) {
	net := multiexit.LeNetEE(nil)
	sur, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := currentCalibration()

	// Observations generated under the current (true) calibration.
	policies := []*compress.Policy{
		compress.FullPrecision(net),
		compress.Fig1bUniform(net),
		compress.Fig1bNonuniform(),
		compress.Uniform(net, 0.5, 4, 4),
		compress.Uniform(net, 0.8, 2, 8),
	}
	var obs []Observation
	for _, p := range policies {
		obs = append(obs, Observation{Policy: p, ExitAccs: sur.ExitAccuracies(p)})
	}

	// Perturb, then fit.
	perturbed := before
	perturbed.PruneCoefConv *= 3
	perturbed.WeightQuantCoefConv *= 0.2
	perturbed.Apply()

	res, err := sur.Calibrate(obs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > 0.01 {
		t.Fatalf("calibration RMSE %.4f too high", res.RMSE)
	}

	// Package state must be restored (Calibrate does not install).
	after := currentCalibration()
	if after != perturbed {
		t.Fatal("Calibrate mutated package calibration without Apply")
	}

	// Installing the result should reproduce the observations.
	res.Apply()
	defer before.Apply()
	for i, p := range policies {
		pred := sur.ExitAccuracies(p)
		for e := range pred {
			if diff := pred[e] - obs[i].ExitAccs[e]; diff > 0.02 || diff < -0.02 {
				t.Fatalf("policy %d exit %d: fitted prediction %.3f vs observed %.3f", i, e, pred[e], obs[i].ExitAccs[e])
			}
		}
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	net := multiexit.LeNetEE(nil)
	sur, err := New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sur.Calibrate(nil, 3); err == nil {
		t.Fatal("empty observations accepted")
	}
	bad := []Observation{{Policy: compress.FullPrecision(net), ExitAccs: []float64{0.5}}}
	if _, err := sur.Calibrate(bad, 3); err == nil {
		t.Fatal("wrong-length accuracies accepted")
	}
}
