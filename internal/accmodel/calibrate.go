package accmodel

import (
	"fmt"
	"math"

	"repro/internal/compress"
)

// Observation is one measured calibration point: a compression policy and
// the per-exit accuracies it produced (from real post-compression
// evaluation, e.g. on CIFAR-10 when the data is available).
type Observation struct {
	Policy   *compress.Policy
	ExitAccs []float64
}

// CalibrationResult reports the fitted coefficients and the fit error.
type CalibrationResult struct {
	PruneCoefConv        float64
	PruneCoefDense       float64
	WeightQuantCoefConv  float64
	WeightQuantCoefDense float64
	ActQuantCoefConv     float64
	ActQuantCoefDense    float64
	// RMSE is the root-mean-square accuracy error over all observations
	// and exits after fitting.
	RMSE float64
}

// Apply installs the fitted coefficients as the package calibration.
func (c CalibrationResult) Apply() {
	PruneCoefConv = c.PruneCoefConv
	PruneCoefDense = c.PruneCoefDense
	WeightQuantCoefConv = c.WeightQuantCoefConv
	WeightQuantCoefDense = c.WeightQuantCoefDense
	ActQuantCoefConv = c.ActQuantCoefConv
	ActQuantCoefDense = c.ActQuantCoefDense
}

// currentCalibration captures the live package coefficients.
func currentCalibration() CalibrationResult {
	return CalibrationResult{
		PruneCoefConv:        PruneCoefConv,
		PruneCoefDense:       PruneCoefDense,
		WeightQuantCoefConv:  WeightQuantCoefConv,
		WeightQuantCoefDense: WeightQuantCoefDense,
		ActQuantCoefConv:     ActQuantCoefConv,
		ActQuantCoefDense:    ActQuantCoefDense,
	}
}

// Calibrate fits the six degradation coefficients to measured
// observations by cyclic coordinate descent with golden-section line
// search, starting from the current package calibration. The surrogate's
// functional form is fixed; only the coefficients move. The package
// calibration is left untouched — call Apply on the result to install it.
//
// This is how the shipped paper-anchored calibration was produced, and it
// lets a downstream user recalibrate against their own dataset (e.g. real
// CIFAR-10 measurements) without touching the model code.
func (s *Surrogate) Calibrate(obs []Observation, rounds int) (CalibrationResult, error) {
	if len(obs) == 0 {
		return CalibrationResult{}, fmt.Errorf("accmodel: no calibration observations")
	}
	for _, o := range obs {
		if len(o.ExitAccs) != s.net.NumExits() {
			return CalibrationResult{}, fmt.Errorf("accmodel: observation has %d accuracies for %d exits",
				len(o.ExitAccs), s.net.NumExits())
		}
	}
	if rounds <= 0 {
		rounds = 8
	}

	saved := currentCalibration()
	defer saved.Apply()

	coeffs := []*float64{
		&PruneCoefConv, &PruneCoefDense,
		&WeightQuantCoefConv, &WeightQuantCoefDense,
		&ActQuantCoefConv, &ActQuantCoefDense,
	}
	loss := func() float64 {
		var sq float64
		n := 0
		for _, o := range obs {
			pred := s.ExitAccuracies(o.Policy)
			for i := range pred {
				d := pred[i] - o.ExitAccs[i]
				sq += d * d
				n++
			}
		}
		return sq / float64(n)
	}

	for round := 0; round < rounds; round++ {
		for _, c := range coeffs {
			*c = goldenSection(func(v float64) float64 {
				old := *c
				*c = v
				l := loss()
				*c = old
				return l
			}, 0, math.Max(*c*4, 0.2), 40)
		}
	}
	out := currentCalibration()
	out.RMSE = math.Sqrt(loss())
	return out, nil
}

// goldenSection minimizes f over [lo, hi].
func goldenSection(f func(float64) float64, lo, hi float64, iters int) float64 {
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < iters; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}
