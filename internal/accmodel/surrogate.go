// Package accmodel provides the calibrated analytic accuracy surrogate
// used by the compression search reward and the paper-figure benches.
//
// The paper evaluates each candidate compression policy by measuring exit
// accuracies on a representative dataset — 6 GPU-hours per search. In
// this offline, CPU-only reproduction we substitute a surrogate (see
// DESIGN.md §2): per-exit accuracy is modelled as the full-precision
// accuracy attenuated by per-layer degradation factors,
//
//	Acc_i(policy) = AccFull_i · Π_{l ∈ path(i)} (1 − D_l)
//	D_l = sens_l · (Cp·((1/α_l)^0.8 − 1) + Cw·r(bw_l) + Ca·r(ba_l))
//	r(b) = 2^{−(b−1)·0.83}   (0 for full precision)
//
// where sens_l is larger for layers feeding shallow exits (early exits
// have less downstream capacity to absorb damage — the effect Fig. 1b
// demonstrates) and the C coefficients differ for conv vs dense layers
// (conv features are more precision-sensitive; §V-B observes FC layers
// tolerate 1-bit weights). The constants below are calibrated so the
// paper's three Fig. 1b operating points (full precision, uniform,
// nonuniform) reproduce within about one accuracy point, and the
// surrogate's monotonicity is validated against real SynthCIFAR training
// in the integration tests.
package accmodel

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/multiexit"
	"repro/internal/nn"
)

// Calibration constants (see package comment). Derived in closed form
// from the paper's Fig. 1b operating points; the accmodel tests pin the
// resulting predictions to those anchors.
var (
	// PruneCoef is Cp per layer kind.
	PruneCoefConv  = 0.030
	PruneCoefDense = 0.004
	// WeightQuantCoef is Cw per layer kind.
	WeightQuantCoefConv  = 0.045
	WeightQuantCoefDense = 0.008
	// ActQuantCoef is Ca per layer kind.
	ActQuantCoefConv  = 0.015
	ActQuantCoefDense = 0.004
	// SensByEarliestExit maps a layer's earliest consuming exit to its
	// sensitivity multiplier: layers feeding shallow exits are the most
	// fragile (Fig. 1b's motivating observation).
	SensByEarliestExit = []float64{1.75, 0.70, 0.30}
	// BitDecay is the exponent rate in r(b).
	BitDecay = 0.83
	// PruneExp is the exponent in the capacity-loss prune term
	// p(α) = (1/α)^PruneExp − 1, which is gentle for mild pruning but
	// diverges as α → 0 — removing nearly all channels of a LeNet-scale
	// layer destroys it, and the search must not be able to exploit a
	// model that says otherwise.
	PruneExp = 0.8
)

// Surrogate predicts per-exit accuracy for compression policies applied
// to a specific multi-exit architecture.
type Surrogate struct {
	net     *multiexit.Network
	fullAcc []float64

	// static per-layer metadata
	kind  map[string]string // "conv" | "dense"
	inDim map[string]int    // input channels / activations
	sens  map[string]float64
}

// New builds a surrogate for net whose full-precision per-exit accuracies
// are fullAcc (defaults to the paper's 64.9/72.0/73.0 for 3-exit nets
// when nil).
func New(net *multiexit.Network, fullAcc []float64) (*Surrogate, error) {
	if fullAcc == nil {
		if net.NumExits() != 3 {
			return nil, fmt.Errorf("accmodel: default accuracies are for 3 exits, network has %d", net.NumExits())
		}
		fullAcc = []float64{
			multiexit.PaperExit1Acc,
			multiexit.PaperExit2Acc,
			multiexit.PaperExit3Acc,
		}
	}
	if len(fullAcc) != net.NumExits() {
		return nil, fmt.Errorf("accmodel: %d accuracies for %d exits", len(fullAcc), net.NumExits())
	}
	s := &Surrogate{
		net:     net,
		fullAcc: append([]float64(nil), fullAcc...),
		kind:    make(map[string]string),
		inDim:   make(map[string]int),
		sens:    make(map[string]float64),
	}
	for _, l := range net.CompressibleLayers() {
		name := l.Name()
		switch layer := l.(type) {
		case *nn.Conv2D:
			s.kind[name] = "conv"
			s.inDim[name] = layer.InC
		case *nn.Dense:
			s.kind[name] = "dense"
			s.inDim[name] = layer.In
		}
		exit := net.EarliestExitUsing(name)
		if exit < 0 || exit >= len(SensByEarliestExit) {
			s.sens[name] = SensByEarliestExit[len(SensByEarliestExit)-1]
		} else {
			s.sens[name] = SensByEarliestExit[exit]
		}
	}
	return s, nil
}

// FullAccuracies returns the surrogate's full-precision anchors.
func (s *Surrogate) FullAccuracies() []float64 {
	return append([]float64(nil), s.fullAcc...)
}

// bitPenalty is r(b).
func bitPenalty(bits int) float64 {
	if bits >= compress.FullBits || bits <= 0 {
		return 0
	}
	return math.Exp2(-float64(bits-1) * BitDecay)
}

// LayerDegradation returns D_l for one layer policy.
func (s *Surrogate) LayerDegradation(lp compress.LayerPolicy) float64 {
	kind, ok := s.kind[lp.Layer]
	if !ok {
		return 0
	}
	// Effective preserve ratio after discretizing to whole channels, so
	// e.g. pruning a 3-channel input at α=0.9 costs nothing.
	in := s.inDim[lp.Layer]
	alpha := float64(compress.KeepCount(in, lp.PreserveRatio)) / float64(in)

	var cp, cw, ca float64
	if kind == "conv" {
		cp, cw, ca = PruneCoefConv, WeightQuantCoefConv, ActQuantCoefConv
	} else {
		cp, cw, ca = PruneCoefDense, WeightQuantCoefDense, ActQuantCoefDense
	}
	d := cp*(math.Pow(1/alpha, PruneExp)-1) + cw*bitPenalty(lp.WeightBits) + ca*bitPenalty(lp.ActBits)
	d *= s.sens[lp.Layer]
	if d > 0.9 {
		d = 0.9
	}
	return d
}

// ExitAccuracies predicts the per-exit accuracy of net under policy.
// Layers absent from the policy are treated as uncompressed.
func (s *Surrogate) ExitAccuracies(policy *compress.Policy) []float64 {
	m := s.net.NumExits()
	accs := make([]float64, m)
	deg := make(map[string]float64, len(policy.Layers))
	for _, lp := range policy.Layers {
		deg[lp.Layer] = s.LayerDegradation(lp)
	}
	for i := 0; i < m; i++ {
		acc := s.fullAcc[i]
		for _, name := range s.pathLayerNames(i) {
			if d, ok := deg[name]; ok {
				acc *= 1 - d
			}
		}
		accs[i] = acc
	}
	return accs
}

// pathLayerNames lists the compressible layers on exit i's path.
func (s *Surrogate) pathLayerNames(i int) []string {
	var names []string
	collect := func(seq *nn.Sequential) {
		for _, l := range seq.Layers {
			switch l.(type) {
			case *nn.Conv2D, *nn.Dense:
				names = append(names, l.Name())
			}
		}
	}
	for k := 0; k <= i; k++ {
		collect(s.net.Segments[k])
	}
	collect(s.net.Branches[i])
	return names
}
