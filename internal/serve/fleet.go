package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	ehinfer "repro"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/store"
)

// fleetJob is one submitted fleet run — the fleet twin of job. Workers
// append aggregate snapshots under mu and broadcast on cond; streaming
// handlers tail the results slice. With a data directory configured,
// every emitted snapshot is journaled before it is acknowledged to
// streamers, and a journal left behind by a crash resumes the run at the
// next boot: the engine fast-forwards deterministically through the
// journaled epochs and computes only the remainder, producing a final
// document byte-identical to an uninterrupted run's.
type fleetJob struct {
	id     string
	name   string
	fleet  *fleet.Fleet
	total  int
	cancel context.CancelFunc
	log    *slog.Logger

	// Crash-safety wiring; zero for an in-memory-only job. journal is
	// touched only by the run goroutine after construction.
	journal    *store.JobJournal
	restored   []fleet.Snapshot // journal-order snapshots to pre-stream
	startEpoch int              // first epoch the engine emits
	aborted    atomic.Bool      // set by DELETE so retire aborts, not keeps

	// Per-fleet metric instruments, bound at registration.
	cSnapshots *obs.Counter
	cEvents    *obs.Counter
	cBrownouts *obs.Counter

	mu        sync.Mutex
	cond      *sync.Cond
	state     JobState
	results   []fleet.Snapshot // epoch order
	finalJSON []byte
	errMsg    string
	started   time.Time
	elapsed   time.Duration
}

func newFleetJob(id string, f *fleet.Fleet, cancel context.CancelFunc) *fleetJob {
	fj := &fleetJob{
		id:      id,
		fleet:   f,
		cancel:  cancel,
		log:     slog.New(slog.DiscardHandler),
		state:   StateRunning,
		started: time.Now(),
	}
	if f != nil {
		fj.name = f.Name
		fj.total = f.SnapshotCount()
	}
	fj.cond = sync.NewCond(&fj.mu)
	return fj
}

// run drives the fleet to completion on the session, feeding the
// streaming side as snapshots are emitted. It blocks until the run ends.
func (fj *fleetJob) run(ctx context.Context, session *ehinfer.Session) {
	if len(fj.restored) > 0 {
		// Journaled snapshots stream first, in epoch order, so a follower
		// attached across the restart sees the same sequence an
		// uninterrupted run would have produced.
		fj.mu.Lock()
		fj.results = append(fj.results, fj.restored...)
		fj.cond.Broadcast()
		fj.mu.Unlock()
	}
	fr := session.ResumeFleet(ctx, fj.fleet, fj.startEpoch) // startEpoch 0 == plain start
	for snap := range fr.Snapshots() {
		// Durability before acknowledgment, as with grid points.
		fj.checkpoint(snap)
		fj.note(snap)
		fj.mu.Lock()
		fj.results = append(fj.results, snap)
		fj.cond.Broadcast()
		fj.mu.Unlock()
	}
	res, err := fr.Wait()

	var finalJSON []byte
	if err == nil && res != nil {
		if data, jerr := res.JSON(); jerr == nil {
			finalJSON = data
		} else {
			err = jerr
		}
	}

	fj.mu.Lock()
	fj.finalJSON = finalJSON
	fj.elapsed = time.Since(fj.started)
	switch {
	case err == nil:
		fj.state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		fj.state = StateCanceled
		fj.errMsg = err.Error()
	default:
		fj.state = StateFailed
		fj.errMsg = err.Error()
	}
	state := fj.state
	fj.cond.Broadcast()
	fj.mu.Unlock()

	fj.retireJournal(state, finalJSON)
}

// checkpoint journals one emitted snapshot. Snapshots are only emitted
// at completed epoch barriers, so every journaled line is a state the
// determinism contract can fast-forward to. A failing journal degrades
// the job to in-memory-only, exactly as with grid jobs.
func (fj *fleetJob) checkpoint(snap fleet.Snapshot) {
	if fj.journal == nil {
		return
	}
	line, err := json.Marshal(snap)
	if err == nil {
		err = fj.journal.Append(line)
	}
	if err != nil {
		fj.log.Error("fleet checkpoint failed; continuing without durability", "fleet", fj.id, "err", err)
		_ = fj.journal.Close()
		fj.journal = nil
	}
}

// note feeds the per-fleet metric families from one emitted snapshot.
func (fj *fleetJob) note(snap fleet.Snapshot) {
	if fj.cSnapshots == nil {
		return
	}
	fj.cSnapshots.Inc()
	var events, missed int64
	for _, ps := range snap.Populations {
		events += ps.Events
		missed += ps.Missed
	}
	fj.cEvents.Add(events)
	fj.cBrownouts.Add(missed)
}

// retireJournal resolves the journal against the run's outcome, with
// the same policy as grid jobs: Finalize on success, Abort on explicit
// cancel or failure, plain Close on a shutdown mid-run so the next boot
// resumes.
func (fj *fleetJob) retireJournal(state JobState, finalJSON []byte) {
	if fj.journal == nil {
		return
	}
	var err error
	switch {
	case state == StateDone && finalJSON != nil:
		err = fj.journal.Finalize(finalJSON)
	case fj.aborted.Load() || state == StateFailed:
		err = fj.journal.Abort()
	default:
		err = fj.journal.Close()
	}
	if err != nil {
		fj.log.Error("retiring fleet journal failed", "fleet", fj.id, "state", string(state), "err", err)
	}
	fj.journal = nil
}

// snapshot returns the job's status under lock. Completed counts
// emitted snapshots; Total is the full run's snapshot count.
func (fj *fleetJob) snapshot() JobStatus {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	st := JobStatus{
		ID:        fj.id,
		Name:      fj.name,
		State:     fj.state,
		Completed: len(fj.results),
		Total:     fj.total,
		Err:       fj.errMsg,
	}
	if fj.state == StateRunning {
		st.ElapsedMS = time.Since(fj.started).Milliseconds()
	} else {
		st.ElapsedMS = fj.elapsed.Milliseconds()
	}
	return st
}

// next blocks until the job has more than n snapshots, the run leaves
// StateRunning, or ctx is canceled; it returns the snapshots beyond n
// and the current state.
func (fj *fleetJob) next(ctx context.Context, n int) ([]fleet.Snapshot, JobState) {
	stop := context.AfterFunc(ctx, func() {
		fj.mu.Lock()
		fj.cond.Broadcast()
		fj.mu.Unlock()
	})
	defer stop()

	fj.mu.Lock()
	defer fj.mu.Unlock()
	for len(fj.results) <= n && fj.state == StateRunning && ctx.Err() == nil {
		fj.cond.Wait()
	}
	batch := append([]fleet.Snapshot(nil), fj.results[n:]...)
	return batch, fj.state
}

// finalBytes returns the finished run's deterministic JSON document, or
// nil if the job has none yet.
func (fj *fleetJob) finalBytes() []byte {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	return fj.finalJSON
}

func (fj *fleetJob) finalState() JobState {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	return fj.state
}

// bindFleetMetrics attaches the job's per-fleet instrument set, labeled
// by job id (ids are stable across restarts, so a resumed fleet
// continues its series).
func (sv *Server) bindFleetMetrics(fj *fleetJob) {
	fj.cSnapshots = sv.reg.Counter(obs.Metric(mFleetSnapshots, "fleet", fj.id))
	fj.cEvents = sv.reg.Counter(obs.Metric(mFleetEvents, "fleet", fj.id))
	fj.cBrownouts = sv.reg.Counter(obs.Metric(mFleetBrownouts, "fleet", fj.id))
	sv.reg.Gauge(obs.Metric(mFleetDevices, "fleet", fj.id)).Set(float64(fj.fleet.Devices))
}

// registerFleet admits a new fleet job under the server lock, with the
// same WaitGroup protocol as register.
func (sv *Server) registerFleet(f *fleet.Fleet, cancel context.CancelFunc) (*fleetJob, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return nil, fmt.Errorf("serve: server is shutting down")
	}
	sv.nextFleetID++
	fj := newFleetJob(fmt.Sprintf("f%d", sv.nextFleetID), f, cancel)
	fj.log = sv.log
	sv.bindFleetMetrics(fj)
	sv.fleets[fj.id] = fj
	sv.fleetOrder = append(sv.fleetOrder, fj.id)
	sv.pruneFleetsLocked()
	sv.wg.Add(1)
	return fj, nil
}

// pruneFleetsLocked drops the oldest finished fleet jobs beyond
// maxRetainedJobs (fleets have their own budget, so a burst of grids
// cannot evict fleet results or vice versa). Caller holds sv.mu.
func (sv *Server) pruneFleetsLocked() {
	if len(sv.fleetOrder) <= maxRetainedJobs {
		return
	}
	kept := sv.fleetOrder[:0]
	excess := len(sv.fleetOrder) - maxRetainedJobs
	for _, id := range sv.fleetOrder {
		fj := sv.fleets[id]
		if excess > 0 && fj != nil && fj.finalState() != StateRunning {
			delete(sv.fleets, id)
			excess--
			if sv.store != nil {
				if err := sv.store.RemoveJob(id); err != nil {
					sv.log.Error("pruning fleet's on-disk state failed", "fleet", id, "err", err)
				}
			}
			continue
		}
		kept = append(kept, id)
	}
	sv.fleetOrder = kept
}

func (sv *Server) lookupFleet(id string) *fleetJob {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.fleets[id]
}

// handleFleetSubmit parses a fleet.Spec and either launches it
// asynchronously (202 + poll URLs) or, with ?stream=1, runs it bound to
// the request context and streams NDJSON snapshots.
func (sv *Server) handleFleetSubmit(w http.ResponseWriter, r *http.Request) {
	var spec fleet.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad fleet spec: %w", err))
		return
	}
	// "artifact:<id>" population policies resolve against this server's
	// uploaded artifacts, exactly as grid policy axes do.
	f, err := spec.Resolve(sv.artifactPolicy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	if r.URL.Query().Get("stream") != "" {
		sv.runFleetStreaming(w, r, f)
		return
	}

	ctx, cancel := context.WithCancel(sv.baseCtx)
	fj, err := sv.registerFleet(f, cancel) // on success, wg is incremented for the job
	if err != nil {
		cancel()
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if sv.store != nil {
		// Journal the job before any epoch runs: the spec header alone is
		// enough for a crashed boot to restart the run from epoch zero.
		if line, merr := json.Marshal(&spec); merr == nil {
			if journal, jerr := sv.store.NewJobJournal(fj.id, line); jerr == nil {
				fj.journal = journal
			} else {
				sv.log.Error("fleet journal creation failed; running without durability",
					"fleet", fj.id, "err", jerr)
			}
		}
	}
	go func() {
		defer sv.wg.Done()
		defer cancel()
		fj.run(ctx, sv.session)
	}()

	w.Header().Set("Location", "/v1/fleets/"+fj.id)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":        fj.id,
		"name":      f.Name,
		"devices":   f.Devices,
		"epochs":    f.Epochs,
		"snapshots": f.SnapshotCount(),
		"status":    "/v1/fleets/" + fj.id,
		"results":   "/v1/fleets/" + fj.id + "/results",
	})
}

// runFleetStreaming executes the fleet synchronously on the request: one
// NDJSON line per emitted snapshot, then a final summary line. The run
// inherits the request context, so client disconnects abort it.
func (sv *Server) runFleetStreaming(w http.ResponseWriter, r *http.Request, f *fleet.Fleet) {
	ctx, cancel := mergeCancel(r.Context(), sv.baseCtx)
	defer cancel()
	fj, err := sv.registerFleet(f, cancel) // on success, wg is incremented for the job
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush(w)

	runDone := make(chan struct{})
	go func() {
		defer sv.wg.Done()
		defer close(runDone)
		fj.run(ctx, sv.session)
	}()

	enc := json.NewEncoder(w)
	sent := 0
	for {
		batch, state := fj.next(ctx, sent)
		for _, snap := range batch {
			if err := enc.Encode(snap); err != nil {
				cancel() // client is gone: abort the run
				<-runDone
				return
			}
			sent++
		}
		flush(w)
		if state != StateRunning {
			break
		}
		if ctx.Err() != nil {
			<-runDone
			return
		}
	}
	<-runDone
	st := fj.snapshot()
	_ = enc.Encode(map[string]any{
		"done": true, "state": st.State, "completed": st.Completed,
		"total": st.Total, "devices": f.Devices,
	})
}

func (sv *Server) handleFleetList(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	fleets := make([]*fleetJob, 0, len(sv.fleetOrder))
	for _, id := range sv.fleetOrder {
		fleets = append(fleets, sv.fleets[id])
	}
	sv.mu.Unlock()
	out := make([]JobStatus, 0, len(fleets))
	for _, fj := range fleets {
		out = append(out, fj.snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]any{"fleets": out})
}

func (sv *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	fj := sv.lookupFleet(r.PathValue("id"))
	if fj == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown fleet %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, fj.snapshot())
}

// handleFleetResults serves a finished fleet's deterministic result
// document; with ?format=ndjson it follows the run live, one snapshot
// per line, ending with a summary line.
func (sv *Server) handleFleetResults(w http.ResponseWriter, r *http.Request) {
	fj := sv.lookupFleet(r.PathValue("id"))
	if fj == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown fleet %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("format") == "ndjson" {
		sv.followFleetNDJSON(w, r, fj)
		return
	}
	data := fj.finalBytes()
	if data == nil {
		st := fj.snapshot()
		if st.State == StateRunning {
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":  "fleet still running; poll status or use ?format=ndjson to stream",
				"status": st,
			})
			return
		}
		writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("fleet %s finished without results: %s", fj.id, st.Err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// followFleetNDJSON tails a fleet's snapshots: everything emitted so
// far, then live updates until the run ends or the client disconnects.
// Disconnecting a follower never cancels the run itself.
func (sv *Server) followFleetNDJSON(w http.ResponseWriter, r *http.Request, fj *fleetJob) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush(w)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		batch, state := fj.next(r.Context(), sent)
		for _, snap := range batch {
			if err := enc.Encode(snap); err != nil {
				return
			}
			sent++
		}
		flush(w)
		if state != StateRunning {
			st := fj.snapshot()
			_ = enc.Encode(map[string]any{
				"done": true, "state": state, "completed": st.Completed, "total": st.Total,
			})
			return
		}
		if r.Context().Err() != nil {
			return
		}
	}
}

func (sv *Server) handleFleetCancel(w http.ResponseWriter, r *http.Request) {
	fj := sv.lookupFleet(r.PathValue("id"))
	if fj == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown fleet %q", r.PathValue("id")))
		return
	}
	// An explicit cancel aborts the journal too, as with grids.
	fj.aborted.Store(true)
	fj.cancel()
	writeJSON(w, http.StatusAccepted, fj.snapshot())
}

// jobEntry is one row of the unified GET /v1/jobs listing.
type jobEntry struct {
	Kind string `json:"kind"`
	JobStatus
}

// handleJobs lists every async job the server knows — grid and fleet —
// in submission order within each kind.
func (sv *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	grids := make([]*job, 0, len(sv.order))
	for _, id := range sv.order {
		grids = append(grids, sv.jobs[id])
	}
	fleets := make([]*fleetJob, 0, len(sv.fleetOrder))
	for _, id := range sv.fleetOrder {
		fleets = append(fleets, sv.fleets[id])
	}
	sv.mu.Unlock()
	out := make([]jobEntry, 0, len(grids)+len(fleets))
	for _, j := range grids {
		out = append(out, jobEntry{Kind: "grid", JobStatus: j.snapshot()})
	}
	for _, fj := range fleets {
		out = append(out, jobEntry{Kind: "fleet", JobStatus: fj.snapshot()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}
