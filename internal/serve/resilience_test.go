package serve

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	ehinfer "repro"
	"repro/internal/chaos"
)

func mustSpec(t *testing.T, s string) *chaos.Injector {
	t.Helper()
	spec, err := chaos.ParseSpec(s)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", s, err)
	}
	return chaos.New(spec)
}

// TestRequestTimeout: a handler slower than the configured deadline
// unwinds as a 503 through the taxonomy, and the timeout is counted.
func TestRequestTimeout(t *testing.T) {
	sv := New(
		WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))),
		WithRequestTimeout(30*time.Millisecond),
	)
	sv.mux.Handle("GET /v1/slow", withRoute("/v1/slow", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			<-r.Context().Done()
			writeError(w, r.Context().Err())
		})))
	ts := newHTTPServer(t, sv)

	resp, err := http.Get(ts + "/v1/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout 503 lacks Retry-After")
	}
	_, metrics := getBody(t, ts+"/metrics")
	if !strings.Contains(metrics, mRequestTimeouts+`{route="/v1/slow"} 1`) {
		t.Fatalf("timeout not counted per route:\n%s", grepMetrics(metrics, mRequestTimeouts))
	}

	// Non-/v1 routes are exempt: healthz never races a deadline.
	if code, _ := getBody(t, ts+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
}

// TestShedderInflight: the in-flight gate admits up to the cap and
// reopens as slots release.
func TestShedderInflight(t *testing.T) {
	sh := &shedder{maxInflight: 2}
	for i := 0; i < 2; i++ {
		if ok, _ := sh.admit(); !ok {
			t.Fatalf("admit %d refused under cap", i)
		}
	}
	if ok, reason := sh.admit(); ok || reason != "inflight" {
		t.Fatalf("over-cap admit = (%v, %q)", ok, reason)
	}
	sh.release(0, false)
	if ok, _ := sh.admit(); !ok {
		t.Fatal("released slot not reusable")
	}
}

// TestShedderLatencyWatermark: sustained slow requests close the gate,
// and the decay-on-shed reopens it without any further traffic.
func TestShedderLatencyWatermark(t *testing.T) {
	sh := &shedder{watermark: 10 * time.Millisecond}
	// Feed the EWMA well past the watermark.
	for i := 0; i < 40; i++ {
		if ok, _ := sh.admit(); !ok {
			break
		}
		sh.release(100*time.Millisecond, true)
	}
	ok, reason := sh.admit()
	if ok || reason != "latency" {
		t.Fatalf("slow traffic not shed: (%v, %q)", ok, reason)
	}
	// Each shed decays the average; the gate must reopen on its own.
	reopened := false
	for i := 0; i < 200; i++ {
		if ok, _ := sh.admit(); ok {
			sh.release(time.Millisecond, true)
			reopened = true
			break
		}
	}
	if !reopened {
		t.Fatal("latency gate latched shut despite decay")
	}
}

// TestLoadShedHTTP: with a 1-request in-flight cap, a held streaming
// request sheds the next /v1/* request 503 + Retry-After, counted by
// reason; non-/v1 routes stay open.
func TestLoadShedHTTP(t *testing.T) {
	sv := New(
		WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))),
		WithLoadShed(1, 0),
	)
	release := make(chan struct{})
	held := make(chan struct{})
	sv.mux.Handle("GET /v1/hold", withRoute("/v1/hold", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			close(held)
			<-release
			w.WriteHeader(http.StatusOK)
		})))
	ts := newHTTPServer(t, sv)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts + "/v1/hold")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-held

	resp, err := http.Get(ts + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 shed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 lacks Retry-After")
	}
	if code, _ := getBody(t, ts+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz shed too: %d", code)
	}
	close(release)
	wg.Wait()

	_, metrics := getBody(t, ts+"/metrics")
	if !strings.Contains(metrics, mLoadShed+`{reason="inflight"} 1`) {
		t.Fatalf("shed not counted:\n%s", grepMetrics(metrics, mLoadShed))
	}
	// The slot is free again.
	if code, _ := getBody(t, ts+"/v1/registry"); code != http.StatusOK {
		t.Fatalf("models after release = %d", code)
	}
}

// TestChaosHTTPError: an armed error rule answers 503 through the
// taxonomy (ErrInjected is transient), with Retry-After, and the
// injection is counted by site and kind.
func TestChaosHTTPError(t *testing.T) {
	sv := New(
		WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))),
		WithChaos(mustSpec(t, "seed=7;error:http./v1/registry:p=1")),
	)
	ts := newHTTPServer(t, sv)

	resp, err := http.Get(ts + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected 503 lacks Retry-After")
	}
	if !strings.Contains(string(body), "injected") {
		t.Fatalf("error body does not surface the injection: %s", body)
	}
	// The rule is site-scoped: other routes are untouched.
	if code, _ := getBody(t, ts+"/healthz"); code != http.StatusOK {
		t.Fatal("chaos leaked outside its site")
	}
	_, metrics := getBody(t, ts+"/metrics")
	if !strings.Contains(metrics, mChaosInjected+`{site="http./v1/registry",kind="error"} 1`) {
		t.Fatalf("injection not counted:\n%s", grepMetrics(metrics, mChaosInjected))
	}
}

// TestChaosBatchDispatch: a panic rule at batch.dispatch surfaces as
// ErrInferenceFailed (500) through the queue worker's recover — the
// organic failure path — and the daemon keeps serving.
func TestChaosBatchDispatch(t *testing.T) {
	sv := New(
		WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))),
		WithChaos(mustSpec(t, "seed=3;panic:batch.dispatch:p=1")),
	)
	ts := newHTTPServer(t, sv)
	id := uploadArtifact(t, ts, encodeTestArtifact(t, "chaos-dispatch"))

	code, out := postInfer(t, ts, inferBody(id, 1))
	if code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (out %v)", code, out)
	}
	if code, _ := getBody(t, ts+"/healthz"); code != http.StatusOK {
		t.Fatal("daemon died on injected dispatch panic")
	}
}

// TestBreakerHTTP: every dispatch panicking trips the model's circuit
// after the threshold; subsequent requests shed 503 + Retry-After
// without touching the queue, and the circuit metrics record it.
func TestBreakerHTTP(t *testing.T) {
	sv := New(
		WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))),
		WithChaos(mustSpec(t, "seed=3;panic:batch.dispatch:p=1")),
		WithBreaker(3, time.Hour),
	)
	ts := newHTTPServer(t, sv)
	id := uploadArtifact(t, ts, encodeTestArtifact(t, "breaker-http"))

	for i := 0; i < 3; i++ {
		if code, _ := postInfer(t, ts, inferBody(id, 1)); code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500 while circuit closed", i, code)
		}
	}
	resp, err := http.Post(ts+"/v1/infer", "application/json", strings.NewReader(inferBody(id, 1)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped circuit answered %d (body %s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("open-circuit 503 lacks Retry-After")
	}
	if !strings.Contains(string(body), "circuit") {
		t.Fatalf("open-circuit body: %s", body)
	}

	_, metrics := getBody(t, ts+"/metrics")
	model := artifactPrefix + id
	if !strings.Contains(metrics, mCircuitState+`{model="`+model+`"} 2`) {
		t.Fatalf("circuit state gauge:\n%s", grepMetrics(metrics, mCircuitState))
	}
	if !strings.Contains(metrics, mCircuitTransitions+`{model="`+model+`",to="open"} 1`) {
		t.Fatalf("circuit transitions:\n%s", grepMetrics(metrics, mCircuitTransitions))
	}
}

// grepMetrics filters an exposition dump to one family, for failure
// messages that don't drown the log.
func grepMetrics(dump, family string) string {
	var out []string
	for _, line := range strings.Split(dump, "\n") {
		if strings.Contains(line, family) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestChaosSoak hammers a fully-armed server — low-probability faults on
// every site, breaker, shed, deadline — with mixed traffic for
// CHAOS_SOAK_SECONDS (default 2, CI runs 30) and asserts the failure
// envelope: the daemon stays alive, every HTTP answer is a taxonomy
// status, and transport errors only ever come from drop faults.
func TestChaosSoak(t *testing.T) {
	secs := 2
	if s := os.Getenv("CHAOS_SOAK_SECONDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("CHAOS_SOAK_SECONDS=%q: %v", s, err)
		}
		secs = n
	}
	spec := "seed=2026;" +
		"latency:http./v1/infer:p=0.05,d=5ms;" +
		"error:http./v1/registry:p=0.1;" +
		"drop:http./v1/artifacts:p=0.05;" +
		"panic:batch.dispatch:p=0.1"
	sv := New(
		WithSession(ehinfer.NewSession(ehinfer.WithWorkers(2))),
		WithChaos(mustSpec(t, spec)),
		WithBreaker(5, 200*time.Millisecond),
		WithLoadShed(64, 0),
		WithRequestTimeout(5*time.Second),
	)
	ts := newHTTPServer(t, sv)
	id := uploadArtifact(t, ts, encodeTestArtifact(t, "soak"))

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusNotFound:            true,
		http.StatusTooManyRequests:     true,
		http.StatusInternalServerError: true,
		http.StatusServiceUnavailable:  true,
	}
	deadline := time.Now().Add(time.Duration(secs) * time.Second)
	var wg sync.WaitGroup
	errCh := make(chan string, 64)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			client := &http.Client{Timeout: 10 * time.Second}
			infer := inferBody(id, 1)
			for time.Now().Before(deadline) {
				var resp *http.Response
				var err error
				var droppable bool
				switch rng.Intn(4) {
				case 0:
					resp, err = client.Post(ts+"/v1/infer", "application/json", strings.NewReader(infer))
				case 1:
					resp, err = client.Get(ts + "/v1/registry")
				case 2:
					resp, err = client.Get(ts + "/v1/artifacts")
					droppable = true
				default:
					resp, err = client.Get(ts + "/metrics")
				}
				if err != nil {
					// Torn connections are the contract for drop faults on
					// the artifacts site; anywhere else they're a bug.
					if !droppable {
						select {
						case errCh <- fmt.Sprintf("client %d: transport error off the drop site: %v", c, err):
						default:
						}
					}
					continue
				}
				if !allowed[resp.StatusCode] {
					select {
					case errCh <- fmt.Sprintf("client %d: status %d outside the taxonomy", c, resp.StatusCode):
					default:
					}
				}
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Error(msg)
	}

	// The daemon survived and still does real work.
	if code, _ := getBody(t, ts+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after soak = %d", code)
	}
	_, metrics := getBody(t, ts+"/metrics")
	if !strings.Contains(metrics, mChaosInjected) {
		t.Fatal("soak injected nothing — the spec is not armed")
	}
	// Context note for CI logs: how much chaos actually landed.
	t.Logf("soak done (%ds):\n%s", secs, grepMetrics(metrics, mChaosInjected))
}

// TestStartDrainIdempotentConcurrent: any number of concurrent
// StartDrain/Shutdown calls settle on one drain reason (first wins) and
// /readyz keeps reporting it with Retry-After.
func TestStartDrainIdempotentConcurrent(t *testing.T) {
	sv := New(WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))))
	ts := newHTTPServer(t, sv)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sv.StartDrain()
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz lacks Retry-After")
	}
	if !strings.Contains(string(body), `"status":"draining"`) ||
		!strings.Contains(string(body), "drain requested") {
		t.Fatalf("readyz body does not carry the drain reason: %s", body)
	}

	// A Shutdown after the explicit drain must not overwrite the reason.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	_, body2 := getBody(t, ts+"/readyz")
	if !strings.Contains(body2, "drain requested") {
		t.Fatalf("shutdown overwrote the drain reason: %s", body2)
	}
}

// TestShutdownIdempotentConcurrent: overlapping Shutdown calls all
// return cleanly; the daemon still answers liveness afterward.
func TestShutdownIdempotentConcurrent(t *testing.T) {
	sv := New(WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))))
	ts := newHTTPServer(t, sv)
	if code, _ := getBody(t, ts+"/healthz"); code != http.StatusOK {
		t.Fatal("healthz before shutdown")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := sv.Shutdown(ctx); err != nil {
				t.Errorf("concurrent shutdown: %v", err)
			}
		}()
	}
	wg.Wait()
	if code, _ := getBody(t, ts+"/healthz"); code != http.StatusOK {
		t.Fatal("liveness lost after shutdown")
	}
}
