package serve

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// Metric families the serving path exposes on GET /metrics. The names
// are part of the operational contract — the CI smoke script and the
// e2e test assert them, and the README documents them.
const (
	mRequests        = "ehserved_requests_total"
	mRequestDuration = "ehserved_request_duration_seconds"
	mRequestsInRun   = "ehserved_requests_in_flight"
	mPanics          = "ehserved_panics_recovered_total"
	mInferServed     = "ehserved_infer_served_total"
	mInferRejected   = "ehserved_infer_rejected_total"
	mInferCanceled   = "ehserved_infer_canceled_total"
	mInferErrored    = "ehserved_infer_errored_total"
	mInferBatches    = "ehserved_infer_batches_total"
	mInferBatchSize  = "ehserved_infer_batch_size_requests"
	mInferLatency    = "ehserved_infer_latency_seconds"
	mInferQueueDepth = "ehserved_infer_queue_depth"
	mExitTaken       = "ehserved_exit_taken_total"
	mExitLatency     = "ehserved_exit_latency_seconds"
	mGridJobs        = "ehserved_grid_jobs"
	mArtifacts       = "ehserved_artifacts"
	mStartTime       = "ehserved_start_time_seconds"
	mReady           = "ehserved_ready"

	// Robustness families: fault injection, overload shedding, circuit
	// breaking, request deadlines, and crash recovery.
	mChaosInjected      = "ehserved_chaos_injected_total"
	mLoadShed           = "ehserved_load_shed_total"
	mCircuitState       = "ehserved_circuit_state"
	mCircuitTransitions = "ehserved_circuit_transitions_total"
	mRequestTimeouts    = "ehserved_request_timeouts_total"
	mArtifactRecovery   = "ehserved_artifact_recovery_total"
	mJobsResumed        = "ehserved_jobs_resumed_total"
	mJobPointsRestored  = "ehserved_job_points_restored_total"

	// Fleet families: the fleet-job gauge plus per-fleet series labeled
	// by job id, and the boot-time resume counters.
	mFleetJobs              = "ehserved_fleet_jobs"
	mFleetDevices           = "ehserved_fleet_devices"
	mFleetSnapshots         = "ehserved_fleet_snapshots_total"
	mFleetEvents            = "ehserved_fleet_events_total"
	mFleetBrownouts         = "ehserved_fleet_brownouts_total"
	mFleetsResumed          = "ehserved_fleets_resumed_total"
	mFleetSnapshotsRestored = "ehserved_fleet_snapshots_restored_total"
)

// initMetrics registers help text and the process-level gauges. Per
// route/model/exit series are created lazily at first touch.
func (sv *Server) initMetrics() {
	for _, m := range []struct{ name, kind, help string }{
		{mRequests, "counter", "HTTP requests by route pattern and status code."},
		{mRequestDuration, "histogram", "HTTP request duration in seconds by route pattern."},
		{mRequestsInRun, "gauge", "HTTP requests currently being served."},
		{mPanics, "counter", "Panics recovered by the HTTP middleware."},
		{mInferServed, "counter", "Inference requests answered, by model."},
		{mInferRejected, "counter", "Inference requests shed at the queue bound (429), by model."},
		{mInferCanceled, "counter", "Inference requests whose client left before dispatch, by model."},
		{mInferErrored, "counter", "Inference requests failed by a recovered execution panic, by model."},
		{mInferBatches, "counter", "Micro-batches dispatched, by model."},
		{mInferBatchSize, "histogram", "Requests per dispatched micro-batch, by model (unit buckets: exact counts)."},
		{mInferLatency, "histogram", "Inference latency admission-to-answer in seconds, by model."},
		{mInferQueueDepth, "gauge", "Inference requests admitted but not yet answered, by model."},
		{mExitTaken, "counter", "Predictions by model and the early exit that answered them."},
		{mExitLatency, "histogram", "Server-side inference request latency in seconds by exit taken."},
		{mGridJobs, "gauge", "Grid jobs currently retained (running and finished)."},
		{mArtifacts, "gauge", "Deployment artifacts in the store."},
		{mStartTime, "gauge", "Unix time the server was constructed."},
		{mReady, "gauge", "1 while the server admits work, 0 once draining."},
		{mChaosInjected, "counter", "Faults injected by the chaos layer, by site and kind."},
		{mLoadShed, "counter", "Requests shed 503 by the overload gate, by reason (inflight, latency)."},
		{mCircuitState, "gauge", "Per-model circuit breaker state: 0 closed, 1 half-open, 2 open."},
		{mCircuitTransitions, "counter", "Circuit breaker state transitions, by model and target state."},
		{mRequestTimeouts, "counter", "Requests whose per-request deadline expired, by route."},
		{mArtifactRecovery, "counter", "Artifact recovery outcomes at boot (restored, quarantined, orphaned, torn_manifest, undecodable)."},
		{mJobsResumed, "counter", "Journaled grid jobs resumed at boot."},
		{mJobPointsRestored, "counter", "Grid points restored from job journals instead of re-running."},
		{mFleetJobs, "gauge", "Fleet jobs currently retained (running and finished)."},
		{mFleetDevices, "gauge", "Simulated devices in a fleet, by fleet job id."},
		{mFleetSnapshots, "counter", "Epoch snapshots emitted, by fleet job id."},
		{mFleetEvents, "counter", "Inference events simulated across all devices, by fleet job id."},
		{mFleetBrownouts, "counter", "Events missed to power loss or energy starvation, by fleet job id."},
		{mFleetsResumed, "counter", "Journaled fleet jobs resumed at boot."},
		{mFleetSnapshotsRestored, "counter", "Fleet snapshots restored from journals instead of re-simulating."},
	} {
		sv.reg.SetHelp(m.name, m.kind, m.help)
	}
	sv.reg.Gauge(mStartTime).Set(float64(sv.started.UnixNano()) / 1e9)
	sv.reg.GaugeFunc(mGridJobs, func() float64 {
		sv.mu.Lock()
		defer sv.mu.Unlock()
		return float64(len(sv.jobs))
	})
	sv.reg.GaugeFunc(mFleetJobs, func() float64 {
		sv.mu.Lock()
		defer sv.mu.Unlock()
		return float64(len(sv.fleets))
	})
	sv.reg.GaugeFunc(mArtifacts, func() float64 {
		sv.mu.Lock()
		defer sv.mu.Unlock()
		return float64(len(sv.artifacts))
	})
	sv.reg.GaugeFunc(mReady, func() float64 {
		if sv.ready.Load() {
			return 1
		}
		return 0
	})
}

// queueMetrics builds the obs instrument set a model's micro-batching
// queue updates, labeled by model key in the server registry. Keyed
// instruments are get-or-create: a queue rebuilt for the same model
// continues the series, and a torn-down queue's counters stay in the
// registry — which is what keeps /v1/stats totals and /metrics counters
// monotonic across artifact deletes.
func (sv *Server) queueMetrics(key string) *batch.Metrics {
	maxBatch := sv.batchCfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = batch.DefaultMaxBatch
	}
	return &batch.Metrics{
		Served:    sv.reg.Counter(obs.Metric(mInferServed, "model", key)),
		Rejected:  sv.reg.Counter(obs.Metric(mInferRejected, "model", key)),
		Canceled:  sv.reg.Counter(obs.Metric(mInferCanceled, "model", key)),
		Errored:   sv.reg.Counter(obs.Metric(mInferErrored, "model", key)),
		Batches:   sv.reg.Counter(obs.Metric(mInferBatches, "model", key)),
		BatchSize: sv.reg.Histogram(obs.Metric(mInferBatchSize, "model", key), obs.LinearBuckets(1, 1, maxBatch)),
		Latency:   sv.reg.Histogram(obs.Metric(mInferLatency, "model", key), obs.DefLatencyBuckets),
		Depth:     sv.reg.Gauge(obs.Metric(mInferQueueDepth, "model", key)),
	}
}

// noteExit records a served prediction's exit-taken counter and the
// request's server-side latency bucketed by that exit.
func (sv *Server) noteExit(model string, exit int, elapsed time.Duration) {
	e := strconv.Itoa(exit)
	sv.reg.Counter(obs.Metric(mExitTaken, "model", model, "exit", e)).Inc()
	sv.reg.Histogram(obs.Metric(mExitLatency, "exit", e), obs.DefLatencyBuckets).
		Observe(elapsed.Seconds())
}

// handleMetrics serves the registry in Prometheus text exposition
// format.
func (sv *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = sv.reg.WritePrometheus(w)
}

// errorCodes is the one table mapping the exported error taxonomy to
// HTTP status codes — handlers wrap a sentinel and writeError does the
// rest, so a future gateway can rely on code↔sentinel being stable.
var errorCodes = []struct {
	sentinel error
	code     int
}{
	{ehinfer.ErrBadInput, http.StatusBadRequest},
	{ehinfer.ErrModelNotFound, http.StatusNotFound},
	{ehinfer.ErrQueueFull, http.StatusTooManyRequests},
	{batch.ErrClosed, http.StatusServiceUnavailable},
	{ErrCircuitOpen, http.StatusServiceUnavailable},
	// Injected faults model a transient dependency failure: retryable.
	{chaos.ErrInjected, http.StatusServiceUnavailable},
	{ehinfer.ErrInferenceFailed, http.StatusInternalServerError},
}

// errorCode resolves an error to its wire status via the taxonomy
// table; context cancellations are transient 503s, anything unknown a
// 500.
func errorCode(err error) int {
	for _, e := range errorCodes {
		if errors.Is(err, e.sentinel) {
			return e.code
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeError answers with the taxonomy-mapped status; every transient
// shed — 429 queue-full and every 503 flavor (shutdown, open circuit,
// deadline) — carries Retry-After so well-behaved clients back off
// instead of hammering. Callers that know a better hint (the breaker's
// remaining cooldown) set the header first; this only fills the default.
func writeError(w http.ResponseWriter, err error) {
	code := errorCode(err)
	if (code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable) &&
		w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	writeErr(w, code, err)
}

// statsDeprecation is the /v1/stats deprecation notice.
const statsDeprecation = "GET /v1/stats is deprecated; scrape GET /metrics (Prometheus text format) instead"

// handleStats is the deprecated JSON view over the same obs registry
// /metrics exposes: per live model the queue snapshot, plus
// registry-level served/rejected totals that include torn-down queues —
// monotonic across artifact deletes by construction.
func (sv *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	targets := make([]*inferTarget, 0, len(sv.infers))
	for _, tgt := range sv.infers {
		targets = append(targets, tgt)
	}
	jobs := len(sv.jobs)
	sv.mu.Unlock()

	infer := make(map[string]inferStatus, len(targets))
	for _, tgt := range targets {
		infer[tgt.key] = inferStatus{
			Model:    tgt.key,
			Backend:  tgt.model.Backend().String(),
			Exits:    tgt.model.NumExits(),
			InputLen: tgt.model.InputLen(),
			MaxBatch: tgt.model.MaxBatch(),
			Queue:    tgt.queue.Stats(),
		}
	}
	keys := make([]string, 0, len(infer))
	for k := range infer {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeMs": time.Since(sv.started).Milliseconds(),
		"infer":    infer,
		"models":   keys,
		"totals": map[string]int64{
			"served":   sv.reg.CounterSum(mInferServed),
			"rejected": sv.reg.CounterSum(mInferRejected),
		},
		"grids":      map[string]int{"jobs": jobs},
		"deprecated": statsDeprecation,
	})
}
