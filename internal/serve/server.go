package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/chaos"
	"repro/internal/exper"
	"repro/internal/obs"
	"repro/internal/store"
)

// maxSpecBytes bounds a submitted grid spec; real specs are a few KB.
const maxSpecBytes = 1 << 20

// Artifact-store bounds: uploads are whole deployment bundles held in
// memory (raw bytes for bit-identical download plus the decoded
// deployment), so both the count and the per-upload size are capped.
const (
	maxArtifacts     = 64
	maxArtifactBytes = 64 << 20
)

// artifactPrefix turns an uploaded artifact id into the policy-axis
// name a GridSpec uses to reference it.
const artifactPrefix = "artifact:"

// storedArtifact is one uploaded deployment bundle.
type storedArtifact struct {
	id     string
	name   string
	data   []byte // exact uploaded bytes; served back verbatim
	bundle *ehinfer.DeploymentBundle
}

// Server is the HTTP/JSON serving daemon: grid execution, fleet
// simulation, artifact storage, and micro-batched online inference,
// behind one middleware
// chain (panic recovery → request id → structured logging → metrics →
// per-client rate limiting → routing). All grids run on one shared
// Session, so they share its worker cap and deployment cache.
//
// Routes (see Routes for the live table):
//
//	POST   /v1/grids            submit a GridSpec; 202 + job id
//	POST   /v1/grids?stream=1   submit and stream NDJSON results on the
//	                            request itself (client disconnect cancels
//	                            the run)
//	GET    /v1/grids            list jobs
//	GET    /v1/grids/{id}       status + progress
//	GET    /v1/grids/{id}/results            final aggregated JSON
//	GET    /v1/grids/{id}/results?format=ndjson  follow per-point results
//	DELETE /v1/grids/{id}       cancel a running job
//	POST   /v1/fleets           submit a fleet.Spec; 202 + job id
//	POST   /v1/fleets?stream=1  submit and stream NDJSON epoch snapshots
//	GET    /v1/fleets           list fleet jobs
//	GET    /v1/fleets/{id}      status + progress
//	GET    /v1/fleets/{id}/results           final aggregated JSON
//	GET    /v1/fleets/{id}/results?format=ndjson  follow snapshots live
//	DELETE /v1/fleets/{id}      cancel a running fleet
//	GET    /v1/jobs             unified grid+fleet job listing
//	POST   /v1/infer            online inference against an artifact or
//	                            registered deployment (micro-batched)
//	GET    /v1/stats            deprecated JSON stats view (see /metrics)
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 once draining)
//	GET    /debug/pprof/...     profiling, only with WithPprof(true)
type Server struct {
	session *ehinfer.Session
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the middleware chain
	started time.Time

	// Observability and admission control, assembled by New.
	reg       *obs.Registry
	log       *slog.Logger
	clock     func() time.Time
	limiter   *limiter
	rateRPS   float64
	rateBurst int
	pprofOn   bool
	ready     atomic.Bool

	// Robustness wiring (all optional): the durable artifact/job store, a
	// deterministic fault injector, per-request deadlines, the overload
	// shedder, and per-model circuit-breaker tuning.
	store        *store.Store
	inj          *chaos.Injector
	reqTimeout   time.Duration
	shed         *shedder
	brkThreshold int
	brkCooldown  time.Duration

	// drainMu guards drainReason: the first caller to start a drain wins
	// the reason string /readyz reports.
	drainMu     sync.Mutex
	drainReason string

	// batchCfg tunes the per-model micro-batching queues behind
	// /v1/infer; infers holds them, created lazily per referenced
	// model. Their counters live in reg, keyed by model, and outlive
	// queue teardown — /v1/stats totals stay monotonic that way.
	batchCfg batch.Config
	infers   map[string]*inferTarget

	// baseCtx parents every async job; Shutdown cancels it.
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for listing
	nextID int
	closed bool

	// Fleet jobs live beside grids with their own id space ("f<N>") and
	// retention budget, sharing the WaitGroup/closed admission protocol.
	fleets      map[string]*fleetJob
	fleetOrder  []string // submission order, for listing
	nextFleetID int

	artifacts map[string]*storedArtifact
	artOrder  []string // upload order, for listing
	nextArtID int
}

// Option customizes a Server at construction.
type Option func(*Server)

// WithSession sets the Session grids and inference execute on (default:
// a fresh ehinfer.NewSession()).
func WithSession(session *ehinfer.Session) Option {
	return func(sv *Server) { sv.session = session }
}

// WithBatchConfig tunes the micro-batching queues behind /v1/infer
// (zero fields keep the batch package defaults).
func WithBatchConfig(cfg batch.Config) Option {
	return func(sv *Server) { sv.batchCfg = cfg }
}

// WithRateLimit enables per-client token-bucket admission control on
// the /v1/* routes: each client (X-Client-ID header, else remote host)
// may sustain rps requests/second with bursts up to burst. Over-budget
// requests are shed 429 + Retry-After before any work is admitted —
// a layer above the queue-cap backpressure, which still guards the
// inference queues themselves. rps <= 0 (the default) disables it.
func WithRateLimit(rps float64, burst int) Option {
	return func(sv *Server) { sv.rateRPS, sv.rateBurst = rps, burst }
}

// WithLogger routes the structured request log and error reports
// (slog). The default logger discards everything — the library stays
// quiet unless the operator wires a sink.
func WithLogger(l *slog.Logger) Option {
	return func(sv *Server) {
		if l != nil {
			sv.log = l
		}
	}
}

// WithClock substitutes the rate limiter's time source — tests drive
// refill deterministically with a fake clock.
func WithClock(now func() time.Time) Option {
	return func(sv *Server) {
		if now != nil {
			sv.clock = now
		}
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ (off by
// default: profiling endpoints are for operators who asked for them).
func WithPprof(enabled bool) Option {
	return func(sv *Server) { sv.pprofOn = enabled }
}

// WithStore attaches a durable store: artifacts persist across restarts
// under their original IDs, grid jobs checkpoint every completed point,
// and New replays the data directory — finished jobs serve their final
// documents again, unfinished ones resume where the journal stops.
func WithStore(st *store.Store) Option {
	return func(sv *Server) { sv.store = st }
}

// WithChaos arms the deterministic fault injector on the HTTP layer
// ("http.<path>" sites) and the batch dispatch path ("batch.dispatch").
// A nil injector (the default) injects nothing at zero cost. Injected
// faults are counted on ehserved_chaos_injected_total.
func WithChaos(in *chaos.Injector) Option {
	return func(sv *Server) { sv.inj = in }
}

// WithRequestTimeout bounds every non-streaming /v1/* request: past d
// the request context expires and the handler unwinds through the usual
// cancellation paths (503). d <= 0 (the default) disables it.
func WithRequestTimeout(d time.Duration) Option {
	return func(sv *Server) { sv.reqTimeout = d }
}

// WithLoadShed enables the overload gate on /v1/* routes: more than
// maxInflight concurrent requests, or an EWMA request latency above
// watermark, answers 503 + Retry-After instead of queueing toward
// collapse. Zero disables each knob independently.
func WithLoadShed(maxInflight int, watermark time.Duration) Option {
	return func(sv *Server) {
		if maxInflight > 0 || watermark > 0 {
			sv.shed = &shedder{maxInflight: int64(maxInflight), watermark: watermark}
		}
	}
}

// WithBreaker arms a per-model circuit breaker on /v1/infer: threshold
// consecutive execution failures (ErrInferenceFailed) open the circuit
// for cooldown, during which requests shed 503 + Retry-After; then one
// probe request decides whether it closes again. threshold <= 0 (the
// default) disables it; cooldown <= 0 defaults to 10s.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(sv *Server) { sv.brkThreshold, sv.brkCooldown = threshold, cooldown }
}

// New builds the server. With no options it executes on a default
// session with default batching, no rate limit, a discarding logger,
// and no pprof.
func New(opts ...Option) *Server {
	//ehlint:allow ctxbg — New is the server's lifecycle root; Shutdown cancels it
	ctx, cancel := context.WithCancel(context.Background())
	sv := &Server{
		started:   time.Now(),
		reg:       obs.NewRegistry(),
		log:       slog.New(slog.DiscardHandler),
		clock:     time.Now,
		baseCtx:   ctx,
		stop:      cancel,
		jobs:      make(map[string]*job),
		fleets:    make(map[string]*fleetJob),
		artifacts: make(map[string]*storedArtifact),
		infers:    make(map[string]*inferTarget),
	}
	for _, o := range opts {
		o(sv)
	}
	if sv.session == nil {
		sv.session = ehinfer.NewSession()
	}
	if sv.rateRPS > 0 {
		sv.limiter = newLimiter(sv.rateRPS, sv.rateBurst, sv.clock)
	}
	if sv.inj != nil {
		sv.inj.OnFault = func(site string, kind chaos.Kind) {
			sv.reg.Counter(obs.Metric(mChaosInjected, "site", site, "kind", string(kind))).Inc()
		}
	}
	sv.ready.Store(true)
	sv.initMetrics()
	if sv.store != nil {
		// Replay the data directory before the listener exists: restored
		// artifacts serve under their old IDs, journaled jobs resume.
		sv.recoverFromStore()
	}

	sv.mux = http.NewServeMux()
	for _, rt := range sv.routes() {
		sv.mux.Handle(rt.method+" "+rt.pattern, withRoute(rt.pattern, rt.handler))
	}
	sv.handler = Chain(sv.mux,
		sv.recoverMW,   // outermost: panics below become logged 500s
		sv.requestIDMW, // id before logging so the log line carries it
		sv.loggingMW,
		sv.metricsMW,   // counts everything below, sheds and timeouts included
		sv.deadlineMW,  // per-request deadline on non-streaming /v1/*
		sv.shedMW,      // overload gate: cheap 503s beat queueing collapse
		sv.rateLimitMW, // per-client admission control just above routing
		sv.chaosMW,     // innermost injection point: sheds are never chaos-faulted
	)
	return sv
}

// route is one row of the explicit route table.
type route struct {
	method  string
	pattern string
	handler http.HandlerFunc
}

// routes is the server's full route table — the single place paths map
// to handlers, and the source of the per-route metric labels.
func (sv *Server) routes() []route {
	rts := []route{
		{"POST", "/v1/grids", sv.handleSubmit},
		{"GET", "/v1/grids", sv.handleList},
		{"GET", "/v1/grids/{id}", sv.handleStatus},
		{"GET", "/v1/grids/{id}/results", sv.handleResults},
		{"DELETE", "/v1/grids/{id}", sv.handleCancel},
		{"POST", "/v1/fleets", sv.handleFleetSubmit},
		{"GET", "/v1/fleets", sv.handleFleetList},
		{"GET", "/v1/fleets/{id}", sv.handleFleetStatus},
		{"GET", "/v1/fleets/{id}/results", sv.handleFleetResults},
		{"DELETE", "/v1/fleets/{id}", sv.handleFleetCancel},
		{"GET", "/v1/jobs", sv.handleJobs},
		{"POST", "/v1/infer", sv.handleInfer},
		{"GET", "/v1/stats", sv.handleStats},
		{"POST", "/v1/artifacts", sv.handleArtifactUpload},
		{"GET", "/v1/artifacts", sv.handleArtifactList},
		{"GET", "/v1/artifacts/{id}", sv.handleArtifactDownload},
		{"DELETE", "/v1/artifacts/{id}", sv.handleArtifactDelete},
		{"GET", "/v1/registry", sv.handleRegistry},
		{"GET", "/metrics", sv.handleMetrics},
		{"GET", "/healthz", sv.handleHealthz},
		{"GET", "/readyz", sv.handleReadyz},
	}
	if sv.pprofOn {
		rts = append(rts,
			route{"GET", "/debug/pprof/", pprof.Index},
			route{"GET", "/debug/pprof/cmdline", pprof.Cmdline},
			route{"GET", "/debug/pprof/profile", pprof.Profile},
			route{"GET", "/debug/pprof/symbol", pprof.Symbol},
			route{"GET", "/debug/pprof/trace", pprof.Trace},
		)
	}
	return rts
}

// Routes lists the route table as "METHOD /pattern" strings — the
// programmable surface a gateway enumerates.
func (sv *Server) Routes() []string {
	rts := sv.routes()
	out := make([]string, len(rts))
	for i, rt := range rts {
		out[i] = rt.method + " " + rt.pattern
	}
	return out
}

// Metrics returns the server's obs registry — /metrics and /v1/stats
// are views over it, and embedders may add their own instruments.
func (sv *Server) Metrics() *obs.Registry { return sv.reg }

func (sv *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	reg := Registry()
	reg["artifacts"] = sv.artifactNames()
	writeJSON(w, http.StatusOK, reg)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (sv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while the server admits work, 503 +
// Retry-After the moment draining starts — load balancers stop routing
// here while in-flight requests finish. The 503 body names the drain
// reason so an operator reading the probe knows why the instance left
// rotation.
func (sv *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if sv.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	sv.drainMu.Lock()
	reason := sv.drainReason
	sv.drainMu.Unlock()
	if reason == "" {
		reason = "draining"
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"status": "draining",
		"reason": reason,
	})
}

// StartDrain flips /readyz to 503 without refusing work — call it when
// shutdown begins (before the listener closes) so load balancers drain
// connections ahead of the hard stop. Idempotent: the first call's
// reason sticks.
func (sv *Server) StartDrain() { sv.startDrain("drain requested") }

// startDrain records why the instance left rotation; first reason wins
// so a Shutdown following an explicit StartDrain does not overwrite the
// original cause. Safe to call any number of times.
func (sv *Server) startDrain(reason string) {
	sv.drainMu.Lock()
	if sv.drainReason == "" {
		sv.drainReason = reason
	}
	sv.drainMu.Unlock()
	sv.ready.Store(false)
}

// ServeHTTP implements http.Handler through the middleware chain.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { sv.handler.ServeHTTP(w, r) }

// Shutdown cancels every running job, rejects new submissions, drains
// the inference queues (queued requests are still answered), and waits
// for workers (or ctx to expire). Call it after the HTTP listener has
// stopped accepting requests.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.startDrain("shutdown")
	sv.mu.Lock()
	sv.closed = true
	for key := range sv.infers {
		sv.dropInferLocked(key)
	}
	sv.mu.Unlock()
	sv.stop()
	done := make(chan struct{})
	go func() {
		sv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// maxRetainedJobs bounds how many finished jobs the server keeps for
// status/results queries; past it the oldest finished jobs are dropped
// so a long-lived daemon does not accumulate result sets forever.
const maxRetainedJobs = 128

// register admits a new job under the server lock; it fails once the
// server is shutting down. On success the server's WaitGroup has been
// incremented for the job — the caller MUST run the job in a goroutine
// that calls sv.wg.Done. (The Add must happen under the same lock that
// Shutdown uses to flip closed, or a racing Shutdown could observe a
// zero WaitGroup and "drain" before the job even starts.)
func (sv *Server) register(grid *ehinfer.ExperimentGrid, cancel context.CancelFunc) (*job, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return nil, fmt.Errorf("serve: server is shutting down")
	}
	sv.nextID++
	j := newJob(fmt.Sprintf("g%d", sv.nextID), grid, cancel)
	j.log = sv.log
	sv.jobs[j.id] = j
	sv.order = append(sv.order, j.id)
	sv.pruneLocked()
	sv.wg.Add(1)
	return j, nil
}

// pruneLocked drops the oldest finished jobs beyond maxRetainedJobs.
// Running jobs are never dropped. Caller holds sv.mu.
func (sv *Server) pruneLocked() {
	if len(sv.order) <= maxRetainedJobs {
		return
	}
	kept := sv.order[:0]
	excess := len(sv.order) - maxRetainedJobs
	for _, id := range sv.order {
		j := sv.jobs[id]
		if excess > 0 && j != nil {
			if _, state := j.finalResult(); state != StateRunning {
				delete(sv.jobs, id)
				excess--
				if sv.store != nil {
					// Retire the on-disk final document with the in-memory
					// entry, so the data directory stays bounded too.
					if err := sv.store.RemoveJob(id); err != nil {
						sv.log.Error("pruning job's on-disk state failed", "job", id, "err", err)
					}
				}
				continue
			}
		}
		kept = append(kept, id)
	}
	sv.order = kept
}

func (sv *Server) lookup(id string) *job {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.jobs[id]
}

// handleSubmit parses a GridSpec and either launches it asynchronously
// (202 + poll URLs) or, with ?stream=1, runs it bound to the request
// context and streams NDJSON per-point results — cancel the request and
// the workers stop at the next point/episode boundary.
func (sv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec exper.GridSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad grid spec: %w", err))
		return
	}
	// "artifact:<id>" policy names resolve against this server's
	// uploaded artifacts before the process-wide registries.
	grid, err := spec.GridResolved(sv.artifactPolicy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	if r.URL.Query().Get("stream") != "" {
		sv.runStreaming(w, r, grid)
		return
	}

	ctx, cancel := context.WithCancel(sv.baseCtx)
	j, err := sv.register(grid, cancel) // on success, wg is incremented for the job
	if err != nil {
		cancel()
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	if sv.store != nil {
		// Journal the job before any point runs: the spec header alone is
		// enough for a crashed boot to restart the run from zero. A
		// failing journal degrades this job to in-memory-only.
		if line, merr := json.Marshal(&spec); merr == nil {
			if journal, jerr := sv.store.NewJobJournal(j.id, line); jerr == nil {
				j.journal = journal
			} else {
				sv.log.Error("job journal creation failed; running without durability",
					"job", j.id, "err", jerr)
			}
		}
	}
	go func() {
		defer sv.wg.Done()
		defer cancel()
		j.run(ctx, sv.session)
	}()

	w.Header().Set("Location", "/v1/grids/"+j.id)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      j.id,
		"name":    grid.Name,
		"points":  grid.Size(),
		"status":  "/v1/grids/" + j.id,
		"results": "/v1/grids/" + j.id + "/results",
	})
}

// runStreaming executes the grid synchronously on the request: one NDJSON
// line per completed point, then a final summary line. The run inherits
// the request context, so client disconnects abort the grid promptly.
func (sv *Server) runStreaming(w http.ResponseWriter, r *http.Request, grid *ehinfer.ExperimentGrid) {
	ctx, cancel := mergeCancel(r.Context(), sv.baseCtx)
	defer cancel()
	j, err := sv.register(grid, cancel) // on success, wg is incremented for the job
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush(w)

	runDone := make(chan struct{})
	go func() {
		defer sv.wg.Done()
		defer close(runDone)
		j.run(ctx, sv.session)
	}()

	enc := json.NewEncoder(w)
	sent := 0
	for {
		batch, state := j.next(ctx, sent)
		for _, res := range batch {
			if err := enc.Encode(res); err != nil {
				cancel() // client is gone: abort the workers
				<-runDone
				return
			}
			sent++
		}
		flush(w)
		if state != StateRunning {
			break
		}
		if ctx.Err() != nil {
			<-runDone
			return
		}
	}
	<-runDone
	_, state := j.finalResult()
	st := j.snapshot()
	_ = enc.Encode(map[string]any{
		"done": true, "state": state, "completed": st.Completed,
		"total": st.Total, "pointErrs": st.PointErrs, "workers": st.Workers,
	})
}

func (sv *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	ids := append([]string(nil), sv.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, sv.jobs[id])
	}
	sv.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]any{"grids": out})
}

func (sv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := sv.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown grid %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleResults serves a finished job's deterministic GridResult JSON
// (grid, per-point rows in enumeration order, key-sorted aggregates).
// With ?format=ndjson it instead follows the run live, one per-point
// result per line, ending with a summary line — usable both mid-run and
// after completion.
func (sv *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := sv.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown grid %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("format") == "ndjson" {
		sv.followNDJSON(w, r, j)
		return
	}
	final, state := j.finalResult()
	if state == StateRunning {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":  "grid still running; poll status or use ?format=ndjson to stream",
			"status": j.snapshot(),
		})
		return
	}
	// Prefer the captured final document — it also serves jobs restored
	// from a final file after a restart, whose in-memory GridResult is
	// gone; both paths are byte-identical by the determinism contract.
	data := j.finalBytes()
	if data == nil {
		if final == nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("grid %s finished without results: %s", j.id, j.snapshot().Err))
			return
		}
		var err error
		if data, err = final.JSON(); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// followNDJSON tails a job's per-point results: everything completed so
// far, then live updates until the job leaves StateRunning or the client
// disconnects. Disconnecting a follower never cancels the job itself.
func (sv *Server) followNDJSON(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush(w)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		batch, state := j.next(r.Context(), sent)
		for _, res := range batch {
			if err := enc.Encode(res); err != nil {
				return
			}
			sent++
		}
		flush(w)
		if state != StateRunning {
			st := j.snapshot()
			_ = enc.Encode(map[string]any{
				"done": true, "state": state, "completed": st.Completed,
				"total": st.Total, "pointErrs": st.PointErrs, "workers": st.Workers,
			})
			return
		}
		if r.Context().Err() != nil {
			return
		}
	}
}

// artifactPolicy resolves an "artifact:<id>" policy-axis name to the
// uploaded deployment it references.
func (sv *Server) artifactPolicy(name string) (ehinfer.PolicySpec, bool) {
	id, ok := strings.CutPrefix(name, artifactPrefix)
	if !ok {
		return ehinfer.PolicySpec{}, false
	}
	sv.mu.Lock()
	art := sv.artifacts[id]
	sv.mu.Unlock()
	if art == nil {
		return ehinfer.PolicySpec{}, false
	}
	return ehinfer.PolicyFromDeployed(name, art.bundle.Deployed), true
}

// artifactNames lists the policy-axis names of the uploaded artifacts,
// in upload order.
func (sv *Server) artifactNames() []string {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	names := make([]string, 0, len(sv.artOrder))
	for _, id := range sv.artOrder {
		names = append(names, artifactPrefix+id)
	}
	return names
}

// artifactStatus is one artifact listing entry.
type artifactStatus struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Policy      string `json:"policy"` // the grid policy-axis name
	Exits       int    `json:"exits"`
	WeightBytes int64  `json:"weightBytes"`
	Backend     string `json:"backend,omitempty"`
	Bytes       int    `json:"bytes"`
	Download    string `json:"download"`
}

func (art *storedArtifact) status() artifactStatus {
	d := art.bundle.Deployed
	st := artifactStatus{
		ID:          art.id,
		Name:        art.name,
		Policy:      artifactPrefix + art.id,
		Exits:       d.Net.NumExits(),
		WeightBytes: d.WeightBytes,
		Bytes:       len(art.data),
		Download:    "/v1/artifacts/" + art.id,
	}
	if d.DefaultBackend != ehinfer.BackendDefault {
		st.Backend = d.DefaultBackend.String()
	}
	return st
}

// handleArtifactUpload accepts a deployment-artifact stream (as written
// by ehinfer.SaveDeployed), decodes it strictly, and stores it under a
// fresh id. Grids reference it as policy "artifact:<id>"; the exact
// uploaded bytes are available for download.
func (sv *Server) handleArtifactUpload(w http.ResponseWriter, r *http.Request) {
	// Reject doomed uploads before burning a body read and a full
	// decode; the same conditions are re-checked under the lock at
	// store time (they can flip mid-request).
	if code, err := sv.artifactStoreFull(); err != nil {
		writeErr(w, code, err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("artifact exceeds the %d-byte upload limit", tooBig.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("read artifact: %w", err))
		return
	}
	bundle, err := ehinfer.DecodeDeployed(bytes.NewReader(data))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Allocate the id under the lock, persist outside it (fsync is too
	// slow to stall every other endpoint), then publish under the lock
	// again. A shutdown racing the persist step rolls the write back.
	sv.mu.Lock()
	if code, err := sv.admitArtifactLocked(); err != nil {
		sv.mu.Unlock()
		writeErr(w, code, err)
		return
	}
	sv.nextArtID++
	art := &storedArtifact{
		id:     fmt.Sprintf("a%d", sv.nextArtID),
		name:   bundle.Name,
		data:   data,
		bundle: bundle,
	}
	sv.mu.Unlock()

	if sv.store != nil {
		if err := sv.store.Put(art.id, art.name, data); err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("persist artifact: %w", err))
			return
		}
	}

	sv.mu.Lock()
	if code, err := sv.admitArtifactLocked(); err != nil {
		sv.mu.Unlock()
		if sv.store != nil {
			_ = sv.store.Delete(art.id)
		}
		writeErr(w, code, err)
		return
	}
	sv.artifacts[art.id] = art
	sv.artOrder = append(sv.artOrder, art.id)
	sv.mu.Unlock()

	w.Header().Set("Location", "/v1/artifacts/"+art.id)
	writeJSON(w, http.StatusCreated, art.status())
}

// artifactStoreFull reports why an upload cannot be admitted (shutdown
// or store at capacity), or (0, nil).
func (sv *Server) artifactStoreFull() (int, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.admitArtifactLocked()
}

// admitArtifactLocked is the single admission policy for uploads,
// shared by the cheap pre-read check and the post-decode store path.
// Caller holds sv.mu.
func (sv *Server) admitArtifactLocked() (int, error) {
	if sv.closed {
		return http.StatusServiceUnavailable, fmt.Errorf("serve: server is shutting down")
	}
	if len(sv.artifacts) >= maxArtifacts {
		return http.StatusInsufficientStorage,
			fmt.Errorf("serve: artifact store is full (%d artifacts); DELETE one first", maxArtifacts)
	}
	return 0, nil
}

func (sv *Server) handleArtifactList(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	arts := make([]*storedArtifact, 0, len(sv.artOrder))
	for _, id := range sv.artOrder {
		arts = append(arts, sv.artifacts[id])
	}
	sv.mu.Unlock()
	out := make([]artifactStatus, 0, len(arts))
	for _, art := range arts {
		out = append(out, art.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"artifacts": out})
}

// handleArtifactDownload serves the artifact back byte-for-byte as it
// was uploaded.
func (sv *Server) handleArtifactDownload(w http.ResponseWriter, r *http.Request) {
	sv.mu.Lock()
	art := sv.artifacts[r.PathValue("id")]
	sv.mu.Unlock()
	if art == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown artifact %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(art.data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(art.data)
}

// handleArtifactDelete removes an artifact from the store. Grids
// already resolved against it keep their deployment; new submissions
// referencing the id fail, and its inference queue (if any) is drained
// and closed.
func (sv *Server) handleArtifactDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sv.mu.Lock()
	exists := sv.artifacts[id] != nil
	sv.mu.Unlock()
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown artifact %q", id))
		return
	}
	// Durable tombstone first: if the disk refuses, keep serving the
	// artifact and report the failure rather than let a restart
	// resurrect something the client believes deleted.
	if sv.store != nil {
		if err := sv.store.Delete(id); err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("delete artifact: %w", err))
			return
		}
	}
	sv.mu.Lock()
	art := sv.artifacts[id]
	if art != nil {
		delete(sv.artifacts, id)
		sv.dropInferLocked(artifactPrefix + id)
		kept := sv.artOrder[:0]
		for _, a := range sv.artOrder {
			if a != id {
				kept = append(kept, a)
			}
		}
		sv.artOrder = kept
	}
	sv.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (sv *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := sv.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown grid %q", r.PathValue("id")))
		return
	}
	// An explicit cancel aborts the journal too: the operator killed the
	// run on purpose, so the next boot must not resurrect it.
	j.aborted.Store(true)
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// Registry reports the axis names a GridSpec may reference — surfaced so
// clients can discover valid devices/policies/traces/schedules/backends
// without reading source. The listings read the live registries, so
// components registered at runtime (exper.RegisterDevice and friends)
// appear immediately; the per-server artifact names are merged in by the
// /v1/registry handler.
func Registry() map[string][]string {
	devices := exper.DeviceNames()
	policies := exper.PolicyNames()
	sort.Strings(devices)
	sort.Strings(policies)
	return map[string][]string{
		"devices":     devices,
		"policies":    policies,
		"backends":    exper.BackendNames(),
		"traces":      exper.TraceNames(),
		"schedules":   exper.ScheduleNames(),
		"deployments": exper.DeploymentNames(),
	}
}

// mergeCancel returns a context canceled when either parent is.
func mergeCancel(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
