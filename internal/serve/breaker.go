package serve

import (
	"errors"
	"sync"
	"time"

	ehinfer "repro"
)

// ErrCircuitOpen marks inference requests shed because the model's
// circuit breaker is open after repeated execution failures. It maps to
// 503 + Retry-After via the errorCodes table: unlike ErrInferenceFailed
// itself (a permanent 500 for the poison request), a breaker denial is
// transient — the probe may close the circuit again.
var ErrCircuitOpen = errors.New("serve: circuit open")

// Breaker states, also the values of the ehserved_circuit_state gauge.
const (
	circuitClosed   = "closed"
	circuitOpen     = "open"
	circuitHalfOpen = "half-open"
)

// breaker is a per-model circuit breaker over the inference path. It
// opens after `threshold` consecutive ErrInferenceFailed results (each
// one a recovered execution panic), denies requests for `cooldown`, then
// half-opens: exactly one probe request is admitted, and its outcome
// closes or re-opens the circuit. Context cancellations and queue sheds
// are neutral — they say nothing about the model's health.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	// onTransition observes state changes for metrics; called outside mu
	// is not needed — keep calls short.
	onTransition func(to string)

	mu       sync.Mutex
	state    string
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, onTransition func(string)) *breaker {
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &breaker{
		threshold:    threshold,
		cooldown:     cooldown,
		now:          now,
		onTransition: onTransition,
		state:        circuitClosed,
	}
}

// Allow reports whether a request may proceed; when denied it returns
// how long the client should wait before retrying.
func (b *breaker) Allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case circuitClosed:
		return true, 0
	case circuitOpen:
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		// Cooldown over: half-open and admit this request as the probe.
		b.transitionLocked(circuitHalfOpen)
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			// One probe at a time; everyone else backs off briefly.
			return false, time.Second
		}
		b.probing = true
		return true, 0
	}
}

// Record feeds a request outcome back. nil closes a half-open circuit
// (and resets the failure streak); ErrInferenceFailed extends the streak
// or re-opens; any other error is neutral — it says nothing about the
// model, but it still releases a half-open probe slot so the next
// request can probe (an inconclusive probe must not latch the circuit).
func (b *breaker) Record(err error) {
	failure := errors.Is(err, ehinfer.ErrInferenceFailed)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == circuitHalfOpen {
		b.probing = false
		switch {
		case failure:
			b.openedAt = b.now()
			b.transitionLocked(circuitOpen)
		case err == nil:
			b.fails = 0
			b.transitionLocked(circuitClosed)
		}
		return
	}
	if err != nil && !failure {
		return
	}
	if !failure {
		b.fails = 0
		return
	}
	b.fails++
	if b.state == circuitClosed && b.fails >= b.threshold {
		b.openedAt = b.now()
		b.transitionLocked(circuitOpen)
	}
}

// State returns the current state name.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transitionLocked flips the state and notifies. Caller holds b.mu; the
// hook must therefore be non-blocking (ours bumps atomic counters).
func (b *breaker) transitionLocked(to string) {
	if b.state == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// stateValue maps a state name to the circuit-state gauge value.
func stateValue(state string) float64 {
	switch state {
	case circuitOpen:
		return 2
	case circuitHalfOpen:
		return 1
	default:
		return 0
	}
}
