package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	ehinfer "repro"
	"repro/internal/store"
)

// durableServer builds a server over a store rooted at dir. Unlike
// newHTTPServer it does not register cleanup shutdown — restart tests
// shut down explicitly to model the boot/stop cycle.
func durableServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	sv := New(
		WithSession(ehinfer.NewSession(ehinfer.WithWorkers(workers))),
		WithStore(st),
	)
	ts := httptest.NewServer(sv)
	return sv, ts
}

func shutdownServer(t *testing.T, sv *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func download(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/artifacts/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download %s: status %d", id, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestArtifactsPersistAcrossRestart: uploaded artifacts come back after
// a restart under the same IDs with identical bytes, deletes are
// durable, and the ID sequence does not reuse old names.
func TestArtifactsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	a1 := encodeTestArtifact(t, "persist-one")
	a2 := encodeTestArtifact(t, "persist-two")

	sv, ts := durableServer(t, dir, 1)
	id1 := uploadArtifact(t, ts.URL, a1)
	id2 := uploadArtifact(t, ts.URL, a2)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/artifacts/"+id2, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	shutdownServer(t, sv, ts)

	sv2, ts2 := durableServer(t, dir, 1)
	defer shutdownServer(t, sv2, ts2)
	if got := download(t, ts2.URL, id1); !bytes.Equal(got, a1) {
		t.Fatalf("artifact %s changed across restart: %d vs %d bytes", id1, len(got), len(a1))
	}
	if code, _ := getBody(t, ts2.URL+"/v1/artifacts/"+id2); code != http.StatusNotFound {
		t.Fatalf("deleted artifact %s resurrected: %d", id2, code)
	}
	// The restored sequence continues past the highest stored ID even
	// though id2 was deleted — IDs are never reused.
	id3 := uploadArtifact(t, ts2.URL, encodeTestArtifact(t, "persist-three"))
	if id3 == id1 || id3 == id2 {
		t.Fatalf("restart reused artifact id %s", id3)
	}
	// Recovery is visible in metrics.
	_, metrics := getBody(t, ts2.URL+"/metrics")
	if !strings.Contains(metrics, mArtifactRecovery+`{outcome="restored"} 1`) {
		t.Fatalf("restore not counted:\n%s", grepMetrics(metrics, mArtifactRecovery))
	}
	// Inference against the restored artifact works end to end.
	if code, _ := postInfer(t, ts2.URL, inferBody(id1, 1)); code != http.StatusOK {
		t.Fatalf("infer against restored artifact: %d", code)
	}
}

// TestQuarantinedArtifactNotServed: a corrupted artifact file is
// quarantined at boot and counted, while healthy artifacts keep
// serving.
func TestQuarantinedArtifactNotServed(t *testing.T) {
	dir := t.TempDir()
	good := encodeTestArtifact(t, "survivor")

	sv, ts := durableServer(t, dir, 1)
	goodID := uploadArtifact(t, ts.URL, good)
	badID := uploadArtifact(t, ts.URL, encodeTestArtifact(t, "victim"))
	shutdownServer(t, sv, ts)

	// Corrupt the second artifact on disk: truncate to half.
	path := filepath.Join(dir, "artifacts", badID+".ehar")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	sv2, ts2 := durableServer(t, dir, 1)
	defer shutdownServer(t, sv2, ts2)
	if got := download(t, ts2.URL, goodID); !bytes.Equal(got, good) {
		t.Fatal("healthy artifact damaged by recovery")
	}
	if code, _ := getBody(t, ts2.URL+"/v1/artifacts/"+badID); code != http.StatusNotFound {
		t.Fatalf("corrupt artifact served: %d", code)
	}
	_, metrics := getBody(t, ts2.URL+"/metrics")
	if !strings.Contains(metrics, mArtifactRecovery+`{outcome="undecodable"} 1`) &&
		!strings.Contains(metrics, mArtifactRecovery+`{outcome="quarantined"} 1`) {
		t.Fatalf("corruption not counted:\n%s", grepMetrics(metrics, mArtifactRecovery))
	}
}

// TestFinishedJobRestoredAcrossRestart: a finished grid job's final
// document survives a restart byte-identically, and its status reads
// done.
func TestFinishedJobRestoredAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	sv, ts := durableServer(t, dir, 2)
	sub := postJSON(t, ts.URL+"/v1/grids", fastSpec)
	id := sub["id"].(string)
	waitState(t, ts.URL, id, StateDone)
	code, want := getBody(t, ts.URL+"/v1/grids/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("results before restart: %d", code)
	}
	shutdownServer(t, sv, ts)

	sv2, ts2 := durableServer(t, dir, 2)
	defer shutdownServer(t, sv2, ts2)
	st := getStatus(t, ts2.URL, id)
	if st.State != StateDone {
		t.Fatalf("restored job state = %q, want done", st.State)
	}
	code, got := getBody(t, ts2.URL+"/v1/grids/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("results after restart: %d", code)
	}
	if got != want {
		t.Fatalf("final document changed across restart:\nbefore: %s\nafter:  %s", want, got)
	}
}

// TestUnfinishedJobResumesAcrossRestart is the crash-recovery
// centerpiece: a job interrupted mid-run by shutdown resumes on the
// next boot from its journal — restored points are not re-run — and the
// final document is byte-identical to an uninterrupted run of the same
// spec.
func TestUnfinishedJobResumesAcrossRestart(t *testing.T) {
	// The reference: the same spec run start-to-finish on a store-less
	// server. The determinism contract says any interleaving of restore
	// + re-run must reproduce these bytes exactly.
	_, ref := newTestServer(t, 1)
	refSub := postJSON(t, ref.URL+"/v1/grids", slowSpec)
	refID := refSub["id"].(string)
	waitState(t, ref.URL, refID, StateDone)
	_, want := getBody(t, ref.URL+"/v1/grids/"+refID+"/results")

	dir := t.TempDir()
	sv, ts := durableServer(t, dir, 1)
	sub := postJSON(t, ts.URL+"/v1/grids", slowSpec)
	id := sub["id"].(string)

	// Wait until the journal holds at least one point but the run is not
	// done, then stop the server mid-job.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts.URL, id)
		if st.Completed >= 1 && st.State == StateRunning {
			break
		}
		if st.State == StateDone {
			t.Skip("grid finished before the shutdown could interrupt it")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed a point")
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdownServer(t, sv, ts)

	sv2, ts2 := durableServer(t, dir, 1)
	defer shutdownServer(t, sv2, ts2)
	st := getStatus(t, ts2.URL, id)
	if st.State != StateRunning && st.State != StateDone {
		t.Fatalf("resumed job state = %q (err %s)", st.State, st.Err)
	}
	waitState(t, ts2.URL, id, StateDone)
	code, got := getBody(t, ts2.URL+"/v1/grids/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("resumed results: %d", code)
	}
	if got != want {
		t.Fatalf("resumed run diverged from uninterrupted reference:\nref: %d bytes\ngot: %d bytes", len(want), len(got))
	}
	_, metrics := getBody(t, ts2.URL+"/metrics")
	if !strings.Contains(metrics, mJobsResumed+" 1") {
		t.Fatalf("resume not counted:\n%s", grepMetrics(metrics, mJobsResumed))
	}
	if !strings.Contains(metrics, mJobPointsRestored) {
		t.Fatalf("restored points not counted:\n%s", grepMetrics(metrics, mJobPointsRestored))
	}

	// The journal is finalized: a third boot serves the job as finished
	// without resuming anything.
	shutdownServer(t, sv2, ts2)
	sv3, ts3 := durableServer(t, dir, 1)
	defer shutdownServer(t, sv3, ts3)
	if st := getStatus(t, ts3.URL, id); st.State != StateDone {
		t.Fatalf("third boot job state = %q", st.State)
	}
	_, got3 := getBody(t, ts3.URL+"/v1/grids/"+id+"/results")
	if got3 != want {
		t.Fatal("final document drifted on the finalized boot")
	}
}

// TestCanceledJobNotResumed: DELETE aborts the journal, so the next
// boot does not resurrect a job the operator killed.
func TestCanceledJobNotResumed(t *testing.T) {
	dir := t.TempDir()
	sv, ts := durableServer(t, dir, 1)
	sub := postJSON(t, ts.URL+"/v1/grids", slowSpec)
	id := sub["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/grids/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, id, StateCanceled)
	shutdownServer(t, sv, ts)

	sv2, ts2 := durableServer(t, dir, 1)
	defer shutdownServer(t, sv2, ts2)
	if code, _ := getBody(t, ts2.URL+"/v1/grids/"+id); code != http.StatusNotFound {
		t.Fatalf("canceled job came back: %d", code)
	}
	_, metrics := getBody(t, ts2.URL+"/metrics")
	if strings.Contains(metrics, mJobsResumed+" 1") {
		t.Fatal("canceled job was resumed")
	}
}
