package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// retryServer answers from a scripted status sequence, repeating the
// last entry once the script runs out.
func retryServer(t *testing.T, statuses []int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(hits.Add(1)) - 1
		if n >= len(statuses) {
			n = len(statuses) - 1
		}
		code := statuses[n]
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(code)
		_, _ = io.WriteString(w, http.StatusText(code))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func backoffForTest() Backoff {
	return Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond, Attempts: 4, Seed: 42}
}

func doGet(t *testing.T, b Backoff, url string) *http.Response {
	t.Helper()
	resp, err := b.Do(context.Background(), http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestBackoffRetriesTransientStatuses: 503 then 429 then 200 succeeds
// within the attempt budget, and the terminal body is readable.
func TestBackoffRetriesTransientStatuses(t *testing.T) {
	ts, hits := retryServer(t, []int{http.StatusServiceUnavailable, http.StatusTooManyRequests, http.StatusOK})
	resp := doGet(t, backoffForTest(), ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != "OK" {
		t.Fatalf("body = %q, %v", body, err)
	}
}

// TestBackoffDoesNotRetryClientErrors: a 400 is the caller's bug, not a
// transient — one request, response returned as-is.
func TestBackoffDoesNotRetryClientErrors(t *testing.T) {
	ts, hits := retryServer(t, []int{http.StatusBadRequest})
	resp := doGet(t, backoffForTest(), ts.URL)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// TestBackoffExhaustsAttempts: a persistent 503 is retried exactly
// Attempts times and the final response comes back with its body intact
// so the caller can inspect the error payload.
func TestBackoffExhaustsAttempts(t *testing.T) {
	ts, hits := retryServer(t, []int{http.StatusServiceUnavailable})
	b := backoffForTest()
	b.Attempts = 2
	resp := doGet(t, b, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil || len(body) == 0 {
		t.Fatalf("final body unreadable: %q, %v", body, err)
	}
}

// TestBackoffRetriesTransportErrors: a refused connection retries until
// the budget runs out, then surfaces the transport error.
func TestBackoffRetriesTransportErrors(t *testing.T) {
	ts, hits := retryServer(t, []int{http.StatusOK})
	url := ts.URL
	ts.Close() // nothing listening: every attempt fails at dial
	b := backoffForTest()
	b.Attempts = 2
	_, err := b.Do(context.Background(), http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
	if err == nil {
		t.Fatal("want transport error, got nil")
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("closed server saw %d requests", got)
	}
}

// TestBackoffHonorsContext: a canceled context stops the loop promptly
// instead of sleeping out the schedule.
func TestBackoffHonorsContext(t *testing.T) {
	ts, _ := retryServer(t, []int{http.StatusServiceUnavailable})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Backoff{Base: time.Hour, Cap: time.Hour, Attempts: 5, Seed: 1}
	_, err := b.Do(ctx, http.DefaultClient, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	})
	if err == nil {
		t.Fatal("want context error, got nil")
	}
}

// TestBackoffDelayDeterministic: same seed, same schedule — the jitter
// is reproducible, and delays stay within ±25% of the exponential base,
// capped.
func TestBackoffDelayDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Attempts: 8, Seed: 7}
	b2 := b
	for attempt := 1; attempt < 8; attempt++ {
		d1, d2 := b.delay(attempt, 0), b2.delay(attempt, 0)
		if d1 != d2 {
			t.Fatalf("attempt %d: delays differ: %v vs %v", attempt, d1, d2)
		}
		base := b.Base << (attempt - 1)
		if base > b.Cap {
			base = b.Cap
		}
		lo, hi := base*3/4, base*5/4
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, lo, hi)
		}
	}
	// A server hint within the cap overrides the schedule.
	if d := b.delay(1, 300*time.Millisecond); d != 300*time.Millisecond {
		t.Fatalf("hinted delay = %v, want 300ms", d)
	}
}
