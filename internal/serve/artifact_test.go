package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	ehinfer "repro"
	"repro/internal/mcu"
)

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitForResults polls the job to completion and fetches its final
// result document.
func waitForResults(t *testing.T, base, id string) map[string]any {
	t.Helper()
	waitState(t, base, id, StateDone)
	return getJSON(t, base+"/v1/grids/"+id+"/results")
}

// encodeTestArtifact builds a small deterministic deployment artifact.
func encodeTestArtifact(t *testing.T, name string) []byte {
	t.Helper()
	session := ehinfer.NewSession(ehinfer.WithSeed(5))
	d, err := session.BuildDeployed(ehinfer.Fig1bNonuniform())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ehinfer.EncodeDeployed(&buf, &ehinfer.DeploymentBundle{Name: name, Deployed: d}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeArtifactUploadRunDownload is the artifact lifecycle e2e:
// upload a bundle, run a grid that references it by policy name, and
// download it back byte-identically.
func TestServeArtifactUploadRunDownload(t *testing.T) {
	_, ts := newTestServer(t, 2)
	data := encodeTestArtifact(t, "e2e-artifact")

	// Upload.
	resp, err := http.Post(ts.URL+"/v1/artifacts", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID     string `json:"id"`
		Name   string `json:"name"`
		Policy string `json:"policy"`
		Exits  int    `json:"exits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	if up.Name != "e2e-artifact" || up.Exits != 3 || up.Policy != "artifact:"+up.ID {
		t.Fatalf("unexpected upload response: %+v", up)
	}

	// The registry lists it.
	reg := getJSON(t, ts.URL+"/v1/registry")
	found := false
	for _, a := range reg["artifacts"].([]any) {
		if a == up.Policy {
			found = true
		}
	}
	if !found {
		t.Fatalf("registry does not list %q: %v", up.Policy, reg["artifacts"])
	}

	// Run a grid on the uploaded deployment.
	spec := fmt.Sprintf(`{"name":"art-grid","events":20,
		"traces":[{"name":"s","kind":"solar","seconds":900,"peakPower":0.05}],
		"policies":[%q],"seeds":[1]}`, up.Policy)
	sub := postJSON(t, ts.URL+"/v1/grids", spec)
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("grid referencing artifact rejected: %v", sub)
	}
	final := waitForResults(t, ts.URL, id)
	results := final["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("expected 1 result, got %d", len(results))
	}
	if errMsg, ok := results[0].(map[string]any)["err"]; ok {
		t.Fatalf("artifact-backed point failed: %v", errMsg)
	}

	// Download must be byte-identical to the upload.
	dl, err := http.Get(ts.URL + "/v1/artifacts/" + up.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(dl.Body)
	dl.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("downloaded artifact differs from the uploaded bytes")
	}

	// Delete; subsequent submissions referencing it must fail.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/artifacts/"+up.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", delResp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("grid naming a deleted artifact: status %d, want 400", resp2.StatusCode)
	}
}

// TestServeArtifactRejectsCorrupt: a truncated upload must 400 without
// polluting the store.
func TestServeArtifactRejectsCorrupt(t *testing.T) {
	_, ts := newTestServer(t, 1)
	data := encodeTestArtifact(t, "x")
	resp, err := http.Post(ts.URL+"/v1/artifacts", "application/octet-stream", bytes.NewReader(data[:len(data)-7]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload status %d, want 400", resp.StatusCode)
	}
	list := getJSON(t, ts.URL+"/v1/artifacts")
	if arts := list["artifacts"].([]any); len(arts) != 0 {
		t.Fatalf("corrupt upload was stored: %v", arts)
	}
}

// TestServeRuntimeRegisteredDevice is the acceptance-criterion e2e: an
// MCU registered at runtime through the public API is runnable by name
// in a GridSpec submitted over HTTP, and /v1/registry reflects it.
func TestServeRuntimeRegisteredDevice(t *testing.T) {
	if err := ehinfer.RegisterDevice("serve-e2e-mcu", func() *ehinfer.Device {
		d := mcu.MSP432()
		d.Name = "serve-e2e-mcu"
		d.EnergyPerMFLOP = 1.0
		return d
	}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, 2)

	reg := getJSON(t, ts.URL+"/v1/registry")
	found := false
	for _, dev := range reg["devices"].([]any) {
		if dev == "serve-e2e-mcu" {
			found = true
		}
	}
	if !found {
		t.Fatal("/v1/registry does not reflect the runtime-registered device")
	}

	spec := `{"name":"custom-dev","events":20,
		"traces":[{"name":"s","kind":"solar","seconds":900,"peakPower":0.05}],
		"devices":["serve-e2e-mcu"],"seeds":[1]}`
	sub := postJSON(t, ts.URL+"/v1/grids", spec)
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("grid on registered device rejected: %v", sub)
	}
	final := waitForResults(t, ts.URL, id)
	res := final["results"].([]any)[0].(map[string]any)
	if errMsg, ok := res["err"]; ok {
		t.Fatalf("point on registered device failed: %v", errMsg)
	}
	point := res["point"].(map[string]any)
	if dev := point["device"].(map[string]any)["name"]; dev != "serve-e2e-mcu" {
		t.Fatalf("point ran on %v, want serve-e2e-mcu", dev)
	}
}

// TestServeRegisteredScheduleAndTrace submits a grid whose schedule and
// trace are runtime registrations.
func TestServeRegisteredScheduleAndTrace(t *testing.T) {
	if err := ehinfer.RegisterSchedule("serve-e2e-bursty", func(n, duration, classes int, seed uint64) *ehinfer.Schedule {
		return ehinfer.BurstySchedule(n, duration, classes, 3, seed)
	}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, 1)
	spec := `{"name":"custom-axes","events":20,"schedule":"serve-e2e-bursty",
		"traces":[{"name":"paper-kinetic","kind":"registered"}],"seeds":[1]}`
	sub := postJSON(t, ts.URL+"/v1/grids", spec)
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("grid on registered schedule/trace rejected: %v", sub)
	}
	final := waitForResults(t, ts.URL, id)
	res := final["results"].([]any)[0].(map[string]any)
	if errMsg, ok := res["err"]; ok {
		t.Fatalf("point failed: %v", errMsg)
	}
}
