package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// fastFleetSpec is a two-population fleet that finishes in well under a
// second on one worker.
const fastFleetSpec = `{
	"name": "fleet-e2e",
	"baseSeed": 11,
	"epochs": 4,
	"events": 8,
	"populations": [
		{"name": "solar-q", "count": 24, "traceVariants": 3},
		{"name": "static", "count": 16, "exit": {"mode": 1}, "traceVariants": 3}
	]
}`

// slowFleetSpec has enough epochs that a shutdown reliably lands mid-run
// on a 1-worker session while snapshots land in the journal every epoch.
const slowFleetSpec = `{
	"name": "fleet-slow",
	"baseSeed": 5,
	"epochs": 60,
	"snapshotEvery": 1,
	"events": 120,
	"populations": [
		{"name": "pop", "count": 512, "traceVariants": 8}
	]
}`

func getFleetStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/fleets/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFleetState(t *testing.T, base, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getFleetStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State != StateRunning && want != st.State {
			t.Fatalf("fleet %s reached terminal state %q while waiting for %q (err: %s)", id, st.State, want, st.Err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("fleet %s never reached state %q", id, want)
	return JobStatus{}
}

// directFleetRun executes the spec straight on the engine — the
// reference bytes the HTTP layer must reproduce.
func directFleetRun(t *testing.T, specJSON string) []byte {
	t.Helper()
	var spec fleet.Spec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		t.Fatalf("spec: %v", err)
	}
	f, err := spec.Fleet()
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	e := fleet.Engine{Workers: 1}
	res, err := e.Run(context.Background(), f)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	return data
}

// TestServeFleetEndToEnd drives submit → poll → fetch and pins that the
// served document equals a direct engine run of the same spec.
func TestServeFleetEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, 2)

	sub := postJSON(t, ts.URL+"/v1/fleets", fastFleetSpec)
	id, _ := sub["id"].(string)
	if id == "" || !strings.HasPrefix(id, "f") {
		t.Fatalf("submit returned bad id: %v", sub)
	}
	if sub["devices"].(float64) != 40 {
		t.Fatalf("submit reported %v devices, want 40", sub["devices"])
	}
	waitFleetState(t, ts.URL, id, StateDone)

	code, got := getBody(t, ts.URL+"/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: %d", code)
	}
	want := directFleetRun(t, fastFleetSpec)
	if got != string(want) {
		t.Fatalf("served fleet document differs from direct engine run:\nserved %d bytes, direct %d bytes", len(got), len(want))
	}

	// Status and the fleet listing agree the run is done.
	st := getFleetStatus(t, ts.URL, id)
	if st.Completed != st.Total || st.Total != 4 {
		t.Fatalf("status counts wrong: %+v", st)
	}
	code, list := getBody(t, ts.URL+"/v1/fleets")
	if code != http.StatusOK || !strings.Contains(list, `"`+id+`"`) {
		t.Fatalf("fleet listing missing %s: %d %s", id, code, list)
	}

	// Per-fleet metric families are live.
	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, fam := range []string{mFleetSnapshots, mFleetEvents, mFleetDevices} {
		if !strings.Contains(metrics, fam+`{fleet="`+id+`"}`) {
			t.Fatalf("metric %s missing for fleet %s:\n%s", fam, id, grepMetrics(metrics, fam))
		}
	}
}

// TestServeFleetStream submits with ?stream=1 and checks one NDJSON line
// per snapshot plus a final summary line arrive on the request itself.
func TestServeFleetStream(t *testing.T) {
	_, ts := newTestServer(t, 2)
	resp, err := http.Post(ts.URL+"/v1/fleets?stream=1", "application/json", strings.NewReader(fastFleetSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	snaps := 0
	doneSeen := false
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if line["done"] == true {
			doneSeen = true
			if line["state"] != string(StateDone) {
				t.Fatalf("summary state %v", line["state"])
			}
			continue
		}
		if _, ok := line["epoch"]; !ok {
			t.Fatalf("snapshot line missing epoch: %v", line)
		}
		snaps++
	}
	if snaps != 4 || !doneSeen {
		t.Fatalf("streamed %d snapshots (done=%v), want 4 + summary", snaps, doneSeen)
	}
}

// TestServeFleetFollowNDJSON tails an async fleet's snapshots via
// results?format=ndjson from submission to the summary line.
func TestServeFleetFollowNDJSON(t *testing.T) {
	_, ts := newTestServer(t, 2)
	sub := postJSON(t, ts.URL+"/v1/fleets", fastFleetSpec)
	id := sub["id"].(string)
	resp, err := http.Get(ts.URL + "/v1/fleets/" + id + "/results?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 5 { // 4 snapshots + summary
		t.Fatalf("followed %d lines, want 5", lines)
	}
}

// TestServeFleetCancel: DELETE lands mid-run and the job settles
// canceled with a partial snapshot count.
func TestServeFleetCancel(t *testing.T) {
	_, ts := newTestServer(t, 1)
	sub := postJSON(t, ts.URL+"/v1/fleets", slowFleetSpec)
	id := sub["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleets/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	st := waitFleetState(t, ts.URL, id, StateCanceled)
	if st.Completed >= st.Total {
		t.Fatalf("canceled fleet claims completion: %+v", st)
	}
}

// TestServeFleetBadSpecs: malformed and invalid specs answer 400 before
// any job exists.
func TestServeFleetBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, 1)
	for _, body := range []string{
		`{not json`,
		`{"unknownField": 1}`,
		`{"populations": []}`,
		`{"populations": [{"name": "x", "count": 0}]}`,
		`{"populations": [{"name": "x", "count": 1, "device": "nope"}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/fleets", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestServeJobsUnified: GET /v1/jobs lists grid and fleet jobs together
// with their kinds.
func TestServeJobsUnified(t *testing.T) {
	_, ts := newTestServer(t, 2)
	gid := postJSON(t, ts.URL+"/v1/grids", fastSpec)["id"].(string)
	fid := postJSON(t, ts.URL+"/v1/fleets", fastFleetSpec)["id"].(string)
	waitState(t, ts.URL, gid, StateDone)
	waitFleetState(t, ts.URL, fid, StateDone)

	code, body := getBody(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("jobs: %d", code)
	}
	var doc struct {
		Jobs []struct {
			Kind string   `json:"kind"`
			ID   string   `json:"id"`
			St   JobState `json:"state"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("jobs listing: %v", err)
	}
	kinds := map[string]string{}
	for _, j := range doc.Jobs {
		kinds[j.ID] = j.Kind
		if j.St != StateDone {
			t.Fatalf("job %s state %q", j.ID, j.St)
		}
	}
	if kinds[gid] != "grid" || kinds[fid] != "fleet" {
		t.Fatalf("kinds wrong: %v", kinds)
	}
}

// TestFleetResumesAcrossRestart is the fleet crash-recovery centerpiece:
// a fleet interrupted mid-run by shutdown resumes on the next boot from
// its journaled snapshots, and the final document is byte-identical to
// an uninterrupted run of the same spec.
func TestFleetResumesAcrossRestart(t *testing.T) {
	want := string(directFleetRun(t, slowFleetSpec))

	dir := t.TempDir()
	sv, ts := durableServer(t, dir, 1)
	sub := postJSON(t, ts.URL+"/v1/fleets", slowFleetSpec)
	id := sub["id"].(string)

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getFleetStatus(t, ts.URL, id)
		if st.Completed >= 1 && st.State == StateRunning {
			break
		}
		if st.State == StateDone {
			t.Skip("fleet finished before the shutdown could interrupt it")
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never emitted a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdownServer(t, sv, ts)

	sv2, ts2 := durableServer(t, dir, 1)
	defer shutdownServer(t, sv2, ts2)
	st := getFleetStatus(t, ts2.URL, id)
	if st.State != StateRunning && st.State != StateDone {
		t.Fatalf("resumed fleet state = %q (err %s)", st.State, st.Err)
	}
	waitFleetState(t, ts2.URL, id, StateDone)
	code, got := getBody(t, ts2.URL+"/v1/fleets/"+id+"/results")
	if code != http.StatusOK {
		t.Fatalf("resumed results: %d", code)
	}
	if got != want {
		t.Fatalf("resumed fleet diverged from uninterrupted reference:\nref %d bytes, got %d bytes", len(want), len(got))
	}
	_, metrics := getBody(t, ts2.URL+"/metrics")
	if !strings.Contains(metrics, mFleetsResumed+" 1") {
		t.Fatalf("resume not counted:\n%s", grepMetrics(metrics, mFleetsResumed))
	}
	if !strings.Contains(metrics, mFleetSnapshotsRestored) {
		t.Fatalf("restored snapshots not counted:\n%s", grepMetrics(metrics, mFleetSnapshotsRestored))
	}

	// The journal is finalized: a third boot serves the fleet as finished
	// without resuming anything.
	shutdownServer(t, sv2, ts2)
	sv3, ts3 := durableServer(t, dir, 1)
	defer shutdownServer(t, sv3, ts3)
	if st := getFleetStatus(t, ts3.URL, id); st.State != StateDone {
		t.Fatalf("third boot fleet state = %q", st.State)
	}
	_, got3 := getBody(t, ts3.URL+"/v1/fleets/"+id+"/results")
	if got3 != want {
		t.Fatal("final document drifted on the finalized boot")
	}
}

// TestCanceledFleetNotResumed: DELETE aborts the journal, so the next
// boot does not resurrect a fleet the operator killed.
func TestCanceledFleetNotResumed(t *testing.T) {
	dir := t.TempDir()
	sv, ts := durableServer(t, dir, 1)
	sub := postJSON(t, ts.URL+"/v1/fleets", slowFleetSpec)
	id := sub["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/fleets/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFleetState(t, ts.URL, id, StateCanceled)
	shutdownServer(t, sv, ts)

	sv2, ts2 := durableServer(t, dir, 1)
	defer shutdownServer(t, sv2, ts2)
	if code, _ := getBody(t, ts2.URL+"/v1/fleets/"+id); code != http.StatusNotFound {
		t.Fatalf("canceled fleet came back: %d", code)
	}
}
