package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// isStreaming reports whether the request holds its response open for
// the lifetime of a run (NDJSON submit or follow). Streaming requests
// are exempt from the per-request deadline and from the latency EWMA —
// their duration measures the grid, not the server.
func isStreaming(r *http.Request) bool {
	q := r.URL.Query()
	return q.Get("stream") != "" || q.Get("format") == "ndjson"
}

// deadlineMW bounds every non-streaming /v1/* request with the server's
// request timeout: the context expires, handlers below unwind through
// the usual cancellation paths (503 via the taxonomy table), and the
// timeout is counted per route.
func (sv *Server) deadlineMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sv.reqTimeout <= 0 || !strings.HasPrefix(r.URL.Path, "/v1/") || isStreaming(r) {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), sv.reqTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			sv.reg.Counter(obs.Metric(mRequestTimeouts,
				"route", routeLabel(metaFrom(r.Context())))).Inc()
		}
	})
}

// shedder is the load-shedding admission gate: a hard cap on in-flight
// /v1/* requests plus a latency watermark over an EWMA of recent
// non-streaming request durations. Both knobs are optional; zero
// disables each independently.
type shedder struct {
	maxInflight int64
	watermark   time.Duration

	inflight atomic.Int64
	// ewmaNS is an exponentially-weighted moving average (α = 1/8) of
	// request latency in nanoseconds, updated lock-free.
	ewmaNS atomic.Int64
}

// admit reports whether a request may enter, or the shed reason
// ("inflight" or "latency"). Admitted requests hold an in-flight slot
// until release.
func (sh *shedder) admit() (ok bool, reason string) {
	if sh.maxInflight > 0 && sh.inflight.Add(1) > sh.maxInflight {
		sh.inflight.Add(-1)
		return false, "inflight"
	}
	if sh.watermark > 0 && time.Duration(sh.ewmaNS.Load()) > sh.watermark {
		if sh.maxInflight > 0 {
			sh.inflight.Add(-1)
		}
		// Decay the average on every latency shed so the gate reopens by
		// itself instead of latching open forever once traffic stops.
		for {
			old := sh.ewmaNS.Load()
			if old <= 0 || sh.ewmaNS.CompareAndSwap(old, old-old/16) {
				break
			}
		}
		return false, "latency"
	}
	return true, ""
}

// release returns the in-flight slot and, for requests that should feed
// the latency signal, folds the observed duration into the EWMA.
func (sh *shedder) release(d time.Duration, observe bool) {
	if sh.maxInflight > 0 {
		sh.inflight.Add(-1)
	}
	if !observe || sh.watermark <= 0 {
		return
	}
	for {
		old := sh.ewmaNS.Load()
		nu := old - old/8 + int64(d)/8
		if sh.ewmaNS.CompareAndSwap(old, nu) {
			return
		}
	}
}

// shedMW rejects /v1/* requests with 503 + Retry-After once the server
// is past its in-flight cap or latency watermark — answering cheaply
// under overload instead of queueing toward collapse. Sheds are counted
// by reason.
func (sv *Server) shedMW(next http.Handler) http.Handler {
	if sv.shed == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		ok, reason := sv.shed.admit()
		if !ok {
			if m := metaFrom(r.Context()); m != nil {
				m.route = "loadshed"
			}
			sv.reg.Counter(obs.Metric(mLoadShed, "reason", reason)).Inc()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("serve: overloaded (%s); retry later", reason))
			return
		}
		start := time.Now()
		streaming := isStreaming(r)
		defer func() { sv.shed.release(time.Since(start), !streaming) }()
		next.ServeHTTP(w, r)
	})
}

// chaosMW injects HTTP-layer faults at site "http.<path>" when the
// server runs with a chaos spec. Drops panic with http.ErrAbortHandler
// (the one panic recoverMW re-raises) so the client sees a torn
// connection, not a tidy 500.
func (sv *Server) chaosMW(next http.Handler) http.Handler {
	if sv.inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := sv.inj.Eval("http." + r.URL.Path)
		switch f.Kind {
		case chaos.KindLatency:
			t := time.NewTimer(f.Sleep)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
			}
		case chaos.KindError, chaos.KindShortWrite:
			writeError(w, f.Err)
			return
		case chaos.KindPanic:
			panic(fmt.Sprintf("chaos: injected panic at http.%s", r.URL.Path))
		case chaos.KindDrop:
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

// chaosInferer wraps a model's batch executor so dispatch probes the
// injector at "batch.dispatch". Latency faults slow the batch; every
// other kind panics, which the queue worker's recover converts into
// ErrInferenceFailed for each request in the batch — exactly the organic
// failure mode, so the taxonomy, metrics, and circuit breaker all see
// injected faults through the same path as real ones.
type chaosInferer struct {
	batch.Inferer
	in *chaos.Injector
}

func (c chaosInferer) InferBatch(reqs []batch.Req) []batch.Prediction {
	f := c.in.Eval("batch.dispatch")
	switch f.Kind {
	case chaos.KindLatency:
		time.Sleep(f.Sleep)
	case chaos.KindError, chaos.KindPanic, chaos.KindShortWrite, chaos.KindDrop:
		panic(fmt.Sprintf("chaos: injected %s at batch.dispatch", f.Kind))
	}
	return c.Inferer.InferBatch(reqs)
}

// retryAfter renders a Retry-After header value: at least 1 second,
// rounded up.
func retryAfter(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
