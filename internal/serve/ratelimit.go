package serve

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"
)

// maxRateClients bounds the per-client bucket map; past it, buckets
// idle long enough to have fully refilled are pruned (they behave
// identically to a fresh bucket, so dropping them is invisible).
const maxRateClients = 4096

// limiter is a per-client token-bucket rate limiter. Each client key
// owns a bucket of `burst` tokens refilling at `rate` tokens/second;
// a request spends one token or is shed. It sits ABOVE the batch
// queue's queue-cap backpressure: overload is answered 429 before any
// work (JSON decode aside) is admitted.
type limiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter; rate must be > 0, burst < 1 is raised
// to 1 (a bucket that can never hold a whole token would shed forever).
func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &limiter{rate: rate, burst: b, now: now, buckets: make(map[string]*bucket)}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports false plus how long until the next token exists.
func (l *limiter) allow(key string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		l.pruneLocked(now)
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// pruneLocked evicts fully-refilled idle buckets once the map is at
// capacity. Caller holds l.mu.
func (l *limiter) pruneLocked(now time.Time) {
	if len(l.buckets) < maxRateClients {
		return
	}
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, k)
		}
	}
}

// rateLimitMW sheds /v1/* requests whose client is over its budget with
// 429 + Retry-After, before any handler work runs. Health probes,
// /metrics scrapes, and pprof stay exempt — an operator must be able to
// observe an overloaded daemon. A nil limiter (no -rate) disables the
// layer entirely.
func (sv *Server) rateLimitMW(next http.Handler) http.Handler {
	if sv.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		if ok, retry := sv.limiter.allow(clientKey(r)); !ok {
			if m := metaFrom(r.Context()); m != nil {
				m.route = "ratelimited"
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(retry.Seconds()))))
			writeErr(w, http.StatusTooManyRequests,
				fmt.Errorf("rate limit exceeded for client %q; retry after %v", clientKey(r), retry.Round(time.Millisecond)))
			return
		}
		next.ServeHTTP(w, r)
	})
}
