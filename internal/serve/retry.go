package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Backoff is a client-side retry policy for requests against an
// ehserved: transport errors and 429/503 responses — the two statuses
// the server's admission layers use for transient sheds — are retried
// with capped exponential backoff plus deterministic jitter, honoring
// any Retry-After the server sent. 4xx/5xx other than 429/503 are
// returned to the caller: the taxonomy marks them permanent.
type Backoff struct {
	// Base is the first retry delay (default 100ms).
	Base time.Duration
	// Cap bounds the delay growth (default 5s).
	Cap time.Duration
	// Attempts is the total number of tries including the first
	// (default 5).
	Attempts int
	// Seed drives the jitter stream, so a load generator's retry
	// schedule is reproducible run to run.
	Seed uint64
}

// Do issues the request built by newReq until it succeeds, fails
// permanently, or attempts are exhausted. newReq is called per attempt —
// bodies cannot be replayed, so the caller rebuilds the request each
// time. The final response (possibly a retryable status whose budget ran
// out) is returned with its body intact; intermediate retryable
// responses are drained and closed here.
func (b Backoff) Do(ctx context.Context, client *http.Client, newReq func() (*http.Request, error)) (*http.Response, error) {
	attempts := b.Attempts
	if attempts <= 0 {
		attempts = 5
	}
	if client == nil {
		client = http.DefaultClient
	}

	var lastErr error
	var lastWait time.Duration // the server's Retry-After hint, if any
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, b.delay(attempt, lastWait)); err != nil {
				return nil, err
			}
		}
		req, err := newReq()
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req.WithContext(ctx))
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			lastWait = 0
			continue
		}
		if !retryableStatus(resp.StatusCode) || attempt == attempts-1 {
			return resp, nil
		}
		lastErr = fmt.Errorf("serve: retryable status %d", resp.StatusCode)
		lastWait = retryAfterHint(resp)
		// Drain so the transport's connection is reusable for the retry.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
	}
	return nil, fmt.Errorf("serve: %d attempts exhausted: %w", attempts, lastErr)
}

// delay computes the wait before the given attempt: the server's
// Retry-After hint when present, otherwise capped exponential backoff
// with ±25% deterministic jitter.
func (b Backoff) delay(attempt int, hint time.Duration) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	capd := b.Cap
	if capd <= 0 {
		capd = 5 * time.Second
	}
	if hint > 0 {
		if hint > capd {
			hint = capd
		}
		return hint
	}
	d := base << (attempt - 1)
	if d > capd || d <= 0 {
		d = capd
	}
	// ±25% jitter from a splitmix64 stream over (seed, attempt): two
	// clients with different seeds desynchronize their retry storms, and
	// the same seed replays the same schedule.
	z := b.Seed + 0x9e3779b97f4a7c15*uint64(attempt)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / (1 << 53) // [0,1)
	return d - d/4 + time.Duration(frac*float64(d/2))
}

// retryableStatus reports the statuses the server taxonomy marks
// transient.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// retryAfterHint parses a response's Retry-After seconds, 0 when absent
// or unparsable.
func retryAfterHint(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
