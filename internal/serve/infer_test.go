package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
)

// uploadArtifact posts an artifact and returns its id.
func uploadArtifact(t *testing.T, base string, data []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/artifacts", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var st artifactStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// inferBody builds an infer request against an artifact with n valid
// 3072-value inputs.
func inferBody(artifact string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"artifact":%q,"inputs":[`, artifact)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		for j := 0; j < 3072; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.3f", float64((i+j)%7)/7)
		}
		b.WriteByte(']')
	}
	b.WriteString(`]}`)
	return b.String()
}

// postInfer posts a raw body to /v1/infer and returns status + decoded
// body.
func postInfer(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("status %d: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// TestServeInferEndToEnd uploads an artifact, infers against it (single
// input and batch), and checks the response shape and the /v1/stats
// accounting.
func TestServeInferEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, 1)
	id := uploadArtifact(t, ts.URL, encodeTestArtifact(t, "infer-e2e"))

	// Batch of 3.
	code, out := postInfer(t, ts.URL, inferBody(id, 3))
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	preds, ok := out["predictions"].([]any)
	if !ok || len(preds) != 3 {
		t.Fatalf("predictions = %v", out["predictions"])
	}
	if out["backend"] != "plan" || out["model"] != "artifact:"+id {
		t.Fatalf("backend/model = %v/%v", out["backend"], out["model"])
	}
	first := preds[0].(map[string]any)
	cls := int(first["class"].(float64))
	exits := int(out["exits"].(float64))
	if cls < 0 || cls >= 10 {
		t.Fatalf("class %d out of range", cls)
	}
	if exit := int(first["exit"].(float64)); exit != exits-1 {
		t.Fatalf("default exit %d, want deepest %d", exit, exits-1)
	}
	confs := first["exitConfidences"].([]any)
	if len(confs) != exits {
		t.Fatalf("%d exit confidences for %d exits", len(confs), exits)
	}

	// Single "input" form with an exit bound and a threshold.
	single := strings.Replace(inferBody(id, 1), `"inputs":[[`, `"input":[`, 1)
	single = strings.Replace(single, `]]}`, `],"exit":1,"threshold":0.000001}`, 1)
	code, out = postInfer(t, ts.URL, single)
	if code != http.StatusOK {
		t.Fatalf("single input: status %d: %v", code, out)
	}
	pred := out["predictions"].([]any)[0].(map[string]any)
	if exit := int(pred["exit"].(float64)); exit != 0 {
		t.Fatalf("tiny threshold took exit %d, want 0", exit)
	}

	// Stats reflect the served requests.
	st := getJSON(t, ts.URL+"/v1/stats")
	infer := st["infer"].(map[string]any)["artifact:"+id].(map[string]any)
	q := infer["queue"].(map[string]any)
	if served := q["served"].(float64); served != 4 {
		t.Fatalf("served = %v, want 4", served)
	}
	if infer["backend"] != "plan" || int(infer["inputLen"].(float64)) != 3072 {
		t.Fatalf("stats model block: %v", infer)
	}
	if st["totals"].(map[string]any)["served"].(float64) != 4 {
		t.Fatalf("totals: %v", st["totals"])
	}
}

// TestServeInferDeterministic: the same input must produce the same
// prediction whether it rides alone or in a batch, and across repeats —
// the serving counterpart of the plan parity gate.
func TestServeInferDeterministic(t *testing.T) {
	_, ts := newTestServer(t, 1)
	id := uploadArtifact(t, ts.URL, encodeTestArtifact(t, "infer-det"))

	_, solo := postInfer(t, ts.URL, inferBody(id, 1))
	for round := 0; round < 2; round++ {
		_, batched := postInfer(t, ts.URL, inferBody(id, 3))
		got := batched["predictions"].([]any)[0]
		want := solo["predictions"].([]any)[0]
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("round %d: batched prediction %s differs from solo %s", round, gj, wj)
		}
	}
}

// TestServeInferBackendSelection: a request naming a backend is served
// on that backend — its own target, keyed by (model, backend) — and the
// response echoes the canonical backend name. The packed-weight
// int8fast path answers with the same response shape as the default
// plan backend.
func TestServeInferBackendSelection(t *testing.T) {
	_, ts := newTestServer(t, 1)
	id := uploadArtifact(t, ts.URL, encodeTestArtifact(t, "infer-backend"))

	withBackend := func(body, backend string) string {
		return strings.Replace(body, `{"artifact"`, `{"backend":"`+backend+`","artifact"`, 1)
	}
	for _, backend := range []string{"int8fast", "int8"} {
		code, out := postInfer(t, ts.URL, withBackend(inferBody(id, 2), backend))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %v", backend, code, out)
		}
		if out["backend"] != backend {
			t.Fatalf("%s request answered by backend %v", backend, out["backend"])
		}
		if out["model"] != "artifact:"+id+"@"+backend {
			t.Fatalf("%s target key = %v", backend, out["model"])
		}
		preds := out["predictions"].([]any)
		if len(preds) != 2 {
			t.Fatalf("%s: predictions = %v", backend, out["predictions"])
		}
		p := preds[0].(map[string]any)
		if p["backend"] != backend {
			t.Fatalf("%s: prediction backend = %v", backend, p["backend"])
		}
		if cls := int(p["class"].(float64)); cls < 0 || cls >= 10 {
			t.Fatalf("%s: class %d out of range", backend, cls)
		}
	}
	// The float32 alias resolves to the canonical "plan" target.
	code, out := postInfer(t, ts.URL, withBackend(inferBody(id, 1), "float32"))
	if code != http.StatusOK || out["backend"] != "plan" || out["model"] != "artifact:"+id+"@plan" {
		t.Fatalf("float32 alias: status %d, backend %v, model %v", code, out["backend"], out["model"])
	}
	// Unknown backends are client errors.
	if code, _ := postInfer(t, ts.URL, withBackend(inferBody(id, 1), "cuda")); code != http.StatusBadRequest {
		t.Fatalf("unknown backend: status %d, want 400", code)
	}
}

// TestServeInferBadRequests is the satellite's table: every malformed
// payload must come back 400/404 with a JSON error — never a panic, a
// hang, or a 500.
func TestServeInferBadRequests(t *testing.T) {
	_, ts := newTestServer(t, 1)
	id := uploadArtifact(t, ts.URL, encodeTestArtifact(t, "infer-bad"))

	okInput := inferBody(id, 1)
	short := fmt.Sprintf(`{"artifact":%q,"input":[0.1,0.2,0.3]}`, id)
	nan := fmt.Sprintf(`{"artifact":%q,"inputs":[[%s]]}`, id, strings.TrimSuffix(strings.Repeat("0.1,", 3071), ",")+",NaN")

	cases := []struct {
		name string
		body string
		code int
	}{
		{"not json", `this is not json`, http.StatusBadRequest},
		{"unknown field", `{"artifact":"a1","frobnicate":1}`, http.StatusBadRequest},
		{"no model reference", `{"input":[0.1]}`, http.StatusBadRequest},
		{"both model references", `{"artifact":"a1","deployment":"x","input":[0.1]}`, http.StatusBadRequest},
		{"unknown artifact", `{"artifact":"a999","input":[0.1]}`, http.StatusNotFound},
		{"unknown deployment", `{"deployment":"no-such-deployment","input":[0.1]}`, http.StatusNotFound},
		{"empty batch", fmt.Sprintf(`{"artifact":%q,"inputs":[]}`, id), http.StatusBadRequest},
		{"no inputs at all", fmt.Sprintf(`{"artifact":%q}`, id), http.StatusBadRequest},
		{"both input and inputs", fmt.Sprintf(`{"artifact":%q,"input":[0.1],"inputs":[[0.1]]}`, id), http.StatusBadRequest},
		{"wrong shape", short, http.StatusBadRequest},
		{"NaN is not JSON", nan, http.StatusBadRequest},
		{"negative exit", strings.Replace(okInput, `]]}`, `]],"exit":-2}`, 1), http.StatusBadRequest},
		{"exit too deep", strings.Replace(okInput, `]]}`, `]],"exit":9}`, 1), http.StatusBadRequest},
		{"bad threshold", strings.Replace(okInput, `]]}`, `]],"threshold":2}`, 1), http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, out := postInfer(t, ts.URL, tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.code, out)
			continue
		}
		if msg, _ := out["error"].(string); msg == "" {
			t.Errorf("%s: no error message in %v", tc.name, out)
		}
	}

	// The daemon must still be healthy after the whole gauntlet.
	if code, out := postInfer(t, ts.URL, okInput); code != http.StatusOK {
		t.Fatalf("server unhealthy after bad requests: %d %v", code, out)
	}
}

// slowArtifact encodes a deployment whose single inference costs tens
// of milliseconds (fat convolutions at 64×64), so a tiny queue reliably
// congests while the worker is pinned on the first dispatch.
func slowArtifact(t *testing.T) []byte {
	t.Helper()
	b := ehinfer.NewNetworkBuilder(3, 64, 64, 10)
	b.Conv("c1", 48, 3, 1, 1).ReLU()
	b.Exit("e1", 0)
	b.Conv("c2", 48, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("e2", 0)
	net, err := b.Build(ehinfer.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ehinfer.NewDeployed(net, []float64{0.5, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ehinfer.EncodeDeployed(&buf, &ehinfer.DeploymentBundle{Name: "slow", Deployed: d}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeInferBackpressure shrinks the queue to force 429s under
// concurrent fire, and checks every response is either an answer or a
// clean 429.
func TestServeInferBackpressure(t *testing.T) {
	// Single-input requests against a cap-2 queue on a deliberately slow
	// model: the first request to reach the queue always lands (so
	// ok >= 1 is structural), and while the worker is pinned on the
	// first ~100ms dispatch the remaining clients hit the 2-slot channel
	// and shed. Multi-input requests would be all-or-nothing per request
	// and could 429 across the board under total overload.
	sv := New(WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))),
		WithBatchConfig(batch.Config{MaxBatch: 2, Window: time.Millisecond, QueueCap: 2}))
	ts := newHTTPServer(t, sv)
	id := uploadArtifact(t, ts, slowArtifact(t))

	const clients = 16
	vol := 3 * 64 * 64
	var in strings.Builder
	fmt.Fprintf(&in, `{"artifact":%q,"input":[`, id)
	for j := 0; j < vol; j++ {
		if j > 0 {
			in.WriteByte(',')
		}
		in.WriteString("0.25")
	}
	in.WriteString(`]}`)
	body := in.String()

	var wg sync.WaitGroup
	codes := make(chan int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts+"/v1/infer", "application/json", strings.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			defer resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
	if shed == 0 {
		t.Fatal("queue bound never produced a 429")
	}
	st := getJSON(t, ts+"/v1/stats")
	if st["totals"].(map[string]any)["rejected"].(float64) == 0 {
		t.Fatal("stats did not count rejections")
	}
}

// TestServeInferDeploymentAndDelete covers the registered-deployment
// reference and queue teardown on artifact delete.
func TestServeInferDeploymentAndDelete(t *testing.T) {
	_, ts := newTestServer(t, 1)

	// Register a deployment under a unique name and infer against it.
	session := ehinfer.NewSession(ehinfer.WithSeed(5))
	d, err := session.BuildDeployed(ehinfer.Fig1bNonuniform())
	if err != nil {
		t.Fatal(err)
	}
	if err := ehinfer.RegisterDeployment("serve-infer-test-dep", d); err != nil {
		t.Fatal(err)
	}
	body := strings.Replace(inferBody("X", 1), fmt.Sprintf(`"artifact":%q`, "X"), `"deployment":"serve-infer-test-dep"`, 1)
	code, out := postInfer(t, ts.URL, body)
	if code != http.StatusOK || out["model"] != "deployment:serve-infer-test-dep" {
		t.Fatalf("deployment infer: %d %v", code, out)
	}

	// Upload, infer, delete: the target disappears and later requests 404.
	id := uploadArtifact(t, ts.URL, encodeTestArtifact(t, "infer-del"))
	if code, _ := postInfer(t, ts.URL, inferBody(id, 1)); code != http.StatusOK {
		t.Fatalf("pre-delete infer failed: %d", code)
	}
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/artifacts/"+id, nil)
	if resp, err := http.DefaultClient.Do(delReq); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v %v", err, resp.Status)
	}
	if code, _ := postInfer(t, ts.URL, inferBody(id, 1)); code != http.StatusNotFound {
		t.Fatalf("post-delete infer: %d, want 404", code)
	}
}

// newHTTPServer wraps a prebuilt Server in httptest with cleanup.
func newHTTPServer(t *testing.T, sv *Server) string {
	t.Helper()
	ts := httptest.NewServer(sv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sv.Shutdown(ctx)
	})
	return ts.URL
}
