package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	ehinfer "repro"
)

// stepClock is a manually-advanced time source for breaker tests.
type stepClock struct{ t time.Time }

func (c *stepClock) now() time.Time             { return c.t }
func (c *stepClock) advance(d time.Duration)    { c.t = c.t.Add(d) }
func execFailure() error                        { return fmt.Errorf("%w: boom", ehinfer.ErrInferenceFailed) }
func mustAllow(t *testing.T, b *breaker, i int) { t.Helper(); allowIs(t, b, true, i) }
func mustDeny(t *testing.T, b *breaker, i int)  { t.Helper(); allowIs(t, b, false, i) }
func allowIs(t *testing.T, b *breaker, want bool, i int) {
	t.Helper()
	if ok, _ := b.Allow(); ok != want {
		t.Fatalf("step %d: Allow() = %v, want %v (state %s)", i, ok, want, b.State())
	}
}

// TestBreakerOpensAfterThreshold: consecutive execution failures trip
// the circuit; unrelated errors and successes reset the streak.
func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := &stepClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := newBreaker(3, 10*time.Second, clk.now, func(to string) { transitions = append(transitions, to) })

	for i := 0; i < 2; i++ {
		mustAllow(t, b, i)
		b.Record(execFailure())
	}
	// A success interrupts the streak.
	mustAllow(t, b, 2)
	b.Record(nil)
	for i := 0; i < 2; i++ {
		mustAllow(t, b, 3+i)
		b.Record(execFailure())
	}
	// Neutral errors (client gone, bad input) must not count.
	mustAllow(t, b, 5)
	b.Record(errors.New("client went away"))
	if b.State() != circuitClosed {
		t.Fatalf("still closed expected, got %s", b.State())
	}
	mustAllow(t, b, 6)
	b.Record(execFailure()) // third consecutive failure
	if b.State() != circuitOpen {
		t.Fatalf("state = %s, want open", b.State())
	}
	ok, wait := b.Allow()
	if ok || wait <= 0 || wait > 10*time.Second {
		t.Fatalf("open circuit Allow = (%v, %v)", ok, wait)
	}
	if len(transitions) != 1 || transitions[0] != circuitOpen {
		t.Fatalf("transitions = %v", transitions)
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe runs;
// its success closes the circuit, its failure re-opens it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &stepClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, 10*time.Second, clk.now, nil)

	mustAllow(t, b, 0)
	b.Record(execFailure())
	mustDeny(t, b, 1)

	clk.advance(11 * time.Second)
	mustAllow(t, b, 2) // the probe
	if b.State() != circuitHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	mustDeny(t, b, 3) // single-flight: no second probe while one runs
	b.Record(execFailure())
	if b.State() != circuitOpen {
		t.Fatalf("failed probe left state %s, want open", b.State())
	}

	clk.advance(11 * time.Second)
	mustAllow(t, b, 4)
	b.Record(nil)
	if b.State() != circuitClosed {
		t.Fatalf("successful probe left state %s, want closed", b.State())
	}
	mustAllow(t, b, 5)
}

// TestBreakerNeutralProbeReleased: a probe that ends inconclusively
// (client canceled) must release the probe slot instead of latching the
// circuit half-open forever.
func TestBreakerNeutralProbeReleased(t *testing.T) {
	clk := &stepClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Second, clk.now, nil)
	mustAllow(t, b, 0)
	b.Record(execFailure())
	clk.advance(2 * time.Second)
	mustAllow(t, b, 1) // probe admitted
	b.Record(errors.New("context canceled"))
	if b.State() != circuitHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	mustAllow(t, b, 2) // slot released: next request probes
	b.Record(nil)
	if b.State() != circuitClosed {
		t.Fatalf("state = %s, want closed", b.State())
	}
}
