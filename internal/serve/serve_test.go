package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ehinfer "repro"
)

// fastSpec is a 4-point grid (2 exits × 2 seeds) that runs in tens of
// milliseconds.
const fastSpec = `{
	"name": "e2e",
	"baseSeed": 21,
	"events": 20,
	"traces": [{"name": "s", "kind": "solar", "seconds": 900, "peakPower": 0.05}],
	"exits": [{"name": "q", "mode": 0, "warmup": 2}, {"name": "static", "mode": 1}],
	"storages": [{"name": "3mJ", "storage": {"CapacityMJ": 3, "TurnOnMJ": 0.5, "BrownOutMJ": 0.05, "ChargeEfficiency": 0.9, "LeakMWPerS": 0.0002}}],
	"seeds": [1, 2]
}`

// slowSpec has enough points and warm-up episodes (hundreds of
// simulated days in total) that cancellation reliably lands mid-run on a
// 1-worker session.
const slowSpec = `{
	"name": "slow",
	"events": 200,
	"traces": [{"name": "s", "kind": "solar", "seconds": 86400, "peakPower": 0.05}],
	"exits": [{"name": "q", "mode": 0, "warmup": 200}],
	"seeds": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]
}`

func newTestServer(t *testing.T, workers int) (*Server, *httptest.Server) {
	t.Helper()
	sv := New(WithSession(ehinfer.NewSession(ehinfer.WithWorkers(workers))))
	ts := httptest.NewServer(sv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sv.Shutdown(ctx)
	})
	return sv, ts
}

func postJSON(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		t.Fatalf("POST %s: %d %v", url, resp.StatusCode, out)
	}
	return out
}

func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/grids/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, base, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State != StateRunning && want != st.State {
			t.Fatalf("job %s reached terminal state %q while waiting for %q (err: %s)", id, st.State, want, st.Err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return JobStatus{}
}

// TestServeGridEndToEnd drives the full submit → poll → fetch flow and
// pins that the served result bytes equal a direct Session run of the
// same spec — the HTTP layer adds transport, not semantics.
func TestServeGridEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, 2)

	sub := postJSON(t, ts.URL+"/v1/grids", fastSpec)
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", sub)
	}
	if pts, _ := sub["points"].(float64); pts != 4 {
		t.Fatalf("want 4 points, got %v", sub["points"])
	}

	st := waitState(t, ts.URL, id, StateDone)
	if st.Completed != 4 || st.Total != 4 {
		t.Fatalf("done job reports %d/%d", st.Completed, st.Total)
	}
	if st.Workers != 2 {
		t.Fatalf("resolved workers not surfaced: %+v", st)
	}
	if st.PointErrs != 0 {
		t.Fatalf("point errors: %+v", st)
	}

	// Aggregated results: deterministic bytes, equal to a direct run.
	resp, err := http.Get(ts.URL + "/v1/grids/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	if _, err := bufio.NewReader(resp.Body).WriteTo(body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %d %s", resp.StatusCode, body.String())
	}

	var spec ehinfer.GridSpec
	if err := json.Unmarshal([]byte(fastSpec), &spec); err != nil {
		t.Fatal(err)
	}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ehinfer.NewSession(ehinfer.WithWorkers(1)).RunGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := direct.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if body.String() != string(directJSON) {
		t.Fatal("served result bytes differ from a direct Session run of the same spec")
	}

	// NDJSON view after completion: one line per point plus a summary.
	resp, err = http.Get(ts.URL + "/v1/grids/" + id + "/results?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 {
		t.Fatalf("want 4 point lines + 1 summary, got %d", len(lines))
	}
	var summary map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatal(err)
	}
	if summary["done"] != true || summary["state"] != string(StateDone) {
		t.Fatalf("bad summary line: %v", summary)
	}
}

// TestServeStreamingSubmitCancelAbortsWorkers pins the acceptance
// criterion: canceling the request context of a streaming submission
// aborts the grid's workers promptly.
func TestServeStreamingSubmitCancelAbortsWorkers(t *testing.T) {
	_, ts := newTestServer(t, 1)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/grids?stream=1", strings.NewReader(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the first streamed point, then hang up.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	start := time.Now()
	cancel()

	st := waitState(t, ts.URL, "g1", StateCanceled)
	if st.Completed >= st.Total {
		t.Fatalf("grid finished despite cancellation: %+v", st)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("cancellation took %v — not prompt", elapsed)
	}
}

// TestServeDeleteCancelsJob: DELETE aborts an async job mid-run.
func TestServeDeleteCancelsJob(t *testing.T) {
	_, ts := newTestServer(t, 1)

	sub := postJSON(t, ts.URL+"/v1/grids", slowSpec)
	id := sub["id"].(string)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/grids/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	st := waitState(t, ts.URL, id, StateCanceled)
	if st.Completed >= st.Total {
		t.Fatalf("grid finished despite DELETE: %+v", st)
	}
}

func TestServeRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, 1)
	for _, body := range []string{
		`{not json`,
		`{"devices": ["Z80"]}`,
		`{"unknownField": 1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: want 400, got %d", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/grids/g999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: want 404, got %d", resp.StatusCode)
	}
}

// TestServeResultsConflictWhileRunning: the aggregated-results endpoint
// refuses mid-run fetches with 409 and points at the streaming view.
func TestServeResultsConflictWhileRunning(t *testing.T) {
	_, ts := newTestServer(t, 1)
	sub := postJSON(t, ts.URL+"/v1/grids", slowSpec)
	id := sub["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/grids/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mid-run results fetch: want 409, got %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/grids/"+id, nil)
	if dresp, err := http.DefaultClient.Do(req); err == nil {
		dresp.Body.Close()
	}
	waitState(t, ts.URL, id, StateCanceled)
}

// TestServeShutdownCancelsJobs: graceful shutdown aborts running grids
// and drains within the deadline.
func TestServeShutdownCancelsJobs(t *testing.T) {
	sv := New(WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))))
	ts := httptest.NewServer(sv)
	defer ts.Close()

	sub := postJSON(t, ts.URL+"/v1/grids", slowSpec)
	id := sub["id"].(string)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	j := sv.lookup(id)
	if j == nil {
		t.Fatal("job vanished")
	}
	if _, state := j.finalResult(); state != StateCanceled && state != StateDone {
		t.Fatalf("after shutdown job is %q", state)
	}

	// New submissions are refused once shut down.
	resp, err := http.Post(ts.URL+"/v1/grids", "application/json", strings.NewReader(fastSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: want 503, got %d", resp.StatusCode)
	}
}
