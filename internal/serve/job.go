// Package serve is the first serving surface of the system: an HTTP/JSON
// API that accepts declarative grid specs (exper.GridSpec), executes them
// on a shared ehinfer.Session, and exposes status, per-point NDJSON
// streaming, and aggregated results. It is the layer cmd/ehserved wraps
// in a daemon.
//
// The server is crash-safe when built with WithStore: artifacts live in
// a durable atomic-write store and grid jobs checkpoint every completed
// point to a journal, so a process killed mid-job resumes it on the
// next boot and produces a final result document byte-identical to an
// uninterrupted run's. WithRequestTimeout, WithLoadShed, and
// WithBreaker add per-request deadlines, overload shedding, and a
// per-model circuit breaker; WithChaos threads a deterministic fault
// injector through the request path for drills. Backoff is the matching
// retry client for the 429/503 + Retry-After responses those gates emit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	ehinfer "repro"
	"repro/internal/store"
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// job is one submitted grid run. Workers append completed points under
// mu and broadcast on cond; streaming handlers follow the results slice
// like a tail.
//
// With a data directory configured, the job checkpoints every completed
// point to its store journal before acknowledging it to streamers, and
// retires the journal when the run ends: Finalize (durable final
// document) on success, Abort on explicit cancel or failure, plain Close
// on a shutdown mid-run — the journal stays, and the next boot resumes
// the job with the checkpointed points restored verbatim.
type job struct {
	id     string
	name   string
	grid   *ehinfer.ExperimentGrid // nil for jobs restored already-finished
	total  int
	cancel context.CancelFunc
	log    *slog.Logger

	// Crash-safety wiring; all nil/empty for an in-memory-only job.
	// journal is touched only by the run goroutine after construction.
	journal   *store.JobJournal
	restored  []ehinfer.ExperimentResult       // journal-order results to pre-stream
	completed map[int]ehinfer.ExperimentResult // engine resume set, by point index
	aborted   atomic.Bool                      // set by DELETE so retire aborts, not keeps

	mu        sync.Mutex
	cond      *sync.Cond
	state     JobState
	results   []ehinfer.ExperimentResult // completion order
	final     *ehinfer.GridResult
	finalJSON []byte // deterministic final document, once finished
	pointErrs int    // only used when final is nil (restored finished jobs)
	errMsg    string
	started   time.Time
	elapsed   time.Duration
}

func newJob(id string, grid *ehinfer.ExperimentGrid, cancel context.CancelFunc) *job {
	j := &job{
		id:      id,
		grid:    grid,
		cancel:  cancel,
		log:     slog.New(slog.DiscardHandler),
		state:   StateRunning,
		started: time.Now(),
	}
	if grid != nil {
		j.name = grid.Name
		j.total = grid.Size()
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// run drives the grid to completion on the session, feeding the
// streaming side as points finish. It blocks until the run ends.
func (j *job) run(ctx context.Context, session *ehinfer.Session) {
	if len(j.restored) > 0 {
		// Checkpointed points stream first, in their original completion
		// order, so a follower attached across the restart sees the same
		// sequence an uninterrupted run would have produced.
		j.mu.Lock()
		j.results = append(j.results, j.restored...)
		j.cond.Broadcast()
		j.mu.Unlock()
	}
	gr := session.ResumeGrid(ctx, j.grid, j.completed) // nil completed == plain start
	for res := range gr.Results() {
		// Durability before acknowledgment: the point lands in the journal
		// before any streamer (or a post-crash resume) can observe it.
		j.checkpoint(ctx, res)
		j.mu.Lock()
		j.results = append(j.results, res)
		j.cond.Broadcast()
		j.mu.Unlock()
	}
	final, err := gr.Wait()

	var finalJSON []byte
	if err == nil && final != nil {
		if data, jerr := final.JSON(); jerr == nil {
			finalJSON = data
		} else {
			err = jerr
		}
	}

	j.mu.Lock()
	j.final = final
	j.finalJSON = finalJSON
	j.elapsed = time.Since(j.started)
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Classify by the run's own error, not ctx.Err(): a run that
		// failed for a real reason in the same instant the context died
		// must surface the failure, not masquerade as canceled.
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	j.cond.Broadcast()
	j.mu.Unlock()

	j.retireJournal(state, finalJSON)
}

// checkpoint journals one completed point. A failing journal (disk
// fault) degrades the job to in-memory-only: the run continues, the
// failure is logged, and the stale journal is abandoned — at worst the
// next boot re-runs points that had completed, which the determinism
// contract makes harmless.
//
// Only results the determinism contract can reproduce are journaled:
// skipped points, and error results produced while the run's context was
// already dead (a point torn mid-flight by shutdown reports "context
// canceled" — not the point's own outcome), must be re-run on resume,
// not restored verbatim, or the resumed final document diverges from an
// uninterrupted run's.
func (j *job) checkpoint(ctx context.Context, res ehinfer.ExperimentResult) {
	if j.journal == nil || res.Skipped || (res.Err != "" && ctx.Err() != nil) {
		return
	}
	line, err := json.Marshal(res)
	if err == nil {
		err = j.journal.Append(line)
	}
	if err != nil {
		j.log.Error("job checkpoint failed; continuing without durability", "job", j.id, "err", err)
		_ = j.journal.Close()
		j.journal = nil
	}
}

// retireJournal resolves the journal against the run's outcome. Called
// once, from the run goroutine, after the terminal state is visible.
func (j *job) retireJournal(state JobState, finalJSON []byte) {
	if j.journal == nil {
		return
	}
	var err error
	switch {
	case state == StateDone && finalJSON != nil:
		err = j.journal.Finalize(finalJSON)
	case j.aborted.Load() || state == StateFailed:
		// Explicit cancel or a real failure: resuming at next boot would
		// re-run something the operator killed or a spec that fails.
		err = j.journal.Abort()
	default:
		// Canceled by shutdown: keep the journal so the next boot resumes.
		err = j.journal.Close()
	}
	if err != nil {
		j.log.Error("retiring job journal failed", "job", j.id, "state", string(state), "err", err)
	}
	j.journal = nil
}

// snapshot returns the job's status under lock.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Name:      j.name,
		State:     j.state,
		Completed: len(j.results),
		Total:     j.total,
		Err:       j.errMsg,
	}
	if j.state == StateRunning {
		st.ElapsedMS = time.Since(j.started).Milliseconds()
	} else {
		st.ElapsedMS = j.elapsed.Milliseconds()
		if j.final != nil {
			st.Workers = j.final.Workers
			st.PointErrs = len(j.final.Errs())
		} else {
			st.PointErrs = j.pointErrs
		}
	}
	return st
}

// next blocks until the job has more than n streamed results, the run
// leaves StateRunning, or ctx is canceled. It returns the new results
// beyond n and the job's current state.
func (j *job) next(ctx context.Context, n int) ([]ehinfer.ExperimentResult, JobState) {
	// cond.Wait cannot watch a context, so a canceled ctx wakes all
	// waiters and each re-checks its own exit condition.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.results) <= n && j.state == StateRunning && ctx.Err() == nil {
		j.cond.Wait()
	}
	batch := append([]ehinfer.ExperimentResult(nil), j.results[n:]...)
	return batch, j.state
}

// finalResult returns the completed run's GridResult, or nil while the
// job is still running.
func (j *job) finalResult() (*ehinfer.GridResult, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.final, j.state
}

// finalBytes returns the finished run's deterministic JSON document, or
// nil if the job has none (still running, or canceled/failed before one
// was produced).
func (j *job) finalBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finalJSON
}

// JobStatus is the wire form of a job's state (GET /v1/grids/{id}).
type JobStatus struct {
	ID        string   `json:"id"`
	Name      string   `json:"name"`
	State     JobState `json:"state"`
	Completed int      `json:"completed"`
	Total     int      `json:"total"`
	// Workers is the resolved pool size, known once the run finished.
	Workers int `json:"workers,omitempty"`
	// PointErrs counts failed points in a finished run.
	PointErrs int    `json:"pointErrs,omitempty"`
	ElapsedMS int64  `json:"elapsedMs"`
	Err       string `json:"err,omitempty"`
}
