// Package serve is the first serving surface of the system: an HTTP/JSON
// API that accepts declarative grid specs (exper.GridSpec), executes them
// on a shared ehinfer.Session, and exposes status, per-point NDJSON
// streaming, and aggregated results. It is the layer cmd/ehserved wraps
// in a daemon.
package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	ehinfer "repro"
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// job is one submitted grid run. Workers append completed points under
// mu and broadcast on cond; streaming handlers follow the results slice
// like a tail.
type job struct {
	id     string
	grid   *ehinfer.ExperimentGrid
	total  int
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	state   JobState
	results []ehinfer.ExperimentResult // completion order
	final   *ehinfer.GridResult
	errMsg  string
	started time.Time
	elapsed time.Duration
}

func newJob(id string, grid *ehinfer.ExperimentGrid, cancel context.CancelFunc) *job {
	j := &job{
		id:      id,
		grid:    grid,
		total:   grid.Size(),
		cancel:  cancel,
		state:   StateRunning,
		started: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// run drives the grid to completion on the session, feeding the
// streaming side as points finish. It blocks until the run ends.
func (j *job) run(ctx context.Context, session *ehinfer.Session) {
	gr := session.StartGrid(ctx, j.grid)
	for res := range gr.Results() {
		j.mu.Lock()
		j.results = append(j.results, res)
		j.cond.Broadcast()
		j.mu.Unlock()
	}
	final, err := gr.Wait()

	j.mu.Lock()
	defer func() {
		j.cond.Broadcast()
		j.mu.Unlock()
	}()
	j.final = final
	j.elapsed = time.Since(j.started)
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Classify by the run's own error, not ctx.Err(): a run that
		// failed for a real reason in the same instant the context died
		// must surface the failure, not masquerade as canceled.
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
}

// snapshot returns the job's status under lock.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Name:      j.grid.Name,
		State:     j.state,
		Completed: len(j.results),
		Total:     j.total,
		Err:       j.errMsg,
	}
	if j.state == StateRunning {
		st.ElapsedMS = time.Since(j.started).Milliseconds()
	} else {
		st.ElapsedMS = j.elapsed.Milliseconds()
		if j.final != nil {
			st.Workers = j.final.Workers
			st.PointErrs = len(j.final.Errs())
		}
	}
	return st
}

// next blocks until the job has more than n streamed results, the run
// leaves StateRunning, or ctx is canceled. It returns the new results
// beyond n and the job's current state.
func (j *job) next(ctx context.Context, n int) ([]ehinfer.ExperimentResult, JobState) {
	// cond.Wait cannot watch a context, so a canceled ctx wakes all
	// waiters and each re-checks its own exit condition.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.results) <= n && j.state == StateRunning && ctx.Err() == nil {
		j.cond.Wait()
	}
	batch := append([]ehinfer.ExperimentResult(nil), j.results[n:]...)
	return batch, j.state
}

// finalResult returns the completed run's GridResult, or nil while the
// job is still running.
func (j *job) finalResult() (*ehinfer.GridResult, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.final, j.state
}

// JobStatus is the wire form of a job's state (GET /v1/grids/{id}).
type JobStatus struct {
	ID        string   `json:"id"`
	Name      string   `json:"name"`
	State     JobState `json:"state"`
	Completed int      `json:"completed"`
	Total     int      `json:"total"`
	// Workers is the resolved pool size, known once the run finished.
	Workers int `json:"workers,omitempty"`
	// PointErrs counts failed points in a finished run.
	PointErrs int    `json:"pointErrs,omitempty"`
	ElapsedMS int64  `json:"elapsedMs"`
	Err       string `json:"err,omitempty"`
}
