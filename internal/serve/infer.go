package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/exper"
	"repro/internal/obs"
)

// Online-inference bounds: a request carries at most maxInferInputs
// images, and its JSON body at most maxInferBytes.
const (
	maxInferInputs = 64
	maxInferBytes  = 16 << 20
)

// inferTarget is one served model: the resolved executor plus its
// micro-batching queue and (when armed) its circuit breaker. Targets
// are created lazily on first use and keyed by the request's
// artifact/deployment reference.
type inferTarget struct {
	key   string
	model *batch.Model
	queue *batch.Queue
	brk   *breaker // nil unless WithBreaker armed one
}

// inferRequest is the POST /v1/infer wire form. Exactly one of
// Artifact/Deployment selects the model, and exactly one of
// Input/Inputs carries the image(s).
type inferRequest struct {
	// Artifact references an uploaded artifact by id (e.g. "a1");
	// Deployment references a registered deployment by name.
	Artifact   string `json:"artifact,omitempty"`
	Deployment string `json:"deployment,omitempty"`
	// Input is one flattened CHW image; Inputs a small batch of them.
	Input  []float32   `json:"input,omitempty"`
	Inputs [][]float32 `json:"inputs,omitempty"`
	// Exit bounds inference depth (default: deepest exit); Threshold
	// enables anytime early exit (see batch.Options).
	Exit      *int    `json:"exit,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Backend, when set, selects the inference backend for this request
	// ("plan"/"float32", "legacy", "int8", "int8fast"); unset uses the
	// server session's default. Each (model, backend) pair is its own
	// served target with its own queue, breaker, and metrics.
	Backend string `json:"backend,omitempty"`
}

// inferResponse is the POST /v1/infer reply.
type inferResponse struct {
	Model       string             `json:"model"`
	Backend     string             `json:"backend"`
	Exits       int                `json:"exits"`
	Predictions []batch.Prediction `json:"predictions"`
}

// handleInfer answers online inference requests against an uploaded
// artifact or a registered deployment. Failures are wrapped in the
// exported error taxonomy and mapped to HTTP codes by the one
// errorCodes table; panics are the recovery middleware's problem.
func (sv *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()

	var req inferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInferBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: bad infer request: %v", ehinfer.ErrBadInput, err))
		return
	}

	inputs := req.Inputs
	switch {
	case req.Input != nil && req.Inputs != nil:
		writeError(w, fmt.Errorf(`%w: use "input" or "inputs", not both`, ehinfer.ErrBadInput))
		return
	case req.Input != nil:
		inputs = [][]float32{req.Input}
	case len(inputs) == 0:
		writeError(w, fmt.Errorf(`%w: empty batch: provide "input" or a non-empty "inputs"`, ehinfer.ErrBadInput))
		return
	}
	if len(inputs) > maxInferInputs {
		writeError(w, fmt.Errorf("%w: batch of %d inputs exceeds the per-request limit of %d",
			ehinfer.ErrBadInput, len(inputs), maxInferInputs))
		return
	}

	tgt, err := sv.inferTargetFor(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	if tgt.brk != nil {
		if ok, wait := tgt.brk.Allow(); !ok {
			w.Header().Set("Retry-After", retryAfter(wait))
			writeError(w, fmt.Errorf("%w: model %s failing repeatedly; backing off", ErrCircuitOpen, tgt.key))
			return
		}
	}
	// From here on every exit path feeds the breaker: nil on success,
	// the taxonomy error otherwise. Neutral errors (bad input, client
	// gone) do not move the failure streak but do release a half-open
	// probe slot.
	var outcome error
	defer func() {
		if tgt.brk != nil {
			tgt.brk.Record(outcome)
		}
	}()
	fail := func(err error) {
		outcome = err
		writeError(w, err)
	}

	exit := -1
	if req.Exit != nil {
		exit = *req.Exit
		if exit < 0 {
			fail(fmt.Errorf("%w: exit %d invalid: omit the field for the deepest exit",
				ehinfer.ErrBadInput, exit))
			return
		}
	}
	reqs := make([]batch.Req, len(inputs))
	for i, in := range inputs {
		reqs[i] = batch.Req{Input: in, Options: batch.Options{Exit: exit, Threshold: req.Threshold}}
		if err := tgt.model.Validate(&reqs[i]); err != nil {
			fail(fmt.Errorf("input %d: %w", i, err))
			return
		}
	}

	// Enqueue the whole request before waiting, so all its inputs can
	// share one micro-batching window.
	tickets := make([]*batch.Ticket, len(reqs))
	for i := range reqs {
		t, err := tgt.queue.Enqueue(r.Context(), reqs[i])
		if err != nil {
			if errors.Is(err, batch.ErrQueueFull) {
				err = fmt.Errorf("%w: inference queue for %s", err, tgt.key)
			}
			fail(err)
			return // abandoned tickets carry r.Context() and are skipped once it ends
		}
		tickets[i] = t
	}
	preds := make([]batch.Prediction, len(tickets))
	for i, t := range tickets {
		p, err := t.Wait(r.Context())
		if err != nil {
			// ErrInferenceFailed (a recovered execution panic) maps to a
			// permanent 500 via the taxonomy table — a 503 would invite
			// the client to retry the same poison request. Everything
			// else here is the client leaving or shutdown racing the
			// wait: transient, 503.
			fail(err)
			return
		}
		preds[i] = p
	}
	elapsed := time.Since(start)
	for _, p := range preds {
		sv.noteExit(tgt.key, p.Exit, elapsed)
	}
	writeJSON(w, http.StatusOK, inferResponse{
		Model:       tgt.key,
		Backend:     tgt.model.Backend().String(),
		Exits:       tgt.model.NumExits(),
		Predictions: preds,
	})
}

// inferTargetFor resolves the request's model reference to a served
// target, creating its model and queue on first use. Failures carry
// taxonomy sentinels: ErrBadInput for reference shape, ErrModelNotFound
// for unknown references, batch.ErrClosed during shutdown.
func (sv *Server) inferTargetFor(req *inferRequest) (*inferTarget, error) {
	switch {
	case req.Artifact != "" && req.Deployment != "":
		return nil, fmt.Errorf(`%w: use "artifact" or "deployment", not both`, ehinfer.ErrBadInput)
	case req.Artifact == "" && req.Deployment == "":
		return nil, fmt.Errorf(`%w: missing model reference: set "artifact" (uploaded id) or "deployment" (registered name)`,
			ehinfer.ErrBadInput)
	}

	// The request's backend choice (session default when unset) is part
	// of the target identity: the same artifact served on two backends is
	// two targets, each with its own compiled plan, queue, and breaker.
	backend := sv.session.Backend()
	if req.Backend != "" {
		b, err := ehinfer.ParseBackend(req.Backend)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ehinfer.ErrBadInput, err)
		}
		backend = b
	}

	key := "deployment:" + req.Deployment
	if req.Artifact != "" {
		key = artifactPrefix + req.Artifact
	}
	if req.Backend != "" {
		// Canonical name, so "float32" and "plan" share one target; the
		// no-backend key stays unchanged for existing dashboards.
		key += "@" + backend.Resolve().String()
	}

	// Resolve the deployment under the server lock, but build the model
	// outside it — plan compilation is too slow to stall every other
	// endpoint behind sv.mu.
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil, fmt.Errorf("%w: server is shutting down", batch.ErrClosed)
	}
	if tgt := sv.infers[key]; tgt != nil {
		sv.mu.Unlock()
		return tgt, nil
	}
	var d *ehinfer.Deployed
	if req.Artifact != "" {
		if art := sv.artifacts[req.Artifact]; art != nil {
			d = art.bundle.Deployed
		}
	}
	sv.mu.Unlock()

	if d == nil {
		if req.Artifact != "" {
			return nil, fmt.Errorf("%w: unknown artifact %q", ehinfer.ErrModelNotFound, req.Artifact)
		}
		dep, err := exper.LookupDeployment(req.Deployment)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ehinfer.ErrModelNotFound, err)
		}
		d = dep
	}
	model, err := batch.NewModel(d, backend, sv.batchCfg.MaxBatch)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ehinfer.ErrBadInput, err)
	}

	// First writer wins: a racing request may have built the same target
	// meanwhile (or deleted the artifact — then serving this request
	// from the resolved deployment is still correct, but the target must
	// not be re-registered past its teardown).
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return nil, fmt.Errorf("%w: server is shutting down", batch.ErrClosed)
	}
	if tgt := sv.infers[key]; tgt != nil {
		return tgt, nil
	}
	if req.Artifact != "" && sv.artifacts[req.Artifact] == nil {
		return nil, fmt.Errorf("%w: unknown artifact %q", ehinfer.ErrModelNotFound, req.Artifact)
	}
	cfg := sv.batchCfg
	cfg.Metrics = sv.queueMetrics(key)
	// The chaos seam: dispatch goes through the injector when one is
	// armed, so injected faults surface through the same recover →
	// ErrInferenceFailed path as organic execution panics.
	var inf batch.Inferer = model
	if sv.inj != nil {
		inf = chaosInferer{Inferer: model, in: sv.inj}
	}
	tgt := &inferTarget{key: key, model: model, queue: batch.NewQueue(inf, cfg)}
	if sv.brkThreshold > 0 {
		tgt.brk = newBreaker(sv.brkThreshold, sv.brkCooldown, sv.clock, sv.breakerHook(key))
		sv.reg.Gauge(obs.Metric(mCircuitState, "model", key)).Set(stateValue(circuitClosed))
	}
	sv.infers[key] = tgt
	return tgt, nil
}

// breakerHook observes one model's circuit transitions on the state
// gauge and transition counter. Called under the breaker's lock, so it
// only bumps registry instruments.
func (sv *Server) breakerHook(key string) func(to string) {
	return func(to string) {
		sv.reg.Gauge(obs.Metric(mCircuitState, "model", key)).Set(stateValue(to))
		sv.reg.Counter(obs.Metric(mCircuitTransitions, "model", key, "to", to)).Inc()
	}
}

// dropInferLocked removes a target (artifact deleted, shutdown) and
// closes its queue in the background with a drain deadline. The dead
// queue's counters live in the server registry keyed by model, so they
// survive the teardown — /v1/stats totals and /metrics stay monotonic
// with no extra bookkeeping here. Caller holds sv.mu.
func (sv *Server) dropInferLocked(key string) {
	tgt := sv.infers[key]
	if tgt == nil {
		return
	}
	delete(sv.infers, key)
	sv.wg.Add(1)
	go func() {
		defer sv.wg.Done()
		// Detach from baseCtx's cancellation but keep its values: the
		// drain must finish flushing in-flight requests even while
		// Shutdown is tearing the server down.
		ctx, cancel := context.WithTimeout(context.WithoutCancel(sv.baseCtx), 30*time.Second)
		defer cancel()
		_ = tgt.queue.Close(ctx)
	}()
}

// inferStatus is one target's entry in GET /v1/stats.
type inferStatus struct {
	Model    string      `json:"model"`
	Backend  string      `json:"backend"`
	Exits    int         `json:"exits"`
	InputLen int         `json:"inputLen"`
	MaxBatch int         `json:"maxBatch"`
	Queue    batch.Stats `json:"queue"`
}
