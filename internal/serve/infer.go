package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/exper"
)

// Online-inference bounds: a request carries at most maxInferInputs
// images, and its JSON body at most maxInferBytes.
const (
	maxInferInputs = 64
	maxInferBytes  = 16 << 20
)

// inferTarget is one served model: the resolved executor plus its
// micro-batching queue. Targets are created lazily on first use and
// keyed by the request's artifact/deployment reference.
type inferTarget struct {
	key   string
	model *batch.Model
	queue *batch.Queue
}

// inferRequest is the POST /v1/infer wire form. Exactly one of
// Artifact/Deployment selects the model, and exactly one of
// Input/Inputs carries the image(s).
type inferRequest struct {
	// Artifact references an uploaded artifact by id (e.g. "a1");
	// Deployment references a registered deployment by name.
	Artifact   string `json:"artifact,omitempty"`
	Deployment string `json:"deployment,omitempty"`
	// Input is one flattened CHW image; Inputs a small batch of them.
	Input  []float32   `json:"input,omitempty"`
	Inputs [][]float32 `json:"inputs,omitempty"`
	// Exit bounds inference depth (default: deepest exit); Threshold
	// enables anytime early exit (see batch.Options).
	Exit      *int    `json:"exit,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// inferResponse is the POST /v1/infer reply.
type inferResponse struct {
	Model       string             `json:"model"`
	Backend     string             `json:"backend"`
	Exits       int                `json:"exits"`
	Predictions []batch.Prediction `json:"predictions"`
}

// handleInfer answers online inference requests against an uploaded
// artifact or a registered deployment. Malformed payloads are client
// errors (400/404/429), and a recover guard converts any panic that
// slips through into a 500 — a bad request must never take the daemon
// down.
func (sv *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			// The guard of last resort: validation is supposed to make
			// this unreachable, but a panic here must stay one request's
			// problem, not the daemon's.
			debug.PrintStack()
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("infer: internal error: %v", rec))
		}
	}()

	var req inferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInferBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad infer request: %w", err))
		return
	}

	inputs := req.Inputs
	switch {
	case req.Input != nil && req.Inputs != nil:
		writeErr(w, http.StatusBadRequest, fmt.Errorf(`use "input" or "inputs", not both`))
		return
	case req.Input != nil:
		inputs = [][]float32{req.Input}
	case len(inputs) == 0:
		writeErr(w, http.StatusBadRequest, fmt.Errorf(`empty batch: provide "input" or a non-empty "inputs"`))
		return
	}
	if len(inputs) > maxInferInputs {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch of %d inputs exceeds the per-request limit of %d", len(inputs), maxInferInputs))
		return
	}

	tgt, code, err := sv.inferTargetFor(&req)
	if err != nil {
		writeErr(w, code, err)
		return
	}

	exit := -1
	if req.Exit != nil {
		exit = *req.Exit
		if exit < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("exit %d invalid: omit the field for the deepest exit", exit))
			return
		}
	}
	reqs := make([]batch.Req, len(inputs))
	for i, in := range inputs {
		reqs[i] = batch.Req{Input: in, Options: batch.Options{Exit: exit, Threshold: req.Threshold}}
		if err := tgt.model.Validate(&reqs[i]); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("input %d: %w", i, err))
			return
		}
	}

	// Enqueue the whole request before waiting, so all its inputs can
	// share one micro-batching window.
	tickets := make([]*batch.Ticket, len(reqs))
	for i := range reqs {
		t, err := tgt.queue.Enqueue(r.Context(), reqs[i])
		if err != nil {
			switch {
			case errors.Is(err, batch.ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests, fmt.Errorf("inference queue for %s is full", tgt.key))
			case errors.Is(err, batch.ErrClosed):
				writeErr(w, http.StatusServiceUnavailable, err)
			default:
				writeErr(w, http.StatusInternalServerError, err)
			}
			return // abandoned tickets carry r.Context() and are skipped once it ends
		}
		tickets[i] = t
	}
	preds := make([]batch.Prediction, len(tickets))
	for i, t := range tickets {
		p, err := t.Wait(r.Context())
		if err != nil {
			if errors.Is(err, batch.ErrInferenceFailed) {
				// A server-side execution failure (recovered panic):
				// permanent for this payload, so 500 — a 503 would invite
				// the client to retry the same poison request.
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			// Otherwise the client went away or shutdown raced the wait;
			// transient from the client's point of view.
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		preds[i] = p
	}
	writeJSON(w, http.StatusOK, inferResponse{
		Model:       tgt.key,
		Backend:     tgt.model.Backend().String(),
		Exits:       tgt.model.NumExits(),
		Predictions: preds,
	})
}

// inferTargetFor resolves the request's model reference to a served
// target, creating its model and queue on first use.
func (sv *Server) inferTargetFor(req *inferRequest) (*inferTarget, int, error) {
	switch {
	case req.Artifact != "" && req.Deployment != "":
		return nil, http.StatusBadRequest, fmt.Errorf(`use "artifact" or "deployment", not both`)
	case req.Artifact == "" && req.Deployment == "":
		return nil, http.StatusBadRequest, fmt.Errorf(`missing model reference: set "artifact" (uploaded id) or "deployment" (registered name)`)
	}

	key := "deployment:" + req.Deployment
	if req.Artifact != "" {
		key = artifactPrefix + req.Artifact
	}

	// Resolve the deployment under the server lock, but build the model
	// outside it — plan compilation is too slow to stall every other
	// endpoint behind sv.mu.
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("serve: server is shutting down")
	}
	if tgt := sv.infers[key]; tgt != nil {
		sv.mu.Unlock()
		return tgt, 0, nil
	}
	var d *ehinfer.Deployed
	if req.Artifact != "" {
		if art := sv.artifacts[req.Artifact]; art != nil {
			d = art.bundle.Deployed
		}
	}
	sv.mu.Unlock()

	if d == nil {
		if req.Artifact != "" {
			return nil, http.StatusNotFound, fmt.Errorf("unknown artifact %q", req.Artifact)
		}
		dep, err := exper.LookupDeployment(req.Deployment)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		d = dep
	}
	model, err := batch.NewModel(d, sv.session.Backend(), sv.batchCfg.MaxBatch)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}

	// First writer wins: a racing request may have built the same target
	// meanwhile (or deleted the artifact — then serving this request
	// from the resolved deployment is still correct, but the target must
	// not be re-registered past its teardown).
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.closed {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("serve: server is shutting down")
	}
	if tgt := sv.infers[key]; tgt != nil {
		return tgt, 0, nil
	}
	if req.Artifact != "" && sv.artifacts[req.Artifact] == nil {
		return nil, http.StatusNotFound, fmt.Errorf("unknown artifact %q", req.Artifact)
	}
	tgt := &inferTarget{key: key, model: model, queue: batch.NewQueue(model, sv.batchCfg)}
	sv.infers[key] = tgt
	return tgt, 0, nil
}

// dropInferLocked removes a target (artifact deleted, shutdown) and
// closes its queue in the background with a drain deadline; the dead
// queue's counters fold into the server-level retired totals so
// /v1/stats totals stay monotonic across deletes. Caller holds sv.mu.
func (sv *Server) dropInferLocked(key string) {
	tgt := sv.infers[key]
	if tgt == nil {
		return
	}
	delete(sv.infers, key)
	sv.wg.Add(1)
	go func() {
		defer sv.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = tgt.queue.Close(ctx)
		st := tgt.queue.Stats() // final after Close: the worker has exited
		sv.mu.Lock()
		sv.retiredServed += st.Served
		sv.retiredRejected += st.Rejected
		sv.mu.Unlock()
	}()
}

// inferStatus is one target's entry in GET /v1/stats.
type inferStatus struct {
	Model    string      `json:"model"`
	Backend  string      `json:"backend"`
	Exits    int         `json:"exits"`
	InputLen int         `json:"inputLen"`
	MaxBatch int         `json:"maxBatch"`
	Queue    batch.Stats `json:"queue"`
}

// handleStats reports the serving side's observability counters: per
// model queue depth, the micro-batch size histogram, latency
// percentiles, and throughput, plus grid-job totals.
func (sv *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	sv.mu.Lock()
	targets := make([]*inferTarget, 0, len(sv.infers))
	for _, tgt := range sv.infers {
		targets = append(targets, tgt)
	}
	jobs := len(sv.jobs)
	served, rejected := sv.retiredServed, sv.retiredRejected
	sv.mu.Unlock()

	infer := make(map[string]inferStatus, len(targets))
	for _, tgt := range targets {
		st := tgt.queue.Stats()
		served += st.Served
		rejected += st.Rejected
		infer[tgt.key] = inferStatus{
			Model:    tgt.key,
			Backend:  tgt.model.Backend().String(),
			Exits:    tgt.model.NumExits(),
			InputLen: tgt.model.InputLen(),
			MaxBatch: tgt.model.MaxBatch(),
			Queue:    st,
		}
	}
	keys := make([]string, 0, len(infer))
	for k := range infer {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeMs": time.Since(sv.started).Milliseconds(),
		"infer":    infer,
		"models":   keys,
		"totals":   map[string]int64{"served": served, "rejected": rejected},
		"grids":    map[string]int{"jobs": jobs},
	})
}
