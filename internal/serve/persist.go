package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	ehinfer "repro"
	"repro/internal/exper"
	"repro/internal/obs"
	"repro/internal/store"
)

// recoverFromStore repopulates the server from its data directory at
// construction: verified artifacts come back under their original IDs,
// finished grid jobs serve their final documents again, and unfinished
// jobs resume from their journals — restored points filled in verbatim,
// only the remainder re-run. Called from New before the listener exists,
// so it may touch server maps without contention (it still takes sv.mu
// where the register/Shutdown protocol demands it).
func (sv *Server) recoverFromStore() {
	sv.recoverArtifacts()
	sv.recoverJobs()
}

// artifactOutcome counts one artifact recovery outcome on the
// ehserved_artifact_recovery_total family.
func (sv *Server) artifactOutcome(outcome string, n int) {
	if n > 0 {
		sv.reg.Counter(obs.Metric(mArtifactRecovery, "outcome", outcome)).Add(int64(n))
	}
}

func (sv *Server) recoverArtifacts() {
	rec := sv.store.Recovery()
	sv.artifactOutcome("quarantined", rec.Quarantined)
	sv.artifactOutcome("torn_manifest", rec.TornManifest)
	sv.artifactOutcome("orphaned", rec.Orphans)

	arts, err := sv.store.Artifacts()
	if err != nil {
		sv.log.Error("recovery: reading artifacts failed; serving none", "err", err)
		return
	}
	restored := 0
	for _, a := range arts {
		bundle, err := ehinfer.DecodeDeployed(bytes.NewReader(a.Data))
		if err != nil {
			// The store's verify hook already quarantines undecodable
			// files when cmd wires it; this is the belt for embedders who
			// opened the store without one.
			sv.artifactOutcome("undecodable", 1)
			sv.log.Error("recovery: artifact does not decode, not serving it", "id", a.ID, "err", err)
			continue
		}
		art := &storedArtifact{id: a.ID, name: a.Name, data: a.Data, bundle: bundle}
		if art.name == "" {
			art.name = bundle.Name
		}
		sv.artifacts[a.ID] = art
		sv.artOrder = append(sv.artOrder, a.ID)
		restored++
	}
	sv.artifactOutcome("restored", restored)
	if n := sv.store.MaxSeq("a"); n > sv.nextArtID {
		sv.nextArtID = n
	}
	if restored > 0 || rec.Quarantined > 0 {
		sv.log.Info("recovery: artifacts",
			"restored", restored, "quarantined", rec.Quarantined,
			"orphans", rec.Orphans, "tornManifest", rec.TornManifest)
	}
}

// finalDoc is the slice of a final GridResult document recovery needs to
// rebuild a finished job's status and streaming views.
type finalDoc struct {
	Grid struct {
		Name string `json:"name"`
	} `json:"grid"`
	Results []ehinfer.ExperimentResult `json:"results"`
}

func (sv *Server) recoverJobs() {
	unfinished, finished, err := sv.store.RecoverJobs()
	if err != nil {
		sv.log.Error("recovery: scanning jobs failed; resuming none", "err", err)
		return
	}
	// Grid and fleet journals share the store; the id prefix ("g"/"f")
	// decides which spec shape and resume path a journal gets — a fleet
	// spec would otherwise silently unmarshal into a zero GridSpec.
	maxSeq, maxFleetSeq := 0, 0
	note := func(id string) {
		if rest, ok := strings.CutPrefix(id, "g"); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > maxSeq {
				maxSeq = n
			}
		} else if rest, ok := strings.CutPrefix(id, "f"); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > maxFleetSeq {
				maxFleetSeq = n
			}
		}
	}

	for _, f := range finished {
		note(f.ID)
		if strings.HasPrefix(f.ID, "f") {
			sv.recoverFinishedFleet(f)
			continue
		}
		var doc finalDoc
		if err := json.Unmarshal(f.Final, &doc); err != nil {
			sv.log.Error("recovery: final document unreadable, dropping job", "job", f.ID, "err", err)
			_ = sv.store.RemoveJob(f.ID)
			continue
		}
		j := restoredDoneJob(f.ID, doc, f.Final)
		sv.jobs[j.id] = j
		sv.order = append(sv.order, j.id)
	}

	resumed := 0
	for _, u := range unfinished {
		note(u.ID)
		if strings.HasPrefix(u.ID, "f") {
			snaps, err := sv.resumeFleetJob(u)
			if err != nil {
				sv.log.Error("recovery: cannot resume fleet, dropping its journal", "fleet", u.ID, "err", err)
				_ = sv.store.RemoveJob(u.ID)
				continue
			}
			resumed++
			sv.reg.Counter(mFleetsResumed).Inc()
			sv.reg.Counter(mFleetSnapshotsRestored).Add(int64(snaps))
			continue
		}
		points, err := sv.resumeJob(u)
		if err != nil {
			sv.log.Error("recovery: cannot resume job, dropping its journal", "job", u.ID, "err", err)
			_ = sv.store.RemoveJob(u.ID)
			continue
		}
		resumed++
		sv.reg.Counter(mJobsResumed).Inc()
		sv.reg.Counter(mJobPointsRestored).Add(int64(points))
	}
	if sv.nextID < maxSeq {
		sv.nextID = maxSeq
	}
	if sv.nextFleetID < maxFleetSeq {
		sv.nextFleetID = maxFleetSeq
	}
	if len(finished) > 0 || resumed > 0 {
		sv.log.Info("recovery: jobs", "finished", len(finished), "resumed", resumed)
	}
}

// fleetFinalDoc is the slice of a final fleet Result document recovery
// needs to rebuild a finished fleet job's status and streaming views.
type fleetFinalDoc struct {
	Name      string                  `json:"name"`
	Snapshots []ehinfer.FleetSnapshot `json:"snapshots"`
}

// recoverFinishedFleet rebuilds a finished fleet job from its final
// document so status, snapshot streaming, and the byte-identical final
// JSON all serve again after a restart.
func (sv *Server) recoverFinishedFleet(f store.FinishedJob) {
	var doc fleetFinalDoc
	if err := json.Unmarshal(f.Final, &doc); err != nil {
		sv.log.Error("recovery: fleet final document unreadable, dropping job", "fleet", f.ID, "err", err)
		_ = sv.store.RemoveJob(f.ID)
		return
	}
	fj := newFleetJob(f.ID, nil, func() {})
	fj.name = doc.Name
	fj.total = len(doc.Snapshots)
	fj.state = StateDone
	fj.results = doc.Snapshots
	fj.finalJSON = f.Final
	sv.fleets[fj.id] = fj
	sv.fleetOrder = append(sv.fleetOrder, fj.id)
}

// resumeFleetJob relaunches one journaled fleet run: the spec header
// resolves back to a fleet (against the already-restored artifacts),
// journaled epoch snapshots are validated against the spec's shape, and
// the engine fast-forwards deterministically to the epoch after the last
// journaled one — the determinism contract makes the resumed final
// document byte-identical to an uninterrupted run's. Returns the number
// of restored snapshots.
func (sv *Server) resumeFleetJob(u store.UnfinishedJob) (int, error) {
	var spec ehinfer.FleetSpec
	if err := json.Unmarshal(u.Spec, &spec); err != nil {
		return 0, fmt.Errorf("spec header: %w", err)
	}
	f, err := spec.Resolve(sv.artifactPolicy)
	if err != nil {
		return 0, fmt.Errorf("resolve fleet: %w", err)
	}
	restored := make([]ehinfer.FleetSnapshot, 0, len(u.Lines))
	last := -1
	for i, line := range u.Lines {
		var snap ehinfer.FleetSnapshot
		if err := json.Unmarshal(line, &snap); err != nil {
			return 0, fmt.Errorf("journal line %d: %w", i+1, err)
		}
		// The journal must describe the same fleet the spec resolves to
		// now; a registry change under the spec would otherwise splice two
		// different simulations together.
		if snap.Devices != f.Devices || len(snap.Populations) != len(f.Pops) {
			return 0, fmt.Errorf("journal line %d: snapshot shape does not match the spec", i+1)
		}
		for pi, ps := range snap.Populations {
			if ps.Name != f.Pops[pi].Name {
				return 0, fmt.Errorf("journal line %d: population %d is %q, spec says %q",
					i+1, pi, ps.Name, f.Pops[pi].Name)
			}
		}
		if snap.Epoch <= last || snap.Epoch >= f.Epochs {
			return 0, fmt.Errorf("journal line %d: epoch %d out of order (previous %d, fleet has %d)",
				i+1, snap.Epoch, last, f.Epochs)
		}
		last = snap.Epoch
		restored = append(restored, snap)
	}
	journal, err := sv.store.OpenJobJournal(u.ID)
	if err != nil {
		return 0, err
	}

	ctx, cancel := context.WithCancel(sv.baseCtx)
	fj := newFleetJob(u.ID, f, cancel)
	fj.log = sv.log
	fj.journal = journal
	fj.restored = restored
	fj.startEpoch = last + 1

	sv.mu.Lock()
	sv.bindFleetMetrics(fj)
	sv.fleets[fj.id] = fj
	sv.fleetOrder = append(sv.fleetOrder, fj.id)
	sv.wg.Add(1)
	sv.mu.Unlock()
	go func() {
		defer sv.wg.Done()
		defer cancel()
		fj.run(ctx, sv.session)
	}()
	return len(restored), nil
}

// resumeJob relaunches one journaled grid run: the spec header resolves
// back to a grid (against the already-restored artifacts), journaled
// point results become the engine's Completed set, and the job goes back
// into the server's tables exactly as a fresh submission would — with
// its journal reattached so further points keep checkpointing. Returns
// the number of restored points.
func (sv *Server) resumeJob(u store.UnfinishedJob) (int, error) {
	var spec exper.GridSpec
	if err := json.Unmarshal(u.Spec, &spec); err != nil {
		return 0, fmt.Errorf("spec header: %w", err)
	}
	grid, err := spec.GridResolved(sv.artifactPolicy)
	if err != nil {
		return 0, fmt.Errorf("resolve grid: %w", err)
	}
	points := grid.Points()
	completed := make(map[int]ehinfer.ExperimentResult, len(u.Lines))
	restored := make([]ehinfer.ExperimentResult, 0, len(u.Lines))
	for i, line := range u.Lines {
		var res ehinfer.ExperimentResult
		if err := json.Unmarshal(line, &res); err != nil {
			return 0, fmt.Errorf("journal line %d: %w", i+1, err)
		}
		if res.Skipped {
			// Journals never record skipped points (checkpoint filters
			// them), but an old or hand-edited journal must not pin a
			// never-ran point as completed.
			continue
		}
		idx := res.Point.Index
		if idx < 0 || idx >= len(points) {
			return 0, fmt.Errorf("journal line %d: point index %d outside grid of %d", i+1, idx, len(points))
		}
		if points[idx].RunSeed != res.Point.RunSeed {
			// The spec on disk no longer derives the journaled point (e.g.
			// a registry changed under it): replaying would silently mix
			// two different experiments.
			return 0, fmt.Errorf("journal line %d: point %d run seed %d does not match grid's %d",
				i+1, idx, res.Point.RunSeed, points[idx].RunSeed)
		}
		if _, dup := completed[idx]; !dup {
			restored = append(restored, res)
		}
		completed[idx] = res
	}
	journal, err := sv.store.OpenJobJournal(u.ID)
	if err != nil {
		return 0, err
	}

	ctx, cancel := context.WithCancel(sv.baseCtx)
	j := newJob(u.ID, grid, cancel)
	j.log = sv.log
	j.journal = journal
	j.restored = restored
	j.completed = completed

	sv.mu.Lock()
	sv.jobs[j.id] = j
	sv.order = append(sv.order, j.id)
	sv.wg.Add(1)
	sv.mu.Unlock()
	go func() {
		defer sv.wg.Done()
		defer cancel()
		j.run(ctx, sv.session)
	}()
	return len(completed), nil
}

// restoredDoneJob rebuilds a finished job's serving state from its final
// document: status, results streaming, and the byte-identical final JSON
// all work again; only Workers/Elapsed telemetry is gone (it was never
// serialized, by the determinism contract).
func restoredDoneJob(id string, doc finalDoc, final []byte) *job {
	j := newJob(id, nil, func() {})
	j.name = doc.Grid.Name
	j.total = len(doc.Results)
	j.state = StateDone
	j.results = doc.Results
	j.finalJSON = final
	for _, r := range doc.Results {
		if r.Err != "" && !r.Skipped {
			j.pointErrs++
		}
	}
	return j
}
