package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Middleware is one interceptor layer: it wraps an http.Handler and
// returns the wrapped handler. Every route passes through the server's
// whole chain — observability and admission control are composed here,
// never sprinkled into individual handlers.
type Middleware func(http.Handler) http.Handler

// Chain composes middlewares around a handler, first-listed outermost:
// Chain(h, a, b, c) serves requests through a → b → c → h.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// reqMeta is the per-request state the middleware layers share through
// the request context: the request id, the matched route pattern (set
// by the routing layer, read by metrics and logging), and the response
// recorder.
type reqMeta struct {
	id    string
	route string
	rec   *statusRecorder
}

type metaKey struct{}

// metaFrom returns the request's meta, or nil outside the chain.
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(metaKey{}).(*reqMeta)
	return m
}

// statusRecorder captures the status code and byte count a handler
// writes, and forwards Flush so NDJSON streaming keeps working through
// the chain.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.code = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if !sr.wrote {
		sr.code = http.StatusOK
		sr.wrote = true
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRoute tags the request meta with the route pattern the mux
// matched, so the metrics and logging layers label by route, not by
// raw (unbounded-cardinality) path.
func withRoute(pattern string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m := metaFrom(r.Context()); m != nil {
			m.route = pattern
		}
		h.ServeHTTP(w, r)
	})
}

// recoverMW is the outermost layer: it installs the shared statusRecorder
// and meta, and converts a panic anywhere below — handler, middleware,
// routing — into a logged 500 instead of a dead connection. (The batch
// queue worker has its own recover; this one guards the HTTP side.)
func (sv *Server) recoverMW(next http.Handler) http.Handler {
	panics := sv.reg.Counter(mPanics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		meta := &reqMeta{rec: rec}
		r = r.WithContext(context.WithValue(r.Context(), metaKey{}, meta))
		defer func() {
			if p := recover(); p != nil {
				if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
					// A deliberate connection abort (chaos drop): let
					// net/http tear the connection down silently.
					panic(p)
				}
				panics.Inc()
				sv.log.Error("panic recovered",
					"panic", fmt.Sprint(p),
					"method", r.Method,
					"path", r.URL.Path,
					"request_id", meta.id,
					"stack", string(debug.Stack()))
				if !rec.wrote {
					writeErr(rec, http.StatusInternalServerError,
						fmt.Errorf("internal error (request %s)", meta.id))
				}
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// reqSeq numbers generated request ids within the process.
var reqSeq atomic.Uint64

// requestIDMW honours a client-sent X-Request-ID (so a future gateway's
// ids propagate) or generates one, and echoes it on the response.
func (sv *Server) requestIDMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		meta := metaFrom(r.Context())
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 {
			id = fmt.Sprintf("%x-%d", sv.started.UnixNano()&0xffffff, reqSeq.Add(1))
		}
		meta.id = id
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r)
	})
}

// loggingMW emits one structured line per request: route, status,
// duration, bytes, client, request id. 5xx log at error level.
func (sv *Server) loggingMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		meta := metaFrom(r.Context())
		start := time.Now()
		next.ServeHTTP(w, r)
		level := sv.log.Info
		if meta.rec.code >= 500 {
			level = sv.log.Error
		}
		level("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", routeLabel(meta),
			"status", meta.rec.code,
			"bytes", meta.rec.bytes,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"client", clientKey(r),
			"request_id", meta.id)
	})
}

// metricsMW counts every response by route and status code and observes
// its duration — including 429s shed by the rate limiter below it. The
// observation happens in a defer so a panicking handler is still
// counted (as the 500 the recovery layer above will write) before the
// panic is re-raised for recoverMW.
func (sv *Server) metricsMW(next http.Handler) http.Handler {
	inFlight := sv.reg.Gauge(mRequestsInRun)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		meta := metaFrom(r.Context())
		inFlight.Add(1)
		start := time.Now()
		defer func() {
			inFlight.Add(-1)
			p := recover()
			code := meta.rec.code
			if p != nil && !meta.rec.wrote {
				code = http.StatusInternalServerError
			}
			route := routeLabel(meta)
			sv.reg.Counter(obs.Metric(mRequests,
				"route", route, "code", strconv.Itoa(code))).Inc()
			sv.reg.Histogram(obs.Metric(mRequestDuration, "route", route),
				obs.DefLatencyBuckets).Observe(time.Since(start).Seconds())
			if p != nil {
				panic(p)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// routeLabel is the bounded-cardinality route name for metrics/logs:
// the matched pattern, "ratelimited" for requests shed before routing,
// or "unmatched" for 404s the mux never routed.
func routeLabel(meta *reqMeta) string {
	if meta.route == "" {
		return "unmatched"
	}
	return meta.route
}

// clientKey identifies the client for rate limiting and logging: the
// X-Client-ID header when present (the fleet/gateway convention),
// otherwise the remote address's host part.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" && len(id) <= 128 {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
