package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	ehinfer "repro"
)

// getBody GETs a URL and returns status + body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// fakeClock is a hand-advanced time source for deterministic rate-limit
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestMiddlewareChainOrder pins the chain's layering contract: recovery
// is outermost (a panicking handler becomes a logged 500, counted per
// route), request ids are echoed, and the metrics layer sits OUTSIDE
// the rate limiter — shed 429s are counted, not invisible.
func TestMiddlewareChainOrder(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sv := New(
		WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))),
		WithRateLimit(1, 1), // 1 rps, burst 1: the second request sheds
		WithClock(clk.now),
	)
	// A panicking route, registered like any other so it passes through
	// the full chain.
	sv.mux.Handle("GET /panic", withRoute("/panic", http.HandlerFunc(
		func(http.ResponseWriter, *http.Request) { panic("boom") })))
	ts := newHTTPServer(t, sv)

	// Recovery: the panic becomes a JSON 500, the daemon survives, and
	// both the panic counter and the per-route request counter see it.
	code, body := getBody(t, ts+"/panic")
	if code != http.StatusInternalServerError {
		t.Fatalf("panic route: status %d, want 500", code)
	}
	if !strings.Contains(body, "error") {
		t.Fatalf("panic route: body %q is not a JSON error", body)
	}

	// Request id: echoed when client-sent, generated otherwise.
	req, _ := http.NewRequest(http.MethodGet, ts+"/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-42" {
		t.Fatalf("X-Request-ID = %q, want echo of trace-42", got)
	}
	resp, err = http.Get(ts + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated X-Request-ID")
	}

	// Rate limit: burst 1 admits the first /v1/ request; the second
	// sheds 429 with Retry-After, WITHOUT consuming queue or handler
	// work. Health/metrics stay exempt.
	if code, _ := getBody(t, ts+"/v1/stats"); code != http.StatusOK {
		t.Fatalf("first /v1/stats: %d", code)
	}
	resp, err = http.Get(ts + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second /v1/stats: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	for i := 0; i < 3; i++ {
		if code, _ := getBody(t, ts+"/healthz"); code != http.StatusOK {
			t.Fatalf("healthz rate limited: %d", code)
		}
	}

	// The metrics layer counted the shed request and the recovered
	// panic — proof it wraps the rate limiter, and recovery wraps all.
	code, metrics := getBody(t, ts+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		`ehserved_requests_total{route="ratelimited",code="429"} 1`,
		`ehserved_requests_total{route="/panic",code="500"} 1`,
		`ehserved_panics_recovered_total 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestLimiterBurstAndRefill drives the token bucket with a fake clock:
// a full burst admits, the empty bucket sheds with an exact retry
// horizon, and tokens refill at the configured rate — never past burst.
func TestLimiterBurstAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	l := newLimiter(2, 3, clk.now) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.allow("c")
	if ok {
		t.Fatal("4th request admitted past burst")
	}
	if want := 500 * time.Millisecond; retry != want {
		t.Fatalf("retry = %v, want %v", retry, want)
	}

	// Half a second refills exactly one token at 2/s.
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := l.allow("c"); ok {
		t.Fatal("second token admitted after only one refill interval")
	}

	// A long idle refills to burst, not beyond: exactly 3 admits.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("post-idle request %d denied", i)
		}
	}
	if ok, _ := l.allow("c"); ok {
		t.Fatal("bucket refilled past burst")
	}

	// Clients are independent: c's empty bucket doesn't starve d.
	if ok, _ := l.allow("d"); !ok {
		t.Fatal("fresh client denied")
	}
}

// TestMetricsEndToEnd drives real traffic — an upload, inferences, a
// shed, a grid submit — then asserts every documented metric family is
// present in the exposition, with the infer counters carrying the
// per-model label.
func TestMetricsEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, 1)
	id := uploadArtifact(t, ts.URL, encodeTestArtifact(t, "metrics-e2e"))
	model := "artifact:" + id

	if code, out := postInfer(t, ts.URL, inferBody(id, 3)); code != http.StatusOK {
		t.Fatalf("infer: %d %v", code, out)
	}
	postJSON(t, ts.URL+"/v1/grids", fastSpec)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	// Every family from the README's metrics reference table.
	for _, fam := range []string{
		"ehserved_requests_total",
		"ehserved_request_duration_seconds",
		"ehserved_requests_in_flight",
		"ehserved_panics_recovered_total",
		"ehserved_infer_served_total",
		"ehserved_infer_rejected_total",
		"ehserved_infer_canceled_total",
		"ehserved_infer_errored_total",
		"ehserved_infer_batches_total",
		"ehserved_infer_batch_size_requests",
		"ehserved_infer_latency_seconds",
		"ehserved_infer_queue_depth",
		"ehserved_exit_taken_total",
		"ehserved_exit_latency_seconds",
		"ehserved_grid_jobs",
		"ehserved_artifacts",
		"ehserved_start_time_seconds",
		"ehserved_ready",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	// Labeled series carry real counts from the traffic above.
	for _, want := range []string{
		fmt.Sprintf(`ehserved_infer_served_total{model="%s"} 3`, model),
		fmt.Sprintf(`ehserved_infer_queue_depth{model="%s"} 0`, model),
		`ehserved_exit_taken_total{model=`,
		`ehserved_requests_total{route="/v1/infer",code="200"} 1`,
		`ehserved_ready 1`,
		`ehserved_artifacts 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing series %q", want)
		}
	}
	// Histogram exposition is well-formed: cumulative buckets plus
	// _sum/_count for the per-model batch-size histogram.
	for _, want := range []string{
		fmt.Sprintf(`ehserved_infer_batch_size_requests_bucket{model="%s",le="+Inf"}`, model),
		fmt.Sprintf(`ehserved_infer_batch_size_requests_count{model="%s"}`, model),
		fmt.Sprintf(`ehserved_infer_batch_size_requests_sum{model="%s"}`, model),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing histogram series %q", want)
		}
	}
}

// TestStatsGoldenShape pins the deprecated /v1/stats JSON contract —
// the fields a dashboard built on PR 5 reads — and that its totals are
// the same numbers /metrics reports, surviving artifact deletion.
func TestStatsGoldenShape(t *testing.T) {
	sv, ts := newTestServer(t, 1)
	id := uploadArtifact(t, ts.URL, encodeTestArtifact(t, "stats-golden"))
	if code, out := postInfer(t, ts.URL, inferBody(id, 2)); code != http.StatusOK {
		t.Fatalf("infer: %d %v", code, out)
	}

	st := getJSON(t, ts.URL+"/v1/stats")
	for _, key := range []string{"uptimeMs", "infer", "models", "totals", "grids", "deprecated"} {
		if _, ok := st[key]; !ok {
			t.Errorf("stats missing top-level %q", key)
		}
	}
	model := "artifact:" + id
	entry, ok := st["infer"].(map[string]any)[model].(map[string]any)
	if !ok {
		t.Fatalf("stats missing infer entry for %s: %v", model, st["infer"])
	}
	for _, key := range []string{"model", "backend", "exits", "inputLen", "maxBatch", "queue"} {
		if _, ok := entry[key]; !ok {
			t.Errorf("stats infer entry missing %q", key)
		}
	}
	q := entry["queue"].(map[string]any)
	for _, key := range []string{"served", "rejected", "canceled", "batches", "queueDepth", "maxDepth", "batchSizes", "meanBatch", "latencyMs", "throughputPerSec"} {
		if _, ok := q[key]; !ok {
			t.Errorf("stats queue block missing %q", key)
		}
	}
	if got := q["served"].(float64); got != 2 {
		t.Fatalf("queue served = %v, want 2", got)
	}
	if got := st["totals"].(map[string]any)["served"].(float64); got != 2 {
		t.Fatalf("totals served = %v, want 2", got)
	}
	if models := st["models"].([]any); len(models) != 1 || models[0] != model {
		t.Fatalf("models = %v", models)
	}

	// Both views agree: the stats totals equal the registry counters
	// /metrics serves.
	if sum := sv.reg.CounterSum("ehserved_infer_served_total"); sum != 2 {
		t.Fatalf("registry served sum = %d, want 2", sum)
	}

	// Delete the artifact: the live entry disappears, but totals are
	// monotonic — the registry remembers the torn-down queue.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/artifacts/"+id, nil)
	if resp, err := http.DefaultClient.Do(delReq); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v", err)
	}
	st = getJSON(t, ts.URL+"/v1/stats")
	if _, ok := st["infer"].(map[string]any)[model]; ok {
		t.Fatal("deleted model still listed in infer block")
	}
	if got := st["totals"].(map[string]any)["served"].(float64); got != 2 {
		t.Fatalf("post-delete totals served = %v, want monotonic 2", got)
	}
}

// TestReadyzDrain: /readyz flips 503 the moment draining starts while
// /healthz (liveness) stays 200, and the ready gauge follows.
func TestReadyzDrain(t *testing.T) {
	sv, ts := newTestServer(t, 1)

	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	sv.StartDrain()
	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("readyz during drain: %d %q", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d", code)
	}
	if _, body := getBody(t, ts.URL+"/metrics"); !strings.Contains(body, "ehserved_ready 0") {
		t.Fatal("ready gauge did not flip to 0")
	}
}

// TestPprofGated: the profiling surface exists only behind WithPprof.
func TestPprofGated(t *testing.T) {
	_, ts := newTestServer(t, 1)
	if code, _ := getBody(t, ts.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof without WithPprof: %d, want 404", code)
	}

	sv := New(WithSession(ehinfer.NewSession(ehinfer.WithWorkers(1))), WithPprof(true))
	url := newHTTPServer(t, sv)
	code, body := getBody(t, url+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("pprof cmdline with WithPprof: %d", code)
	}
}
