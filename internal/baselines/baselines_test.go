package baselines

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestDeclaredFLOPsMatchBuiltArchitectures(t *testing.T) {
	for _, b := range All() {
		net := b.Build(nil)
		got := net.FLOPs()
		rel := math.Abs(float64(got-b.FLOPs)) / float64(b.FLOPs)
		if rel > 0.05 {
			t.Errorf("%s: built architecture has %d MACs, declared %d (%.1f%% off)",
				b.Name, got, b.FLOPs, 100*rel)
		}
	}
}

func TestPaperOrderAndValues(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("%d baselines", len(all))
	}
	if all[0].Name != "SonicNet" || all[1].Name != "SpArSeNet" || all[2].Name != "LeNet-Cifar" {
		t.Fatal("baseline order must match the paper's figures")
	}
	if all[0].FLOPs != 2_000_000 {
		t.Fatal("SonicNet is 2.0 MFLOPs in the paper")
	}
	if all[1].FLOPs != 11_400_000 {
		t.Fatal("SpArSeNet is 11.4 MFLOPs in the paper")
	}
	wantAcc := []float64{0.754, 0.827, 0.747}
	for i, b := range all {
		if b.InferenceAccuracy != wantAcc[i] {
			t.Errorf("%s accuracy %v, paper %v", b.Name, b.InferenceAccuracy, wantAcc[i])
		}
	}
}

func TestBuiltNetworksInfer(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(2, 3, 32, 32)
	tensor.FillUniform(x, rng, 0, 1)
	for _, b := range All() {
		net := b.Build(tensor.NewRNG(2))
		out := net.Forward(x, false)
		if out.Dim(0) != 2 || out.Dim(1) != 10 {
			t.Errorf("%s output shape %v", b.Name, out.Shape())
		}
		for _, v := range out.Data {
			if math.IsNaN(float64(v)) {
				t.Errorf("%s produced NaN", b.Name)
				break
			}
		}
	}
}

func TestLeNetCifarIsClassicLeNet5(t *testing.T) {
	// 651,720 MACs: conv 3→6 5×5 on 32², pool, conv 6→16 5×5, pool,
	// FC 400→120→84→10.
	want := int64(6*3*25*28*28 + 16*6*25*10*10 + 400*120 + 120*84 + 84*10)
	if LeNetCifar().Build(nil).FLOPs() != want {
		t.Fatalf("LeNet-Cifar MACs = %d, want %d", LeNetCifar().Build(nil).FLOPs(), want)
	}
}
