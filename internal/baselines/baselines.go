// Package baselines implements the three comparison systems of §V:
//
//   - SonicNet — the network from the SONIC intermittent-inference
//     framework [9]: a single-exit CNN (2.0 MFLOPs) executed to
//     completion across however many power cycles it takes.
//   - SpArSeNet — the NAS-for-MCU result [13]: single-exit, 11.4 MFLOPs.
//   - LeNet-Cifar — hand-designed LeNet adapted to CIFAR-10: single-exit
//     with low FLOPs (the paper notes it "fortunately fits the EH
//     scenario well").
//
// Each baseline carries the paper's reported cost and per-inference
// accuracy (used by the surrogate-driven simulations) plus a buildable
// Go architecture with approximately matching MACs (used by empirical
// examples and tests). All three run under the same intermittent engine
// as the proposed system, but with run-to-completion semantics: an
// inference pauses at power failure and resumes after recharge, which is
// exactly the indefinite-wait behaviour the paper's multi-exit model
// eliminates.
package baselines

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Baseline describes one comparison system.
type Baseline struct {
	// Name as used in the paper's figures.
	Name string
	// FLOPs is the per-inference MAC count the paper reports.
	FLOPs int64
	// WeightBytes is the deployed model size (fp32 for SonicNet /
	// LeNet-Cifar; SpArSeNet per its NAS output).
	WeightBytes int64
	// InferenceAccuracy is the paper's accuracy over processed events
	// (§V-C: 75.4% / 82.7% / 74.7%).
	InferenceAccuracy float64
	// Build constructs a runnable architecture with ≈FLOPs MACs for
	// 32×32×3 inputs and 10 classes (nil rng leaves weights zero).
	Build func(rng *tensor.RNG) *nn.Sequential
}

// SonicNet returns the SONIC [9] baseline.
func SonicNet() Baseline {
	return Baseline{
		Name:              "SonicNet",
		FLOPs:             2_000_000,
		WeightBytes:       250 * 1024,
		InferenceAccuracy: 0.754,
		Build:             buildSonicNet,
	}
}

// SpArSeNet returns the SpArSe [13] baseline.
func SpArSeNet() Baseline {
	return Baseline{
		Name:              "SpArSeNet",
		FLOPs:             11_400_000,
		WeightBytes:       180 * 1024,
		InferenceAccuracy: 0.827,
		Build:             buildSpArSeNet,
	}
}

// LeNetCifar returns the hand-designed LeNet baseline: classic LeNet-5
// with a 3-channel 32×32 input, whose MAC count is 651,720 (the paper
// does not state it; this is the architecture's own cost — conv 3→6 5×5,
// pool, conv 6→16 5×5, pool, FC 400→120→84→10). EXPERIMENTS.md discusses
// how this reconciles with the paper's latency ratios.
func LeNetCifar() Baseline {
	return Baseline{
		Name:              "LeNet-Cifar",
		FLOPs:             651_720,
		WeightBytes:       248 * 1024,
		InferenceAccuracy: 0.747,
		Build:             buildLeNetCifar,
	}
}

// All returns the three baselines in the paper's figure order.
func All() []Baseline {
	return []Baseline{SonicNet(), SpArSeNet(), LeNetCifar()}
}

func buildSonicNet(rng *tensor.RNG) *nn.Sequential {
	conv1 := nn.NewConv2D("sonic.conv1", 3, 16, 5, 5, 1, 0)
	conv1.NomH, conv1.NomW = 32, 32 // → 16@28×28
	conv2 := nn.NewConv2D("sonic.conv2", 16, 20, 5, 5, 1, 0)
	conv2.NomH, conv2.NomW = 14, 14 // → 20@10×10
	fc1 := nn.NewDense("sonic.fc1", 20*5*5, 400)
	fc2 := nn.NewDense("sonic.fc2", 400, 10)
	fc2.Final = true
	s := nn.NewSequential("SonicNet",
		conv1, nn.NewReLU("sonic.relu1"), nn.NewMaxPool2D("sonic.pool1", 2, 2),
		conv2, nn.NewReLU("sonic.relu2"), nn.NewMaxPool2D("sonic.pool2", 2, 2),
		nn.NewFlatten("sonic.flat"),
		fc1, nn.NewReLU("sonic.relu3"),
		fc2,
	)
	if rng != nil {
		nn.InitHe(s, rng)
	}
	return s
}

func buildSpArSeNet(rng *tensor.RNG) *nn.Sequential {
	conv1 := nn.NewConv2D("sparse.conv1", 3, 32, 3, 3, 1, 1)
	conv1.NomH, conv1.NomW = 32, 32 // → 32@32×32
	conv2 := nn.NewConv2D("sparse.conv2", 32, 32, 3, 3, 1, 1)
	conv2.NomH, conv2.NomW = 32, 32 // → 32@32×32
	conv3 := nn.NewConv2D("sparse.conv3", 32, 16, 3, 3, 1, 1)
	conv3.NomH, conv3.NomW = 16, 16 // → 16@16×16
	fc := nn.NewDense("sparse.fc", 16*8*8, 10)
	fc.Final = true
	s := nn.NewSequential("SpArSeNet",
		conv1, nn.NewReLU("sparse.relu1"),
		conv2, nn.NewReLU("sparse.relu2"), nn.NewMaxPool2D("sparse.pool1", 2, 2),
		conv3, nn.NewReLU("sparse.relu3"), nn.NewMaxPool2D("sparse.pool2", 2, 2),
		nn.NewFlatten("sparse.flat"),
		fc,
	)
	if rng != nil {
		nn.InitHe(s, rng)
	}
	return s
}

func buildLeNetCifar(rng *tensor.RNG) *nn.Sequential {
	conv1 := nn.NewConv2D("lenet.conv1", 3, 6, 5, 5, 1, 0)
	conv1.NomH, conv1.NomW = 32, 32 // → 6@28×28
	conv2 := nn.NewConv2D("lenet.conv2", 6, 16, 5, 5, 1, 0)
	conv2.NomH, conv2.NomW = 14, 14 // → 16@10×10
	fc1 := nn.NewDense("lenet.fc1", 16*5*5, 120)
	fc2 := nn.NewDense("lenet.fc2", 120, 84)
	fc3 := nn.NewDense("lenet.fc3", 84, 10)
	fc3.Final = true
	s := nn.NewSequential("LeNet-Cifar",
		conv1, nn.NewReLU("lenet.relu1"), nn.NewMaxPool2D("lenet.pool1", 2, 2),
		conv2, nn.NewReLU("lenet.relu2"), nn.NewMaxPool2D("lenet.pool2", 2, 2),
		nn.NewFlatten("lenet.flat"),
		fc1, nn.NewReLU("lenet.relu3"),
		fc2, nn.NewReLU("lenet.relu4"),
		fc3,
	)
	if rng != nil {
		nn.InitHe(s, rng)
	}
	return s
}
