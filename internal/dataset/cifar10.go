package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/tensor"
)

// CIFAR-10 binary format constants: each record is 1 label byte followed
// by 3072 pixel bytes (RRR...GGG...BBB row-major).
const (
	cifarRecordLen = 1 + SampleLen
)

// LoadCIFAR10Batch reads one CIFAR-10 binary batch file (data_batch_N.bin
// or test_batch.bin) into a Set, normalizing pixels to [0, 1].
func LoadCIFAR10Batch(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open CIFAR-10 batch: %w", err)
	}
	defer f.Close()
	return ReadCIFAR10(bufio.NewReader(f))
}

// ReadCIFAR10 decodes CIFAR-10 binary records from r until EOF.
func ReadCIFAR10(r io.Reader) (*Set, error) {
	set := &Set{}
	buf := make([]byte, cifarRecordLen)
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF {
			return set, nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("dataset: truncated CIFAR-10 record after %d samples", set.Len())
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read CIFAR-10 record: %w", err)
		}
		label := int(buf[0])
		if label >= NumClasses {
			return nil, fmt.Errorf("dataset: CIFAR-10 label %d out of range", label)
		}
		s := Sample{Label: label}
		img := make([]float32, SampleLen)
		for i, b := range buf[1:] {
			img[i] = float32(b) / 255
		}
		s.Image = tensor.FromSlice(img, Channels, Height, Width)
		set.Samples = append(set.Samples, s)
	}
}

// LoadCIFAR10Dir loads all data_batch_*.bin files in dir as the train set
// and test_batch.bin as the test set.
func LoadCIFAR10Dir(dir string) (train, test *Set, err error) {
	train = &Set{}
	matches, err := filepath.Glob(filepath.Join(dir, "data_batch_*.bin"))
	if err != nil {
		return nil, nil, err
	}
	if len(matches) == 0 {
		return nil, nil, fmt.Errorf("dataset: no CIFAR-10 train batches in %s", dir)
	}
	for _, m := range matches {
		batch, err := LoadCIFAR10Batch(m)
		if err != nil {
			return nil, nil, err
		}
		train.Samples = append(train.Samples, batch.Samples...)
	}
	test, err = LoadCIFAR10Batch(filepath.Join(dir, "test_batch.bin"))
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}
