package dataset

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(SynthConfig{Seed: 7})
	g2 := NewGenerator(SynthConfig{Seed: 7})
	s1 := g1.Sample(3)
	s2 := g2.Sample(3)
	if s1.Image.L2Distance(s2.Image) != 0 {
		t.Fatal("same seed must generate identical samples")
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(SynthConfig{Seed: 1}).Sample(0)
	b := NewGenerator(SynthConfig{Seed: 2}).Sample(0)
	if a.Image.L2Distance(b.Image) == 0 {
		t.Fatal("different seeds must generate different samples")
	}
}

func TestSamplePixelRange(t *testing.T) {
	g := NewGenerator(SynthConfig{Seed: 3})
	for class := 0; class < NumClasses; class++ {
		s := g.Sample(class)
		if s.Label != class {
			t.Fatalf("label = %d, want %d", s.Label, class)
		}
		for _, v := range s.Image.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v outside [0,1]", v)
			}
		}
	}
}

func TestSampleBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(SynthConfig{Seed: 1}).Sample(NumClasses)
}

func TestGenerateClassBalance(t *testing.T) {
	set := NewGenerator(SynthConfig{Seed: 4}).Generate(100)
	counts := make([]int, NumClasses)
	for _, s := range set.Samples {
		counts[s.Label]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want 10", c, n)
		}
	}
}

func TestIntraClassClosertThanInterClass(t *testing.T) {
	// Classes must be geometrically separated for a CNN to learn them:
	// mean intra-class distance should undercut inter-class distance.
	g := NewGenerator(SynthConfig{Seed: 5})
	const per = 8
	classes := [][]*tensor.Tensor{}
	for c := 0; c < 3; c++ {
		var imgs []*tensor.Tensor
		for i := 0; i < per; i++ {
			imgs = append(imgs, g.Sample(c).Image)
		}
		classes = append(classes, imgs)
	}
	var intra, inter float64
	var nIntra, nInter int
	for c := 0; c < 3; c++ {
		for d := 0; d < 3; d++ {
			for i := 0; i < per; i++ {
				for j := 0; j < per; j++ {
					if c == d && i >= j {
						continue
					}
					dist := classes[c][i].L2Distance(classes[d][j])
					if c == d {
						intra += dist
						nIntra++
					} else {
						inter += dist
						nInter++
					}
				}
			}
		}
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Fatalf("intra-class distance %.3f not below inter-class %.3f",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestBatchShapesAndLabels(t *testing.T) {
	set := NewGenerator(SynthConfig{Seed: 6}).Generate(20)
	x, labels := set.Batch(5, 15)
	if x.Dim(0) != 10 || x.Dim(1) != Channels || x.Dim(2) != Height || x.Dim(3) != Width {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if len(labels) != 10 {
		t.Fatalf("labels length %d", len(labels))
	}
	if labels[0] != set.Samples[5].Label {
		t.Fatal("labels misaligned with samples")
	}
}

func TestBatchBadRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenerator(SynthConfig{Seed: 6}).Generate(5).Batch(3, 3)
}

func TestShuffleKeepsMultiset(t *testing.T) {
	set := NewGenerator(SynthConfig{Seed: 7}).Generate(30)
	before := make([]int, NumClasses)
	for _, s := range set.Samples {
		before[s.Label]++
	}
	set.Shuffle(tensor.NewRNG(1))
	after := make([]int, NumClasses)
	for _, s := range set.Samples {
		after[s.Label]++
	}
	for c := range before {
		if before[c] != after[c] {
			t.Fatal("shuffle changed the label multiset")
		}
	}
}

func TestSubset(t *testing.T) {
	set := NewGenerator(SynthConfig{Seed: 8}).Generate(10)
	if set.Subset(4).Len() != 4 {
		t.Fatal("Subset(4) wrong size")
	}
	if set.Subset(100).Len() != 10 {
		t.Fatal("oversized Subset must clamp")
	}
}

func TestTrainTestDisjointButSameClasses(t *testing.T) {
	train, test := TrainTest(SynthConfig{Seed: 9}, 20, 20)
	if train.Len() != 20 || test.Len() != 20 {
		t.Fatal("wrong sizes")
	}
	// Same prototypes (same seed): a train and test sample of the same
	// class should be closer than samples of different classes.
	if train.Samples[0].Image.L2Distance(test.Samples[0].Image) == 0 {
		t.Fatal("train/test samples should not be identical")
	}
}

func TestReadCIFAR10RoundTrip(t *testing.T) {
	// Construct two records in CIFAR-10 binary layout.
	var buf bytes.Buffer
	for rec := 0; rec < 2; rec++ {
		buf.WriteByte(byte(rec + 3)) // labels 3, 4
		for i := 0; i < SampleLen; i++ {
			buf.WriteByte(byte(i % 256))
		}
	}
	set, err := ReadCIFAR10(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("decoded %d records", set.Len())
	}
	if set.Samples[0].Label != 3 || set.Samples[1].Label != 4 {
		t.Fatal("labels decoded wrong")
	}
	if set.Samples[0].Image.Data[255] != 1.0 {
		t.Fatalf("pixel normalization wrong: %v", set.Samples[0].Image.Data[255])
	}
}

func TestReadCIFAR10Truncated(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(1)
	buf.Write(make([]byte, 100)) // short record
	if _, err := ReadCIFAR10(&buf); err == nil {
		t.Fatal("truncated record must error")
	}
}

func TestReadCIFAR10BadLabel(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(200)
	buf.Write(make([]byte, SampleLen))
	if _, err := ReadCIFAR10(&buf); err == nil {
		t.Fatal("out-of-range label must error")
	}
}
