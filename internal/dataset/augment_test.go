package dataset

import (
	"testing"

	"repro/internal/tensor"
)

func TestFlipHorizontalInvolution(t *testing.T) {
	g := NewGenerator(SynthConfig{Seed: 1})
	img := g.Sample(0).Image
	back := FlipHorizontal(FlipHorizontal(img))
	if img.L2Distance(back) != 0 {
		t.Fatal("double flip must be identity")
	}
}

func TestFlipHorizontalMirrors(t *testing.T) {
	img := tensor.New(1, 1, 3)
	img.Set(1, 0, 0, 0)
	img.Set(2, 0, 0, 1)
	img.Set(3, 0, 0, 2)
	f := FlipHorizontal(img)
	if f.At(0, 0, 0) != 3 || f.At(0, 0, 2) != 1 {
		t.Fatalf("flip wrong: %v", f.Data)
	}
}

func TestShiftMovesAndPads(t *testing.T) {
	img := tensor.New(1, 3, 3)
	img.Set(5, 0, 1, 1)
	s := Shift(img, 1, 1)
	if s.At(0, 2, 2) != 5 {
		t.Fatal("shift did not move the pixel")
	}
	if s.At(0, 0, 0) != 0 {
		t.Fatal("exposed region must be zero-padded")
	}
	if s.At(0, 1, 1) != 0 {
		t.Fatal("origin must be vacated")
	}
}

func TestShiftZeroIsIdentity(t *testing.T) {
	g := NewGenerator(SynthConfig{Seed: 2})
	img := g.Sample(1).Image
	if img.L2Distance(Shift(img, 0, 0)) != 0 {
		t.Fatal("zero shift must be identity")
	}
}

func TestAddNoiseStaysInRange(t *testing.T) {
	g := NewGenerator(SynthConfig{Seed: 3})
	img := g.Sample(2).Image.Clone()
	AddNoise(img, tensor.NewRNG(4), 0.5)
	for _, v := range img.Data {
		if v < 0 || v > 1 {
			t.Fatalf("noisy pixel %v out of range", v)
		}
	}
}

func TestAugmentPreservesLabelAndOriginal(t *testing.T) {
	g := NewGenerator(SynthConfig{Seed: 5})
	s := g.Sample(7)
	orig := s.Image.Clone()
	a := Augment(s, tensor.NewRNG(6))
	if a.Label != 7 {
		t.Fatal("augmentation changed the label")
	}
	if s.Image.L2Distance(orig) != 0 {
		t.Fatal("augmentation mutated the original image")
	}
	if a.Image.L2Distance(orig) == 0 {
		t.Fatal("augmentation produced an identical image")
	}
}

func TestAugmentedSetSize(t *testing.T) {
	set := NewGenerator(SynthConfig{Seed: 7}).Generate(20)
	aug := set.Augmented(2, tensor.NewRNG(8))
	if aug.Len() != 60 {
		t.Fatalf("augmented size %d, want 60", aug.Len())
	}
	counts := make([]int, NumClasses)
	for _, s := range aug.Samples {
		counts[s.Label]++
	}
	for c, n := range counts {
		if n != 6 {
			t.Fatalf("class %d has %d samples after augmentation, want 6", c, n)
		}
	}
}
