// Package dataset provides the image-classification data the multi-exit
// networks train and evaluate on.
//
// The paper uses CIFAR-10, which is not available in this offline
// environment. SynthCIFAR is the documented substitute (DESIGN.md §2): a
// seeded, procedural 10-class 32×32×3 generator whose classes are
// distinguishable by a small CNN and whose accuracy degrades smoothly
// under pruning/quantization — the two properties the paper's pipeline
// actually depends on. A loader for real CIFAR-10 binary batches is also
// provided for environments where the data exists.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Image dimensions shared with CIFAR-10.
const (
	Channels = 3
	Height   = 32
	Width    = 32
	// NumClasses is the number of target classes.
	NumClasses = 10
	// SampleLen is the flattened CHW length of one image.
	SampleLen = Channels * Height * Width
)

// Sample is one labelled image in CHW float32 layout, values in [0, 1].
type Sample struct {
	Image *tensor.Tensor // shape [Channels, Height, Width]
	Label int
}

// Set is an in-memory dataset.
type Set struct {
	Samples []Sample
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Samples) }

// Batch assembles samples [from, to) into an NCHW tensor and label slice.
func (s *Set) Batch(from, to int) (*tensor.Tensor, []int) {
	if from < 0 || to > len(s.Samples) || from >= to {
		panic(fmt.Sprintf("dataset: invalid batch range [%d, %d) of %d", from, to, len(s.Samples)))
	}
	n := to - from
	x := tensor.New(n, Channels, Height, Width)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		copy(x.Data[i*SampleLen:(i+1)*SampleLen], s.Samples[from+i].Image.Data)
		labels[i] = s.Samples[from+i].Label
	}
	return x, labels
}

// Shuffle permutes the samples in place using rng.
func (s *Set) Shuffle(rng *tensor.RNG) {
	for i := len(s.Samples) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		s.Samples[i], s.Samples[j] = s.Samples[j], s.Samples[i]
	}
}

// Subset returns a view of the first n samples (or all if n exceeds Len).
func (s *Set) Subset(n int) *Set {
	if n > len(s.Samples) {
		n = len(s.Samples)
	}
	return &Set{Samples: s.Samples[:n]}
}

// classPrototype holds the deterministic generative parameters for one
// SynthCIFAR class: a low-frequency color field plus an oriented grating
// and a geometric blob. Every class differs in all three, so shallow
// features (color) give partial separability while deeper features
// (texture × shape conjunctions) are needed for full accuracy — mirroring
// why deeper exits are more accurate on CIFAR-10.
type classPrototype struct {
	baseColor  [Channels]float64
	freqU      float64 // grating spatial frequency (x)
	freqV      float64 // grating spatial frequency (y)
	phase      float64
	blobCX     float64 // blob center
	blobCY     float64
	blobR      float64 // blob radius
	blobColor  [Channels]float64
	gratingAmp float64
}

// SynthConfig controls SynthCIFAR generation.
type SynthConfig struct {
	// Seed drives all randomness (prototypes derive from Seed alone, so
	// train/test splits share class structure).
	Seed uint64
	// NoiseStd is per-pixel Gaussian noise (default 0.08).
	NoiseStd float64
	// Jitter is the per-sample deformation magnitude (default 0.15):
	// random phase shifts, blob translation, and color perturbation.
	Jitter float64
}

func (c *SynthConfig) fillDefaults() {
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.08
	}
	if c.Jitter == 0 {
		c.Jitter = 0.15
	}
}

// Generator produces SynthCIFAR samples.
type Generator struct {
	cfg    SynthConfig
	protos [NumClasses]classPrototype
	rng    *tensor.RNG
}

// NewGenerator builds a SynthCIFAR generator. Class prototypes are a pure
// function of cfg.Seed.
func NewGenerator(cfg SynthConfig) *Generator {
	cfg.fillDefaults()
	protoRNG := tensor.NewRNG(cfg.Seed ^ 0xa5a5a5a5deadbeef)
	g := &Generator{cfg: cfg, rng: tensor.NewRNG(cfg.Seed + 0x51f15e)}
	for k := 0; k < NumClasses; k++ {
		p := &g.protos[k]
		for c := 0; c < Channels; c++ {
			p.baseColor[c] = 0.25 + 0.5*protoRNG.Float64()
			p.blobColor[c] = protoRNG.Float64()
		}
		p.freqU = 1 + 5*protoRNG.Float64()
		p.freqV = 1 + 5*protoRNG.Float64()
		p.phase = 2 * math.Pi * protoRNG.Float64()
		p.blobCX = 8 + 16*protoRNG.Float64()
		p.blobCY = 8 + 16*protoRNG.Float64()
		p.blobR = 4 + 6*protoRNG.Float64()
		p.gratingAmp = 0.15 + 0.2*protoRNG.Float64()
	}
	return g
}

// Sample draws one image of class label.
func (g *Generator) Sample(label int) Sample {
	if label < 0 || label >= NumClasses {
		panic(fmt.Sprintf("dataset: label %d out of range", label))
	}
	p := g.protos[label]
	j := g.cfg.Jitter
	phase := p.phase + j*g.rng.NormFloat64()*math.Pi
	cx := p.blobCX + j*8*g.rng.NormFloat64()
	cy := p.blobCY + j*8*g.rng.NormFloat64()
	r := p.blobR * (1 + 0.3*j*g.rng.NormFloat64())
	var colorShift [Channels]float64
	for c := range colorShift {
		colorShift[c] = 0.3 * j * g.rng.NormFloat64()
	}

	img := tensor.New(Channels, Height, Width)
	for y := 0; y < Height; y++ {
		for x := 0; x < Width; x++ {
			u := float64(x) / Width
			v := float64(y) / Height
			grating := p.gratingAmp * math.Sin(2*math.Pi*(p.freqU*u+p.freqV*v)+phase)
			dx := float64(x) - cx
			dy := float64(y) - cy
			inBlob := dx*dx+dy*dy <= r*r
			for c := 0; c < Channels; c++ {
				val := p.baseColor[c] + colorShift[c] + grating
				if inBlob {
					val = 0.6*p.blobColor[c] + 0.4*val
				}
				val += g.cfg.NoiseStd * g.rng.NormFloat64()
				if val < 0 {
					val = 0
				} else if val > 1 {
					val = 1
				}
				img.Set(float32(val), c, y, x)
			}
		}
	}
	return Sample{Image: img, Label: label}
}

// Generate draws n samples with labels cycling round-robin so classes are
// balanced.
func (g *Generator) Generate(n int) *Set {
	set := &Set{Samples: make([]Sample, 0, n)}
	for i := 0; i < n; i++ {
		set.Samples = append(set.Samples, g.Sample(i%NumClasses))
	}
	set.Shuffle(g.rng)
	return set
}

// TrainTest generates disjoint train and test sets from the same class
// prototypes.
func TrainTest(cfg SynthConfig, trainN, testN int) (train, test *Set) {
	g := NewGenerator(cfg)
	train = g.Generate(trainN)
	test = g.Generate(testN)
	return train, test
}
