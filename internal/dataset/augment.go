package dataset

import "repro/internal/tensor"

// Augmentations for training robustness: horizontal flip, shift-with-pad
// (the "random crop" of CIFAR pipelines), and additive noise. They
// operate on CHW images in place or return fresh samples; Augment applies
// a random combination.

// FlipHorizontal mirrors a CHW image left-right, returning a new tensor.
func FlipHorizontal(img *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(img.Shape()...)
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out.Set(img.At(ci, y, w-1-x), ci, y, x)
			}
		}
	}
	return out
}

// Shift translates a CHW image by (dy, dx), zero-padding exposed pixels.
func Shift(img *tensor.Tensor, dy, dx int) *tensor.Tensor {
	out := tensor.New(img.Shape()...)
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			sy := y - dy
			if sy < 0 || sy >= h {
				continue
			}
			for x := 0; x < w; x++ {
				sx := x - dx
				if sx < 0 || sx >= w {
					continue
				}
				out.Set(img.At(ci, sy, sx), ci, y, x)
			}
		}
	}
	return out
}

// AddNoise perturbs pixels with N(0, std²) clamped to [0, 1], in place.
func AddNoise(img *tensor.Tensor, rng *tensor.RNG, std float64) {
	for i := range img.Data {
		v := float64(img.Data[i]) + std*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		img.Data[i] = float32(v)
	}
}

// Augment returns a randomly augmented copy of the sample: 50% horizontal
// flip, ±2 px shift, and light noise.
func Augment(s Sample, rng *tensor.RNG) Sample {
	img := s.Image
	if rng.Float64() < 0.5 {
		img = FlipHorizontal(img)
	} else {
		img = img.Clone()
	}
	dy := rng.Intn(5) - 2
	dx := rng.Intn(5) - 2
	if dy != 0 || dx != 0 {
		img = Shift(img, dy, dx)
	}
	AddNoise(img, rng, 0.02)
	return Sample{Image: img, Label: s.Label}
}

// Augmented returns a new set with n augmented variants appended per
// original sample.
func (s *Set) Augmented(n int, rng *tensor.RNG) *Set {
	out := &Set{Samples: append([]Sample(nil), s.Samples...)}
	for i := 0; i < n; i++ {
		for _, orig := range s.Samples {
			out.Samples = append(out.Samples, Augment(orig, rng))
		}
	}
	out.Shuffle(rng)
	return out
}
