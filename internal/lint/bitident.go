package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// bitidentPkgs are the kernel packages under the bit-identity fence:
// their float results must be reproducible bit for bit, so any
// iteration-order- or instruction-dependent accumulation is a bug.
var bitidentPkgs = map[string]bool{
	"tensor": true,
	"plan":   true,
	"nn":     true,
	"fixed":  true,
}

// BitIdent flags patterns that break deterministic float accumulation
// order in the kernel packages.
var BitIdent = &analysis.Analyzer{
	Name: "bitident",
	Doc: "flag nondeterministic float accumulation in the kernel packages: " +
		"range-over-map loops feeding float state, math.FMA (fused rounding " +
		"differs from mul+add), and goroutine closures writing captured " +
		"scalar float accumulators (sharded slice writes à la " +
		"tensor.ParallelFor are the blessed pattern)",
	Run: runBitIdent,
}

func runBitIdent(pass *analysis.Pass) error {
	if !bitidentPkgs[pkgBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.RangeStmt:
				checkMapRangeAccum(pass, v)
			case *ast.CallExpr:
				if calleeIn(pass.TypesInfo, v, "math", "FMA") {
					pass.Reportf(v.Pos(), "math.FMA fuses the rounding step and is not bit-identical to mul+add; use explicit operations")
				}
			case *ast.GoStmt:
				if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineFloatWrites(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkMapRangeAccum flags float state accumulated across a
// range-over-map loop: map iteration order is randomized, so any
// non-commutative-in-floats reduction over it is nondeterministic.
func checkMapRangeAccum(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(typeOf(pass.TypesInfo, lhs)) {
			return true
		}
		root := rootIdent(lhs)
		if root == nil || !declaredOutside(pass.TypesInfo, root, rng.Pos(), rng.End()) {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			pass.Reportf(as.Pos(), "float accumulation over map iteration order is nondeterministic; iterate sorted keys instead")
		case token.ASSIGN:
			if exprMentions(as.Rhs[0], root.Name) {
				pass.Reportf(as.Pos(), "float accumulation over map iteration order is nondeterministic; iterate sorted keys instead")
			}
		}
		return true
	})
}

// checkGoroutineFloatWrites flags goroutine closures that write a
// captured scalar float variable: concurrent scheduling makes the
// combine order nondeterministic. Writes to slice elements are not
// flagged — disjoint row bands per goroutine (tensor.ParallelFor) keep
// every accumulator single-owner and remain bit-identical.
func checkGoroutineFloatWrites(pass *analysis.Pass, lit *ast.FuncLit) {
	report := func(pos token.Pos, name string) {
		pass.Reportf(pos, "goroutine writes captured float %s: combine order is scheduling-dependent; give each goroutine a disjoint slice band and merge in fixed order", name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isFloat(typeOf(pass.TypesInfo, id)) {
					continue
				}
				if declaredOutside(pass.TypesInfo, id, lit.Pos(), lit.End()) {
					report(v.Pos(), id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := v.X.(*ast.Ident); ok && isFloat(typeOf(pass.TypesInfo, id)) &&
				declaredOutside(pass.TypesInfo, id, lit.Pos(), lit.End()) {
				report(v.Pos(), id.Name)
			}
		}
		return true
	})
}

// typeOf is TypesInfo.TypeOf with a nil-safe default.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if t := info.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

// exprMentions reports whether name appears as an identifier anywhere
// in e.
func exprMentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
