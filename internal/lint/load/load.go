// Package load type-checks packages for the lint suite outside go
// vet's unit-at-a-time protocol: the standalone `ehlint ./...` mode and
// the linttest fixture harness both come through here. It shells out to
// `go list -export -json -deps`, which compiles (or fetches from the
// build cache) export data for every dependency, then type-checks the
// target packages from source against that export data — the same
// importer pipeline the vet driver uses, minus the vet.cfg file.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	Dir             string
	ImportPath      string
	Name            string
	Export          string
	GoFiles         []string
	CompiledGoFiles []string
	DepOnly         bool
	Incomplete      bool
}

// sources returns the unit's Go files: CompiledGoFiles when go list was
// asked for them, otherwise GoFiles (go list only fills the former
// under -compiled, which this loader does not need for pure Go).
func (p *listPackage) sources() []string {
	if len(p.CompiledGoFiles) > 0 {
		return p.CompiledGoFiles
	}
	return p.GoFiles
}

// goList runs `go list -export -json -deps` over the patterns in dir
// and decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding package stream: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves every import
// from gc export data files, keyed by canonical import path.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	base := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return base.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// NewInfo allocates a types.Info with every map the analyzers may read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
}

// Packages loads and type-checks the packages matching patterns,
// resolving relative to dir (a directory inside the module).
func Packages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Name == "" || len(p.sources()) == 0 {
			continue
		}
		files, err := parseFiles(fset, p.Dir, p.sources())
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		pkg, info, err := Check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return out, nil
}

// Deps type-checks nothing itself: it loads export data for the given
// import paths (and their dependencies) so a caller can type-check
// source files of its own — the linttest fixture path.
func Deps(dir string, imports []string) (types.Importer, *token.FileSet, error) {
	fset := token.NewFileSet()
	if len(imports) == 0 {
		return exportImporter(fset, nil), fset, nil
	}
	listed, err := goList(dir, imports)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exportImporter(fset, exports), fset, nil
}

// Check type-checks one package's parsed files with full info maps.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// parseFiles parses sources (relative paths resolve against dir) with
// comments retained — the analyzers read directives out of them.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
