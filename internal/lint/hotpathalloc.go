package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// HotPathAlloc enforces the zero-allocation contract on functions
// annotated //ehlint:hotpath: the compiled-plan inference path, the
// episode loop, and the batch dispatcher hold "0 allocs/op" benchmarks,
// and this analyzer turns that property into a compile-time check
// instead of a benchmark regression.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "functions marked //ehlint:hotpath must not contain allocating " +
		"constructs: make/new, slice/map/chan composite literals, &composite " +
		"literals, growing append (self-append x = append(x, ...) and " +
		"append(buf[:0], ...) reuse are allowed), fmt calls (except feeding " +
		"panic), capturing closures, and interface boxing at call sites",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if docHasDirective(fn.Doc, "ehlint:hotpath") {
				checkHotFunc(pass, fn)
			}
		}
	}
	return nil
}

// checkHotFunc walks one annotated function body.
func checkHotFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// Calls feeding panic directly are failure-path formatting
	// (panic(fmt.Sprintf(...))) — dead on the hot path by definition.
	blessed := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call.Fun, "panic") {
			return true
		}
		blessed[call] = true
		for _, arg := range call.Args {
			if c, ok := arg.(*ast.CallExpr); ok {
				blessed[c] = true
			}
		}
		return true
	})

	inspectStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if blessed[v] {
				return true
			}
			checkHotCall(pass, info, v, stack)
		case *ast.CompositeLit:
			switch typeOf(info, v).Underlying().(type) {
			case *types.Slice, *types.Map, *types.Chan:
				pass.Reportf(v.Pos(), "%s composite literal allocates in a //ehlint:hotpath function", underlyingKind(typeOf(info, v)))
			}
		case *ast.UnaryExpr:
			if v.Op.String() == "&" {
				if _, ok := v.X.(*ast.CompositeLit); ok {
					pass.Reportf(v.Pos(), "&composite literal escapes to the heap in a //ehlint:hotpath function")
				}
			}
		case *ast.FuncLit:
			if capturesOuter(info, v, fn) {
				pass.Reportf(v.Pos(), "capturing closure allocates in a //ehlint:hotpath function; hoist it to a named function")
			}
			return false // nested literal bodies are not part of the hot path contract
		}
		return true
	})
}

// checkHotCall flags one call expression: allocating builtins, fmt,
// and interface boxing at the call boundary.
func checkHotCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, stack []ast.Node) {
	switch {
	case isBuiltin(info, call.Fun, "make"):
		pass.Reportf(call.Pos(), "make allocates in a //ehlint:hotpath function; preallocate the buffer on the owner")
		return
	case isBuiltin(info, call.Fun, "new"):
		pass.Reportf(call.Pos(), "new allocates in a //ehlint:hotpath function; preallocate on the owner")
		return
	case isBuiltin(info, call.Fun, "append"):
		if !isReuseAppend(call, stack) {
			pass.Reportf(call.Pos(), "append may grow and allocate in a //ehlint:hotpath function; use x = append(x, ...) over a preallocated buffer")
		}
		return
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates in a //ehlint:hotpath function", sel.Sel.Name)
			return
		}
	}

	// Interface boxing: a concrete argument passed as an interface
	// parameter forces a heap conversion.
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x) with T an interface boxes x.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceOrNil(info, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface boxes its operand in a //ehlint:hotpath function")
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && !isInterfaceOrNil(info, arg) {
			pass.Reportf(arg.Pos(), "argument boxes into interface parameter in a //ehlint:hotpath function")
		}
	}
}

// isReuseAppend reports whether an append call is one of the blessed
// no-growth shapes: x = append(x, ...) (self-append over a buffer that
// amortizes) or append(buf[:0], ...) / append(buf[:n], ...) (explicit
// reslice reuse).
func isReuseAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	if _, ok := call.Args[0].(*ast.SliceExpr); ok {
		return true
	}
	if len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Rhs[0] != ast.Expr(call) {
		return false
	}
	return types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0])
}

// capturesOuter reports whether a function literal references any
// variable declared in the enclosing function but outside the literal.
func capturesOuter(info *types.Info, lit *ast.FuncLit, fn *ast.FuncDecl) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= fn.Pos() && obj.Pos() < lit.Pos() {
			captures = true
		}
		return true
	})
	return captures
}

// isBuiltin reports whether e names the given predeclared function.
func isBuiltin(info *types.Info, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isInterfaceOrNil reports whether the argument already has interface
// type (no boxing) or is the untyped nil.
func isInterfaceOrNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true // be lenient on anything the checker could not type
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return types.IsInterface(tv.Type)
}

// underlyingKind names the allocating underlying type for a message.
func underlyingKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "chan"
	}
	return "composite"
}
