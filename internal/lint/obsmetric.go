package lint

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// ObsMetric polices the Prometheus naming contract around internal/obs:
// family names are part of the operational interface (the smoke script,
// dashboards, and the README all key on them), so they must be
// compile-time constants with conventional shapes, and a family must be
// labeled consistently everywhere it is touched.
var ObsMetric = &analysis.Analyzer{
	Name: "obsmetric",
	Doc: "obs metric family names must be literal/constant snake_case " +
		"strings; counter families end in _total and histogram families in a " +
		"unit suffix (_seconds, _bytes, _total, or a counted-noun unit like " +
		"_requests); obs.Metric label lists are key/value-balanced with " +
		"snake_case keys and consistent arity per family",
	Run: runObsMetric,
}

// unitSuffixes are the histogram/counter unit suffixes the exposition
// contract accepts. _requests covers count-unit histograms (promlint's
// "use the counted noun" convention).
var unitSuffixes = []string{"_total", "_seconds", "_bytes", "_requests"}

func runObsMetric(pass *analysis.Pass) error {
	if pkgBase(pass.Pkg.Path()) == "obs" {
		return nil // the instrument package itself manipulates names generically
	}
	// arity tracks the first-seen label keys per family within the
	// package; every later touch must agree.
	arity := map[string]labelUse{}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleeIn(pass.TypesInfo, call, "internal/obs", "Metric") {
				checkObsMetricCall(pass, call, arity)
				return true
			}
			if kind, nameArg := registryCall(pass, call); kind != "" {
				checkFamilyExpr(pass, kind, nameArg)
			}
			return true
		})
	}
	return nil
}

// labelUse remembers where a family was first labeled and how.
type labelUse struct {
	keys string
	pos  ast.Node
}

// checkObsMetricCall validates one obs.Metric(family, k, v, ...) call:
// constant family, balanced snake_case keys, stable arity.
func checkObsMetricCall(pass *analysis.Pass, call *ast.CallExpr, arity map[string]labelUse) {
	if len(call.Args) == 0 {
		return
	}
	fam, ok := constString(pass.TypesInfo, call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(), "obs.Metric family must be a string literal or named constant, not a computed value")
		return
	}
	checkFamilyName(pass, call.Args[0], fam)

	kv := call.Args[1:]
	if call.Ellipsis.IsValid() {
		return // forwarded slice: arity is the forwarder's problem
	}
	if len(kv)%2 != 0 {
		pass.Reportf(call.Pos(), "obs.Metric(%q, ...) has an odd label list: arguments after the family must be key/value pairs", fam)
		return
	}
	var keys []string
	for i := 0; i < len(kv); i += 2 {
		k, ok := constString(pass.TypesInfo, kv[i])
		if !ok {
			return // dynamic key: cannot check shape or arity
		}
		if !isSnakeCase(k) {
			pass.Reportf(kv[i].Pos(), "label key %q is not snake_case", k)
		}
		keys = append(keys, k)
	}
	sig := strings.Join(keys, ",")
	if prev, seen := arity[fam]; seen {
		if prev.keys != sig {
			pass.Reportf(call.Pos(), "family %q labeled {%s} here but {%s} at %s: label sets must be consistent per family",
				fam, sig, prev.keys, pass.Fset.Position(prev.pos.Pos()))
		}
	} else {
		arity[fam] = labelUse{keys: sig, pos: call}
	}
}

// registryCall recognizes obs.Registry instrument lookups and returns
// the metric kind they imply plus the name argument.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (kind string, nameArg ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return "", nil
	}
	var name string
	switch sel.Sel.Name {
	case "Counter":
		name = "counter"
	case "Gauge", "GaugeFunc":
		name = "gauge"
	case "Histogram":
		name = "histogram"
	case "SetHelp":
		// SetHelp(name, kind, help): the declared kind governs.
		if len(call.Args) >= 2 {
			if k, ok := constString(pass.TypesInfo, call.Args[1]); ok {
				name = k
			}
		}
	default:
		return "", nil
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || !strings.HasSuffix(strings.TrimPrefix(recv.String(), "*"), "internal/obs.Registry") {
		return "", nil
	}
	return name, call.Args[0]
}

// checkFamilyExpr validates the name argument of a registry lookup: it
// must be constant (or an obs.Metric call, which checkObsMetricCall
// already covers) and carry the kind's unit suffix.
func checkFamilyExpr(pass *analysis.Pass, kind string, nameArg ast.Expr) {
	if inner, ok := nameArg.(*ast.CallExpr); ok {
		if calleeIn(pass.TypesInfo, inner, "internal/obs", "Metric") {
			if fam, ok := constString(pass.TypesInfo, inner.Args[0]); ok {
				checkFamilyKind(pass, inner.Args[0], kind, fam)
			}
			return // name shape/arity handled by checkObsMetricCall
		}
	}
	full, ok := constString(pass.TypesInfo, nameArg)
	if !ok {
		pass.Reportf(nameArg.Pos(), "metric name must be a string literal, named constant, or inline obs.Metric(...) call, not a computed value")
		return
	}
	fam := full
	if i := strings.IndexByte(full, '{'); i >= 0 {
		fam = full[:i] // pre-rendered label set: check the family part only
	}
	checkFamilyName(pass, nameArg, fam)
	checkFamilyKind(pass, nameArg, kind, fam)
}

// checkFamilyName enforces the snake_case family shape.
func checkFamilyName(pass *analysis.Pass, at ast.Expr, fam string) {
	if !isSnakeCase(fam) {
		pass.Reportf(at.Pos(), "metric family %q is not snake_case ([a-z][a-z0-9_]*)", fam)
	}
}

// checkFamilyKind enforces per-kind unit suffixes: counters end _total;
// histograms end in a unit suffix. Gauges are dimensionless levels and
// carry no suffix requirement.
func checkFamilyKind(pass *analysis.Pass, at ast.Expr, kind, fam string) {
	switch kind {
	case "counter":
		if !strings.HasSuffix(fam, "_total") {
			pass.Reportf(at.Pos(), "counter family %q must end in _total", fam)
		}
	case "histogram":
		for _, s := range unitSuffixes {
			if strings.HasSuffix(fam, s) {
				return
			}
		}
		pass.Reportf(at.Pos(), "histogram family %q must end in a unit suffix (%s)", fam, strings.Join(unitSuffixes, ", "))
	}
}

// isSnakeCase matches ^[a-z][a-z0-9_]*$ without a regexp.
func isSnakeCase(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}
