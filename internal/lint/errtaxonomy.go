package lint

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// ErrTaxonomy keeps the serving layer's error contract single-sourced:
// handlers wrap a taxonomy sentinel with %w and let the errorCodes
// table choose the wire status. Hand-written error statuses drift from
// the table; %v-wrapped sentinels break errors.Is and therefore the
// table lookup itself.
var ErrTaxonomy = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: "in internal/serve, error statuses route through the errorCodes " +
		"table: http.Error is forbidden, WriteHeader with a constant 4xx/5xx " +
		"status is flagged (success statuses and forwarded variables are " +
		"fine), and fmt.Errorf calls carrying an Err* sentinel must wrap it " +
		"with %w",
	Run: runErrTaxonomy,
}

func runErrTaxonomy(pass *analysis.Pass) error {
	if pkgBase(pass.Pkg.Path()) != "serve" {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case calleeIn(pass.TypesInfo, call, "net/http", "Error"):
				pass.Reportf(call.Pos(), "http.Error bypasses the errorCodes table; wrap a taxonomy sentinel and use writeError (or writeErr for non-taxonomy statuses)")
			case isWriteHeaderCall(call):
				if code, ok := constInt(pass.TypesInfo, call.Args[0]); ok && code >= 400 {
					pass.Reportf(call.Pos(), "WriteHeader(%d) hard-codes an error status; route it through the errorCodes table (writeError)", code)
				}
			case calleeIn(pass.TypesInfo, call, "fmt", "Errorf"):
				checkSentinelWrap(pass, call)
			}
			return true
		})
	}
	return nil
}

// isWriteHeaderCall matches w.WriteHeader(status) shapes.
func isWriteHeaderCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "WriteHeader" && len(call.Args) == 1
}

// checkSentinelWrap flags fmt.Errorf calls that carry a sentinel error
// (an Err*-named error value) without a %w verb: the result no longer
// matches errors.Is, so the errorCodes table cannot map it.
func checkSentinelWrap(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := constString(pass.TypesInfo, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		name := errValueName(arg)
		if name == "" || !strings.HasPrefix(name, "Err") {
			continue
		}
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || t.String() != "error" {
			continue
		}
		pass.Reportf(arg.Pos(), "sentinel %s formatted without %%w: errors.Is (and the errorCodes table) will not match the result", name)
	}
}

// errValueName returns the terminal identifier name of x or pkg.x.
func errValueName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}
