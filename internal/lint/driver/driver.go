// Package driver runs a set of analyzers either as a `go vet -vettool`
// unit checker or as a standalone checker over package patterns.
//
// The vettool protocol (mirroring x/tools' unitchecker against cmd/go's
// internal/work/exec.go): go vet first interrogates the tool with
// `-flags` (expecting a JSON flag inventory on stdout), then invokes it
// once per package as `tool <vetflags> <objdir>/vet.cfg`, where vet.cfg
// is a JSON Config naming the unit's sources and the export-data files
// of its dependencies. Diagnostics go to stderr as file:line:col:
// message and a non-zero exit marks findings; an empty facts file is
// written to Config.VetxOutput so cmd/go's result caching works.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// vetConfig is the JSON shape cmd/go writes to <objdir>/vet.cfg. Field
// names follow x/tools' unitchecker.Config — the wire contract.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the checker entry point: it dispatches on the protocol
// arguments (-flags, -V=full, a *.cfg unit file) and otherwise treats
// the arguments as package patterns for a standalone run. It does not
// return.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// Protocol singletons first: cmd/go probes these before any unit.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			// We accept no analyzer flags; an empty inventory tells
			// go vet not to forward any.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasPrefix(args[0], "-V"):
			printVersion(progname)
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitRun(args[0], analyzers))
		}
	}

	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: %s [packages] | go vet -vettool=%s [packages]\n", progname, progname)
		os.Exit(2)
	}
	os.Exit(standaloneRun(args, analyzers))
}

// printVersion answers `-V=full` in the exact shape cmd/go's tool-ID
// computation expects: name, "version", and a content hash.
func printVersion(progname string) {
	hash := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			hash = fmt.Sprintf("%02x", sha256.Sum256(data))
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, hash)
}

// unitRun analyzes one vet.cfg unit. Returns the process exit code.
func unitRun(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing vet config: %v\n", cfgPath, err)
		return 1
	}

	// Facts-only runs over dependencies: we compute no facts, so just
	// satisfy the caching contract and leave.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseUnit(fset, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	imp := unitImporter(fset, &cfg)
	info := load.NewInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, buildArch()),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: type checking failed: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := runAnalyzers(analyzers, &load.Package{
		Path: cfg.ImportPath, Fset: fset, Files: files, Types: pkg, Info: info,
	})
	writeVetx(cfg.VetxOutput)
	if len(diags) == 0 {
		return 0
	}
	printDiags(fset, diags)
	return 2
}

// standaloneRun loads patterns via the go list pipeline and analyzes
// every matched package.
func standaloneRun(patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := load.Packages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		if diags := runAnalyzers(analyzers, pkg); len(diags) > 0 {
			printDiags(pkg.Fset, diags)
			exit = 2
		}
	}
	return exit
}

// tagged pairs a diagnostic with the analyzer that produced it.
type tagged struct {
	analysis.Diagnostic
	analyzer string
}

// runAnalyzers applies every analyzer to one package and returns the
// position-sorted findings.
func runAnalyzers(analyzers []*analysis.Analyzer, pkg *load.Package) []tagged {
	var diags []tagged
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, tagged{Diagnostic: d, analyzer: name})
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, tagged{
				Diagnostic: analysis.Diagnostic{Message: fmt.Sprintf("analyzer failed: %v", err)},
				analyzer:   name,
			})
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

func printDiags(fset *token.FileSet, diags []tagged) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.analyzer)
	}
}

// parseUnit parses the unit's Go sources (cmd/go invokes the tool with
// the package directory as cwd, so relative names resolve as-is).
func parseUnit(fset *token.FileSet, cfg *vetConfig) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// unitImporter resolves the unit's imports from the export-data files
// cmd/go listed in PackageFile, routing through ImportMap for vendored
// or otherwise renamed paths.
func unitImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	base := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerClosure(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return base.Import(path)
	})
}

type importerClosure func(string) (*types.Package, error)

func (f importerClosure) Import(path string) (*types.Package, error) { return f(path) }

func writeVetx(path string) {
	if path == "" {
		return
	}
	_ = os.WriteFile(path, nil, 0o666)
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}
