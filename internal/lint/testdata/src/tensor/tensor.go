// Package tensor is a bitident fixture: its package-path base matches
// a fenced kernel package, so the analyzer applies.
package tensor

import (
	"math"
	"sort"
	"sync"
)

// SumMap accumulates floats in map iteration order — nondeterministic.
func SumMap(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation over map iteration order"
	}
	return sum
}

// SumMapRebind hides the accumulation behind a plain assignment.
func SumMapRebind(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "float accumulation over map iteration order"
	}
	return sum
}

// SumMapSorted is the blessed shape: iterate sorted keys.
func SumMapSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // string append: no float state fed
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// CountMap feeds integer state from a map range — not a float hazard.
func CountMap(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Fma uses the fused instruction, whose single rounding differs from
// the two-rounding mul+add the fence specifies.
func Fma(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want "math.FMA fuses the rounding step"
}

// MulAdd is the bit-specified form.
func MulAdd(a, b, c float64) float64 {
	return a*b + c
}

// ParallelSumShared races goroutines into one captured accumulator.
func ParallelSumShared(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	half := len(xs) / 2
	for _, band := range [][]float64{xs[:half], xs[half:]} {
		wg.Add(1)
		go func(band []float64) {
			defer wg.Done()
			for _, v := range band {
				sum += v // want "goroutine writes captured float sum"
			}
		}(band)
	}
	wg.Wait()
	return sum
}

// ParallelSumBands is the blessed row-band pattern: each goroutine owns
// a disjoint slice element; the merge happens in fixed order after.
func ParallelSumBands(xs []float64) float64 {
	partial := make([]float64, 2)
	var wg sync.WaitGroup
	half := len(xs) / 2
	for i, band := range [][]float64{xs[:half], xs[half:]} {
		wg.Add(1)
		go func(i int, band []float64) {
			defer wg.Done()
			var s float64
			for _, v := range band {
				s += v
			}
			partial[i] = s
		}(i, band)
	}
	wg.Wait()
	return partial[0] + partial[1]
}

// PackedDeqBands is the int8-fast head epilogue shape: integer
// accumulation (exact at any order) with a single float scaling per
// output, each goroutine writing a disjoint dst band — blessed.
func PackedDeqBands(dst []float32, acc []int32, scale float32) {
	var wg sync.WaitGroup
	half := len(acc) / 2
	for _, b := range [][2]int{{0, half}, {half, len(acc)}} {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				dst[i] = float32(acc[i]) * scale
			}
		}(b[0], b[1])
	}
	wg.Wait()
}

// CalibrateFromMap folds per-layer activation ceilings out of a map —
// the quantization-scale hazard the fence exists for: scales would
// depend on iteration order, and with them every packed weight.
func CalibrateFromMap(ceilings map[string]float64) float64 {
	scale := 1.0
	for _, c := range ceilings {
		scale = scale * (c / 255) // want "float accumulation over map iteration order"
	}
	return scale
}
