// Package exper is a ctxthread fixture: its package-path base matches a
// blocking package, so both rules apply.
package exper

import "context"

// Grid is a stand-in work description.
type Grid struct{ N int }

// RunContext is the blessed shape: ctx first, threaded downward.
func RunContext(ctx context.Context, g *Grid) error {
	return step(ctx, g.N)
}

// RunLate buries the context mid-signature.
func RunLate(g *Grid, ctx context.Context) error { // want "context.Context must be the first parameter"
	return step(ctx, g.N)
}

// Run mints a root context in library code.
func Run(g *Grid) error {
	return RunContext(context.Background(), g) // want "context.Background\\(\\) in library code"
}

// RunTODO reaches for the placeholder root.
func RunTODO(g *Grid) error {
	return RunContext(context.TODO(), g) // want "context.TODO\\(\\) in library code"
}

// RunDeprecated keeps the old no-context shape alive behind the
// standard marker, which blesses its Background call.
//
// Deprecated: use RunContext.
func RunDeprecated(g *Grid) error {
	return RunContext(context.Background(), g)
}

// NewLifecycleRoot demonstrates the explicit escape hatch for true
// process/server lifecycle roots.
func NewLifecycleRoot() (context.Context, context.CancelFunc) {
	//ehlint:allow ctxbg — this constructor is the lifecycle root; Shutdown cancels it
	return context.WithCancel(context.Background())
}

func step(ctx context.Context, n int) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
