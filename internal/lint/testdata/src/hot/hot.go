// Package hot is a hotpathalloc fixture: only functions annotated
// //ehlint:hotpath are checked.
package hot

import (
	"fmt"
	"sort"
)

// Scratch owns the preallocated buffers a hot path reuses.
type Scratch struct {
	buf  []float64
	outs []int
}

// Unannotated allocates freely: without the annotation nothing fires.
func Unannotated(n int) []int {
	out := make([]int, n)
	fmt.Println(len(out))
	return out
}

// BadMake allocates a fresh buffer per call.
//
//ehlint:hotpath
func (s *Scratch) BadMake(n int) []float64 {
	tmp := make([]float64, n) // want "make allocates in a //ehlint:hotpath function"
	return tmp
}

// BadLiteral builds a slice literal per call.
//
//ehlint:hotpath
func BadLiteral(a, b int) []int {
	return []int{a, b} // want "slice composite literal allocates"
}

// BadEscape heap-allocates the struct it returns.
//
//ehlint:hotpath
func BadEscape(n int) *Scratch {
	return &Scratch{outs: nil} // want "&composite literal escapes"
}

// BadAppend grows a fresh slice.
//
//ehlint:hotpath
func BadAppend(dst []int, xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(dst, x) // want "append may grow and allocate"
	}
	return out
}

// BadFmt formats on the hot path.
//
//ehlint:hotpath
func BadFmt(n int) string {
	return fmt.Sprintf("n=%d", n) // want "fmt.Sprintf allocates"
}

// BadClosure captures a local.
//
//ehlint:hotpath
func BadClosure(xs []int) {
	n := 0
	sort.Slice(xs, func(i, j int) bool { // want "argument boxes into interface parameter" "capturing closure allocates"
		n++
		return xs[i] < xs[j]
	})
	_ = n
}

// BadBoxing passes a concrete value where an interface is expected.
//
//ehlint:hotpath
func BadBoxing(s fmt.Stringer) {
	consume(42) // want "argument boxes into interface parameter"
	consume(s)  // already an interface: no boxing
}

func consume(v any) { _ = v }

// GoodHot is the blessed shape: self-append over owner-preallocated
// buffers, reslice reuse, struct values, and panic-path formatting.
//
//ehlint:hotpath
func (s *Scratch) GoodHot(xs []float64) float64 {
	if len(xs) > cap(s.buf) {
		panic(fmt.Sprintf("hot: %d exceeds scratch capacity %d", len(xs), cap(s.buf)))
	}
	buf := s.buf[:0]
	for _, x := range xs {
		buf = append(buf, x*2)
	}
	buf = append(buf[:0], xs...)
	var sum float64
	for _, v := range buf {
		sum += v
	}
	return sum
}

// Packed is a pre-packed weight matrix, the int8-fast kernel shape:
// panels are laid out at compile time so the kernel never allocates.
type Packed struct {
	panels []uint64
}

// BadPackPerCall repacks weights inside the kernel — the exact
// per-call allocation the packed-weight pipeline moved to plan compile
// time.
//
//ehlint:hotpath
func BadPackPerCall(w []int8, k int) *Packed {
	panels := make([]uint64, len(w)/2) // want "make allocates in a //ehlint:hotpath function"
	for i := range panels {
		lo := uint64(uint8(w[2*i]) + 128)
		hi := uint64(uint8(w[2*i+1]) + 128)
		panels[i] = lo | hi<<32
	}
	return &Packed{panels: panels} // want "&composite literal escapes"
}

// GoodPackedKernel is the blessed dual-lane inner loop: bounds-check
// eliminating re-slices, fixed-size array-pointer copies, and SWAR
// word loads are all allocation-free.
//
//ehlint:hotpath
func (w *Packed) GoodPackedKernel(dst []uint8, col []uint8, patch []uint8) uint64 {
	// Fixed-size copy through a slice-to-array-pointer conversion.
	*(*[5]uint8)(dst) = *(*[5]uint8)(patch)
	// Re-slice so the ranged loop proves the panel access in bounds.
	wp := w.panels[:len(col)]
	var a0, a1 uint64
	for p, v := range col {
		a0 += wp[p] * uint64(v)
		a1 += uint64(v)
	}
	return a0 - a1<<7
}
