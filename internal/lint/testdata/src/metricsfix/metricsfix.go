// Package metricsfix is an obsmetric fixture: it exercises the naming,
// unit-suffix, and label-arity rules against the real repro/internal/obs
// API.
package metricsfix

import (
	"repro/internal/obs"
)

// Named constants are as good as literals: constant folding sees both.
const mGoodTotal = "fixture_events_total"

// Good covers the blessed shapes.
func Good(r *obs.Registry, model string) {
	r.Counter(mGoodTotal).Inc()
	r.Counter(obs.Metric("fixture_drops_total", "model", model)).Inc()
	r.Gauge("fixture_queue_depth").Set(1) // gauges are unit-suffix exempt
	r.Histogram("fixture_latency_seconds", obs.LinearBuckets(0, 0.1, 5)).Observe(0.2)
	r.SetHelp(mGoodTotal, "counter", "Total fixture events.")
}

// BadNonLiteral computes the family name at run time.
func BadNonLiteral(r *obs.Registry, name string) {
	r.Counter(name).Inc() // want "metric name must be a string literal, named constant, or inline obs.Metric"
}

// BadCounterSuffix forgets the _total convention.
func BadCounterSuffix(r *obs.Registry) {
	r.Counter("fixture_events").Inc() // want "counter family \"fixture_events\" must end in _total"
}

// BadHistogramSuffix has no unit suffix at all.
func BadHistogramSuffix(r *obs.Registry) {
	r.Histogram("fixture_latency", nil).Observe(1) // want "histogram family \"fixture_latency\" must end in a unit suffix"
}

// BadSnake breaks snake_case in the family and a label key.
func BadSnake(r *obs.Registry, model string) {
	r.Counter("fixtureEvents_total").Inc()                                 // want "not snake_case"
	r.Counter(obs.Metric("fixture_reads_total", "modelName", model)).Inc() // want "label key \"modelName\" is not snake_case"
	_ = obs.Metric("fixture_writes_total", "model", model, "dangling")     // want "has an odd label list"
}

// BadArity registers the same family with two different label sets.
func BadArity(r *obs.Registry, model, shard string) {
	r.Counter(obs.Metric("fixture_hits_total", "model", model)).Inc()
	r.Counter(obs.Metric("fixture_hits_total", "model", model, "shard", shard)).Inc() // want "family \"fixture_hits_total\" labeled \\{model,shard\\} here but \\{model\\}"
}

// Forwarding a kv slice is opaque to constant folding and stays legal.
func Forward(r *obs.Registry, kv []string) {
	r.Counter(obs.Metric("fixture_fwd_total", kv...)).Inc()
}
