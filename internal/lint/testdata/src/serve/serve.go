// Package serve is an errtaxonomy fixture: its package-path base
// matches the serving package, so the handler rules apply.
package serve

import (
	"errors"
	"fmt"
	"net/http"
)

// ErrBadInput is the fixture's taxonomy sentinel.
var ErrBadInput = errors.New("bad input")

// handleRaw writes error statuses by hand — both forms flagged.
func handleRaw(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("q") == "" {
		http.Error(w, "missing q", http.StatusBadRequest) // want "http.Error bypasses the errorCodes table"
		return
	}
	w.WriteHeader(http.StatusInternalServerError) // want "WriteHeader\\(500\\) hard-codes an error status"
}

// handleTaxonomy is the blessed shape: wrap a sentinel, let the
// errorCodes table pick the status. Success statuses and forwarded
// variables stay legal.
func handleTaxonomy(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("q") == "" {
		writeError(w, fmt.Errorf("%w: missing q", ErrBadInput))
		return
	}
	w.WriteHeader(http.StatusOK) // success status: not an error route
}

// forward mirrors statusRecorder.WriteHeader: a variable status is the
// middleware's forwarding pattern, not a hand-mapped error.
func forward(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// lostSentinel formats the sentinel with %v, severing errors.Is.
func lostSentinel(name string) error {
	return fmt.Errorf("resolve %s: %v", name, ErrBadInput) // want "sentinel ErrBadInput formatted without %w"
}

// keptSentinel wraps properly.
func keptSentinel(name string) error {
	return fmt.Errorf("resolve %s: %w", name, ErrBadInput)
}

// writeError is the fixture's stand-in for the real taxonomy writer.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, ErrBadInput) {
		code = http.StatusBadRequest
	}
	http.Error(w, err.Error(), code) // want "http.Error bypasses the errorCodes table"
}
