// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) for the repo's custom vet checks. The module is
// deliberately zero-dependency, so instead of importing x/tools the
// lint suite reimplements the thin slice it needs against the standard
// library's go/ast and go/types. Analyzers written against this package
// keep the upstream shape — a later migration to the real
// golang.org/x/tools/go/analysis is a mechanical import swap.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: a name, a doc string (first line is
// the summary), and the Run function applied once per package.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic tag. It must be
	// a valid Go identifier.
	Name string
	// Doc documents what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Report.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass is one application of an Analyzer to one package: the syntax,
// the type information, and the reporting sink.
type Pass struct {
	// Analyzer is the analysis being applied.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression/object maps.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// renders it as file:line:col: message, the format go vet relays.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
