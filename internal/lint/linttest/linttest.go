// Package linttest is a minimal analogue of x/tools'
// go/analysis/analysistest: it type-checks a fixture package under
// testdata/src/<name>, runs one analyzer over it, and compares the
// reported diagnostics against `// want "regexp"` comments placed on
// the offending lines. A line with no want comment must produce no
// diagnostic; every want comment must be matched by exactly one
// diagnostic on its line.
//
// Fixtures may import the standard library and real module packages
// (e.g. repro/internal/obs): dependencies are resolved through
// `go list -export` from the module root, the same pipeline the
// standalone checker uses.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// wantRe matches a `// want "..." "..."` comment; quotedRe then pulls
// out the individual patterns (several expectations may share a line).
var (
	wantRe   = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// expectation is one `// want` comment: a line and a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run type-checks the fixture directory as one package and checks the
// analyzer's diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDir string) {
	t.Helper()

	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(fixtureDir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", fixtureDir)
	}

	moduleRoot, err := findModuleRoot(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	var importList []string
	for imp := range imports {
		importList = append(importList, imp)
	}
	sort.Strings(importList)
	imp, _, err := load.Deps(moduleRoot, importList)
	if err != nil {
		t.Fatalf("loading fixture dependencies: %v", err)
	}
	// The fixture's package path is its directory name, so analyzers
	// that scope by package-path base treat it like the real package.
	pkg, info, err := load.Check(filepath.Base(fixtureDir), fset, files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	wants := collectWants(t, fset, files)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !consumeWant(wants, filepath.Base(pos.Filename), pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collectWants scans the fixture comments for want expectations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					// want patterns are Go string literals, same as
					// analysistest: `\\(` in source means regexp `\(`.
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("bad want literal %s: %v", q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pat, err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &expectation{
						file:    filepath.Base(pos.Filename),
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	return wants
}

// consumeWant marks the first unmatched expectation on (file, line)
// whose pattern matches msg.
func consumeWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// findModuleRoot walks up from dir to the enclosing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", os.ErrNotExist
		}
		abs = parent
	}
}
