// Package lint hosts the repo's custom analyzers — the mechanical form
// of invariants that were previously enforced only by review:
//
//   - bitident: no nondeterministic float accumulation in the kernel
//     packages (the bit-identity fence).
//   - hotpathalloc: functions annotated //ehlint:hotpath stay free of
//     allocating constructs.
//   - ctxthread: blocking APIs thread context.Context; no
//     context.Background()/TODO() in library code.
//   - errtaxonomy: serve handlers route error statuses through the
//     errorCodes table and wrap taxonomy sentinels with %w.
//   - obsmetric: metric family names are literal, snake_case, and
//     unit-suffixed, with consistent label arity.
//
// The suite runs as `go vet -vettool` via cmd/ehlint (see make lint).
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// All returns the repo's analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		BitIdent,
		HotPathAlloc,
		CtxThread,
		ErrTaxonomy,
		ObsMetric,
	}
}

// pkgBase returns the last element of an import path — analyzers scope
// themselves by it so fixture packages behave like the real ones.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isTestFile reports whether pos lies in a _test.go file. go vet
// analyzes the test variant of each package, so analyzers that police
// production code skip test sources explicitly.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// calleeIn resolves a call of the form pkg.Name and reports whether it
// names Name in a package whose path ends with pkgSuffix (e.g. "math",
// "internal/obs").
func calleeIn(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// constString returns the compile-time string value of e, if any.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constInt returns the compile-time integer value of e, if any.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return v, ok
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent returns the leftmost identifier of an lvalue expression
// (x, x.f, x[i], x.f[i].g → x), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the object an identifier uses was
// declared outside the [lo, hi] node span — i.e. the expression writes
// state owned by an enclosing scope.
func declaredOutside(info *types.Info, id *ast.Ident, lo, hi token.Pos) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// allowedLines collects, per file, the source lines blessed by an
// `//ehlint:allow <check>` comment: the comment's own line (trailing
// form) and the next line (own-line form).
func allowedLines(fset *token.FileSet, file *ast.File, check string) map[int]bool {
	directive := "//ehlint:allow " + check
	var lines map[int]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directive) {
				continue
			}
			if lines == nil {
				lines = map[int]bool{}
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// docHasDirective reports whether a doc comment contains a line whose
// content (after "//") starts with directive — e.g. "ehlint:hotpath".
func docHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// docIsDeprecated reports whether a doc comment carries the standard
// "Deprecated:" marker.
func docIsDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "Deprecated:") {
			return true
		}
	}
	return false
}

// inspectStack walks n, calling f with each node and the stack of its
// ancestors (outermost first, not including n). Returning false prunes
// the subtree.
func inspectStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := f(node, stack)
		if ok {
			stack = append(stack, node)
		}
		return ok
	})
}
