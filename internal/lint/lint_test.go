package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestBitIdent(t *testing.T) {
	linttest.Run(t, lint.BitIdent, "testdata/src/tensor")
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "testdata/src/hot")
}

func TestCtxThread(t *testing.T) {
	linttest.Run(t, lint.CtxThread, "testdata/src/exper")
}

func TestErrTaxonomy(t *testing.T) {
	linttest.Run(t, lint.ErrTaxonomy, "testdata/src/serve")
}

func TestObsMetric(t *testing.T) {
	linttest.Run(t, lint.ObsMetric, "testdata/src/metricsfix")
}

// TestAll ensures the suite registry stays wired: five analyzers with
// distinct, stable names (the names appear in diagnostics and docs).
func TestAll(t *testing.T) {
	all := lint.All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d analyzers, want 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"bitident", "hotpathalloc", "ctxthread", "errtaxonomy", "obsmetric"} {
		if !seen[name] {
			t.Errorf("All() missing analyzer %q", name)
		}
	}
}
