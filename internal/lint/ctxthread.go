package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// ctxFirstPkgs are the packages whose exported blocking APIs must put
// context.Context first — the engine/runtime layers every long-running
// call threads cancellation through.
var ctxFirstPkgs = map[string]bool{
	"exper":  true,
	"core":   true,
	"search": true,
	"batch":  true,
	"fleet":  true,
}

// CtxThread enforces context threading: exported APIs in the blocking
// packages take ctx as their first parameter, and library code never
// mints its own root context — context.Background()/context.TODO() are
// reserved for main functions, tests, and the deprecated façade.
var CtxThread = &analysis.Analyzer{
	Name: "ctxthread",
	Doc: "exported APIs in internal/{exper,core,search,batch,fleet} must accept " +
		"context.Context as their first parameter; context.Background() and " +
		"context.TODO() are flagged in library code unless the enclosing " +
		"function is marked Deprecated: or the call carries an " +
		"//ehlint:allow ctxbg comment naming why it is a lifecycle root",
	Run: runCtxThread,
}

func runCtxThread(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // binaries own their root context
	}
	checkFirst := ctxFirstPkgs[pkgBase(pass.Pkg.Path())]
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		allowed := allowedLines(pass.Fset, file, "ctxbg")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if checkFirst && fn.Name.IsExported() && fn.Body != nil {
				checkCtxFirst(pass, fn)
			}
			if fn.Body == nil || docIsDeprecated(fn.Doc) {
				continue
			}
			checkNoRootCtx(pass, fn, allowed)
		}
	}
	return nil
}

// checkCtxFirst flags an exported function whose context.Context
// parameter is not the first parameter.
func checkCtxFirst(pass *analysis.Pass, fn *ast.FuncDecl) {
	params := fn.Type.Params
	if params == nil {
		return
	}
	argIndex := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && argIndex != 0 {
			pass.Reportf(field.Pos(), "%s: context.Context must be the first parameter", fn.Name.Name)
		}
		argIndex += n
	}
}

// checkNoRootCtx flags context.Background()/context.TODO() calls
// inside one function body.
func checkNoRootCtx(pass *analysis.Pass, fn *ast.FuncDecl, allowed map[int]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch {
		case calleeIn(pass.TypesInfo, call, "context", "Background"):
			name = "Background"
		case calleeIn(pass.TypesInfo, call, "context", "TODO"):
			name = "TODO"
		default:
			return true
		}
		if allowed[pass.Fset.Position(call.Pos()).Line] {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() in library code: thread the caller's context (or context.WithoutCancel for intentional detachment); bless true lifecycle roots with //ehlint:allow ctxbg",
			name)
		return true
	})
}

// isContextType reports whether a parameter type expression denotes
// context.Context.
func isContextType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && t.String() == "context.Context"
}
