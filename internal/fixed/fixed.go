// Package fixed implements integer-quantized inference kernels of the
// kind an MSP432-class MCU executes: int8 weights, uint8 activations,
// int32 accumulators, and power-of-two-free requantization through an
// explicit float scale (the MSP430/432 LEA-style MAC pipeline).
//
// The compress package's "fake quantization" simulates quantized accuracy
// in float32; this package is the deployment-side counterpart proving the
// arithmetic is implementable with pure integer MACs: QuantizeLayer lowers
// a float layer to integer form, and the kernels here reproduce the fake-
// quantized float results within rounding tolerance (validated by tests).
package fixed

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// QuantizedTensor is an integer tensor with a scale: value ≈ scale × q.
type QuantizedTensor struct {
	Shape []int
	Q     []int32
	Scale float64
}

// Volume returns the element count.
func (t *QuantizedTensor) Volume() int {
	v := 1
	for _, d := range t.Shape {
		v *= d
	}
	return v
}

// Dequantize expands the tensor back to float32.
func (t *QuantizedTensor) Dequantize() *tensor.Tensor {
	out := tensor.New(t.Shape...)
	for i, q := range t.Q {
		out.Data[i] = float32(float64(q) * t.Scale)
	}
	return out
}

// QuantizeWeights lowers float weights to k-bit signed integers with the
// given scale: q = clamp(round(w/s), −2^{k−1}, 2^{k−1}−1).
func QuantizeWeights(w *tensor.Tensor, scale float64, bits int) (*QuantizedTensor, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("fixed: non-positive weight scale %g", scale)
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("fixed: weight bits %d outside [1,16]", bits)
	}
	lb := -int32(1) << uint(bits-1)
	ub := int32(1)<<uint(bits-1) - 1
	qt := &QuantizedTensor{
		Shape: append([]int(nil), w.Shape()...),
		Q:     make([]int32, w.Len()),
		Scale: scale,
	}
	for i, v := range w.Data {
		q := int32(math.Round(float64(v) / scale))
		if q < lb {
			q = lb
		}
		if q > ub {
			q = ub
		}
		qt.Q[i] = q
	}
	return qt, nil
}

// QuantizeActivations lowers non-negative float activations to k-bit
// unsigned integers spanning [0, maxVal]: q = clamp(round(x/s), 0, 2^k−1)
// with s = maxVal/(2^k−1).
func QuantizeActivations(x *tensor.Tensor, maxVal float64, bits int) (*QuantizedTensor, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("fixed: activation bits %d outside [1,16]", bits)
	}
	if maxVal <= 0 {
		maxVal = 1e-9
	}
	levels := float64(int32(1)<<uint(bits) - 1)
	scale := maxVal / levels
	qt := &QuantizedTensor{
		Shape: append([]int(nil), x.Shape()...),
		Q:     make([]int32, x.Len()),
		Scale: scale,
	}
	for i, v := range x.Data {
		f := float64(v)
		if f < 0 || math.IsNaN(f) {
			f = 0
		}
		// Clamp in the float domain before integer conversion so
		// out-of-range inputs cannot overflow int32.
		q := math.Round(f / scale)
		if q > levels {
			q = levels
		}
		qt.Q[i] = int32(q)
	}
	return qt, nil
}

// ConvLayer is an integer convolution: weights [outC, inC, kh, kw] as
// int32 (holding int8..int16 range values), bias pre-scaled into the
// accumulator domain.
type ConvLayer struct {
	OutC, InC, KH, KW int
	Stride, Pad       int
	W                 *QuantizedTensor
	// BiasAcc is the bias expressed in accumulator units (bias /
	// (wScale·xScale)), added before requantization.
	BiasAcc []int64
	// WScale is the weight scale (copied from W for convenience).
	WScale float64
}

// NewConvLayerFrom lowers an nn.Conv2D to integer form with the given
// weight bitwidth. The weight scale is the L2-optimal scale for the
// layer's current weights.
func NewConvLayerFrom(l *nn.Conv2D, bits int, wScale float64) (*ConvLayer, error) {
	qw, err := QuantizeWeights(l.W.Value, wScale, bits)
	if err != nil {
		return nil, err
	}
	return &ConvLayer{
		OutC: l.OutC, InC: l.InC, KH: l.KH, KW: l.KW,
		Stride: l.StrideH, Pad: l.PadH,
		W:      qw,
		WScale: wScale,
		// BiasAcc is filled by the caller once the input scale is known.
	}, nil
}

// SetBias converts float biases into accumulator units for the given
// input activation scale.
func (c *ConvLayer) SetBias(bias []float32, xScale float64) {
	c.BiasAcc = make([]int64, len(bias))
	den := c.WScale * xScale
	for i, b := range bias {
		c.BiasAcc[i] = int64(math.Round(float64(b) / den))
	}
}

// Forward runs the integer convolution on a quantized CHW input and
// returns int64 accumulators [outC, outH, outW] plus the accumulator
// scale (wScale·xScale). ReLU and requantization are applied by the
// caller via RequantizeReLU.
func (c *ConvLayer) Forward(x *QuantizedTensor, h, w int) ([]int64, int, int, float64, error) {
	if x.Volume() != c.InC*h*w {
		return nil, 0, 0, 0, fmt.Errorf("fixed: conv input volume %d ≠ %d×%d×%d", x.Volume(), c.InC, h, w)
	}
	outH := (h+2*c.Pad-c.KH)/c.Stride + 1
	outW := (w+2*c.Pad-c.KW)/c.Stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, 0, 0, 0, fmt.Errorf("fixed: conv output empty for %dx%d input", h, w)
	}
	acc := make([]int64, c.OutC*outH*outW)
	for oc := 0; oc < c.OutC; oc++ {
		bias := int64(0)
		if c.BiasAcc != nil {
			bias = c.BiasAcc[oc]
		}
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				sum := bias
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.KH; ky++ {
						iy := oy*c.Stride - c.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.KW; kx++ {
							ix := ox*c.Stride - c.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							wq := c.W.Q[((oc*c.InC+ic)*c.KH+ky)*c.KW+kx]
							xq := x.Q[(ic*h+iy)*w+ix]
							sum += int64(wq) * int64(xq)
						}
					}
				}
				acc[(oc*outH+oy)*outW+ox] = sum
			}
		}
	}
	return acc, outH, outW, c.WScale * x.Scale, nil
}

// DenseLayer is an integer fully-connected layer.
type DenseLayer struct {
	In, Out int
	W       *QuantizedTensor // [Out, In]
	BiasAcc []int64
	WScale  float64
}

// NewDenseLayerFrom lowers an nn.Dense layer.
func NewDenseLayerFrom(l *nn.Dense, bits int, wScale float64) (*DenseLayer, error) {
	qw, err := QuantizeWeights(l.W.Value, wScale, bits)
	if err != nil {
		return nil, err
	}
	return &DenseLayer{In: l.In, Out: l.Out, W: qw, WScale: wScale}, nil
}

// SetBias converts float biases into accumulator units.
func (d *DenseLayer) SetBias(bias []float32, xScale float64) {
	d.BiasAcc = make([]int64, len(bias))
	den := d.WScale * xScale
	for i, b := range bias {
		d.BiasAcc[i] = int64(math.Round(float64(b) / den))
	}
}

// Forward computes integer out = W·x + b, returning accumulators and the
// accumulator scale.
func (d *DenseLayer) Forward(x *QuantizedTensor) ([]int64, float64, error) {
	if x.Volume() != d.In {
		return nil, 0, fmt.Errorf("fixed: dense input %d ≠ %d", x.Volume(), d.In)
	}
	acc := make([]int64, d.Out)
	for o := 0; o < d.Out; o++ {
		sum := int64(0)
		if d.BiasAcc != nil {
			sum = d.BiasAcc[o]
		}
		row := d.W.Q[o*d.In : (o+1)*d.In]
		for i, wq := range row {
			sum += int64(wq) * int64(x.Q[i])
		}
		acc[o] = sum
	}
	return acc, d.WScale * x.Scale, nil
}

// RequantizeReLU maps int64 accumulators (at accScale) to a k-bit
// unsigned activation tensor spanning [0, maxVal]: the fused
// ReLU+requantize step of an integer pipeline.
func RequantizeReLU(acc []int64, shape []int, accScale, maxVal float64, bits int) (*QuantizedTensor, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("fixed: requantize bits %d outside [1,16]", bits)
	}
	if maxVal <= 0 {
		maxVal = 1e-9
	}
	levels := int64(1)<<uint(bits) - 1
	outScale := maxVal / float64(levels)
	// Integer-only requantization uses a fixed-point multiplier
	// approximating accScale/outScale; we compute it in float here but
	// round once, matching a Q31 multiplier implementation.
	mult := accScale / outScale
	qt := &QuantizedTensor{Shape: append([]int(nil), shape...), Q: make([]int32, len(acc)), Scale: outScale}
	for i, a := range acc {
		if a < 0 {
			a = 0 // ReLU in the accumulator domain (scale > 0)
		}
		q := int64(math.Round(float64(a) * mult))
		if q > levels {
			q = levels
		}
		qt.Q[i] = int32(q)
	}
	return qt, nil
}

// MaxPool2 applies 2×2/stride-2 max pooling on a quantized CHW tensor.
// Max pooling commutes with quantization, so it operates directly on the
// integer codes.
func MaxPool2(x *QuantizedTensor, c, h, w int) (*QuantizedTensor, int, int, error) {
	if x.Volume() != c*h*w {
		return nil, 0, 0, fmt.Errorf("fixed: pool input volume %d ≠ %d×%d×%d", x.Volume(), c, h, w)
	}
	oh, ow := h/2, w/2
	if oh == 0 || ow == 0 {
		return nil, 0, 0, fmt.Errorf("fixed: pool output empty")
	}
	out := &QuantizedTensor{Shape: []int{c, oh, ow}, Q: make([]int32, c*oh*ow), Scale: x.Scale}
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := int32(math.MinInt32)
				for ky := 0; ky < 2; ky++ {
					for kx := 0; kx < 2; kx++ {
						v := x.Q[(ci*h+oy*2+ky)*w+ox*2+kx]
						if v > best {
							best = v
						}
					}
				}
				out.Q[(ci*oh+oy)*ow+ox] = best
			}
		}
	}
	return out, oh, ow, nil
}

// ArgMax returns the index of the largest accumulator — integer
// classification needs no softmax.
func ArgMax(acc []int64) int {
	if len(acc) == 0 {
		return -1
	}
	best := 0
	for i, v := range acc {
		if v > acc[best] {
			best = i
		}
	}
	return best
}
