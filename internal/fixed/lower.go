package fixed

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// LoweredNetwork is an entire multi-exit network lowered to the integer
// pipeline: the deployable artifact a real MCU would flash. Inference
// runs segment-by-segment with the same suspend/resume structure as the
// float multiexit.Network, but every MAC is integer.
type LoweredNetwork struct {
	segments [][]loweredOp
	branches [][]loweredOp
	// inH/inW is the nominal input size.
	inH, inW int
	inC      int
}

// loweredOp is one integer pipeline stage.
type loweredOp struct {
	kind string // "conv", "dense", "pool", "flatten"
	conv *ConvLayer
	dens *DenseLayer
	// actBits/actMax parameterize the fused ReLU+requantization after
	// conv/dense stages (actBits 0 = raw accumulators, used for
	// classifier heads).
	actBits int
	actMax  float64
	// spatial geometry for conv/pool stages.
	h, w, c int
	// bias holds the float biases; scale binding is deferred until the
	// input activation scale is known at execution time.
	bias []float32
}

// LowerConfig controls lowering.
type LowerConfig struct {
	// WeightBits and ActBits apply where the layer itself has no
	// explicit quantization set (defaults 8/8).
	WeightBits int
	ActBits    int
	// Scales supplies precomputed per-layer activation ceilings — e.g.
	// the pinned calibration a deployment artifact restores — and wins
	// over Calibration, so a lowered network quantizes exactly like the
	// deployment it came from without the original images.
	Scales *plan.Calibration
	// ActMax is the assumed activation range for requantization when no
	// calibration images are supplied (default 4).
	ActMax float64
	// Calibration images (CHW, [0,1] pixels), when provided, set each
	// layer's requantization range from the observed float activations
	// (with 10% headroom) — the standard post-training-quantization
	// calibration pass. Strongly recommended for trained networks.
	Calibration []*tensor.Tensor
}

func (c *LowerConfig) fillDefaults() {
	if c.WeightBits == 0 {
		c.WeightBits = 8
	}
	if c.ActBits == 0 {
		c.ActBits = 8
	}
	if c.ActMax == 0 {
		c.ActMax = 4
	}
}

// Lower converts a (possibly compressed) multi-exit network to the
// integer pipeline. Per-layer bitwidths honour each layer's
// WeightBitsPerValue/ActBits when set (i.e. after compress.Apply),
// falling back to the config defaults.
func Lower(net *multiexit.Network, cfg LowerConfig) (*LoweredNetwork, error) {
	cfg.fillDefaults()
	if err := net.Validate(); err != nil {
		return nil, err
	}
	ln := &LoweredNetwork{inH: 32, inW: 32, inC: 3}
	var calib map[segKey][]float64
	if cfg.Scales != nil {
		calib = map[segKey][]float64{}
		cfg.Scales.Each(func(branch bool, idx int, scales []float64) {
			calib[segKey{branch, idx}] = scales
		})
	} else {
		calib = calibrateActivations(net, cfg.Calibration)
	}
	for si, seg := range net.Segments {
		ops, err := lowerSequential(seg, cfg, calib[segKey{false, si}])
		if err != nil {
			return nil, err
		}
		ln.segments = append(ln.segments, ops)
	}
	for bi, br := range net.Branches {
		ops, err := lowerSequential(br, cfg, calib[segKey{true, bi}])
		if err != nil {
			return nil, err
		}
		ln.branches = append(ln.branches, ops)
	}
	return ln, nil
}

type segKey struct {
	branch bool
	idx    int
}

// calibrateActivations runs the float network on the calibration images
// and records the post-layer max activation for every conv/dense layer,
// keyed by (segment-or-branch, index) and layer position within it.
// Returns nil maps when no calibration data is given.
func calibrateActivations(net *multiexit.Network, images []*tensor.Tensor) map[segKey][]float64 {
	if len(images) == 0 {
		return map[segKey][]float64{}
	}
	record := func(seq *nn.Sequential, x *tensor.Tensor) (*tensor.Tensor, []float64) {
		var maxes []float64
		for _, l := range seq.Layers {
			x = l.Forward(x, false)
			switch l.(type) {
			case *nn.Conv2D, *nn.Dense:
				maxes = append(maxes, float64(x.MaxAbs()))
			}
		}
		return x, maxes
	}
	// Track running per-layer maxima across calibration images.
	running := map[segKey][]float64{}
	for _, img := range images {
		x := img
		if x.Rank() == 3 {
			s := x.Shape()
			x = x.Reshape(1, s[0], s[1], s[2])
		}
		for si, seg := range net.Segments {
			var maxes []float64
			x, maxes = record(seg, x)
			mergeMax(running, segKey{false, si}, maxes)
			_, bmaxes := record(net.Branches[si], x)
			mergeMax(running, segKey{true, si}, bmaxes)
		}
	}
	return running
}

func mergeMax(dst map[segKey][]float64, key segKey, vals []float64) {
	prev, ok := dst[key]
	if !ok || len(prev) != len(vals) {
		dst[key] = append([]float64(nil), vals...)
		return
	}
	for i, v := range vals {
		if v > prev[i] {
			prev[i] = v
		}
	}
}

func lowerSequential(seq *nn.Sequential, cfg LowerConfig, actMaxes []float64) ([]loweredOp, error) {
	var ops []loweredOp
	weightedIdx := 0
	// actMax returns the calibrated activation ceiling for the next
	// weighted layer, or the static default.
	actMax := func() float64 {
		m := cfg.ActMax
		if weightedIdx < len(actMaxes) && actMaxes[weightedIdx] > 0 {
			m = actMaxes[weightedIdx] * 1.1 // headroom
		}
		weightedIdx++
		return m
	}
	for i := 0; i < len(seq.Layers); i++ {
		switch l := seq.Layers[i].(type) {
		case *nn.Conv2D:
			bits := cfg.WeightBits
			if l.WeightBitsPerValue > 0 && l.WeightBitsPerValue < 32 {
				bits = l.WeightBitsPerValue
			}
			if bits > 16 {
				bits = 16
			}
			scale := compress.OptimalWeightScale(l.W.Value.Data, bits)
			if scale == 0 {
				scale = 1e-6
			}
			conv, err := NewConvLayerFrom(l, bits, scale)
			if err != nil {
				return nil, err
			}
			actBits := cfg.ActBits
			if l.ActBits > 0 && l.ActBits < 32 {
				actBits = l.ActBits
			}
			op := loweredOp{kind: "conv", conv: conv, actBits: actBits, actMax: actMax(), h: l.NomH, w: l.NomW}
			op.biasSrc(l.B.Value.Data)
			ops = append(ops, op)
		case *nn.Dense:
			bits := cfg.WeightBits
			if l.WeightBitsPerValue > 0 && l.WeightBitsPerValue < 32 {
				bits = l.WeightBitsPerValue
			}
			if bits > 16 {
				bits = 16
			}
			scale := compress.OptimalWeightScale(l.W.Value.Data, bits)
			if scale == 0 {
				scale = 1e-6
			}
			dens, err := NewDenseLayerFrom(l, bits, scale)
			if err != nil {
				return nil, err
			}
			actBits := cfg.ActBits
			if l.Final {
				actBits = 0 // classifier head: keep raw accumulators
			} else if l.ActBits > 0 && l.ActBits < 32 {
				actBits = l.ActBits
			}
			op := loweredOp{kind: "dense", dens: dens, actBits: actBits, actMax: actMax()}
			op.biasSrc(l.B.Value.Data)
			ops = append(ops, op)
		case *nn.MaxPool2D:
			if l.Kernel != 2 || l.Stride != 2 {
				return nil, fmt.Errorf("fixed: only 2×2/2 pooling lowers (got %d/%d)", l.Kernel, l.Stride)
			}
			ops = append(ops, loweredOp{kind: "pool"})
		case *nn.Flatten:
			ops = append(ops, loweredOp{kind: "flatten"})
		case *nn.ReLU:
			// Fused into the preceding conv/dense requantization.
		default:
			return nil, fmt.Errorf("fixed: cannot lower layer %T", seq.Layers[i])
		}
	}
	return ops, nil
}

// biasSrc stashes float biases for deferred scale binding.
func (op *loweredOp) biasSrc(b []float32) {
	op.bias = append([]float32(nil), b...)
}

// execState is the integer activation flowing through the pipeline.
type execState struct {
	t       *QuantizedTensor
	c, h, w int
	flat    bool
}

// runOps executes a lowered op chain on the state; the final op of a
// classifier branch returns raw accumulators via rawOut.
func runOps(ops []loweredOp, st execState) (execState, []int64, error) {
	var lastAcc []int64
	for _, op := range ops {
		switch op.kind {
		case "conv":
			op.conv.SetBias(op.bias, st.t.Scale)
			acc, oh, ow, accScale, err := op.conv.Forward(st.t, st.h, st.w)
			if err != nil {
				return st, nil, err
			}
			qt, err := RequantizeReLU(acc, []int{op.conv.OutC, oh, ow}, accScale, op.actMax, op.actBits)
			if err != nil {
				return st, nil, err
			}
			st = execState{t: qt, c: op.conv.OutC, h: oh, w: ow}
		case "dense":
			op.dens.SetBias(op.bias, st.t.Scale)
			acc, accScale, err := op.dens.Forward(st.t)
			if err != nil {
				return st, nil, err
			}
			if op.actBits == 0 {
				lastAcc = acc
				st = execState{t: &QuantizedTensor{Shape: []int{op.dens.Out}, Q: make([]int32, op.dens.Out), Scale: accScale}, flat: true}
				for i, a := range acc {
					st.t.Q[i] = int32(clampI64(a, -1<<30, 1<<30))
				}
				continue
			}
			qt, err := RequantizeReLU(acc, []int{op.dens.Out}, accScale, op.actMax, op.actBits)
			if err != nil {
				return st, nil, err
			}
			st = execState{t: qt, flat: true}
		case "pool":
			qt, oh, ow, err := MaxPool2(st.t, st.c, st.h, st.w)
			if err != nil {
				return st, nil, err
			}
			st = execState{t: qt, c: st.c, h: oh, w: ow}
		case "flatten":
			st.flat = true
		}
	}
	return st, lastAcc, nil
}

func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// InferTo runs integer inference on a float CHW image ([0,1] pixels) up
// to the given exit and returns the raw classifier accumulators (argmax
// = predicted class) and the suspended trunk state for Resume.
func (ln *LoweredNetwork) InferTo(img *tensor.Tensor, exit int) (*LoweredState, error) {
	if exit < 0 || exit >= len(ln.segments) {
		return nil, fmt.Errorf("fixed: exit %d out of range", exit)
	}
	qx, err := QuantizeActivations(img, 1.0, 8)
	if err != nil {
		return nil, err
	}
	st := execState{t: qx, c: ln.inC, h: ln.inH, w: ln.inW}
	for i := 0; i <= exit; i++ {
		st, _, err = runOps(ln.segments[i], st)
		if err != nil {
			return nil, err
		}
	}
	_, acc, err := runOps(ln.branches[exit], st)
	if err != nil {
		return nil, err
	}
	if acc == nil {
		return nil, fmt.Errorf("fixed: branch %d produced no classifier accumulators", exit)
	}
	return &LoweredState{trunk: st, Exit: exit, Logits: acc}, nil
}

// LoweredState is a suspended integer inference.
type LoweredState struct {
	trunk  execState
	Exit   int
	Logits []int64
}

// Predicted returns the argmax class.
func (s *LoweredState) Predicted() int { return ArgMax(s.Logits) }

// Resume continues the integer inference to a deeper exit.
func (ln *LoweredNetwork) Resume(s *LoweredState, exit int) (*LoweredState, error) {
	if exit <= s.Exit || exit >= len(ln.segments) {
		return nil, fmt.Errorf("fixed: cannot resume from %d to %d", s.Exit, exit)
	}
	st := s.trunk
	var err error
	for i := s.Exit + 1; i <= exit; i++ {
		st, _, err = runOps(ln.segments[i], st)
		if err != nil {
			return nil, err
		}
	}
	_, acc, err := runOps(ln.branches[exit], st)
	if err != nil {
		return nil, err
	}
	if acc == nil {
		return nil, fmt.Errorf("fixed: branch %d produced no classifier accumulators", exit)
	}
	return &LoweredState{trunk: st, Exit: exit, Logits: acc}, nil
}
