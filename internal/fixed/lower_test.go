package fixed

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/tensor"
)

func TestLowerLeNetEE(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	ln, err := Lower(net, LowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ln.segments) != 3 || len(ln.branches) != 3 {
		t.Fatalf("lowered %d segments, %d branches", len(ln.segments), len(ln.branches))
	}
}

func TestLoweredInferenceAllExits(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(2))
	ln, err := Lower(net, LowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(3), 0, 1)
	for exit := 0; exit < 3; exit++ {
		st, err := ln.InferTo(img, exit)
		if err != nil {
			t.Fatalf("exit %d: %v", exit, err)
		}
		if len(st.Logits) != 10 {
			t.Fatalf("exit %d: %d logits", exit, len(st.Logits))
		}
		if p := st.Predicted(); p < 0 || p >= 10 {
			t.Fatalf("exit %d: prediction %d", exit, p)
		}
	}
}

func TestLoweredResumeMatchesDirect(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(4))
	ln, err := Lower(net, LowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(5), 0, 1)

	direct, err := ln.InferTo(img, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ln.InferTo(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err = ln.Resume(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Logits {
		if st.Logits[i] != direct.Logits[i] {
			t.Fatal("integer resume must be bit-identical to direct execution")
		}
	}
}

// TestLoweredAgreesWithFloatOnTrainedNetwork is the deployment-fidelity
// check: on a trained network, 8-bit integer inference predicts the same
// class as the float network on a large majority of samples.
func TestLoweredAgreesWithFloatOnTrainedNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short")
	}
	cfg := dataset.SynthConfig{Seed: 21, NoiseStd: 0.03, Jitter: 0.05}
	train, test := dataset.TrainTest(cfg, 250, 60)
	net := multiexit.LeNetEE(tensor.NewRNG(31))
	if _, err := multiexit.Train(net, train, multiexit.TrainConfig{Epochs: 3, BatchSize: 25, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	var calib []*tensor.Tensor
	for i := 0; i < 16; i++ {
		calib = append(calib, train.Samples[i].Image)
	}
	ln, err := Lower(net, LowerConfig{Calibration: calib})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, s := range test.Samples {
		fl := net.InferTo(s.Image, 2)
		iq, err := ln.InferTo(s.Image, 2)
		if err != nil {
			t.Fatal(err)
		}
		if fl.Predicted() == iq.Predicted() {
			agree++
		}
	}
	if frac := float64(agree) / float64(test.Len()); frac < 0.9 {
		t.Fatalf("calibrated integer/float agreement only %.2f", frac)
	}
}

func TestLoweredResumeRejectsBackward(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(6))
	ln, err := Lower(net, LowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(3, 32, 32)
	st, err := ln.InferTo(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Resume(st, 1); err == nil {
		t.Fatal("backward resume accepted")
	}
}

func TestLowerHonoursCompressedBitwidths(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(7))
	// Tag one layer with a 4-bit weight setting, as compress.Apply does.
	fcB21 := net.Branches[1].FindLayer("FC-B21").(*nn.Dense)
	fcB21.WeightBitsPerValue = 4
	ln, err := Lower(net, LowerConfig{WeightBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The 4-bit layer's integer codes must fit in [−8, 7].
	var found *DenseLayer
	for _, ops := range ln.branches {
		for _, op := range ops {
			if op.kind == "dense" && op.dens.In == fcB21.In && op.dens.Out == fcB21.Out {
				found = op.dens
			}
		}
	}
	if found == nil {
		t.Fatal("lowered FC-B21 not found")
	}
	for _, q := range found.W.Q {
		if q < -8 || q > 7 {
			t.Fatalf("4-bit layer has code %d outside [−8, 7]", q)
		}
	}
}

// TestLowerWithPinnedScales: lowering with a precomputed plan.Calibration
// must reproduce the image-calibrated lowering exactly — the contract
// that lets a restored deployment artifact flash without its original
// calibration images.
func TestLowerWithPinnedScales(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(6))
	var imgs []*tensor.Tensor
	rng := tensor.NewRNG(7)
	for i := 0; i < 4; i++ {
		img := tensor.New(3, 32, 32)
		tensor.FillUniform(img, rng, 0, 1)
		imgs = append(imgs, img)
	}
	fromImages, err := Lower(net, LowerConfig{Calibration: imgs})
	if err != nil {
		t.Fatal(err)
	}
	fromScales, err := Lower(net, LowerConfig{Scales: plan.Calibrate(net, imgs)})
	if err != nil {
		t.Fatal(err)
	}
	probe := tensor.New(3, 32, 32)
	tensor.FillUniform(probe, tensor.NewRNG(8), 0, 1)
	for exit := 0; exit < 3; exit++ {
		a, err := fromImages.InferTo(probe, exit)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fromScales.InferTo(probe, exit)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Logits {
			if a.Logits[i] != b.Logits[i] {
				t.Fatalf("exit %d logit %d diverges: %v vs %v", exit, i, a.Logits[i], b.Logits[i])
			}
		}
	}
}
