package fixed

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestQuantizeWeightsRoundTrip(t *testing.T) {
	w := tensor.FromSlice([]float32{-1, -0.5, 0, 0.5, 1}, 5)
	qt, err := QuantizeWeights(w, 1.0/127, 8)
	if err != nil {
		t.Fatal(err)
	}
	back := qt.Dequantize()
	for i := range w.Data {
		if math.Abs(float64(back.Data[i]-w.Data[i])) > 1.0/127 {
			t.Fatalf("round-trip error too large at %d: %v vs %v", i, back.Data[i], w.Data[i])
		}
	}
}

func TestQuantizeWeightsClamps(t *testing.T) {
	w := tensor.FromSlice([]float32{-1000, 1000}, 2)
	qt, err := QuantizeWeights(w, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if qt.Q[0] != -128 || qt.Q[1] != 127 {
		t.Fatalf("int8 clamp failed: %v", qt.Q)
	}
}

func TestQuantizeWeightsRejectsBadArgs(t *testing.T) {
	w := tensor.New(2)
	if _, err := QuantizeWeights(w, 0, 8); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := QuantizeWeights(w, 1, 0); err == nil {
		t.Fatal("0 bits accepted")
	}
	if _, err := QuantizeWeights(w, 1, 17); err == nil {
		t.Fatal("17 bits accepted")
	}
}

func TestQuantizeActivationsRange(t *testing.T) {
	x := tensor.FromSlice([]float32{-0.5, 0, 0.5, 1.0, 2.0}, 5)
	qt, err := QuantizeActivations(x, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if qt.Q[0] != 0 {
		t.Fatal("negative activations must clamp to 0")
	}
	if qt.Q[4] != 255 {
		t.Fatal("above-range activations must clamp to max level")
	}
	if qt.Q[3] != 255 {
		t.Fatalf("max value must hit top level, got %d", qt.Q[3])
	}
}

func TestIntegerConvMatchesFloatReference(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := nn.NewConv2D("c", 2, 3, 3, 3, 1, 1)
	tensor.FillNormal(l.W.Value, rng, 0.3)
	tensor.FillNormal(l.B.Value, rng, 0.1)

	x := tensor.New(1, 2, 6, 6)
	tensor.FillUniform(x, rng, 0, 1)

	// Float reference.
	ref := l.Forward(x, false)

	// Integer pipeline at 8-bit weights / 8-bit activations.
	wScale := compress.OptimalWeightScale(l.W.Value.Data, 8)
	conv, err := NewConvLayerFrom(l, 8, wScale)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.FromSlice(x.Data, 2, 6, 6)
	qx, err := QuantizeActivations(img, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	conv.SetBias(l.B.Value.Data, qx.Scale)
	acc, oh, ow, accScale, err := conv.Forward(qx, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 6 || ow != 6 {
		t.Fatalf("conv output %dx%d", oh, ow)
	}
	// Compare dequantized accumulators against the float reference.
	var maxErr float64
	for i, a := range acc {
		got := float64(a) * accScale
		want := float64(ref.Data[i])
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.05 {
		t.Fatalf("integer conv deviates from float by %g", maxErr)
	}
}

func TestIntegerDenseMatchesFloatReference(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := nn.NewDense("d", 20, 5)
	tensor.FillNormal(l.W.Value, rng, 0.3)
	tensor.FillNormal(l.B.Value, rng, 0.1)

	x := tensor.New(1, 20)
	tensor.FillUniform(x, rng, 0, 1)
	ref := l.Forward(x, false)

	wScale := compress.OptimalWeightScale(l.W.Value.Data, 8)
	dense, err := NewDenseLayerFrom(l, 8, wScale)
	if err != nil {
		t.Fatal(err)
	}
	qx, err := QuantizeActivations(tensor.FromSlice(x.Data, 20), 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	dense.SetBias(l.B.Value.Data, qx.Scale)
	acc, accScale, err := dense.Forward(qx)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range acc {
		got := float64(a) * accScale
		want := float64(ref.Data[i])
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("dense[%d]: int %g vs float %g", i, got, want)
		}
	}
}

func TestIntegerArgmaxAgreesWithFloat(t *testing.T) {
	// End-to-end property: for random small dense classifiers, the
	// integer pipeline's argmax agrees with the float argmax except on
	// near-ties.
	rng := tensor.NewRNG(3)
	agree := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		l := nn.NewDense("d", 12, 4)
		tensor.FillNormal(l.W.Value, rng, 0.5)
		x := tensor.New(1, 12)
		tensor.FillUniform(x, rng, 0, 1)
		ref := l.Forward(x, false)

		wScale := compress.OptimalWeightScale(l.W.Value.Data, 8)
		dense, err := NewDenseLayerFrom(l, 8, wScale)
		if err != nil {
			t.Fatal(err)
		}
		qx, _ := QuantizeActivations(tensor.FromSlice(x.Data, 12), 1.0, 8)
		dense.SetBias(l.B.Value.Data, qx.Scale)
		acc, _, err := dense.Forward(qx)
		if err != nil {
			t.Fatal(err)
		}
		if ArgMax(acc) == ref.ArgMax() {
			agree++
		}
	}
	if agree < trials*9/10 {
		t.Fatalf("integer argmax agreed on only %d/%d trials", agree, trials)
	}
}

func TestRequantizeReLU(t *testing.T) {
	acc := []int64{-100, 0, 50, 100}
	qt, err := RequantizeReLU(acc, []int{4}, 0.01, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if qt.Q[0] != 0 {
		t.Fatal("negative accumulator must ReLU to 0")
	}
	if qt.Q[3] <= qt.Q[2] {
		t.Fatal("requantization must preserve order")
	}
	// 100 × 0.01 = 1.0 → top level.
	if qt.Q[3] != 255 {
		t.Fatalf("full-scale value → %d, want 255", qt.Q[3])
	}
}

func TestMaxPool2Quantized(t *testing.T) {
	x := &QuantizedTensor{
		Shape: []int{1, 2, 2},
		Q:     []int32{1, 2, 3, 4},
		Scale: 0.5,
	}
	out, oh, ow, err := MaxPool2(x, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 1 || ow != 1 || out.Q[0] != 4 {
		t.Fatalf("pool result %v (%dx%d)", out.Q, oh, ow)
	}
	if out.Scale != 0.5 {
		t.Fatal("pooling must preserve scale")
	}
}

func TestQuantizedMonotonicityProperty(t *testing.T) {
	// Quantization preserves order up to one quantization step.
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		x := tensor.FromSlice([]float32{a, b}, 2)
		qt, err := QuantizeActivations(x, 2, 8)
		if err != nil {
			return false
		}
		af, bf := a, b
		if af < 0 {
			af = 0
		}
		if bf < 0 {
			bf = 0
		}
		if af > 2 {
			af = 2
		}
		if bf > 2 {
			bf = 2
		}
		if af < bf && qt.Q[0] > qt.Q[1] {
			return false
		}
		if af > bf && qt.Q[0] < qt.Q[1] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvRejectsWrongVolume(t *testing.T) {
	l := nn.NewConv2D("c", 2, 1, 3, 3, 1, 1)
	conv, err := NewConvLayerFrom(l, 8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	qx := &QuantizedTensor{Shape: []int{5}, Q: make([]int32, 5), Scale: 1}
	if _, _, _, _, err := conv.Forward(qx, 6, 6); err == nil {
		t.Fatal("wrong input volume accepted")
	}
}
