package search

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/accmodel"
	"repro/internal/compress"
	"repro/internal/multiexit"
)

// ParetoPoint is one nondominated design point of the compression space:
// higher Racc, lower FLOPs, and lower weight size are all better.
type ParetoPoint struct {
	Policy      *compress.Policy
	Racc        float64
	ModelFLOPs  int64
	WeightBytes int64
}

// dominates reports whether p is at least as good as q on every objective
// and strictly better on one.
func (p ParetoPoint) dominates(q ParetoPoint) bool {
	geAll := p.Racc >= q.Racc && p.ModelFLOPs <= q.ModelFLOPs && p.WeightBytes <= q.WeightBytes
	gtAny := p.Racc > q.Racc || p.ModelFLOPs < q.ModelFLOPs || p.WeightBytes < q.WeightBytes
	return geAll && gtAny
}

// ParetoFront accumulates nondominated (accuracy, FLOPs, size) points
// across a search, exposing the full trade-off surface rather than just
// the single constrained optimum — the "accuracy vs. efficiency" view of
// the design space.
type ParetoFront struct {
	points []ParetoPoint
}

// Add offers a point; it is kept only if no existing point dominates it,
// and existing points it dominates are evicted. Reports whether the point
// joined the front.
func (f *ParetoFront) Add(p ParetoPoint) bool {
	for _, q := range f.points {
		if q.dominates(p) {
			return false
		}
	}
	kept := f.points[:0]
	for _, q := range f.points {
		if !p.dominates(q) {
			kept = append(kept, q)
		}
	}
	f.points = append(kept, p)
	return true
}

// Points returns the front sorted by descending Racc.
func (f *ParetoFront) Points() []ParetoPoint {
	out := append([]ParetoPoint(nil), f.points...)
	sort.Slice(out, func(a, b int) bool { return out[a].Racc > out[b].Racc })
	return out
}

// Len returns the number of nondominated points.
func (f *ParetoFront) Len() int { return len(f.points) }

// String renders the front as a table.
func (f *ParetoFront) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %10s\n", "Racc", "FLOPs(M)", "size(KB)")
	for _, p := range f.Points() {
		fmt.Fprintf(&b, "%10.4f %12.4f %10.1f\n",
			p.Racc, float64(p.ModelFLOPs)/1e6, float64(p.WeightBytes)/1024)
	}
	return b.String()
}

// RLWithPareto runs the RL search while also recording the Pareto front
// of every evaluated candidate (feasible or not).
func RLWithPareto(ctx context.Context, net *multiexit.Network, sur *accmodel.Surrogate, cfg Config) (*Result, *ParetoFront, error) {
	front := &ParetoFront{}
	res, err := rlInner(ctx, net, sur, cfg, func(lps []compress.LayerPolicy, racc float64, m compress.Measure) {
		front.Add(ParetoPoint{
			Policy:      &compress.Policy{Layers: append([]compress.LayerPolicy(nil), lps...)},
			Racc:        racc,
			ModelFLOPs:  m.ModelFLOPs,
			WeightBytes: m.WeightBytes,
		})
	})
	return res, front, err
}
