package search

import (
	"context"
	"math"

	"repro/internal/accmodel"
	"repro/internal/compress"
	"repro/internal/multiexit"
	"repro/internal/tensor"
)

// randomPolicy draws a uniformly random layer policy.
func (e *env) randomPolicy(rng *tensor.RNG) []compress.LayerPolicy {
	lps := make([]compress.LayerPolicy, len(e.layers))
	for l := range e.layers {
		lps[l] = compress.LayerPolicy{
			Layer:         e.layers[l].name,
			PreserveRatio: compress.SnapPreserve(rng.Float64()),
			WeightBits:    compress.MinBits + rng.Intn(compress.MaxBits-compress.MinBits+1),
			ActBits:       compress.MinBits + rng.Intn(compress.MaxBits-compress.MinBits+1),
		}
	}
	return lps
}

// scorePolicy returns the constrained objective: Racc if feasible,
// negative constraint violation otherwise (so annealing can climb toward
// feasibility).
func (e *env) scorePolicy(lps []compress.LayerPolicy) (float64, bool, *evalOut, error) {
	racc, m, shares, accs, err := e.evaluate(lps)
	if err != nil {
		return 0, false, nil, err
	}
	out := &evalOut{racc: racc, m: m, shares: shares, accs: accs}
	if m.ModelFLOPs <= e.cfg.FTarget && m.WeightBytes <= e.cfg.STarget {
		return racc, true, out, nil
	}
	over := 0.0
	if m.ModelFLOPs > e.cfg.FTarget {
		over += float64(m.ModelFLOPs-e.cfg.FTarget) / float64(e.cfg.FTarget)
	}
	if m.WeightBytes > e.cfg.STarget {
		over += float64(m.WeightBytes-e.cfg.STarget) / float64(e.cfg.STarget)
	}
	return -over, false, out, nil
}

type evalOut struct {
	racc   float64
	m      compress.Measure
	shares []float64
	accs   []float64
}

func (r *Result) record(lps []compress.LayerPolicy, out *evalOut) {
	r.Policy = &compress.Policy{Layers: append([]compress.LayerPolicy(nil), lps...)}
	r.Racc = out.racc
	r.Measure = out.m
	r.ExitShares = out.shares
	r.ExitAccs = out.accs
}

// Random runs pure random search over the policy space with the same
// evaluation budget as RL — the simplest ablation baseline. The context
// is checked between episodes; on cancellation the best-so-far Result is
// returned alongside ctx.Err().
func Random(ctx context.Context, net *multiexit.Network, sur *accmodel.Surrogate, cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	e := newEnv(net, sur, cfg)
	rng := tensor.NewRNG(cfg.Seed + 0x7a4d)
	res := &Result{}
	best := math.Inf(-1)
	for ep := 0; ep < cfg.Episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		lps := e.randomPolicy(rng)
		score, feasible, out, err := e.scorePolicy(lps)
		if err != nil {
			return nil, err
		}
		if feasible && score > best {
			best = score
			res.record(lps, out)
		}
		res.History = append(res.History, math.Max(best, 0))
		res.Episodes = ep + 1
	}
	return res, nil
}

// Annealing runs simulated annealing: random single-layer mutations with
// a geometric temperature schedule. Infeasible states are admitted early
// (scored by negative violation) so the chain can cross constraint
// boundaries. The context is checked between episodes; on cancellation
// the best-so-far Result is returned alongside ctx.Err().
func Annealing(ctx context.Context, net *multiexit.Network, sur *accmodel.Surrogate, cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	e := newEnv(net, sur, cfg)
	rng := tensor.NewRNG(cfg.Seed + 0xa22ea1)

	cur := e.randomPolicy(rng)
	curScore, curFeasible, curOut, err := e.scorePolicy(cur)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	best := math.Inf(-1)
	if curFeasible {
		best = curScore
		res.record(cur, curOut)
	}
	temp := 0.3
	for ep := 0; ep < cfg.Episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		cand := append([]compress.LayerPolicy(nil), cur...)
		l := rng.Intn(len(cand))
		switch rng.Intn(3) {
		case 0:
			cand[l].PreserveRatio = compress.SnapPreserve(cand[l].PreserveRatio + 0.25*(rng.Float64()-0.5))
		case 1:
			cand[l].WeightBits = clampBits(cand[l].WeightBits + rng.Intn(5) - 2)
		default:
			cand[l].ActBits = clampBits(cand[l].ActBits + rng.Intn(5) - 2)
		}
		score, feasible, out, err := e.scorePolicy(cand)
		if err != nil {
			return nil, err
		}
		if score > curScore || rng.Float64() < math.Exp((score-curScore)/math.Max(temp, 1e-6)) {
			cur, curScore = cand, score
		}
		if feasible && score > best {
			best = score
			res.record(cand, out)
		}
		res.History = append(res.History, math.Max(best, 0))
		res.Episodes = ep + 1
		temp *= 0.985
	}
	return res, nil
}

func clampBits(b int) int {
	if b < compress.MinBits {
		return compress.MinBits
	}
	if b > compress.MaxBits {
		return compress.MaxBits
	}
	return b
}
