// Package search implements the paper's §III offline compression search:
// two DDPG agents (pruning, quantization) walk the network layer-by-layer
// emitting per-layer preserve ratios and bitwidths, the candidate policy
// is measured against the F_target/S_target constraints (Eq. 8), the exit
// probabilities under the EH power trace and event distribution are
// estimated, and the exit-usage-weighted accuracy reward (Eq. 10–12) is
// fed back. Random search and simulated annealing are provided as
// ablation baselines.
package search

import (
	"context"
	"fmt"
	"math"

	"repro/internal/accmodel"
	"repro/internal/compress"
	"repro/internal/ddpg"
	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/multiexit"
	"repro/internal/nn"
)

// ObsDim is the dimensionality of the shared layer observation (Eq. 9):
// layer index, previous α/bw/ba, FLOPs reduced/remaining, size
// reduced/remaining, conv indicator, cin, cout, weight size.
const ObsDim = 12

// Config parameterizes a search.
type Config struct {
	// Episodes is the number of full layer walks (default 150).
	Episodes int
	// FTarget and STarget are the Eq. 8 constraints (defaults: the
	// paper's 1.15 MFLOPs and 16 KB).
	FTarget int64
	STarget int64
	// Lambda1/Lambda2 scale the two rewards (default 1).
	Lambda1 float64
	Lambda2 float64
	// Trace/Schedule/Device/Storage define the EH environment used to
	// estimate exit probabilities. Trace and Schedule are required.
	Trace    *energy.Trace
	Schedule *energy.Schedule
	Device   *mcu.Device
	Storage  *energy.Storage
	// UpdatesPerEpisode is the number of gradient steps per episode
	// (default 20).
	UpdatesPerEpisode int
	Seed              uint64
}

func (c *Config) fillDefaults() error {
	if c.Episodes == 0 {
		c.Episodes = 150
	}
	if c.FTarget == 0 {
		c.FTarget = compress.PaperFTargetFLOPs
	}
	if c.STarget == 0 {
		c.STarget = compress.PaperSTargetBytes
	}
	if c.Lambda1 == 0 {
		c.Lambda1 = 1
	}
	if c.Lambda2 == 0 {
		c.Lambda2 = 1
	}
	if c.Device == nil {
		c.Device = mcu.MSP432()
	}
	if c.Storage == nil {
		c.Storage = energy.DefaultStorage()
	}
	if c.UpdatesPerEpisode == 0 {
		c.UpdatesPerEpisode = 20
	}
	if c.Trace == nil || c.Schedule == nil {
		return fmt.Errorf("search: Trace and Schedule are required")
	}
	return nil
}

// Result is the search outcome.
type Result struct {
	// Policy is the best feasible policy found (nil if none was).
	Policy *compress.Policy
	// Racc is its exit-weighted accuracy reward (Eq. 10).
	Racc float64
	// ExitAccs are its surrogate per-exit accuracies.
	ExitAccs []float64
	// ExitShares are the estimated selection probabilities p_i (the
	// last entry beyond the exits is the missed-event share).
	ExitShares []float64
	// Measure is the policy's cost summary.
	Measure compress.Measure
	// History records the best-so-far Racc after each episode.
	History []float64
	// Episodes actually run.
	Episodes int
}

// layerInfo is the static metadata of one compressible layer.
type layerInfo struct {
	name   string
	isConv bool
	cin    int
	cout   int
	flops  float64
	wcount float64
}

type env struct {
	net    *multiexit.Network
	sur    *accmodel.Surrogate
	snap   *compress.Snapshot
	layers []layerInfo
	// totals for observation normalization
	totalFLOPs  float64
	totalWeight float64
	cfg         Config
}

func newEnv(net *multiexit.Network, sur *accmodel.Surrogate, cfg Config) *env {
	e := &env{net: net, sur: sur, snap: compress.NewSnapshot(net), cfg: cfg}
	for _, l := range net.CompressibleLayers() {
		var info layerInfo
		info.name = l.Name()
		switch layer := l.(type) {
		case *nn.Conv2D:
			info.isConv = true
			info.cin = layer.InC
			info.cout = layer.OutC
			info.flops = float64(layer.FLOPs())
			info.wcount = float64(layer.WeightCount())
		case *nn.Dense:
			info.cin = layer.In
			info.cout = layer.Out
			info.flops = float64(layer.FLOPs())
			info.wcount = float64(layer.WeightCount())
		}
		e.layers = append(e.layers, info)
		e.totalFLOPs += info.flops
		e.totalWeight += info.wcount
	}
	return e
}

// observe builds the Eq. 9 observation for layer l given the decisions so
// far.
func (e *env) observe(l int, policy []compress.LayerPolicy) []float32 {
	L := len(e.layers)
	var prevA, prevBW, prevBA float64 = 1, 1, 1
	if l > 0 {
		prevA = policy[l-1].PreserveRatio
		prevBW = float64(policy[l-1].WeightBits) / compress.MaxBits
		prevBA = float64(policy[l-1].ActBits) / compress.MaxBits
	}
	var flopReduced, sizeReduced float64
	for i := 0; i < l; i++ {
		flopReduced += e.layers[i].flops * (1 - policy[i].PreserveRatio)
		sizeReduced += e.layers[i].wcount * (1 - policy[i].PreserveRatio*float64(policy[i].WeightBits)/32)
	}
	var flopRemain, sizeRemain float64
	for i := l; i < L; i++ {
		flopRemain += e.layers[i].flops
		sizeRemain += e.layers[i].wcount
	}
	info := e.layers[l]
	iconv := 0.0
	if info.isConv {
		iconv = 1
	}
	obs := []float64{
		float64(l) / float64(L),
		prevA,
		prevBW,
		prevBA,
		flopReduced / e.totalFLOPs,
		flopRemain / e.totalFLOPs,
		sizeReduced / e.totalWeight,
		sizeRemain / e.totalWeight,
		iconv,
		math.Min(1, float64(info.cin)/1024),
		math.Min(1, float64(info.cout)/1024),
		info.wcount / e.totalWeight,
	}
	out := make([]float32, ObsDim)
	for i, v := range obs {
		out[i] = float32(v)
	}
	return out
}

// evaluate applies the candidate policy, measures it, estimates exit
// shares under the EH environment, and returns (Racc, measure, shares,
// accs). The network is restored afterwards.
func (e *env) evaluate(lps []compress.LayerPolicy) (float64, compress.Measure, []float64, []float64, error) {
	policy := &compress.Policy{Layers: lps}
	if err := compress.Apply(e.net, policy); err != nil {
		return 0, compress.Measure{}, nil, nil, err
	}
	m := compress.MeasureNetwork(e.net)
	e.snap.Restore()

	accs := e.sur.ExitAccuracies(policy)
	costs := make([]float64, len(m.ExitFLOPs))
	for i, f := range m.ExitFLOPs {
		costs[i] = e.cfg.Device.ComputeEnergyMJ(f)
	}
	shares := EstimateExitShares(costs, e.cfg.Trace, e.cfg.Schedule, e.cfg.Storage)
	var racc float64
	for i, acc := range accs {
		racc += shares[i] * acc
	}
	return racc, m, shares, accs, nil
}

// EstimateExitShares runs the fast static simulation the compression
// phase assumes (§IV: "the exit selection for an event j is determined
// statically"): the deepest affordable exit is chosen per event. It
// returns one share per exit plus a final missed-event share; shares sum
// to 1 over all events.
func EstimateExitShares(exitCostsMJ []float64, trace *energy.Trace, schedule *energy.Schedule, storage *energy.Storage) []float64 {
	store := *storage
	store.SetLevel(store.TurnOnMJ)
	m := len(exitCostsMJ)
	counts := make([]int, m+1)
	evIdx := 0
	events := schedule.Events
	for t := 0; t < trace.Duration(); t++ {
		store.Harvest(trace.At(t), 1)
		for evIdx < len(events) && events[evIdx].T <= t {
			best := -1
			for i, c := range exitCostsMJ {
				if c <= store.Available() {
					best = i
				}
			}
			if best < 0 {
				counts[m]++
			} else {
				store.Spend(exitCostsMJ[best])
				counts[best]++
			}
			evIdx++
		}
	}
	for ; evIdx < len(events); evIdx++ {
		counts[m]++
	}
	shares := make([]float64, m+1)
	total := len(events)
	if total == 0 {
		return shares
	}
	for i, c := range counts {
		shares[i] = float64(c) / float64(total)
	}
	return shares
}

// RL runs the dual-agent DDPG search of §III-B. The context is checked
// between episodes; on cancellation the best-so-far Result is returned
// alongside ctx.Err().
func RL(ctx context.Context, net *multiexit.Network, sur *accmodel.Surrogate, cfg Config) (*Result, error) {
	return rlInner(ctx, net, sur, cfg, nil)
}

// rlInner is RL with an optional per-candidate observer (used by
// RLWithPareto).
func rlInner(ctx context.Context, net *multiexit.Network, sur *accmodel.Surrogate, cfg Config, observe func([]compress.LayerPolicy, float64, compress.Measure)) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	e := newEnv(net, sur, cfg)
	L := len(e.layers)
	if L == 0 {
		return nil, fmt.Errorf("search: network has no compressible layers")
	}

	pruneAgent, err := ddpg.New(ddpg.Config{ObsDim: ObsDim, ActionDim: 1, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	quantAgent, err := ddpg.New(ddpg.Config{ObsDim: ObsDim, ActionDim: 2, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	best := math.Inf(-1)

	for ep := 0; ep < cfg.Episodes; ep++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		lps := make([]compress.LayerPolicy, L)
		obss := make([][]float32, L)
		pruneActs := make([][]float32, L)
		quantActs := make([][]float32, L)
		for l := 0; l < L; l++ {
			obs := e.observe(l, lps)
			obss[l] = obs
			pa := pruneAgent.Act(obs, true)
			qa := quantAgent.Act(obs, true)
			pruneActs[l] = pa
			quantActs[l] = qa
			lps[l] = compress.LayerPolicy{
				Layer:         e.layers[l].name,
				PreserveRatio: compress.SnapPreserve(float64(pa[0])),
				WeightBits:    compress.QuantizeRatio(float64(qa[0]), compress.MinBits, compress.MaxBits),
				ActBits:       compress.QuantizeRatio(float64(qa[1]), compress.MinBits, compress.MaxBits),
			}
		}
		racc, m, shares, accs, err := e.evaluate(lps)
		if err != nil {
			return nil, err
		}
		if observe != nil {
			observe(lps, racc, m)
		}

		// Eq. 11–12 rewards, assigned at the terminal step.
		rPrune := -cfg.Lambda1
		if m.ModelFLOPs <= cfg.FTarget {
			rPrune = cfg.Lambda1 * racc
		}
		rQuant := -cfg.Lambda2
		if m.WeightBytes <= cfg.STarget {
			rQuant = cfg.Lambda2 * racc
		}
		for l := 0; l < L; l++ {
			next := make([]float32, ObsDim)
			terminal := l == L-1
			if !terminal {
				next = obss[l+1]
			}
			pr, qr := 0.0, 0.0
			if terminal {
				pr, qr = rPrune, rQuant
			}
			pruneAgent.Remember(ddpg.Transition{Obs: obss[l], Action: pruneActs[l], Reward: pr, NextObs: next, Terminal: terminal})
			quantAgent.Remember(ddpg.Transition{Obs: obss[l], Action: quantActs[l], Reward: qr, NextObs: next, Terminal: terminal})
		}
		for u := 0; u < cfg.UpdatesPerEpisode; u++ {
			pruneAgent.Update()
			quantAgent.Update()
		}
		pruneAgent.EndEpisode()
		quantAgent.EndEpisode()

		feasible := m.ModelFLOPs <= cfg.FTarget && m.WeightBytes <= cfg.STarget
		if feasible && racc > best {
			best = racc
			res.Policy = &compress.Policy{Layers: append([]compress.LayerPolicy(nil), lps...)}
			res.Racc = racc
			res.Measure = m
			res.ExitShares = shares
			res.ExitAccs = accs
		}
		if best > math.Inf(-1) {
			res.History = append(res.History, best)
		} else {
			res.History = append(res.History, 0)
		}
		res.Episodes = ep + 1
	}
	if res.Policy == nil {
		return res, fmt.Errorf("search: no feasible policy found in %d episodes", cfg.Episodes)
	}
	return res, nil
}
