package search

import (
	"context"
	"math"
	"testing"

	"repro/internal/accmodel"
	"repro/internal/compress"
	"repro/internal/energy"
	"repro/internal/multiexit"
	"repro/internal/tensor"
)

func testEnvConfig(episodes int) Config {
	trace := energy.SyntheticSolarTrace(energy.SolarConfig{Seconds: 4000, PeakPower: 0.03, Seed: 9})
	sched := energy.UniformSchedule(100, trace.Duration(), 10, 9)
	return Config{
		Episodes: episodes,
		Trace:    trace,
		Schedule: sched,
		Storage: &energy.Storage{
			CapacityMJ: 6, TurnOnMJ: 0.5, BrownOutMJ: 0.05,
			ChargeEfficiency: 0.9, LeakMWPerS: 0.0002,
		},
		Seed: 11,
	}
}

func newSearchNet(t *testing.T) (*multiexit.Network, *accmodel.Surrogate) {
	t.Helper()
	net := multiexit.LeNetEE(tensor.NewRNG(13))
	sur, err := accmodel.New(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	return net, sur
}

func TestConfigRequiresTraceAndSchedule(t *testing.T) {
	net, sur := newSearchNet(t)
	if _, err := RL(context.Background(), net, sur, Config{Episodes: 1}); err == nil {
		t.Fatal("missing trace/schedule accepted")
	}
}

func TestEstimateExitSharesSumToOne(t *testing.T) {
	cfg := testEnvConfig(1)
	shares := EstimateExitShares([]float64{0.2, 0.8, 1.5}, cfg.Trace, cfg.Schedule, cfg.Storage)
	if len(shares) != 4 {
		t.Fatalf("%d shares, want exits+missed", len(shares))
	}
	var sum float64
	for _, s := range shares {
		if s < 0 {
			t.Fatalf("negative share %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestEstimateExitSharesRichEnergyPrefersDeepExit(t *testing.T) {
	trace := energy.ConstantTrace(4000, 1) // plentiful
	sched := energy.UniformSchedule(50, 4000, 10, 3)
	shares := EstimateExitShares([]float64{0.2, 0.8, 1.5}, trace, sched, energy.DefaultStorage())
	if shares[2] < 0.9 {
		t.Fatalf("with abundant energy the static policy must pick the deepest exit: %v", shares)
	}
}

func TestEstimateExitSharesScarceEnergyMisses(t *testing.T) {
	trace := energy.ConstantTrace(4000, 0.0001)
	sched := energy.UniformSchedule(50, 4000, 10, 3)
	shares := EstimateExitShares([]float64{0.5, 1.0, 2.0}, trace, sched, energy.DefaultStorage())
	if shares[3] < 0.5 {
		t.Fatalf("scarce energy must miss most events: %v", shares)
	}
}

func TestRLSearchFindsFeasiblePolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("search test skipped in -short")
	}
	net, sur := newSearchNet(t)
	res, err := RL(context.Background(), net, sur, testEnvConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy == nil {
		t.Fatal("no policy")
	}
	if err := res.Policy.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Measure.ModelFLOPs > compress.PaperFTargetFLOPs {
		t.Errorf("F_model %d exceeds target", res.Measure.ModelFLOPs)
	}
	if res.Measure.WeightBytes > compress.PaperSTargetBytes {
		t.Errorf("S_model %d exceeds target", res.Measure.WeightBytes)
	}
	if res.Racc <= 0 {
		t.Errorf("Racc %v not positive", res.Racc)
	}
	if len(res.History) != 40 {
		t.Errorf("history length %d", len(res.History))
	}
	// Best-so-far history must be non-decreasing.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1]-1e-12 {
			t.Fatal("best-so-far history decreased")
		}
	}
}

func TestRLSearchLeavesNetworkRestored(t *testing.T) {
	if testing.Short() {
		t.Skip("search test skipped in -short")
	}
	net, sur := newSearchNet(t)
	origFLOPs := net.ModelFLOPs()
	w0 := net.Params()[0].Value.Clone()
	if _, err := RL(context.Background(), net, sur, testEnvConfig(10)); err != nil {
		t.Fatal(err)
	}
	if net.ModelFLOPs() != origFLOPs {
		t.Fatal("search left the network compressed")
	}
	if net.Params()[0].Value.L2Distance(w0) != 0 {
		t.Fatal("search left weights modified")
	}
}

func TestRandomSearchRuns(t *testing.T) {
	net, sur := newSearchNet(t)
	res, err := Random(context.Background(), net, sur, testEnvConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 30 {
		t.Fatalf("episodes %d", res.Episodes)
	}
	if res.Policy != nil {
		if res.Measure.ModelFLOPs > compress.PaperFTargetFLOPs ||
			res.Measure.WeightBytes > compress.PaperSTargetBytes {
			t.Fatal("random search recorded an infeasible best")
		}
	}
}

func TestAnnealingSearchImprovesOrMatchesStart(t *testing.T) {
	net, sur := newSearchNet(t)
	res, err := Annealing(context.Background(), net, sur, testEnvConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy == nil {
		t.Skip("annealing found no feasible policy in a short run (acceptable)")
	}
	if res.Measure.ModelFLOPs > compress.PaperFTargetFLOPs {
		t.Fatal("annealing best is infeasible")
	}
	last := res.History[len(res.History)-1]
	if last < res.History[0]-1e-12 {
		t.Fatal("annealing best-so-far decreased")
	}
}

func TestObservationNormalized(t *testing.T) {
	net, sur := newSearchNet(t)
	cfg := testEnvConfig(1)
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	e := newEnv(net, sur, cfg)
	lps := make([]compress.LayerPolicy, len(e.layers))
	for l := range e.layers {
		lps[l] = compress.LayerPolicy{
			Layer: e.layers[l].name, PreserveRatio: 0.5, WeightBits: 4, ActBits: 4,
		}
		obs := e.observe(l, lps)
		if len(obs) != ObsDim {
			t.Fatalf("obs dim %d", len(obs))
		}
		for i, v := range obs {
			if v < 0 || v > 1.0001 {
				t.Fatalf("obs[%d] = %v at layer %d outside [0,1]", i, v, l)
			}
		}
	}
}
