package search

import (
	"context"
	"strings"
	"testing"
)

func pt(racc float64, flops, bytes int64) ParetoPoint {
	return ParetoPoint{Racc: racc, ModelFLOPs: flops, WeightBytes: bytes}
}

func TestParetoDomination(t *testing.T) {
	f := &ParetoFront{}
	if !f.Add(pt(0.6, 1000, 100)) {
		t.Fatal("first point must join")
	}
	// Dominated: worse everywhere.
	if f.Add(pt(0.5, 2000, 200)) {
		t.Fatal("dominated point joined")
	}
	// Dominating: better accuracy, same costs — must evict.
	if !f.Add(pt(0.7, 1000, 100)) {
		t.Fatal("dominating point rejected")
	}
	if f.Len() != 1 {
		t.Fatalf("front size %d after eviction", f.Len())
	}
	// Trade-off point: worse accuracy but cheaper — joins.
	if !f.Add(pt(0.5, 500, 50)) {
		t.Fatal("trade-off point rejected")
	}
	if f.Len() != 2 {
		t.Fatalf("front size %d", f.Len())
	}
}

func TestParetoPointsSorted(t *testing.T) {
	f := &ParetoFront{}
	f.Add(pt(0.5, 500, 50))
	f.Add(pt(0.7, 1500, 150))
	f.Add(pt(0.6, 1000, 100))
	ps := f.Points()
	for i := 1; i < len(ps); i++ {
		if ps[i].Racc > ps[i-1].Racc {
			t.Fatal("points not sorted by descending Racc")
		}
	}
	if !strings.Contains(f.String(), "Racc") {
		t.Fatal("String missing header")
	}
}

func TestParetoEqualPointsCoexist(t *testing.T) {
	f := &ParetoFront{}
	f.Add(pt(0.6, 1000, 100))
	// Identical point: dominates() is false both ways (no strict
	// improvement), so it coexists.
	f.Add(pt(0.6, 1000, 100))
	if f.Len() != 2 {
		t.Fatalf("identical points should coexist, got %d", f.Len())
	}
}

func TestRLWithParetoBuildsFront(t *testing.T) {
	if testing.Short() {
		t.Skip("search test skipped in -short")
	}
	net, sur := newSearchNet(t)
	res, front, err := RLWithPareto(context.Background(), net, sur, testEnvConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	if front.Len() == 0 {
		t.Fatal("empty Pareto front after search")
	}
	if res.Episodes != 15 {
		t.Fatalf("episodes %d", res.Episodes)
	}
	// The front must contain a point at least as accurate as the best
	// feasible result.
	bestRacc := 0.0
	for _, p := range front.Points() {
		if p.Racc > bestRacc {
			bestRacc = p.Racc
		}
	}
	if res.Policy != nil && bestRacc < res.Racc-1e-9 {
		t.Fatalf("front best %.4f below result %.4f", bestRacc, res.Racc)
	}
}
