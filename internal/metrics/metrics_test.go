package metrics

import (
	"math"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		System:      "test",
		HarvestedMJ: 100,
		NumExits:    3,
		Outcomes: []EventOutcome{
			{T: 10, Processed: true, Correct: true, Exit: 0, FinishSec: 12, InferenceFLOPs: 100000, EnergyMJ: 0.2},
			{T: 20, Processed: true, Correct: false, Exit: 1, FinishSec: 25, InferenceFLOPs: 500000, EnergyMJ: 0.8},
			{T: 30, Processed: true, Correct: true, Exit: 2, FinishSec: 36, InferenceFLOPs: 1000000, EnergyMJ: 1.5},
			{T: 40, Processed: false, Exit: -1},
		},
	}
}

func TestCounts(t *testing.T) {
	r := sampleReport()
	if r.Events() != 4 || r.ProcessedCount() != 3 || r.CorrectCount() != 2 {
		t.Fatalf("counts: %d/%d/%d", r.Events(), r.ProcessedCount(), r.CorrectCount())
	}
}

func TestIEpmJ(t *testing.T) {
	r := sampleReport()
	if math.Abs(r.IEpmJ()-0.02) > 1e-12 {
		t.Fatalf("IEpmJ = %v, want 2/100", r.IEpmJ())
	}
	empty := &Report{}
	if empty.IEpmJ() != 0 {
		t.Fatal("no harvest must give 0 IEpmJ")
	}
}

func TestAccuracies(t *testing.T) {
	r := sampleReport()
	if math.Abs(r.AccuracyAllEvents()-0.5) > 1e-12 {
		t.Fatalf("acc all = %v (missed events count as wrong)", r.AccuracyAllEvents())
	}
	if math.Abs(r.AccuracyProcessed()-2.0/3) > 1e-12 {
		t.Fatalf("acc processed = %v", r.AccuracyProcessed())
	}
}

func TestLatencies(t *testing.T) {
	r := sampleReport()
	// (2 + 5 + 6) / 3.
	if math.Abs(r.MeanEventLatency()-13.0/3) > 1e-12 {
		t.Fatalf("latency = %v", r.MeanEventLatency())
	}
	if math.Abs(r.MeanInferenceFLOPs()-1600000.0/3) > 1e-9 {
		t.Fatalf("mean FLOPs = %v", r.MeanInferenceFLOPs())
	}
}

func TestLatencyNaNWhenNothingProcessed(t *testing.T) {
	r := &Report{Outcomes: []EventOutcome{{Processed: false}}}
	if !math.IsNaN(r.MeanEventLatency()) {
		t.Fatal("latency over zero processed events must be NaN")
	}
}

func TestExitHistogramAndPercentages(t *testing.T) {
	r := sampleReport()
	hist := r.ExitHistogram()
	if hist[0] != 1 || hist[1] != 1 || hist[2] != 1 {
		t.Fatalf("hist %v", hist)
	}
	pct := r.ExitPercentages()
	var sum float64
	for _, p := range pct {
		sum += p
	}
	// Percentages cover all events; missed events are excluded, so the
	// sum is 3/4 here (Fig. 7b's bars do not total 100%).
	if math.Abs(sum-0.75) > 1e-12 {
		t.Fatalf("exit shares sum to %v, want 0.75", sum)
	}
}

func TestTotalComputeMJ(t *testing.T) {
	r := sampleReport()
	if math.Abs(r.TotalComputeMJ()-2.5) > 1e-12 {
		t.Fatalf("total compute = %v", r.TotalComputeMJ())
	}
}

func TestSummaryContainsKeyFields(t *testing.T) {
	s := sampleReport().Summary()
	for _, want := range []string{"IEpmJ", "acc(all)", "exit1", "latency"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestOutcomeLatency(t *testing.T) {
	o := EventOutcome{T: 5, Processed: true, FinishSec: 9.5}
	if o.Latency() != 4.5 {
		t.Fatalf("latency = %v", o.Latency())
	}
	if (EventOutcome{T: 5}).Latency() != 0 {
		t.Fatal("missed event latency must be 0")
	}
}
