package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestAggregateMoments(t *testing.T) {
	a := NewAggregate("x", 1, 2, 3, 4, 5)
	if a.Mean() != 3 {
		t.Fatalf("mean %v", a.Mean())
	}
	if math.Abs(a.Std()-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v", a.Std())
	}
	if a.Min() != 1 || a.Max() != 5 || a.Median() != 3 {
		t.Fatal("order stats wrong")
	}
	if a.N() != 5 {
		t.Fatal("count wrong")
	}
}

func TestAggregateEvenMedian(t *testing.T) {
	a := NewAggregate("x", 1, 2, 3, 4)
	if a.Median() != 2.5 {
		t.Fatalf("median %v", a.Median())
	}
}

func TestAggregateEmptyAndSingle(t *testing.T) {
	e := NewAggregate("e")
	if e.Mean() != 0 || e.Std() != 0 || e.Median() != 0 {
		t.Fatal("empty aggregate should be zeros")
	}
	s := NewAggregate("s", 7)
	if s.Std() != 0 || s.Mean() != 7 {
		t.Fatal("single-sample stats wrong")
	}
}

func TestAggregateReports(t *testing.T) {
	r1 := sampleReport()
	r2 := sampleReport()
	aggs := AggregateReports([]*Report{r1, r2})
	if aggs["IEpmJ"].N() != 2 {
		t.Fatal("IEpmJ samples missing")
	}
	if aggs["IEpmJ"].Std() != 0 {
		t.Fatal("identical runs must have zero spread")
	}
	out := FormatAggregates(aggs)
	for _, want := range []string{"IEpmJ", "accAll", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %s:\n%s", want, out)
		}
	}
}
