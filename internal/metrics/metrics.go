// Package metrics computes the paper's figures of merit from simulation
// outcomes: IEpmJ (interesting events correctly processed per milliJoule
// of harvested energy, Eq. 1), average accuracy over all events and over
// processed events, per-event and per-inference latency, and exit-usage
// histograms.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// EventOutcome records how one event was handled.
type EventOutcome struct {
	// T is the event trigger time (seconds).
	T int
	// Processed is false when the event was missed (insufficient energy
	// or device busy); missed events count as incorrect (Eq. 1).
	Processed bool
	// Correct reports whether the final emitted class was right.
	Correct bool
	// Exit is the final exit used (0-based), −1 for missed events.
	Exit int
	// Incremental reports whether the result was refined past the
	// initially selected exit.
	Incremental bool
	// FinishSec is when the final result was emitted.
	FinishSec float64
	// InferenceFLOPs is the total MACs spent on this event.
	InferenceFLOPs int64
	// EnergyMJ is the compute energy spent on this event.
	EnergyMJ float64
}

// Latency returns the per-event latency (occurrence → final result).
func (o EventOutcome) Latency() float64 {
	if !o.Processed {
		return 0
	}
	return o.FinishSec - float64(o.T)
}

// Report aggregates a full simulation run.
type Report struct {
	System      string
	Outcomes    []EventOutcome
	HarvestedMJ float64
	// NumExits sizes the exit histogram (1 for single-exit baselines).
	NumExits int
}

// Events returns the total number of events N.
func (r *Report) Events() int { return len(r.Outcomes) }

// ProcessedCount returns N1, the number of events that produced a result.
func (r *Report) ProcessedCount() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Processed {
			n++
		}
	}
	return n
}

// CorrectCount returns the number of correctly processed events.
func (r *Report) CorrectCount() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Processed && o.Correct {
			n++
		}
	}
	return n
}

// IEpmJ returns interesting events per milliJoule (Eq. 1): correctly
// processed events divided by the total harvested energy.
func (r *Report) IEpmJ() float64 {
	if r.HarvestedMJ <= 0 {
		return 0
	}
	return float64(r.CorrectCount()) / r.HarvestedMJ
}

// AccuracyAllEvents returns the average accuracy over all N events, with
// missed events scored 0 — the quantity IEpmJ maximizes.
func (r *Report) AccuracyAllEvents() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return float64(r.CorrectCount()) / float64(len(r.Outcomes))
}

// AccuracyProcessed returns the average accuracy over processed events
// only (§V-C's second accuracy metric).
func (r *Report) AccuracyProcessed() float64 {
	p := r.ProcessedCount()
	if p == 0 {
		return 0
	}
	return float64(r.CorrectCount()) / float64(p)
}

// MeanEventLatency returns the mean occurrence→result latency over
// processed events (§V-D's per-event latency, in seconds = time units).
func (r *Report) MeanEventLatency() float64 {
	var sum float64
	n := 0
	for _, o := range r.Outcomes {
		if o.Processed {
			sum += o.Latency()
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MeanInferenceFLOPs returns the mean MACs per processed event — the
// paper's per-inference latency proxy.
func (r *Report) MeanInferenceFLOPs() float64 {
	var sum float64
	n := 0
	for _, o := range r.Outcomes {
		if o.Processed {
			sum += float64(o.InferenceFLOPs)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// ExitHistogram returns the number of processed events finishing at each
// exit.
func (r *Report) ExitHistogram() []int {
	n := r.NumExits
	if n <= 0 {
		n = 1
	}
	hist := make([]int, n)
	for _, o := range r.Outcomes {
		if o.Processed && o.Exit >= 0 && o.Exit < n {
			hist[o.Exit]++
		}
	}
	return hist
}

// ExitPercentages returns each exit's share of all events (the Fig. 7b
// percentages, which do not sum to 100% because missed events are
// excluded).
func (r *Report) ExitPercentages() []float64 {
	hist := r.ExitHistogram()
	out := make([]float64, len(hist))
	if len(r.Outcomes) == 0 {
		return out
	}
	for i, h := range hist {
		out[i] = float64(h) / float64(len(r.Outcomes))
	}
	return out
}

// TotalComputeMJ returns the total inference energy across events.
func (r *Report) TotalComputeMJ() float64 {
	var sum float64
	for _, o := range r.Outcomes {
		sum += o.EnergyMJ
	}
	return sum
}

// Summary renders a one-paragraph report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: events=%d processed=%d correct=%d\n",
		r.System, r.Events(), r.ProcessedCount(), r.CorrectCount())
	fmt.Fprintf(&b, "  IEpmJ=%.3f  acc(all)=%.1f%%  acc(processed)=%.1f%%\n",
		r.IEpmJ(), 100*r.AccuracyAllEvents(), 100*r.AccuracyProcessed())
	fmt.Fprintf(&b, "  latency/event=%.1fs  FLOPs/inference=%.3fM  harvested=%.1fmJ  spent=%.1fmJ\n",
		r.MeanEventLatency(), r.MeanInferenceFLOPs()/1e6, r.HarvestedMJ, r.TotalComputeMJ())
	if r.NumExits > 1 {
		fmt.Fprintf(&b, "  exit shares: ")
		for i, p := range r.ExitPercentages() {
			fmt.Fprintf(&b, "exit%d=%.1f%% ", i+1, 100*p)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
