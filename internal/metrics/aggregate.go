package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Aggregate summarizes a metric across repeated runs (different seeds),
// with mean, standard deviation, and min/median/max — what EXPERIMENTS.md
// reports for seed-sensitive quantities.
type Aggregate struct {
	Name   string
	Values []float64
}

// NewAggregate collects named values.
func NewAggregate(name string, values ...float64) *Aggregate {
	return &Aggregate{Name: name, Values: append([]float64(nil), values...)}
}

// Add appends a value.
func (a *Aggregate) Add(v float64) { a.Values = append(a.Values, v) }

// N returns the sample count.
func (a *Aggregate) N() int { return len(a.Values) }

// Mean returns the sample mean (0 for empty).
func (a *Aggregate) Mean() float64 {
	if len(a.Values) == 0 {
		return 0
	}
	var s float64
	for _, v := range a.Values {
		s += v
	}
	return s / float64(len(a.Values))
}

// Std returns the sample standard deviation (n−1 denominator; 0 for
// fewer than two samples).
func (a *Aggregate) Std() float64 {
	if len(a.Values) < 2 {
		return 0
	}
	m := a.Mean()
	var sq float64
	for _, v := range a.Values {
		d := v - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(a.Values)-1))
}

// Min returns the smallest value (0 for empty).
func (a *Aggregate) Min() float64 {
	if len(a.Values) == 0 {
		return 0
	}
	m := a.Values[0]
	for _, v := range a.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value (0 for empty).
func (a *Aggregate) Max() float64 {
	if len(a.Values) == 0 {
		return 0
	}
	m := a.Values[0]
	for _, v := range a.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Median returns the middle value (0 for empty).
func (a *Aggregate) Median() float64 {
	if len(a.Values) == 0 {
		return 0
	}
	s := append([]float64(nil), a.Values...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// String renders "name: mean ± std [min, max] (n=N)".
func (a *Aggregate) String() string {
	return fmt.Sprintf("%s: %.4f ± %.4f [%.4f, %.4f] (n=%d)",
		a.Name, a.Mean(), a.Std(), a.Min(), a.Max(), a.N())
}

// AggregateReports builds aggregates of the headline metrics across runs.
func AggregateReports(reports []*Report) map[string]*Aggregate {
	out := map[string]*Aggregate{
		"IEpmJ":        NewAggregate("IEpmJ"),
		"accAll":       NewAggregate("accAll"),
		"accProcessed": NewAggregate("accProcessed"),
		"latency":      NewAggregate("latency"),
	}
	for _, r := range reports {
		out["IEpmJ"].Add(r.IEpmJ())
		out["accAll"].Add(r.AccuracyAllEvents())
		out["accProcessed"].Add(r.AccuracyProcessed())
		if l := r.MeanEventLatency(); !math.IsNaN(l) {
			out["latency"].Add(l)
		}
	}
	return out
}

// FormatAggregates renders a deterministic multi-line summary.
func FormatAggregates(aggs map[string]*Aggregate) string {
	keys := make([]string, 0, len(aggs))
	for k := range aggs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintln(&b, aggs[k].String())
	}
	return b.String()
}
