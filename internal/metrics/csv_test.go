package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Events() != r.Events() {
		t.Fatalf("round trip lost events: %d vs %d", back.Events(), r.Events())
	}
	if back.ProcessedCount() != r.ProcessedCount() || back.CorrectCount() != r.CorrectCount() {
		t.Fatal("round trip corrupted outcome flags")
	}
	if back.Outcomes[2].InferenceFLOPs != 1000000 {
		t.Fatal("FLOPs lost")
	}
	if back.NumExits != 3 {
		t.Fatalf("inferred NumExits = %d", back.NumExits)
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("t,processed\n1,true\n")); err == nil {
		t.Fatal("short rows accepted")
	}
	bad := "t,processed,correct,exit,incremental,finish_s,latency_s,flops,energy_mj\nx,true,true,0,false,1,1,1,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric time accepted")
	}
}
