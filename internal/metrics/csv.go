package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV dumps per-event outcomes as CSV for external analysis
// (plotting the paper's figures from raw data).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"t", "processed", "correct", "exit", "incremental", "finish_s", "latency_s", "flops", "energy_mj"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, o := range r.Outcomes {
		rec := []string{
			strconv.Itoa(o.T),
			strconv.FormatBool(o.Processed),
			strconv.FormatBool(o.Correct),
			strconv.Itoa(o.Exit),
			strconv.FormatBool(o.Incremental),
			strconv.FormatFloat(o.FinishSec, 'f', 3, 64),
			strconv.FormatFloat(o.Latency(), 'f', 3, 64),
			strconv.FormatInt(o.InferenceFLOPs, 10),
			strconv.FormatFloat(o.EnergyMJ, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses outcomes written by WriteCSV back into a report (system
// name and harvested energy are not stored in the CSV and must be set by
// the caller).
func ReadCSV(r io.Reader) (*Report, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("metrics: parse CSV: %w", err)
	}
	rep := &Report{}
	for i, rec := range rows {
		if i == 0 {
			continue // header
		}
		if len(rec) != 9 {
			return nil, fmt.Errorf("metrics: CSV row %d has %d fields, want 9", i, len(rec))
		}
		t, err1 := strconv.Atoi(rec[0])
		processed, err2 := strconv.ParseBool(rec[1])
		correct, err3 := strconv.ParseBool(rec[2])
		exit, err4 := strconv.Atoi(rec[3])
		incr, err5 := strconv.ParseBool(rec[4])
		finish, err6 := strconv.ParseFloat(rec[5], 64)
		flops, err7 := strconv.ParseInt(rec[7], 10, 64)
		energyMJ, err8 := strconv.ParseFloat(rec[8], 64)
		for _, e := range []error{err1, err2, err3, err4, err5, err6, err7, err8} {
			if e != nil {
				return nil, fmt.Errorf("metrics: CSV row %d: %w", i, e)
			}
		}
		rep.Outcomes = append(rep.Outcomes, EventOutcome{
			T: t, Processed: processed, Correct: correct, Exit: exit,
			Incremental: incr, FinishSec: finish, InferenceFLOPs: flops, EnergyMJ: energyMJ,
		})
		if exit+1 > rep.NumExits {
			rep.NumExits = exit + 1
		}
	}
	return rep, nil
}
