package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("req_total", "counter", "requests served")
	r.Counter(Metric("req_total", "route", "/v1/infer", "code", "200")).Add(3)
	r.Counter(Metric("req_total", "route", "/v1/infer", "code", "429")).Inc()
	r.Counter("plain_total").Add(7)
	r.Gauge(`depth{model="a1"}`).Set(4)
	r.GaugeFunc("uptime_seconds", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_total requests served\n",
		"# TYPE req_total counter\n",
		`req_total{route="/v1/infer",code="200"} 3` + "\n",
		`req_total{route="/v1/infer",code="429"} 1` + "\n",
		"plain_total 7\n",
		`depth{model="a1"} 4` + "\n",
		"# TYPE depth gauge\n",
		"uptime_seconds 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Identity: same full name returns the same instrument.
	if got := r.Counter(Metric("req_total", "route", "/v1/infer", "code", "200")).Value(); got != 3 {
		t.Fatalf("GetOrCreate identity broken: %d", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat_seconds{model="m"}`, []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{model="m",le="0.1"} 1` + "\n",
		`lat_seconds_bucket{model="m",le="1"} 3` + "\n",
		`lat_seconds_bucket{model="m",le="+Inf"} 4` + "\n",
		`lat_seconds_sum{model="m"} 6.05` + "\n",
		`lat_seconds_count{model="m"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if n := h.Count(); n != 4 {
		t.Fatalf("Count = %d", n)
	}
	if bc := h.BucketCounts(); len(bc) != 3 || bc[0] != 1 || bc[1] != 2 || bc[2] != 1 {
		t.Fatalf("BucketCounts = %v", bc)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 4))
	// le is inclusive: an observation of exactly 2 lands in the le="2"
	// bucket, which for unit-width integer buckets makes per-bucket
	// counts exact batch-size counts.
	for _, v := range []float64{1, 2, 2, 4, 9} {
		h.Observe(v)
	}
	bc := h.BucketCounts()
	want := []uint64{1, 2, 0, 1, 1}
	for i := range want {
		if bc[i] != want[i] {
			t.Fatalf("BucketCounts = %v, want %v", bc, want)
		}
	}
}

func TestMetricEscaping(t *testing.T) {
	got := Metric("m", "k", "a\"b\\c\nd")
	want := `m{k="a\"b\\c\nd"}`
	if got != want {
		t.Fatalf("Metric = %s, want %s", got, want)
	}
}

func TestCounterSum(t *testing.T) {
	r := NewRegistry()
	r.Counter(`served_total{model="a"}`).Add(2)
	r.Counter(`served_total{model="b"}`).Add(5)
	if got := r.CounterSum("served_total"); got != 7 {
		t.Fatalf("CounterSum = %d", got)
	}
	if got := r.CounterSum("nonexistent"); got != 0 {
		t.Fatalf("CounterSum(nonexistent) = %d", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

// TestRegistryConcurrency hammers one registry from many goroutines
// (creates, updates, scrapes) — the -race gate over the obs package.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter(Metric("c_total", "w", fmt.Sprint(g%4))).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", DefLatencyBuckets).Observe(float64(i) / 100)
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.CounterSum("c_total"); got != 8*200 {
		t.Fatalf("CounterSum = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("h_seconds", nil).Count(); got != 8*200 {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	// A registered-but-never-observed histogram must still expose a
	// complete series: every bucket, _sum, and _count at zero. Scrapers
	// treat a missing series as a target change, not a zero.
	r := NewRegistry()
	r.Histogram("cold_seconds", []float64{0.1, 1})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cold_seconds histogram\n",
		`cold_seconds_bucket{le="0.1"} 0` + "\n",
		`cold_seconds_bucket{le="1"} 0` + "\n",
		`cold_seconds_bucket{le="+Inf"} 0` + "\n",
		"cold_seconds_sum 0\n",
		"cold_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-observation exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestGaugeAndHistogramIdentity(t *testing.T) {
	// Re-registering the same full name must return the same instrument
	// (counters already have this covered; pin it for the other kinds).
	r := NewRegistry()
	g := r.Gauge(Metric("depth", "model", "m"))
	g.Set(7)
	if got := r.Gauge(Metric("depth", "model", "m")).Value(); got != 7 {
		t.Fatalf("gauge identity broken: got %v, want 7", got)
	}
	h := r.Histogram(Metric("lat_seconds", "model", "m"), []float64{1})
	h.Observe(0.5)
	h2 := r.Histogram(Metric("lat_seconds", "model", "m"), []float64{1})
	if h2 != h {
		t.Fatal("histogram identity broken: second registration returned a new instrument")
	}
	if got := h2.Count(); got != 1 {
		t.Fatalf("histogram identity broken: count %d, want 1", got)
	}
}

func TestEscapedLabelRoundTrip(t *testing.T) {
	// A label value containing every escapable character must survive
	// Metric -> registry -> WritePrometheus with exposition escaping
	// intact and appear exactly once.
	r := NewRegistry()
	raw := "a\"b\\c\nd"
	r.Counter(Metric("esc_total", "path", raw)).Add(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `esc_total{path="a\"b\\c\nd"} 2` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("escaped label exposition missing %q in:\n%s", want, out)
	}
	if n := strings.Count(out, "esc_total{"); n != 1 {
		t.Errorf("escaped label split into %d series, want 1:\n%s", n, out)
	}
}
