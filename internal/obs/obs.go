// Package obs is the serving path's metrics registry: counters, gauges,
// and histograms with hand-rolled Prometheus text exposition — zero
// dependencies, by design (go.mod stays stdlib-only).
//
// Instruments are identified by their full Prometheus name, label set
// included: Counter(`x_total{route="/v1/infer",code="200"}`) returns the
// one counter for that exact series, creating it on first use. The
// Metric helper builds such names with proper label-value escaping. All
// instruments are safe for concurrent use; WritePrometheus may run
// concurrently with updates and emits a deterministic (sorted) snapshot.
//
// One registry backs both ehserved views: GET /metrics exposes it in
// Prometheus text format, and GET /v1/stats renders a JSON view over the
// very same instruments, so the two can never disagree.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Instrument kinds, used for TYPE lines and conflict detection.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds a set of metric families keyed by family name; each
// family holds one instrument per label set.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// family is every series of one metric name.
type family struct {
	name string
	kind string
	help string
	mu   sync.Mutex
	inst map[string]any // labels ("" or `{k="v",...}`) -> *Counter/*Gauge/*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// splitName separates a full metric name into family and label part.
func splitName(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// familyFor returns (creating if needed) the family of the given kind;
// registering the same family under two kinds is a programming error.
func (r *Registry) familyFor(famName, kind string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[famName]
	if f == nil {
		f = &family{name: famName, kind: kind, inst: make(map[string]any)}
		r.fams[famName] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: %s already registered as %s, requested as %s", famName, f.kind, kind))
	}
	return f
}

// SetHelp attaches a HELP line to a family (created lazily if its first
// instrument has not arrived yet; the kind is fixed at first instrument).
func (r *Registry) SetHelp(famName, kind, help string) {
	f := r.familyFor(famName, kind)
	f.mu.Lock()
	f.help = help
	f.mu.Unlock()
}

// Counter returns the counter registered under the full name (family
// plus optional {labels}), creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	famName, labels := splitName(name)
	f := r.familyFor(famName, kindCounter)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.inst[labels]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	f.inst[labels] = c
	return c
}

// Gauge returns the settable gauge registered under the full name,
// creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	famName, labels := splitName(name)
	f := r.familyFor(famName, kindGauge)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.inst[labels]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	f.inst[labels] = g
	return g
}

// GaugeFunc registers a callback-backed gauge: every exposition calls fn
// for the current value. Re-registering the same name replaces the
// callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	famName, labels := splitName(name)
	f := r.familyFor(famName, kindGauge)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.inst[labels]; ok {
		g.(*Gauge).fn = fn
		return
	}
	f.inst[labels] = &Gauge{fn: fn}
}

// Histogram returns the histogram registered under the full name,
// creating it with the given bucket upper bounds (ascending; a final
// +Inf bucket is implicit) on first use. Later calls return the existing
// histogram regardless of the buckets argument.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	famName, labels := splitName(name)
	f := r.familyFor(famName, kindHistogram)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.inst[labels]; ok {
		return h.(*Histogram)
	}
	h := NewHistogram(buckets)
	f.inst[labels] = h
	return h
}

// CounterSum totals every series of a counter family — the registry-side
// aggregate that keeps /v1/stats totals monotonic across series whose
// source (a per-model queue) has been torn down.
func (r *Registry) CounterSum(famName string) int64 {
	r.mu.RLock()
	f := r.fams[famName]
	r.mu.RUnlock()
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var sum int64
	for _, in := range f.inst {
		if c, ok := in.(*Counter); ok {
			sum += c.Value()
		}
	}
	return sum
}

// WritePrometheus emits the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label set, HELP/TYPE lines first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		labels := make([]string, 0, len(f.inst))
		for l := range f.inst {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			switch in := f.inst[l].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, l, in.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, l, formatFloat(in.Value()))
			case *Histogram:
				in.writeTo(&b, f.name, l)
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a sample value the Prometheus way.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Metric builds a full metric name from a family and label key/value
// pairs, escaping label values: Metric("x_total", "route", "/v1/infer")
// returns `x_total{route="/v1/infer"}`. With no pairs it returns the
// bare family name.
func Metric(famName string, kv ...string) string {
	if len(kv) == 0 {
		return famName
	}
	if len(kv)%2 != 0 {
		panic("obs: Metric needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(famName)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing integer.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float, optionally backed by a callback.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the callback's result for func-backed gauges, the
// stored value otherwise.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative at
// exposition, per-bucket internally) and tracks sum and count.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // ascending upper bounds; +Inf implicit
	counts  []uint64  // len(buckets)+1; last is the +Inf overflow
	sum     float64
	n       uint64
}

// NewHistogram builds a free-standing histogram (not registered
// anywhere) with the given ascending bucket upper bounds.
func NewHistogram(buckets []float64) *Histogram {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{buckets: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with ub >= v
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// BucketCounts returns a copy of the per-bucket (non-cumulative)
// counts; the final element is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...)
}

// writeTo emits the histogram's exposition lines. labels is "" or a
// `{...}` label part the le label is merged into.
func (h *Histogram) writeTo(b *strings.Builder, famName, labels string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()

	var cum uint64
	for i, ub := range h.buckets {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", famName, mergeLE(labels, formatFloat(ub)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", famName, mergeLE(labels, "+Inf"), n)
	fmt.Fprintf(b, "%s_sum%s %s\n", famName, labels, formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", famName, labels, n)
}

// mergeLE inserts the le label into an existing label part.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// LinearBuckets returns count ascending buckets starting at start,
// width apart — e.g. LinearBuckets(1, 1, 8) for exact small-integer
// counts such as micro-batch sizes.
func LinearBuckets(start, width float64, count int) []float64 {
	bs := make([]float64, count)
	for i := range bs {
		bs[i] = start + float64(i)*width
	}
	return bs
}

// DefLatencyBuckets are the default request-latency bucket bounds, in
// seconds, spanning sub-millisecond plan hits to multi-second stalls.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}
