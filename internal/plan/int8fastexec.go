package plan

import "repro/internal/tensor"

// Int8-fast execution: the packed-weight integer pipeline behind
// CompileInt8Fast. Activations still flow as uint8 codes between steps,
// but every weighted layer runs the fused dual-lane GEMM
// (tensor.GemmInt8PackedReq) against weights repacked at compile time:
// im2col writes directly in the transposed panel order the kernel
// consumes, accumulators live in registers for the whole dot product,
// and requantize+ReLU happens in the GEMM epilogue through the layer's
// fixed-point (multiplier, shift) pair — no int32 accumulator slab, no
// float round-trips until the classifier head dequantizes logits.
//
// Output is NOT bit-exact against the reference int8 path (the fused
// epilogue single-rounds where the reference triple-rounds through
// float32); its contract is statistical parity with the float backend,
// pinned by TestInt8FastStatisticalParity.

// runInt8Fast executes one step chain through the packed kernels.
// Classifier heads (deqScale > 0) emit float32 logits into e.logitsOut
// instead of codes.
//
//ehlint:hotpath
func (e *Exec) runInt8Fast(ops []step, cur []uint8) []uint8 {
	for si := range ops {
		st := &ops[si]
		switch st.kind {
		case opConv:
			out := e.otherU8(cur)
			tensor.Im2ColU8Packed(e.col8, cur[:st.inShape.vol()], st.geom)
			tensor.GemmInt8PackedReq(out, st.wpk, e.col8, st.biasAcc, st.colCols, st.mulFix, st.shiftFix)
			cur = out

		case opDense:
			// The flattened activation vector IS one k-deep column, so
			// dense layers are the n=1 case of the packed GEMM.
			x := cur[:st.in]
			if st.deqScale > 0 {
				tensor.GemmInt8PackedDeq(e.logitsOut, st.wpk, x, st.biasAcc, 1, st.deqScale)
				return cur
			}
			out := e.otherU8(cur)
			tensor.GemmInt8PackedReq(out, st.wpk, x, st.biasAcc, 1, st.mulFix, st.shiftFix)
			cur = out

		case opPool:
			out := e.otherU8(cur)
			tensor.MaxPool2U8Into(out, cur, st.inShape.c, st.inShape.h, st.inShape.w, st.kernel, st.stride, st.outShape.h, st.outShape.w)
			cur = out
		}
	}
	return cur
}
