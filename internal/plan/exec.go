package plan

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Exec runs a compiled plan on its own preallocated arena. An Exec is
// cheap relative to an inference, single-goroutine, and reusable for any
// number of inferences; every buffer it will ever need is allocated here,
// so InferTo and Resume perform zero heap allocations.
type Exec struct {
	p *Plan

	// Double-buffered float activation slabs: each step reads one and
	// writes the other, so no step ever aliases its input.
	bufA, bufB []float32
	col        []float32

	// Integer arena for the int8 backend; logitsOut receives the
	// classifier head's dequantized logits.
	bufA8, bufB8 []uint8
	col8         []uint8
	acc          []int32
	logitsOut    []float32
}

// NewExec builds an executor for the plan.
func (p *Plan) NewExec() *Exec {
	e := &Exec{p: p}
	if p.int8 {
		e.bufA8 = make([]uint8, p.maxVol)
		e.bufB8 = make([]uint8, p.maxVol)
		e.col8 = make([]uint8, p.maxColVol)
		if !p.fast {
			// The fast path requantizes straight out of GEMM registers;
			// only the bit-exact path stages an int32 accumulator slab.
			e.acc = make([]int32, p.maxAccVol)
		}
		e.logitsOut = make([]float32, p.classes)
	} else {
		e.bufA = make([]float32, p.maxVol)
		e.bufB = make([]float32, p.maxVol)
		e.col = make([]float32, p.maxColVol)
	}
	return e
}

// Plan returns the compiled program this executor runs.
func (e *Exec) Plan() *Plan { return e.p }

// State is a suspended plan inference: the checkpointable trunk
// activation (what the paper's runtime writes to FRAM between power
// cycles) plus the logits of the deepest exit computed so far. A State
// is allocated once (NewState) and refilled by every InferTo, so the
// episode loop reuses one State across all events.
type State struct {
	// Exit is the deepest exit already computed.
	Exit int

	logits []float32
	probs  []float32 // softmax scratch for Confidence

	trunk      []float32
	trunk8     []uint8
	trunkShape shape
}

// NewState allocates a state sized for the plan's largest trunk
// checkpoint.
func (p *Plan) NewState() *State {
	s := &State{
		logits: make([]float32, p.classes),
		probs:  make([]float32, p.classes),
	}
	if p.int8 {
		s.trunk8 = make([]uint8, p.maxTrunkVol)
	} else {
		s.trunk = make([]float32, p.maxTrunkVol)
	}
	return s
}

// Logits returns the state's logits for the deepest computed exit. The
// slice is reused by the next InferTo/Resume into this state.
func (s *State) Logits() []float32 { return s.logits }

// Predicted returns the argmax class, matching
// multiexit.State.Predicted (first maximum wins).
func (s *State) Predicted() int { return Argmax(s.logits) }

// Confidence returns the normalized-entropy confidence of the state's
// logits in [0, 1]. It reproduces multiexit.State.Confidence
// (nn.Softmax + nn.NormalizedEntropy) bit for bit, against the state's
// own scratch instead of fresh tensors.
func (s *State) Confidence() float64 { return LogitsConfidence(s.logits, s.probs) }

// Argmax returns the index of the first maximum of a logits row,
// matching multiexit.State.Predicted.
//
//ehlint:hotpath
func Argmax(logits []float32) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// LogitsConfidence computes the normalized-entropy confidence of one
// logits row using caller-owned softmax scratch (len(probs) must be at
// least len(logits)). State.Confidence and the batched serving path
// share this loop, so both reproduce multiexit.State.Confidence bit for
// bit without allocating.
//
//ehlint:hotpath
func LogitsConfidence(logits, probs []float32) float64 {
	probs = probs[:len(logits)]
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for j, v := range logits {
		e := math.Exp(float64(v - maxV))
		probs[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range probs {
		probs[j] *= inv
	}
	return 1 - nn.NormalizedEntropy(probs)
}

// InferTo runs inference on a single image (CHW or 1CHW, matching the
// plan's geometry) up to the given exit, filling dst with the suspended
// state. dst must come from the same plan's NewState.
//
//ehlint:hotpath
func (e *Exec) InferTo(dst *State, img *tensor.Tensor, exit int) {
	p := e.p
	if exit < 0 || exit >= len(p.segments) {
		panic(fmt.Sprintf("plan: exit %d out of range [0,%d)", exit, len(p.segments)))
	}
	if img.Len() != p.geom.Vol() {
		panic(fmt.Sprintf("plan: image volume %d does not match compiled geometry %+v", img.Len(), p.geom))
	}
	if p.int8 {
		e.inferToInt8(dst, img, exit)
		return
	}
	cur := img.Data
	owned := false
	for i := 0; i <= exit; i++ {
		cur, owned = e.runFloat(p.segments[i], cur, owned)
	}
	e.checkpointFloat(dst, cur, exit)
	out, _ := e.runFloat(p.branches[exit], cur, owned)
	copy(dst.logits, out[:p.classes])
	dst.Exit = exit
}

// Resume continues a suspended inference to a deeper exit, re-running
// only trunk segments (state.Exit, exit] and branch exit. It panics if
// exit does not exceed dst.Exit, like the layer walk.
//
//ehlint:hotpath
func (e *Exec) Resume(dst *State, exit int) {
	p := e.p
	if exit <= dst.Exit || exit >= len(p.segments) {
		panic(fmt.Sprintf("plan: cannot resume from exit %d to exit %d", dst.Exit, exit))
	}
	if p.int8 {
		e.resumeInt8(dst, exit)
		return
	}
	cur := dst.trunk[:dst.trunkShape.vol()]
	owned := false
	for i := dst.Exit + 1; i <= exit; i++ {
		cur, owned = e.runFloat(p.segments[i], cur, owned)
	}
	e.checkpointFloat(dst, cur, exit)
	out, _ := e.runFloat(p.branches[exit], cur, owned)
	copy(dst.logits, out[:p.classes])
	dst.Exit = exit
}

// checkpointFloat copies the trunk activation into the state.
//
//ehlint:hotpath
func (e *Exec) checkpointFloat(dst *State, cur []float32, exit int) {
	sh := e.p.trunkShapes[exit]
	copy(dst.trunk[:sh.vol()], cur[:sh.vol()])
	dst.trunkShape = sh
}

// other returns the slab that is not cur; when cur is external (the
// input image or a state checkpoint), bufA is free by construction.
//
//ehlint:hotpath
func (e *Exec) other(cur []float32) []float32 {
	if len(cur) > 0 && len(e.bufA) > 0 && &cur[0] == &e.bufA[0] {
		return e.bufB
	}
	return e.bufA
}

// runFloat executes one fused-step chain. cur is the input activation;
// owned reports whether cur is one of the executor's slabs (and may
// therefore be mutated in place). The returned slice is the chain's
// output activation, again flagged with ownership.
//
//ehlint:hotpath
func (e *Exec) runFloat(ops []step, cur []float32, owned bool) ([]float32, bool) {
	for si := range ops {
		st := &ops[si]
		switch st.kind {
		case opConv:
			// Transposed lowering + register-blocked dot-product GEMM:
			// the layer walk's sums in the same per-element order (so
			// bit-identical), with every accumulator held in a register.
			out := e.other(cur)
			tensor.Im2ColTSlice(e.col, cur[:st.inShape.vol()], st.geom)
			tensor.GemmTransBSerial(out, st.w, e.col, st.outC, st.colRows, st.colCols)
			spatial := st.colCols
			for oc := 0; oc < st.outC; oc++ {
				b := st.bias[oc]
				row := out[oc*spatial : (oc+1)*spatial]
				if st.fuseReLU {
					for i, v := range row {
						v += b
						if !(v > 0) { // matches nn.ReLU (NaN and -0 become +0)
							v = 0
						}
						row[i] = v
					}
				} else {
					for i := range row {
						row[i] += b
					}
				}
			}
			if st.quantBits > 0 {
				nn.FakeQuantizeSlice(out[:st.outShape.vol()], st.quantBits)
			}
			cur, owned = out, true

		case opDense:
			out := e.other(cur)
			tensor.GemmTransBSerial(out, cur[:st.in], st.w, 1, st.in, st.out)
			row := out[:st.out]
			if st.fuseReLU {
				for j, v := range row {
					v += st.bias[j]
					if !(v > 0) { // matches nn.ReLU (NaN and -0 become +0)
						v = 0
					}
					row[j] = v
				}
			} else {
				for j := range row {
					row[j] += st.bias[j]
				}
				if st.quantBits > 0 && !st.final {
					nn.FakeQuantizeSlice(row, st.quantBits)
				}
			}
			cur, owned = out, true

		case opReLU:
			n := st.inShape.vol()
			if owned {
				row := cur[:n]
				for i, v := range row {
					if !(v > 0) {
						row[i] = 0
					}
				}
			} else {
				out := e.other(cur)
				for i, v := range cur[:n] {
					if v > 0 {
						out[i] = v
					} else {
						out[i] = 0
					}
				}
				cur, owned = out, true
			}

		case opPool:
			out := e.other(cur)
			maxPoolFloat(out, cur, st.inShape, st.kernel, st.stride, st.outShape)
			cur, owned = out, true
		}
	}
	return cur, owned
}

// maxPoolFloat mirrors nn.MaxPool2D.Forward's window walk exactly.
//
//ehlint:hotpath
func maxPoolFloat(dst, src []float32, in shape, kernel, stride int, out shape) {
	c, h, w := in.c, in.h, in.w
	oh, ow := out.h, out.w
	for ci := 0; ci < c; ci++ {
		planeBase := ci * h * w
		outBase := ci * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := src[planeBase+(oy*stride)*w+ox*stride]
				for ky := 0; ky < kernel; ky++ {
					rowBase := planeBase + (oy*stride+ky)*w
					for kx := 0; kx < kernel; kx++ {
						if v := src[rowBase+ox*stride+kx]; v > best {
							best = v
						}
					}
				}
				dst[outBase+oy*ow+ox] = best
			}
		}
	}
}
