package plan

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/multiexit"
	"repro/internal/tensor"
)

// refRequantU8 is the historical float-rounding requantization this
// backend's integer requantU8 must reproduce bit for bit. The product
// and the +0.5 are separate statements so the reference stays
// double-rounded (no fused multiply-add) on every platform.
func refRequantU8(a int32, mult float32) uint8 {
	if a <= 0 {
		return 0
	}
	prod := float32(a) * mult
	q := int32(prod + 0.5)
	if q > 255 {
		return 255
	}
	return uint8(q)
}

// refConvertible reports whether the reference's float→int32 conversion
// is well-defined for this (a, mult): at or above 2^31 the Go spec
// leaves the result implementation-dependent, so parity there is only
// meaningful per platform.
func refConvertible(a int32, mult float32) bool {
	if a <= 0 {
		return true
	}
	prod := float32(a) * mult
	return float64(prod+0.5) < float64(int64(1)<<31)
}

// requantMults gathers the requant multipliers a real compiled int8
// plan binds, plus a spread of synthetic magnitudes covering the
// fixed-point corners (tiny products, near-1 multipliers, ties).
func requantMults(t *testing.T) []float32 {
	t.Helper()
	net := multiexit.LeNetEE(tensor.NewRNG(6))
	geom, _ := InferGeometry(net)
	ip, err := CompileInt8(net, geom, Int8Config{Calibration: testImages(4, 21)})
	if err != nil {
		t.Fatal(err)
	}
	var mults []float32
	for _, seq := range append(append([][]step{}, ip.segments...), ip.branches...) {
		for _, st := range seq {
			if st.requantMult > 0 {
				mults = append(mults, st.requantMult)
			}
		}
	}
	if len(mults) == 0 {
		t.Fatal("compiled int8 plan bound no requant multipliers")
	}
	return append(mults,
		1e-10, 3.0517578e-05, 0.001, 0.0117, 0.25, 0.3333333,
		0.5, 0.9999999, 1.0, 1.0000001, 1.5, 7.25, 1e-38)
}

// TestRequantU8Parity sweeps the integer requantization against the
// float-rounding reference: exhaustively over the low accumulator range,
// across every power-of-two boundary (where significand roundings
// change), and over a dense random sample of the full int32 range.
func TestRequantU8Parity(t *testing.T) {
	mults := requantMults(t)
	check := func(a int32, mult float32, m int64, e int) {
		if !refConvertible(a, mult) {
			return
		}
		if got, want := requantU8(a, m, e), refRequantU8(a, mult); got != want {
			t.Fatalf("requantU8(%d, mult=%x) = %d, want %d", a, math.Float32bits(mult), got, want)
		}
	}
	r := rand.New(rand.NewSource(42))
	for _, mult := range mults {
		m, e := requantFixExact(mult)
		for a := int32(-4); a <= 1<<17; a++ {
			check(a, mult, m, e)
		}
		for sh := uint(17); sh < 31; sh++ {
			base := int32(1) << sh
			for d := int32(-300); d <= 300; d++ {
				check(base+d, mult, m, e)
			}
		}
		for i := 0; i < 200000; i++ {
			check(int32(r.Uint32()), mult, m, e)
		}
		check(math.MaxInt32, mult, m, e)
	}
}

// FuzzRequantU8 extends the parity sweep to arbitrary (accumulator,
// multiplier) pairs: any positive finite float32 multiplier must
// requantize identically through the integer path.
func FuzzRequantU8(f *testing.F) {
	f.Add(int32(1), uint32(0x3a80_0000))             // tiny a, mult 2^-10
	f.Add(int32(1<<24+3), uint32(0x3f80_0000))       // a above 24-bit, mult 1
	f.Add(int32(255), uint32(0x3f00_0001))           // near-tie territory
	f.Add(int32(math.MaxInt32), uint32(0x28ff_ff01)) // huge a, tiny mult
	f.Fuzz(func(t *testing.T, a int32, multBits uint32) {
		mult := math.Float32frombits(multBits &^ (1 << 31))
		if !(mult > 0) || math.IsInf(float64(mult), 0) {
			t.Skip()
		}
		if !refConvertible(a, mult) {
			t.Skip() // implementation-dependent conversion region
		}
		m, e := requantFixExact(mult)
		if got, want := requantU8(a, m, e), refRequantU8(a, mult); got != want {
			t.Fatalf("requantU8(%d, mult=%x) = %d, want %d", a, multBits, got, want)
		}
	})
}

// compileFastPair compiles the float and int8-fast plans for one
// freshly seeded LeNet-EE with a shared calibration set.
func compileFastPair(t *testing.T, seed uint64) (*multiexit.Network, *Plan, *Plan) {
	t.Helper()
	net := multiexit.LeNetEE(tensor.NewRNG(seed))
	geom, err := InferGeometry(net)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Compile(net, geom)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := CompileInt8Fast(net, geom, Int8Config{Calibration: testImages(4, 21)})
	if err != nil {
		t.Fatal(err)
	}
	return net, fp, ip
}

// TestInt8FastStatisticalParity is the fast backend's accuracy gate:
// per-exit accuracy within ε of the float backend. With the float
// backend's own predictions as labels its accuracy is 1 by
// construction, so the gate reduces to a per-exit agreement rate of at
// least 1-ε — the statistical contract that licenses the packed-kernel
// restructuring (the bit-exact contract stays with BackendInt8).
func TestInt8FastStatisticalParity(t *testing.T) {
	const epsilon = 0.15
	net, fp, ip := compileFastPair(t, 6)
	if !ip.Int8() || !ip.Int8Fast() || fp.Int8Fast() {
		t.Fatal("backend flags wrong")
	}
	fex, fst := fp.NewExec(), fp.NewState()
	iex, ist := ip.NewExec(), ip.NewState()

	imgs := testImages(64, 9)
	for exit := 0; exit < net.NumExits(); exit++ {
		agree := 0
		for _, img := range imgs {
			fex.InferTo(fst, img, exit)
			iex.InferTo(ist, img, exit)
			if fst.Predicted() == ist.Predicted() {
				agree++
			}
			if c := ist.Confidence(); c < 0 || c > 1 {
				t.Fatalf("int8-fast confidence %v out of range", c)
			}
		}
		if acc := float64(agree) / float64(len(imgs)); acc < 1-epsilon {
			t.Errorf("exit %d: int8-fast per-exit accuracy %.3f vs float 1.000, ε=%.2f exceeded", exit, acc, epsilon)
		}
	}
}

// TestInt8FastResumeIdentity: suspend/resume runs the identical integer
// pipeline, so a resume chain must reproduce direct inference exactly.
func TestInt8FastResumeIdentity(t *testing.T) {
	net, _, ip := compileFastPair(t, 8)
	iex, ist := ip.NewExec(), ip.NewState()
	img := testImages(1, 13)[0]

	last := net.NumExits() - 1
	iex.InferTo(ist, img, last)
	direct := append([]float32(nil), ist.Logits()...)

	iex.InferTo(ist, img, 0)
	for exit := 1; exit <= last; exit++ {
		iex.Resume(ist, exit)
	}
	for i, v := range ist.Logits() {
		if v != direct[i] {
			t.Fatalf("int8-fast resume logit[%d] = %v, direct = %v", i, v, direct[i])
		}
	}
}

// TestInt8FastAllocs: the packed pipeline must stay allocation-free in
// the hot loop, like every other backend.
func TestInt8FastAllocs(t *testing.T) {
	_, _, ip := compileFastPair(t, 10)
	iex, ist := ip.NewExec(), ip.NewState()
	img := testImages(1, 17)[0]
	if allocs := testing.AllocsPerRun(20, func() { iex.InferTo(ist, img, 2) }); allocs > 2 {
		t.Errorf("int8-fast InferTo: %v allocs/op, want <= 2", allocs)
	}
}

// TestInt8FastBatchLanes: BatchExec accepts int8-fast plans and its
// per-image results are bit-identical to the single-image executor at
// any lane count; the bit-exact int8 reference stays unbatched.
func TestInt8FastBatchLanes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			prev := tensor.SetWorkers(workers)
			defer tensor.SetWorkers(prev)

			net, _, ip := compileFastPair(t, 12)
			be, err := ip.NewBatchExec(8)
			if err != nil {
				t.Fatal(err)
			}
			imgs := testImages(8, 19)
			raws := make([][]float32, len(imgs))
			dsts := make([]*State, len(imgs))
			for i, img := range imgs {
				raws[i] = img.Data
				dsts[i] = ip.NewState()
			}
			exit := net.NumExits() - 1
			be.InferBatchTo(dsts, raws, exit)

			iex, ist := ip.NewExec(), ip.NewState()
			for i, img := range imgs {
				iex.InferTo(ist, img, exit)
				for j, v := range ist.Logits() {
					if v != dsts[i].Logits()[j] {
						t.Fatalf("image %d logit[%d]: batched %v vs serial %v", i, j, dsts[i].Logits()[j], v)
					}
				}
			}
		})
	}

	net := multiexit.LeNetEE(tensor.NewRNG(14))
	geom, _ := InferGeometry(net)
	slow, err := CompileInt8(net, geom, Int8Config{Calibration: testImages(2, 23)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slow.NewBatchExec(4); err == nil {
		t.Fatal("bit-exact int8 plan must stay unbatched")
	}
}
