package plan

import (
	"fmt"
	"testing"

	"repro/internal/compress"
	"repro/internal/multiexit"
	"repro/internal/tensor"
)

// testImages returns a deterministic batch of input images.
func testImages(n int, seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		img := tensor.New(3, 32, 32)
		tensor.FillUniform(img, rng, 0, 1)
		imgs[i] = img
	}
	return imgs
}

// policies returns the compression settings the parity test sweeps: the
// identity, the paper's uniform reference (activation quantization on),
// and the nonuniform reference (mixed bitwidths + pruning).
func policies(net *multiexit.Network) map[string]*compress.Policy {
	return map[string]*compress.Policy{
		"full-precision": compress.FullPrecision(net),
		"fig1b-uniform":  compress.Fig1bUniform(net),
		"nonuniform":     compress.Fig1bNonuniform(),
	}
}

// TestInferGeometry checks geometry inference on the paper architecture.
func TestInferGeometry(t *testing.T) {
	g, err := InferGeometry(multiexit.LeNetEE(nil))
	if err != nil {
		t.Fatal(err)
	}
	if g != (Geometry{C: 3, H: 32, W: 32}) {
		t.Fatalf("geometry = %+v", g)
	}
}

// TestFloatParity is the tentpole's gate: plan-based InferTo/Resume
// logits must be bit-identical to the legacy layer walk across all
// exits, worker counts {1, 4}, and after compression policies are
// applied.
func TestFloatParity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for name := range map[string]bool{"full-precision": true, "fig1b-uniform": true, "nonuniform": true} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, name), func(t *testing.T) {
				prev := tensor.SetWorkers(workers)
				defer tensor.SetWorkers(prev)

				net := multiexit.LeNetEE(tensor.NewRNG(1))
				if err := compress.Apply(net, policies(net)[name]); err != nil {
					t.Fatal(err)
				}
				geom, err := InferGeometry(net)
				if err != nil {
					t.Fatal(err)
				}
				p, err := Compile(net, geom)
				if err != nil {
					t.Fatal(err)
				}
				ex := p.NewExec()
				st := p.NewState()

				for _, img := range testImages(4, 7) {
					// Direct inference to every exit.
					for exit := 0; exit < net.NumExits(); exit++ {
						want := net.InferTo(img, exit)
						ex.InferTo(st, img, exit)
						assertLogitsEqual(t, st, want, fmt.Sprintf("InferTo exit %d", exit))
					}
					// Incremental: start at exit 0, resume one exit at a
					// time, comparing the suspended-state chain.
					want := net.InferTo(img, 0)
					ex.InferTo(st, img, 0)
					assertLogitsEqual(t, st, want, "resume chain start")
					for exit := 1; exit < net.NumExits(); exit++ {
						want = net.Resume(want, exit)
						ex.Resume(st, exit)
						assertLogitsEqual(t, st, want, fmt.Sprintf("Resume to exit %d", exit))
					}
					// Skip-ahead resume (0 → last) as the runtime does when
					// it continues past multiple exits at once.
					if n := net.NumExits(); n > 2 {
						wantSkip := net.Resume(net.InferTo(img, 0), n-1)
						ex.InferTo(st, img, 0)
						ex.Resume(st, n-1)
						assertLogitsEqual(t, st, wantSkip, "skip-ahead resume")
					}
				}
			})
		}
	}
}

// assertLogitsEqual compares a plan state against a layer-walk state bit
// for bit: logits, predicted class, and confidence.
func assertLogitsEqual(t *testing.T, got *State, want *multiexit.State, ctx string) {
	t.Helper()
	if len(got.Logits()) != want.Logits.Len() {
		t.Fatalf("%s: logit count %d vs %d", ctx, len(got.Logits()), want.Logits.Len())
	}
	for i, v := range got.Logits() {
		if v != want.Logits.Data[i] {
			t.Fatalf("%s: logit[%d] = %x, want %x (plan output must be bit-identical)",
				ctx, i, v, want.Logits.Data[i])
		}
	}
	if got.Predicted() != want.Predicted() {
		t.Fatalf("%s: predicted %d vs %d", ctx, got.Predicted(), want.Predicted())
	}
	if gc, wc := got.Confidence(), want.Confidence(); gc != wc {
		t.Fatalf("%s: confidence %v vs %v", ctx, gc, wc)
	}
}

// TestPlanFollowsWeightUpdates verifies that plans hold live views into
// the network's parameters, not snapshots.
func TestPlanFollowsWeightUpdates(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(2))
	geom, _ := InferGeometry(net)
	p, err := Compile(net, geom)
	if err != nil {
		t.Fatal(err)
	}
	ex, st := p.NewExec(), p.NewState()
	img := testImages(1, 3)[0]

	ex.InferTo(st, img, 0)
	before := append([]float32(nil), st.Logits()...)

	for _, pr := range net.Params() {
		pr.Value.ScaleInPlace(0.5)
	}
	ex.InferTo(st, img, 0)
	want := net.InferTo(img, 0)
	same := true
	for i, v := range st.Logits() {
		if v != want.Logits.Data[i] {
			t.Fatalf("after weight update, plan logit[%d] diverges from layer walk", i)
		}
		if v != before[i] {
			same = false
		}
	}
	if same {
		t.Fatal("plan output unchanged after scaling every weight — stale snapshot?")
	}
}

// TestPlanAllocs is the allocation regression gate: the plan path must
// run with at most 2 allocs per inference (target 0).
func TestPlanAllocs(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(4))
	geom, _ := InferGeometry(net)
	p, err := Compile(net, geom)
	if err != nil {
		t.Fatal(err)
	}
	ex, st := p.NewExec(), p.NewState()
	img := testImages(1, 5)[0]

	for name, fn := range map[string]func(){
		"InferTo":    func() { ex.InferTo(st, img, 2) },
		"Resume":     func() { ex.InferTo(st, img, 0); ex.Resume(st, 2) },
		"Confidence": func() { _ = st.Confidence(); _ = st.Predicted() },
	} {
		if allocs := testing.AllocsPerRun(20, fn); allocs > 2 {
			t.Errorf("%s: %v allocs/op, want <= 2", name, allocs)
		}
	}
}

// TestInt8Plan checks the int8 backend end to end: it runs, resumes, and
// its argmax agrees with the float backend on a large majority of
// uniformly random inputs (it is an approximation, not a bit-identical
// backend).
func TestInt8Plan(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(6))
	geom, _ := InferGeometry(net)
	fp, err := Compile(net, geom)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := CompileInt8(net, geom, Int8Config{Calibration: testImages(4, 21)})
	if err != nil {
		t.Fatal(err)
	}
	if !ip.Int8() || fp.Int8() {
		t.Fatal("backend flags wrong")
	}
	fex, fst := fp.NewExec(), fp.NewState()
	iex, ist := ip.NewExec(), ip.NewState()

	imgs := testImages(32, 9)
	for exit := 0; exit < net.NumExits(); exit++ {
		agree := 0
		for _, img := range imgs {
			fex.InferTo(fst, img, exit)
			iex.InferTo(ist, img, exit)
			if fst.Predicted() == ist.Predicted() {
				agree++
			}
			if c := ist.Confidence(); c < 0 || c > 1 {
				t.Fatalf("int8 confidence %v out of range", c)
			}
		}
		if agree < len(imgs)*3/4 {
			t.Errorf("exit %d: int8 argmax agrees on only %d/%d images", exit, agree, len(imgs))
		}
	}

	// Resume must match direct int8 inference exactly (same integer
	// pipeline, same codes).
	img := imgs[0]
	iex.InferTo(ist, img, 2)
	direct := append([]float32(nil), ist.Logits()...)
	iex.InferTo(ist, img, 0)
	iex.Resume(ist, 2)
	for i, v := range ist.Logits() {
		if v != direct[i] {
			t.Fatalf("int8 resume logit[%d] = %v, direct = %v", i, v, direct[i])
		}
	}

	// And the int8 path must be allocation-free too.
	if allocs := testing.AllocsPerRun(20, func() { iex.InferTo(ist, img, 2) }); allocs > 2 {
		t.Errorf("int8 InferTo: %v allocs/op, want <= 2", allocs)
	}
}

// TestCompileRejectsBadGeometry checks compile-time validation.
func TestCompileRejectsBadGeometry(t *testing.T) {
	net := multiexit.LeNetEE(nil)
	if _, err := Compile(net, Geometry{C: 3, H: 8, W: 8}); err == nil {
		t.Fatal("expected error compiling 32x32 architecture at 8x8")
	}
	if _, err := Compile(net, Geometry{}); err == nil {
		t.Fatal("expected error for zero geometry")
	}
}
