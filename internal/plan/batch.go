package plan

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// BatchExec runs a compiled float32 plan over a micro-batch of images —
// the serving counterpart of Exec, built for the online /v1/infer path
// where a dispatcher hands over several requests at once.
//
// The batch splits into contiguous per-worker bands (one lane per
// tensor worker, fixed at construction), and every lane owns a full
// private executor, so bands run concurrently with zero sharing.
// Within a band images run depth-first — one image's whole
// trunk-and-branches walk completes before the next starts — through
// exactly the single-image executor's fused steps and register-blocked
// kernels. Depth-first is a measured choice, not a simplification: a
// breadth-first (step-lock-step) schedule with band-wide GEMMs was
// built and benchmarked first, and lost — one image's activations fit
// the cache, a band's do not, so the widened working set evicted
// weights and activations between steps and per-image cost *rose* with
// batch size, while the batch-wide dense GEMM bought nothing because
// the serial kernels already run at scalar peak. The batch dimension
// pays off through the lanes: on a w-core host per-image wall time
// divides by min(batch, w); on a single core it matches the N=1 plan
// exactly.
//
// Per-image output is bit-identical to Exec.InferTo at every batch
// size and lane count: each image is processed by the identical serial
// code, and band boundaries only decide which goroutine runs it.
//
// A BatchExec is reusable for any number of batches but serves one
// batch at a time; the serving layer pools them. The packed-weight
// int8-fast backend batches exactly like float32 — each lane's executor
// runs the fused integer kernels, so a multi-core host divides
// quantized per-image wall time by the lane count. The bit-exact int8
// reference backend is deliberately not batched: it exists as a
// semantic anchor, and the serving layer runs it per image through
// ordinary Execs.
type BatchExec struct {
	p     *Plan
	maxN  int
	lanes []blane
}

// blane is one band's private execution context: an executor, a
// scratch state for exit scans, and a reusable tensor header that wraps
// each raw input slice without allocating.
type blane struct {
	ex  *Exec
	st  *State
	img *tensor.Tensor
}

// NewBatchExec builds a batched executor able to run up to maxBatch
// images at once, with one lane per tensor worker available at
// construction time. Float32 and int8-fast plans support batching; the
// bit-exact int8 reference path does not.
func (p *Plan) NewBatchExec(maxBatch int) (*BatchExec, error) {
	if p.int8 && !p.fast {
		return nil, fmt.Errorf("plan: batched execution supports the float32 and int8-fast backends only")
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	nl := tensor.Workers()
	if nl > maxBatch {
		nl = maxBatch
	}
	if nl < 1 {
		nl = 1
	}
	be := &BatchExec{p: p, maxN: maxBatch, lanes: make([]blane, nl)}
	for i := range be.lanes {
		be.lanes[i] = blane{
			ex:  p.NewExec(),
			st:  p.NewState(),
			img: tensor.FromSlice(make([]float32, p.geom.Vol()), p.geom.C, p.geom.H, p.geom.W),
		}
	}
	return be, nil
}

// Plan returns the compiled program this executor runs.
func (be *BatchExec) Plan() *Plan { return be.p }

// MaxBatch returns the largest batch this executor can run.
func (be *BatchExec) MaxBatch() int { return be.maxN }

// Lanes returns how many worker bands the executor splits a batch
// across.
func (be *BatchExec) Lanes() int { return len(be.lanes) }

// InferBatchTo runs the images (each a CHW slice matching the plan's
// geometry) to the given exit, filling dst[i] exactly as
// Exec.InferTo(dst[i], imgs[i], exit) would — bit-identical logits and a
// resumable trunk checkpoint. len(dsts) must equal len(imgs) and be at
// most MaxBatch; every dst must come from this plan's NewState.
func (be *BatchExec) InferBatchTo(dsts []*State, imgs [][]float32, exit int) {
	if len(dsts) != len(imgs) {
		panic(fmt.Sprintf("plan: %d states for %d images", len(dsts), len(imgs)))
	}
	be.checkBatch(imgs, exit)
	be.forBands(len(imgs), func(ln *blane, lo, hi int) {
		for i := lo; i < hi; i++ {
			ln.img.Data = imgs[i]
			ln.ex.InferTo(dsts[i], ln.img, exit)
		}
	})
}

// ScanExits runs the images through every exit up to maxExit, invoking
// visit(exit, img, logits) after each branch: each image's
// InferTo-then-Resume chain, whose per-exit logits are bit-identical to
// a direct InferTo at that exit (the resume-chain identity the plan
// parity tests pin). The logits slice is lane scratch, valid only for
// the duration of the call — copy what you keep. When the executor has
// more than one lane, visit is called concurrently from different
// bands; calls for the same image always come from one band, in exit
// order.
func (be *BatchExec) ScanExits(imgs [][]float32, maxExit int, visit func(exit, img int, logits []float32)) {
	be.checkBatch(imgs, maxExit)
	be.forBands(len(imgs), func(ln *blane, lo, hi int) {
		for i := lo; i < hi; i++ {
			ln.img.Data = imgs[i]
			ln.ex.InferTo(ln.st, ln.img, 0)
			visit(0, i, ln.st.logits)
			for e := 1; e <= maxExit; e++ {
				ln.ex.Resume(ln.st, e)
				visit(e, i, ln.st.logits)
			}
		}
	})
}

// checkBatch validates batch size, exit range, and image volumes up
// front, so errors name the offending image instead of surfacing from
// arena depths.
func (be *BatchExec) checkBatch(imgs [][]float32, exit int) {
	p := be.p
	if exit < 0 || exit >= len(p.segments) {
		panic(fmt.Sprintf("plan: exit %d out of range [0,%d)", exit, len(p.segments)))
	}
	if len(imgs) > be.maxN {
		panic(fmt.Sprintf("plan: batch of %d exceeds executor capacity %d", len(imgs), be.maxN))
	}
	vol := p.geom.Vol()
	for i, img := range imgs {
		if len(img) != vol {
			panic(fmt.Sprintf("plan: image %d volume %d does not match compiled geometry %+v", i, len(img), p.geom))
		}
	}
}

// forBands splits [0, n) into contiguous bands differing by at most
// one image and runs f per band, concurrently when more than one lane
// engages. Band boundaries depend only on n and the lane count, and
// each band owns disjoint images, so results are bit-identical at any
// lane count.
func (be *BatchExec) forBands(n int, f func(ln *blane, lo, hi int)) {
	if n == 0 {
		return
	}
	nl := len(be.lanes)
	if nl > n {
		nl = n
	}
	if nl == 1 {
		f(&be.lanes[0], 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(nl)
	q, r := n/nl, n%nl
	lo := 0
	for w := 0; w < nl; w++ {
		hi := lo + q
		if w < r {
			hi++
		}
		go func(ln *blane, lo, hi int) {
			defer wg.Done()
			f(ln, lo, hi)
		}(&be.lanes[w], lo, hi)
		lo = hi
	}
	wg.Wait()
}
