package plan

import (
	"math/bits"

	"repro/internal/tensor"
)

// Int8 execution: uint8 activation codes flow between steps, conv/dense
// steps accumulate int8×uint8 products in int32 and re-quantize through
// the statically bound multiplier (ReLU fused: negative accumulators
// clamp to the zero code). Classifier heads dequantize accumulators to
// float32 logits so State.Predicted/Confidence work identically across
// backends.

// inferToInt8 is InferTo for int8 plans.
//
//ehlint:hotpath
func (e *Exec) inferToInt8(dst *State, img *tensor.Tensor, exit int) {
	p := e.p
	// Quantize the [0,1] input image to 8-bit codes (scale 1/255), like
	// fixed.QuantizeActivations(img, 1, 8).
	cur := e.bufA8[:p.geom.Vol()]
	for i, v := range img.Data {
		f := v * 255
		switch {
		case !(f > 0): // negatives and NaN clamp to the zero code
			cur[i] = 0
		case f >= 255:
			cur[i] = 255
		default:
			cur[i] = uint8(f + 0.5)
		}
	}
	for i := 0; i <= exit; i++ {
		cur = e.runIntSeg(p.segments[i], cur)
	}
	e.checkpointInt8(dst, cur, exit)
	e.runBranchInt8(dst, cur, exit)
}

// resumeInt8 is Resume for int8 plans.
//
//ehlint:hotpath
func (e *Exec) resumeInt8(dst *State, exit int) {
	p := e.p
	cur := dst.trunk8[:dst.trunkShape.vol()]
	for i := dst.Exit + 1; i <= exit; i++ {
		cur = e.runIntSeg(p.segments[i], cur)
	}
	e.checkpointInt8(dst, cur, exit)
	e.runBranchInt8(dst, cur, exit)
}

//
//ehlint:hotpath
func (e *Exec) checkpointInt8(dst *State, cur []uint8, exit int) {
	sh := e.p.trunkShapes[exit]
	copy(dst.trunk8[:sh.vol()], cur[:sh.vol()])
	dst.trunkShape = sh
}

// runBranchInt8 executes branch `exit` and lands the dequantized logits
// in the state.
//
//ehlint:hotpath
func (e *Exec) runBranchInt8(dst *State, cur []uint8, exit int) {
	e.runIntSeg(e.p.branches[exit], cur)
	dst.Exit = exit
	// The final dense step wrote dst-bound logits into e.logitsOut.
	copy(dst.logits, e.logitsOut[:e.p.classes])
}

// otherU8 mirrors other() for the integer slabs.
//
//ehlint:hotpath
func (e *Exec) otherU8(cur []uint8) []uint8 {
	if len(cur) > 0 && len(e.bufA8) > 0 && &cur[0] == &e.bufA8[0] {
		return e.bufB8
	}
	return e.bufA8
}

// runIntSeg dispatches one step chain to the plan's integer pipeline:
// the packed-kernel fast path or the bit-exact reference path.
//
//ehlint:hotpath
func (e *Exec) runIntSeg(ops []step, cur []uint8) []uint8 {
	if e.p.fast {
		return e.runInt8Fast(ops, cur)
	}
	return e.runInt8(ops, cur)
}

// runInt8 executes one step chain on integer codes. Classifier heads
// (deqScale > 0) emit float32 logits into e.logitsOut instead of codes.
//
//ehlint:hotpath
func (e *Exec) runInt8(ops []step, cur []uint8) []uint8 {
	for si := range ops {
		st := &ops[si]
		switch st.kind {
		case opConv:
			out := e.otherU8(cur)
			tensor.Im2ColU8(e.col8, cur[:st.inShape.vol()], st.geom)
			tensor.MatMulInt8Into(e.acc, st.wq, e.col8, st.outC, st.colRows, st.colCols)
			spatial := st.colCols
			rm, re := st.requantM, st.requantE
			for oc := 0; oc < st.outC; oc++ {
				b := st.biasAcc[oc]
				accRow := e.acc[oc*spatial : (oc+1)*spatial]
				outRow := out[oc*spatial : (oc+1)*spatial]
				for i, a := range accRow {
					outRow[i] = requantU8(a+b, rm, re)
				}
			}
			cur = out

		case opDense:
			x := cur[:st.in]
			if st.deqScale > 0 {
				// Classifier head: raw accumulators → float logits.
				for o := 0; o < st.out; o++ {
					e.logitsOut[o] = float32(dotInt8(st.wq[o*st.in:(o+1)*st.in], x)+st.biasAcc[o]) * st.deqScale
				}
				return cur
			}
			out := e.otherU8(cur)
			rm, re := st.requantM, st.requantE
			for o := 0; o < st.out; o++ {
				out[o] = requantU8(dotInt8(st.wq[o*st.in:(o+1)*st.in], x)+st.biasAcc[o], rm, re)
			}
			cur = out

		case opPool:
			out := e.otherU8(cur)
			tensor.MaxPool2U8(out, cur, st.inShape.c, st.inShape.h, st.inShape.w, st.kernel, st.stride)
			cur = out
		}
	}
	return cur
}

// requantU8 fuses ReLU (accumulator clamp at zero) with requantization
// to an 8-bit activation code, in pure integer arithmetic. (m, e) is the
// compile-time decomposition of the layer's float requant multiplier
// (requantFixExact), and the function reproduces the historical
// float-rounding reference
//
//	q := int32(float32(a)*mult + 0.5)
//
// bit for bit across the full int32 accumulator range (each of the
// reference's three round-to-nearest-even float32 roundings — a to 24
// bits, the product, the +0.5 — is emulated on integer mantissas; the
// parity fuzz test pins this). Keeping the exact output is what lets
// BackendInt8's bit-identity tests survive the float unit's removal
// from this hot loop.
//
//ehlint:hotpath
func requantU8(a int32, m int64, e int) uint8 {
	if a <= 0 {
		return 0
	}
	// float32(a): round the accumulator to a 24-bit significand.
	x := int64(a)
	if x >= 1<<24 {
		sh := uint(bits.Len64(uint64(x))) - 24
		x = rneShift(x, sh) << sh
	}
	// float32(a) * mult: exact 55-bit product, rounded to 24 bits and
	// normalized to p·2^exp with p in [2^23, 2^24).
	p := x * m
	exp := e
	if l := bits.Len64(uint64(p)); l > 24 {
		sh := uint(l - 24)
		p = rneShift(p, sh)
		exp += int(sh)
	}
	if p == 1<<24 {
		p = 1 << 23
		exp++
	}
	// + 0.5, rounded: an exact tie at exp == 0, exact or rounded via the
	// common-denominator sum for negative exponents, a no-op above.
	switch {
	case exp == 0:
		p += p & 1
		if p == 1<<24 {
			p = 1 << 23
			exp = 1
		}
	case exp <= -1:
		if exp < -40 {
			return 0 // product ≪ 0.5: the sum truncates to zero
		}
		s := p + int64(1)<<uint(-1-exp)
		if l := bits.Len64(uint64(s)); l > 24 {
			sh := uint(l - 24)
			s = rneShift(s, sh)
			exp += int(sh)
		}
		if s == 1<<24 {
			s = 1 << 23
			exp++
		}
		p = s
	}
	// int32 truncation + the 255 clamp. A value at or above 2^31
	// reproduces the reference's amd64 conversion (INT_MIN → code 0).
	if exp > 0 {
		if exp >= 8 {
			return 0
		}
		return 255 // p·2^exp ≥ 2^24
	}
	q := p >> uint(-exp)
	if q > 255 {
		return 255
	}
	return uint8(q)
}

// rneShift shifts x (≥ 0) right by s, rounding to nearest with ties to
// even — one float32 significand rounding on integer mantissas.
//
//ehlint:hotpath
func rneShift(x int64, s uint) int64 {
	if s == 0 {
		return x
	}
	half := int64(1) << (s - 1)
	r := x >> s
	frac := x - r<<s
	if frac > half || (frac == half && r&1 == 1) {
		r++
	}
	return r
}

// dotInt8 is the dense-layer integer kernel: Σ w·x in int32.
//
//ehlint:hotpath
func dotInt8(w []int8, x []uint8) int32 {
	var s int32
	for i, wv := range w {
		s += int32(wv) * int32(x[i])
	}
	return s
}
