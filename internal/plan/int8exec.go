package plan

import "repro/internal/tensor"

// Int8 execution: uint8 activation codes flow between steps, conv/dense
// steps accumulate int8×uint8 products in int32 and re-quantize through
// the statically bound multiplier (ReLU fused: negative accumulators
// clamp to the zero code). Classifier heads dequantize accumulators to
// float32 logits so State.Predicted/Confidence work identically across
// backends.

// inferToInt8 is InferTo for int8 plans.
//
//ehlint:hotpath
func (e *Exec) inferToInt8(dst *State, img *tensor.Tensor, exit int) {
	p := e.p
	// Quantize the [0,1] input image to 8-bit codes (scale 1/255), like
	// fixed.QuantizeActivations(img, 1, 8).
	cur := e.bufA8[:p.geom.Vol()]
	for i, v := range img.Data {
		f := v * 255
		switch {
		case !(f > 0): // negatives and NaN clamp to the zero code
			cur[i] = 0
		case f >= 255:
			cur[i] = 255
		default:
			cur[i] = uint8(f + 0.5)
		}
	}
	for i := 0; i <= exit; i++ {
		cur = e.runInt8(p.segments[i], cur)
	}
	e.checkpointInt8(dst, cur, exit)
	e.runBranchInt8(dst, cur, exit)
}

// resumeInt8 is Resume for int8 plans.
//
//ehlint:hotpath
func (e *Exec) resumeInt8(dst *State, exit int) {
	p := e.p
	cur := dst.trunk8[:dst.trunkShape.vol()]
	for i := dst.Exit + 1; i <= exit; i++ {
		cur = e.runInt8(p.segments[i], cur)
	}
	e.checkpointInt8(dst, cur, exit)
	e.runBranchInt8(dst, cur, exit)
}

//
//ehlint:hotpath
func (e *Exec) checkpointInt8(dst *State, cur []uint8, exit int) {
	sh := e.p.trunkShapes[exit]
	copy(dst.trunk8[:sh.vol()], cur[:sh.vol()])
	dst.trunkShape = sh
}

// runBranchInt8 executes branch `exit` and lands the dequantized logits
// in the state.
//
//ehlint:hotpath
func (e *Exec) runBranchInt8(dst *State, cur []uint8, exit int) {
	e.runInt8(e.p.branches[exit], cur)
	dst.Exit = exit
	// The final dense step wrote dst-bound logits into e.logitsOut.
	copy(dst.logits, e.logitsOut[:e.p.classes])
}

// otherU8 mirrors other() for the integer slabs.
//
//ehlint:hotpath
func (e *Exec) otherU8(cur []uint8) []uint8 {
	if len(cur) > 0 && len(e.bufA8) > 0 && &cur[0] == &e.bufA8[0] {
		return e.bufB8
	}
	return e.bufA8
}

// runInt8 executes one step chain on integer codes. Classifier heads
// (deqScale > 0) emit float32 logits into e.logitsOut instead of codes.
//
//ehlint:hotpath
func (e *Exec) runInt8(ops []step, cur []uint8) []uint8 {
	for si := range ops {
		st := &ops[si]
		switch st.kind {
		case opConv:
			out := e.otherU8(cur)
			tensor.Im2ColU8(e.col8, cur[:st.inShape.vol()], st.geom)
			tensor.MatMulInt8Into(e.acc, st.wq, e.col8, st.outC, st.colRows, st.colCols)
			spatial := st.colCols
			mult := st.requantMult
			for oc := 0; oc < st.outC; oc++ {
				b := st.biasAcc[oc]
				accRow := e.acc[oc*spatial : (oc+1)*spatial]
				outRow := out[oc*spatial : (oc+1)*spatial]
				for i, a := range accRow {
					outRow[i] = requantU8(a+b, mult)
				}
			}
			cur = out

		case opDense:
			x := cur[:st.in]
			if st.deqScale > 0 {
				// Classifier head: raw accumulators → float logits.
				for o := 0; o < st.out; o++ {
					e.logitsOut[o] = float32(dotInt8(st.wq[o*st.in:(o+1)*st.in], x)+st.biasAcc[o]) * st.deqScale
				}
				return cur
			}
			out := e.otherU8(cur)
			mult := st.requantMult
			for o := 0; o < st.out; o++ {
				out[o] = requantU8(dotInt8(st.wq[o*st.in:(o+1)*st.in], x)+st.biasAcc[o], mult)
			}
			cur = out

		case opPool:
			out := e.otherU8(cur)
			tensor.MaxPool2U8(out, cur, st.inShape.c, st.inShape.h, st.inShape.w, st.kernel, st.stride)
			cur = out
		}
	}
	return cur
}

// requantU8 fuses ReLU (accumulator clamp at zero) with requantization to
// an 8-bit activation code.
//
//ehlint:hotpath
func requantU8(a int32, mult float32) uint8 {
	if a <= 0 {
		return 0
	}
	q := int32(float32(a)*mult + 0.5)
	if q > 255 {
		return 255
	}
	return uint8(q)
}

// dotInt8 is the dense-layer integer kernel: Σ w·x in int32.
//
//ehlint:hotpath
func dotInt8(w []int8, x []uint8) int32 {
	var s int32
	for i, wv := range w {
		s += int32(wv) * int32(x[i])
	}
	return s
}
