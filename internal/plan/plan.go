// Package plan compiles a deployed multi-exit network into a
// zero-allocation inference program for the simulation hot loop.
//
// The generic layer walk (multiexit.Network.InferTo/Resume over
// nn.Sequential.Forward) allocates a fresh activation tensor — and, for
// convolutions, an im2col lowering — per layer per call. A compiled Plan
// does all of that work once, at deployment time: every layer's output
// shape and conv geometry is precomputed, a single reusable activation
// arena (double-buffered slabs plus an im2col scratch sized at compile
// time) replaces the per-layer tensors, and conv+bias+ReLU /
// dense+bias+ReLU sequences are fused into single steps. Executing a plan
// performs zero heap allocations.
//
// Two backends lower from the same compiled geometry:
//
//   - Float32 (Compile): drives the exact serial kernels the layer walk
//     uses (tensor.GemmSerial / GemmTransBSerial / Im2ColSlice /
//     nn.FakeQuantizeSlice), in the same order, against arena storage —
//     plan output is bit-identical to the layer walk at any worker
//     count. Weights are live views into the network's parameters, so a
//     plan follows in-place weight updates without recompiling; shapes,
//     geometry, and quantization settings are snapshotted at compile
//     time.
//
//   - Int8 (CompileInt8): the deployment-faithful integer pipeline in
//     the spirit of internal/fixed — int8 weights, uint8 activations,
//     int32 accumulators (tensor.MatMulInt8Into), fused ReLU +
//     requantization — but compiled: scales are bound statically so the
//     hot loop is pure integer arithmetic. It approximates the float
//     result (validated by argmax-agreement tests), it does not
//     reproduce it bitwise.
//
// A Plan is immutable and safe to share; each goroutine runs it through
// its own Exec, and suspended inferences checkpoint into caller-owned
// State values — the paper's trunk-activation FRAM checkpoint, reusable
// across events without reallocation.
package plan

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Geometry is the input-image geometry a plan is compiled for.
type Geometry struct {
	C, H, W int
}

// Vol returns the input volume.
func (g Geometry) Vol() int { return g.C * g.H * g.W }

// InferGeometry derives the input geometry from the network's first
// trunk convolution (whose nominal spatial dims the architecture
// builders set). It fails on architectures that do not open with a conv
// layer carrying nominal dims — callers should fall back to the layer
// walk for those.
func InferGeometry(net *multiexit.Network) (Geometry, error) {
	if len(net.Segments) == 0 {
		return Geometry{}, fmt.Errorf("plan: network has no segments")
	}
	for _, l := range net.Segments[0].Layers {
		if c, ok := l.(*nn.Conv2D); ok {
			if c.NomH <= 0 || c.NomW <= 0 {
				return Geometry{}, fmt.Errorf("plan: first conv %q has no nominal input dims", c.Name())
			}
			return Geometry{C: c.InC, H: c.NomH, W: c.NomW}, nil
		}
	}
	return Geometry{}, fmt.Errorf("plan: segment 0 has no conv layer to infer geometry from")
}

type opKind uint8

const (
	opConv opKind = iota
	opDense
	opReLU
	opPool
)

// shape tracks the activation shape during the compile-time walk and in
// checkpointed trunk states.
type shape struct {
	c, h, w  int
	features int
	flat     bool
}

func (s shape) vol() int {
	if s.flat {
		return s.features
	}
	return s.c * s.h * s.w
}

// step is one fused stage of a compiled program.
type step struct {
	kind opKind

	// Weights and biases are live views into the network parameters
	// (float backend) — mutating the network's weights in place is
	// observed by the plan.
	w    []float32
	bias []float32

	// conv geometry and fused-GEMM dims.
	geom             tensor.ConvGeom
	outC             int
	colRows, colCols int

	// dense dims.
	in, out int

	// Post-GEMM epilogue: quantBits > 0 applies activation fake
	// quantization (tensor-wide, so it cannot fuse with ReLU); fuseReLU
	// clamps negatives inside the bias loop.
	quantBits int
	fuseReLU  bool
	final     bool

	// pool geometry.
	kernel, stride int

	inShape, outShape shape

	// int8 lowering (populated by CompileInt8 instead of w/bias).
	wq          []int8
	biasAcc     []int32
	requantMult float32 // accumulator → uint8 activation codes
	deqScale    float32 // accumulator → float32 logits (classifier heads)

	// Integer requantization, bound at compile time. The bit-exact
	// backend carries the float multiplier's 24-bit mantissa and
	// exponent (requantM, requantE), which requantU8 uses to reproduce
	// the float-rounding reference in pure integer arithmetic. The fast
	// backend carries a single-rounding 31-bit fixed-point pair
	// (mulFix, shiftFix) fused into the packed-GEMM epilogue, plus the
	// weights repacked once into the dual-lane panel layout.
	requantM int64
	requantE int
	mulFix   int32
	shiftFix uint
	wpk      *tensor.PackedInt8
}

// Plan is a compiled inference program: the immutable part shared by all
// executors.
type Plan struct {
	segments [][]step
	branches [][]step
	classes  int
	geom     Geometry
	int8     bool
	fast     bool // int8 with packed-weight kernels (CompileInt8Fast)

	// Arena sizing, computed during compilation.
	maxVol      int // largest activation volume any step touches
	maxColVol   int // largest im2col lowering
	maxAccVol   int // largest int32 accumulator block (int8 backend)
	trunkShapes []shape
	maxTrunkVol int
}

// NumExits returns the number of exits the plan serves.
func (p *Plan) NumExits() int { return len(p.segments) }

// Geometry returns the input geometry the plan was compiled for.
func (p *Plan) Geometry() Geometry { return p.geom }

// Int8 reports whether the plan is an int8 lowering (bit-exact or fast).
func (p *Plan) Int8() bool { return p.int8 }

// Int8Fast reports whether the plan is the packed-weight int8 lowering
// (CompileInt8Fast) — statistically gated against the float backend
// rather than bit-exact against the fixed-point walk.
func (p *Plan) Int8Fast() bool { return p.fast }

// Int8Config parameterizes the int8 lowering.
type Int8Config struct {
	// ActMax is the assumed activation ceiling bound into requantization
	// steps with no calibration data (default 4, matching
	// internal/fixed's uncalibrated default).
	ActMax float64
	// Calibration images (CHW, [0,1] pixels), when provided, bind each
	// weighted layer's requantization ceiling to the max float activation
	// observed across them (with 10% headroom) — the standard
	// post-training-quantization calibration pass. Strongly recommended;
	// the runtime calibrates on a handful of deployment samples.
	Calibration []*tensor.Tensor
	// Scales, when non-nil, supplies precomputed per-layer activation
	// ceilings (see Calibrate) and wins over Calibration. This is how a
	// deployment artifact replays the exact calibration it was saved
	// with, without shipping the calibration images.
	Scales *Calibration
}

// Calibration is the exportable result of the int8 calibration pass:
// for every trunk segment and exit branch, the max observed float
// activation after each weighted (conv/dense) layer, in execution
// order. It is pure data, so a deployment artifact can persist it and
// a later CompileInt8 (via Int8Config.Scales) binds bit-identical
// requantization scales on any machine.
type Calibration struct {
	Segments [][]float64 `json:"segments"`
	Branches [][]float64 `json:"branches"`
}

// Calibrate runs the float network over the calibration images and
// returns the per-weighted-layer activation ceilings the int8 lowering
// binds. With no images the result is empty (CompileInt8 then falls
// back to the static ActMax).
func Calibrate(net *multiexit.Network, images []*tensor.Tensor) *Calibration {
	m := calibrate(net, images)
	c := &Calibration{
		Segments: make([][]float64, net.NumExits()),
		Branches: make([][]float64, net.NumExits()),
	}
	for i := 0; i < net.NumExits(); i++ {
		c.Segments[i] = m[calKey{false, i}]
		c.Branches[i] = m[calKey{true, i}]
	}
	return c
}

// Each calls fn for every non-empty per-sequential ceiling slice —
// the one place the "empty means uncalibrated, skip it" convention
// lives, shared by this compiler and the fixed-point lowering.
func (c *Calibration) Each(fn func(branch bool, idx int, scales []float64)) {
	for i, v := range c.Segments {
		if len(v) > 0 {
			fn(false, i, v)
		}
	}
	for i, v := range c.Branches {
		if len(v) > 0 {
			fn(true, i, v)
		}
	}
}

// calMap flattens a Calibration back into the keyed form compile uses.
func (c *Calibration) calMap() map[calKey][]float64 {
	m := map[calKey][]float64{}
	c.Each(func(branch bool, idx int, scales []float64) {
		m[calKey{branch, idx}] = scales
	})
	return m
}

// Compile builds the float32 program for the network at the given input
// geometry. The program is bit-identical to the layer walk; an error
// (unsupported layer, shape mismatch) means the caller should keep using
// the layer walk.
func Compile(net *multiexit.Network, geom Geometry) (*Plan, error) {
	return compile(net, geom, false, false, Int8Config{})
}

// CompileInt8 builds the int8 program for the network at the given input
// geometry: int8 weights at each layer's quantization bitwidth (clamped
// to 8), uint8 activations with statically bound scales, int32
// accumulators.
func CompileInt8(net *multiexit.Network, geom Geometry, cfg Int8Config) (*Plan, error) {
	if cfg.ActMax <= 0 {
		cfg.ActMax = 4
	}
	return compile(net, geom, true, false, cfg)
}

// CompileInt8Fast builds the packed-weight integer program: the same
// quantization chain as CompileInt8 (so a pinned Calibration reproduces
// identical scales on either), but lowered for throughput. Weights are
// repacked once, here, into the dual-lane panel layout
// (tensor.PackInt8Panels); requantize+ReLU is fused into the GEMM
// epilogue through a 31-bit fixed-point (multiplier, shift) pair bound
// per layer; activations flow in transposed im2col order; and float
// arithmetic survives only at the classifier-head dequantize. Unlike
// CompileInt8, the result is NOT bit-exact against the fixed-point layer
// walk — its accuracy contract is statistical (per-exit accuracy within
// ε of the float backend), which is what licenses the kernel
// restructuring.
func CompileInt8Fast(net *multiexit.Network, geom Geometry, cfg Int8Config) (*Plan, error) {
	if cfg.ActMax <= 0 {
		cfg.ActMax = 4
	}
	return compile(net, geom, true, true, cfg)
}

func compile(net *multiexit.Network, geom Geometry, toInt8, fast bool, cfg Int8Config) (*Plan, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if geom.C <= 0 || geom.H <= 0 || geom.W <= 0 {
		return nil, fmt.Errorf("plan: invalid input geometry %+v", geom)
	}
	p := &Plan{classes: net.Classes, geom: geom, int8: toInt8, fast: fast, maxVol: geom.Vol()}
	var calib map[calKey][]float64
	if toInt8 {
		if cfg.Scales != nil {
			calib = cfg.Scales.calMap()
		} else {
			calib = calibrate(net, cfg.Calibration)
		}
	}
	cur := shape{c: geom.C, h: geom.H, w: geom.W}
	// inScale is the activation scale flowing into the next weighted
	// layer on the int8 backend; the input image quantizes to
	// [0,1] / 255 codes exactly like fixed.QuantizeActivations(img, 1, 8).
	inScale := 1.0 / 255.0
	for i, seg := range net.Segments {
		ops, out, err := p.compileSequential(seg, cur, toInt8, cfg, &inScale, calib[calKey{false, i}])
		if err != nil {
			return nil, fmt.Errorf("plan: segment %d: %w", i, err)
		}
		p.segments = append(p.segments, ops)
		cur = out
		p.trunkShapes = append(p.trunkShapes, cur)
		if v := cur.vol(); v > p.maxTrunkVol {
			p.maxTrunkVol = v
		}
		branchScale := inScale
		bops, bout, err := p.compileSequential(net.Branches[i], cur, toInt8, cfg, &branchScale, calib[calKey{true, i}])
		if err != nil {
			return nil, fmt.Errorf("plan: branch %d: %w", i, err)
		}
		if bout.vol() != net.Classes {
			return nil, fmt.Errorf("plan: branch %d yields %d values for %d classes", i, bout.vol(), net.Classes)
		}
		p.branches = append(p.branches, bops)
	}
	return p, nil
}

// calKey addresses one sequential (trunk segment or branch) in the
// calibration map.
type calKey struct {
	branch bool
	idx    int
}

// calibrate runs the float network over the calibration images and
// records, for every conv/dense layer, the max post-layer activation —
// the ceiling the int8 requantization steps bind. Returns an empty map
// (static ActMax everywhere) with no images.
func calibrate(net *multiexit.Network, images []*tensor.Tensor) map[calKey][]float64 {
	out := map[calKey][]float64{}
	record := func(seq *nn.Sequential, x *tensor.Tensor) (*tensor.Tensor, []float64) {
		var maxes []float64
		for _, l := range seq.Layers {
			x = l.Forward(x, false)
			switch l.(type) {
			case *nn.Conv2D, *nn.Dense:
				maxes = append(maxes, float64(x.MaxAbs()))
			}
		}
		return x, maxes
	}
	for _, img := range images {
		x := img
		if x.Rank() == 3 {
			s := x.Shape()
			x = x.Reshape(1, s[0], s[1], s[2])
		}
		for si, seg := range net.Segments {
			var maxes []float64
			x, maxes = record(seg, x)
			mergeMax(out, calKey{false, si}, maxes)
			_, bmaxes := record(net.Branches[si], x)
			mergeMax(out, calKey{true, si}, bmaxes)
		}
	}
	return out
}

func mergeMax(dst map[calKey][]float64, key calKey, vals []float64) {
	prev, ok := dst[key]
	if !ok || len(prev) != len(vals) {
		dst[key] = append([]float64(nil), vals...)
		return
	}
	for i, v := range vals {
		if v > prev[i] {
			prev[i] = v
		}
	}
}

// compileSequential shape-walks one nn.Sequential, emitting fused steps.
// inScale carries the int8 activation-scale chain through the walk;
// actMaxes holds the sequential's calibrated per-weighted-layer
// activation ceilings (may be nil → static cfg.ActMax).
func (p *Plan) compileSequential(seq *nn.Sequential, cur shape, toInt8 bool, cfg Int8Config, inScale *float64, actMaxes []float64) ([]step, shape, error) {
	var ops []step
	weightedIdx := 0
	// nextActMax yields the requantization ceiling for the next weighted
	// layer: calibrated max with 10% headroom when available.
	nextActMax := func() float64 {
		m := cfg.ActMax
		if weightedIdx < len(actMaxes) && actMaxes[weightedIdx] > 0 {
			m = actMaxes[weightedIdx] * 1.1
		}
		weightedIdx++
		return m
	}
	layers := seq.Layers
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *nn.Conv2D:
			if cur.flat {
				return nil, cur, fmt.Errorf("conv %q after flatten", l.Name())
			}
			if cur.c != l.InC {
				return nil, cur, fmt.Errorf("conv %q expects %d input channels, got %d", l.Name(), l.InC, cur.c)
			}
			g := l.Geom(cur.h, cur.w)
			if err := g.Validate(); err != nil {
				return nil, cur, err
			}
			out := shape{c: l.OutC, h: g.OutH(), w: g.OutW()}
			st := step{
				kind: opConv, geom: g, outC: l.OutC,
				colRows: l.InC * l.KH * l.KW, colCols: g.OutH() * g.OutW(),
				w: l.W.Value.Data, bias: l.B.Value.Data,
				quantBits: clampActBits(l.ActBits),
				inShape:   cur, outShape: out,
			}
			if toInt8 {
				if err := st.lowerInt8(l.W.Value.Data, l.B.Value.Data, l.WeightBitsPerValue, false, nextActMax(), inScale, p.fast); err != nil {
					return nil, cur, fmt.Errorf("conv %q: %w", l.Name(), err)
				}
				// ReLU is fused into requantization; drop an adjacent one.
				if i+1 < len(layers) {
					if _, ok := layers[i+1].(*nn.ReLU); ok {
						i++
					}
				}
			} else if st.quantBits == 0 && i+1 < len(layers) {
				// Fuse conv+bias+ReLU when no tensor-wide quantization
				// separates them.
				if _, ok := layers[i+1].(*nn.ReLU); ok {
					st.fuseReLU = true
					i++
				}
			}
			p.noteVols(out.vol(), st.colRows*st.colCols, l.OutC*st.colCols)
			ops = append(ops, st)
			cur = out

		case *nn.Dense:
			if !cur.flat {
				return nil, cur, fmt.Errorf("dense %q needs flattened input", l.Name())
			}
			if cur.features != l.In {
				return nil, cur, fmt.Errorf("dense %q expects %d features, got %d", l.Name(), l.In, cur.features)
			}
			out := shape{flat: true, features: l.Out}
			st := step{
				kind: opDense, in: l.In, out: l.Out,
				w: l.W.Value.Data, bias: l.B.Value.Data,
				quantBits: clampActBits(l.ActBits), final: l.Final,
				inShape: cur, outShape: out,
			}
			if l.Final {
				st.quantBits = 0 // classifier heads skip activation quantization
			}
			if toInt8 {
				if err := st.lowerInt8(l.W.Value.Data, l.B.Value.Data, l.WeightBitsPerValue, l.Final, nextActMax(), inScale, p.fast); err != nil {
					return nil, cur, fmt.Errorf("dense %q: %w", l.Name(), err)
				}
				if i+1 < len(layers) {
					if _, ok := layers[i+1].(*nn.ReLU); ok && !l.Final {
						i++
					}
				}
			} else if st.quantBits == 0 && !l.Final && i+1 < len(layers) {
				if _, ok := layers[i+1].(*nn.ReLU); ok {
					st.fuseReLU = true
					i++
				}
			}
			p.noteVols(out.vol(), 0, l.Out)
			ops = append(ops, st)
			cur = out

		case *nn.ReLU:
			// In the int8 pipeline ReLU is part of requantization, and a
			// standalone clamp on unsigned codes is the identity — so the
			// step is emitted only on the float backend.
			if !toInt8 {
				ops = append(ops, step{kind: opReLU, inShape: cur, outShape: cur})
			}

		case *nn.MaxPool2D:
			if cur.flat {
				return nil, cur, fmt.Errorf("pool %q after flatten", l.Name())
			}
			oh, ow := l.OutDims(cur.h, cur.w)
			if oh <= 0 || ow <= 0 {
				return nil, cur, fmt.Errorf("pool %q yields empty output for %dx%d", l.Name(), cur.h, cur.w)
			}
			out := shape{c: cur.c, h: oh, w: ow}
			ops = append(ops, step{kind: opPool, kernel: l.Kernel, stride: l.Stride, inShape: cur, outShape: out})
			p.noteVols(out.vol(), 0, 0)
			cur = out

		case *nn.Flatten:
			cur = shape{flat: true, features: cur.vol()}
			// Pure shape bookkeeping: no step emitted.

		default:
			return nil, cur, fmt.Errorf("unsupported layer %T", layers[i])
		}
	}
	return ops, cur, nil
}

// noteVols grows the arena sizing watermarks.
func (p *Plan) noteVols(actVol, colVol, accVol int) {
	if actVol > p.maxVol {
		p.maxVol = actVol
	}
	if colVol > p.maxColVol {
		p.maxColVol = colVol
	}
	if accVol > p.maxAccVol {
		p.maxAccVol = accVol
	}
}

// clampActBits mirrors the layer forward passes' "in [1,31]" activation
// quantization gate.
func clampActBits(bits int) int {
	if bits > 0 && bits < 32 {
		return bits
	}
	return 0
}

// lowerInt8 quantizes one weighted layer for the int8 backend and binds
// its scales into the step. actMax is the layer's requantization
// ceiling. With fast set it additionally repacks the quantized weights
// into the dual-lane panel layout and binds the fixed-point requant
// pair the fused kernels consume.
func (st *step) lowerInt8(w []float32, bias []float32, layerBits int, final bool, actMax float64, inScale *float64, fast bool) error {
	bits := 8
	if layerBits > 0 && layerBits < 8 {
		bits = layerBits
	}
	wScale := compress.OptimalWeightScale(w, bits)
	if wScale == 0 {
		wScale = 1e-6
	}
	lb := -(int32(1) << uint(bits-1))
	ub := int32(1)<<uint(bits-1) - 1
	st.wq = make([]int8, len(w))
	for i, v := range w {
		q := int32(math.Round(float64(v) / wScale))
		if q < lb {
			q = lb
		}
		if q > ub {
			q = ub
		}
		st.wq[i] = int8(q)
	}
	accScale := wScale * *inScale
	st.biasAcc = make([]int32, len(bias))
	for i, b := range bias {
		st.biasAcc[i] = int32(math.Round(float64(b) / accScale))
	}
	if fast {
		rows, cols := st.out, st.in
		if st.kind == opConv {
			rows, cols = st.outC, st.colRows
		}
		if cols > tensor.MaxInt8FastK {
			return fmt.Errorf("reduction depth %d exceeds the int8-fast lane-safe bound %d", cols, tensor.MaxInt8FastK)
		}
		st.wpk = tensor.PackInt8Panels(st.wq, rows, cols)
	}
	if final {
		st.deqScale = float32(accScale)
		return nil
	}
	outScale := actMax / 255
	st.requantMult = float32(accScale / outScale)
	st.requantM, st.requantE = requantFixExact(st.requantMult)
	if fast {
		mul, shift, err := requantFix31(st.requantMult)
		if err != nil {
			return err
		}
		st.mulFix, st.shiftFix = mul, shift
	}
	*inScale = outScale
	return nil
}

// requantFixExact decomposes a float32 requantization multiplier into
// its exact 24-bit mantissa and binary exponent (mult = m·2^e, m in
// [2^23, 2^24)), the compile-time half of requantU8's pure-integer
// emulation of the float-rounding reference.
func requantFixExact(mult float32) (m int64, e int) {
	frac, exp := math.Frexp(float64(mult))
	return int64(frac * (1 << 24)), exp - 24
}

// requantFix31 derives the fast backend's single-rounding fixed-point
// requantization pair: mult ≈ mul·2^-shift with a 31-bit multiplier, the
// form tensor.GemmInt8PackedReq fuses into its epilogue.
func requantFix31(mult float32) (int32, uint, error) {
	frac, exp := math.Frexp(float64(mult))
	m := int64(math.Round(frac * (1 << 31)))
	if m == 1<<31 {
		m >>= 1
		exp++
	}
	shift := 31 - exp
	if mult <= 0 || shift < 1 || shift > 62 {
		return 0, 0, fmt.Errorf("requant multiplier %g outside the 31-bit fixed-point range", mult)
	}
	return int32(m), uint(shift), nil
}
