package plan

import (
	"fmt"
	"testing"

	"repro/internal/compress"
	"repro/internal/multiexit"
	"repro/internal/tensor"
)

// rawImages flattens a test batch into the []float32 form the batched
// executor (and the serving layer) consumes.
func rawImages(n int, seed uint64) [][]float32 {
	imgs := testImages(n, seed)
	out := make([][]float32, n)
	for i, img := range imgs {
		out[i] = img.Data
	}
	return out
}

// TestBatchParity is the batched tentpole's gate: InferBatchTo output
// must be bit-identical per image to the N=1 plan across batch sizes,
// lane counts (single-lane and banded across 4 workers), exits, and
// compression policies, and the filled states must resume through a
// regular Exec exactly like single-image states.
func TestBatchParity(t *testing.T) {
	for _, lanes := range []int{1, 4} {
		for name := range policies(multiexit.LeNetEE(nil)) {
			t.Run(fmt.Sprintf("lanes=%d/%s", lanes, name), func(t *testing.T) {
				prev := tensor.SetWorkers(lanes)
				defer tensor.SetWorkers(prev)
				testBatchParity(t, name, lanes)
			})
		}
	}
}

func testBatchParity(t *testing.T, name string, lanes int) {
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	if err := compress.Apply(net, policies(net)[name]); err != nil {
		t.Fatal(err)
	}
	geom, err := InferGeometry(net)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(net, geom)
	if err != nil {
		t.Fatal(err)
	}
	ex, ref := p.NewExec(), p.NewState()

	for _, n := range []int{1, 3, 4, 5, 16} {
		be, err := p.NewBatchExec(n)
		if err != nil {
			t.Fatal(err)
		}
		if want := min(lanes, n); be.Lanes() != want {
			t.Fatalf("n=%d: %d lanes, want %d", n, be.Lanes(), want)
		}
		imgs := rawImages(n, 7)
		tensors := testImages(n, 7)
		dsts := make([]*State, n)
		for i := range dsts {
			dsts[i] = p.NewState()
		}
		for exit := 0; exit < net.NumExits(); exit++ {
			be.InferBatchTo(dsts, imgs, exit)
			for i := 0; i < n; i++ {
				ex.InferTo(ref, tensors[i], exit)
				assertStatesEqual(t, dsts[i], ref, fmt.Sprintf("n=%d exit=%d img=%d", n, exit, i))
			}
		}
		// Batched states must be resumable by a plain Exec: run the
		// batch to exit 0, resume each state to the last exit, and
		// compare against a pure single-image chain.
		last := net.NumExits() - 1
		if last > 0 {
			be.InferBatchTo(dsts, imgs, 0)
			for i := 0; i < n; i++ {
				ex.Resume(dsts[i], last)
				want := p.NewState()
				ex.InferTo(want, tensors[i], 0)
				ex.Resume(want, last)
				assertStatesEqual(t, dsts[i], want, fmt.Sprintf("n=%d resume img=%d", n, i))
			}
		}
	}
}

// assertStatesEqual compares two plan states bit for bit.
func assertStatesEqual(t *testing.T, got, want *State, ctx string) {
	t.Helper()
	for i, v := range got.Logits() {
		if v != want.Logits()[i] {
			t.Fatalf("%s: logit[%d] = %x, want %x (batched output must be bit-identical)",
				ctx, i, v, want.Logits()[i])
		}
	}
	if got.Predicted() != want.Predicted() {
		t.Fatalf("%s: predicted %d vs %d", ctx, got.Predicted(), want.Predicted())
	}
	if gc, wc := got.Confidence(), want.Confidence(); gc != wc {
		t.Fatalf("%s: confidence %v vs %v", ctx, gc, wc)
	}
	if got.Exit != want.Exit {
		t.Fatalf("%s: exit %d vs %d", ctx, got.Exit, want.Exit)
	}
}

// TestScanExits checks the serving walk: logits surfaced at every exit
// match direct single-image inference to that exit, for every image.
func TestScanExits(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(3))
	geom, _ := InferGeometry(net)
	p, err := Compile(net, geom)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	be, err := p.NewBatchExec(n)
	if err != nil {
		t.Fatal(err)
	}
	ex, ref := p.NewExec(), p.NewState()
	imgs := rawImages(n, 9)
	tensors := testImages(n, 9)

	visited := make(map[[2]int]bool)
	be.ScanExits(imgs, net.NumExits()-1, func(exit, img int, logits []float32) {
		visited[[2]int{exit, img}] = true
		ex.InferTo(ref, tensors[img], exit)
		for i, v := range logits {
			if v != ref.Logits()[i] {
				t.Fatalf("exit %d img %d: logit[%d] = %x, want %x", exit, img, i, v, ref.Logits()[i])
			}
		}
	})
	if len(visited) != n*net.NumExits() {
		t.Fatalf("visited %d (exit, img) pairs, want %d", len(visited), n*net.NumExits())
	}
}

// TestBatchExecAllocs gates the serving hot path: a warmed single-lane
// batch executor must not allocate (multi-lane execution pays only the
// banding goroutines).
func TestBatchExecAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	net := multiexit.LeNetEE(tensor.NewRNG(4))
	geom, _ := InferGeometry(net)
	p, err := Compile(net, geom)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	be, err := p.NewBatchExec(n)
	if err != nil {
		t.Fatal(err)
	}
	imgs := rawImages(n, 5)
	dsts := make([]*State, n)
	for i := range dsts {
		dsts[i] = p.NewState()
	}
	visit := func(_, _ int, _ []float32) {}
	for name, fn := range map[string]func(){
		"InferBatchTo": func() { be.InferBatchTo(dsts, imgs, 2) },
		"ScanExits":    func() { be.ScanExits(imgs, 2, visit) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs > 2 {
			t.Errorf("%s: %v allocs/op, want <= 2", name, allocs)
		}
	}
}

// TestBatchExecRejects covers the construction and argument contract.
func TestBatchExecRejects(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(6))
	geom, _ := InferGeometry(net)
	ip, err := CompileInt8(net, geom, Int8Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.NewBatchExec(4); err == nil {
		t.Fatal("expected error building a batch executor for an int8 plan")
	}

	fp, err := Compile(net, geom)
	if err != nil {
		t.Fatal(err)
	}
	be, err := fp.NewBatchExec(2)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	okImg := rawImages(1, 1)[0]
	mustPanic("oversized batch", func() {
		be.InferBatchTo([]*State{fp.NewState(), fp.NewState(), fp.NewState()},
			[][]float32{okImg, okImg, okImg}, 0)
	})
	mustPanic("bad image volume", func() {
		be.InferBatchTo([]*State{fp.NewState()}, [][]float32{make([]float32, 7)}, 0)
	})
	mustPanic("exit out of range", func() {
		be.InferBatchTo([]*State{fp.NewState()}, [][]float32{okImg}, 99)
	})
	mustPanic("state/image count mismatch", func() {
		be.InferBatchTo([]*State{fp.NewState()}, [][]float32{okImg, okImg}, 0)
	})
}
