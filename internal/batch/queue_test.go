package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// stubInferer answers requests with a tag derived from the input's
// first value, optionally sleeping to simulate slow inference and
// recording every dispatched batch.
type stubInferer struct {
	delay time.Duration

	mu      sync.Mutex
	batches [][]float32 // first value of each request per dispatch
	served  int64
}

func (s *stubInferer) InferBatch(reqs []Req) []Prediction {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	preds := make([]Prediction, len(reqs))
	firsts := make([]float32, len(reqs))
	for i, r := range reqs {
		preds[i] = Prediction{Class: int(r.Input[0]), Exit: r.Exit, Backend: "stub"}
		firsts[i] = r.Input[0]
	}
	s.mu.Lock()
	s.batches = append(s.batches, firsts)
	s.served += int64(len(reqs))
	s.mu.Unlock()
	return preds
}

func req(tag int) Req { return Req{Input: []float32{float32(tag)}} }

// TestQueueEchoesEveryRequest drives concurrent submitters against two
// queues (two "artifacts") and checks every request is answered exactly
// once with its own prediction — the cross-model race test (-race).
func TestQueueEchoesEveryRequest(t *testing.T) {
	const submitters, perSubmitter = 8, 25
	qa := NewQueue(&stubInferer{}, Config{MaxBatch: 4, Window: 500 * time.Microsecond, QueueCap: 1024})
	qb := NewQueue(&stubInferer{}, Config{MaxBatch: 7, Window: 500 * time.Microsecond, QueueCap: 1024})
	defer qa.Close(context.Background())
	defer qb.Close(context.Background())

	var wg sync.WaitGroup
	errs := make(chan error, submitters*perSubmitter)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				q := qa
				if (s+i)%2 == 1 {
					q = qb
				}
				tag := s*1000 + i
				pred, err := q.Submit(context.Background(), req(tag))
				if err != nil {
					errs <- err
					continue
				}
				if pred.Class != tag {
					errs <- fmt.Errorf("tag %d answered with %d", tag, pred.Class)
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	sa, sb := qa.Stats(), qb.Stats()
	if sa.Served+sb.Served != submitters*perSubmitter {
		t.Fatalf("served %d+%d, want %d", sa.Served, sb.Served, submitters*perSubmitter)
	}
	if sa.Rejected != 0 || sb.Rejected != 0 {
		t.Fatalf("unexpected rejections %d/%d", sa.Rejected, sb.Rejected)
	}
	// The histogram must account for every dispatch, and no batch may
	// exceed its queue's bound.
	var hist int64
	for i, c := range sa.BatchSizes {
		if i+1 > 4 && c > 0 {
			t.Fatalf("queue A dispatched a batch of %d (bound 4)", i+1)
		}
		hist += c
	}
	if hist != sa.Batches {
		t.Fatalf("histogram sums to %d, batches %d", hist, sa.Batches)
	}
}

// TestQueueBatchesUnderLoad checks that the window actually coalesces:
// with a slow inferer and many concurrent submitters, dispatches must
// carry more than one request on average.
func TestQueueBatchesUnderLoad(t *testing.T) {
	stub := &stubInferer{delay: 2 * time.Millisecond}
	q := NewQueue(stub, Config{MaxBatch: 8, Window: 5 * time.Millisecond, QueueCap: 256})
	defer q.Close(context.Background())

	const n = 48
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := q.Submit(context.Background(), req(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := q.Stats()
	if st.Served != n {
		t.Fatalf("served %d, want %d", st.Served, n)
	}
	if st.MeanBatch <= 1.2 {
		t.Errorf("mean batch %.2f: the window did not coalesce concurrent requests", st.MeanBatch)
	}
	if st.LatencyMS.P50 <= 0 || st.LatencyMS.P99 < st.LatencyMS.P50 {
		t.Errorf("implausible latency percentiles %+v", st.LatencyMS)
	}
	if st.ThroughputPerSec <= 0 {
		t.Errorf("throughput %v", st.ThroughputPerSec)
	}
}

// TestQueueBackpressure fills a tiny queue behind a stalled inferer and
// checks the bound produces ErrQueueFull (the HTTP 429 signal), while
// every accepted request is still answered.
func TestQueueBackpressure(t *testing.T) {
	stub := &stubInferer{delay: 20 * time.Millisecond}
	q := NewQueue(stub, Config{MaxBatch: 2, Window: time.Millisecond, QueueCap: 4})
	defer q.Close(context.Background())

	const n = 40
	var accepted, rejected, answered atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tkt, err := q.Enqueue(context.Background(), req(i))
			if errors.Is(err, ErrQueueFull) {
				rejected.Add(1)
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			accepted.Add(1)
			if _, err := tkt.Wait(context.Background()); err != nil {
				t.Error(err)
				return
			}
			answered.Add(1)
		}(i)
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Fatal("no request hit the queue bound")
	}
	if answered.Load() != accepted.Load() {
		t.Fatalf("%d accepted but %d answered", accepted.Load(), answered.Load())
	}
	st := q.Stats()
	if st.Rejected != rejected.Load() || st.Served != answered.Load() {
		t.Fatalf("stats (served %d, rejected %d) vs observed (%d, %d)",
			st.Served, st.Rejected, answered.Load(), rejected.Load())
	}
}

// TestQueueCancellationMidWindow cancels requests after admission but
// before dispatch: the submitter unblocks with ctx.Err(), the
// dispatcher skips the corpse, and live requests are unaffected.
func TestQueueCancellationMidWindow(t *testing.T) {
	q := NewQueue(&stubInferer{}, Config{MaxBatch: 16, Window: 50 * time.Millisecond, QueueCap: 64})
	defer q.Close(context.Background())

	// The long window holds the batch open: admit one live and several
	// canceled requests into the same window.
	live, err := q.Enqueue(context.Background(), req(1))
	if err != nil {
		t.Fatal(err)
	}
	var canceledWait sync.WaitGroup
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		tkt, err := q.Enqueue(ctx, req(100+i))
		if err != nil {
			t.Fatal(err)
		}
		canceledWait.Add(1)
		go func() {
			defer canceledWait.Done()
			if _, err := tkt.Wait(ctx); !errors.Is(err, context.Canceled) {
				t.Errorf("canceled request got %v", err)
			}
		}()
		cancel()
	}
	canceledWait.Wait()

	pred, err := live.Wait(context.Background())
	if err != nil || pred.Class != 1 {
		t.Fatalf("live request: %v / %+v", err, pred)
	}
	// Allow the dispatcher to retire the canceled slots, then verify
	// accounting: 1 served, 5 canceled, depth back to zero.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := q.Stats()
		if st.Canceled == 5 && st.Served == 1 && st.QueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueShutdownDrain closes a queue with requests still waiting:
// every admitted request must be answered (drained, not lost), new
// submissions must fail with ErrClosed, and no request may be answered
// twice.
func TestQueueShutdownDrain(t *testing.T) {
	stub := &stubInferer{delay: 5 * time.Millisecond}
	q := NewQueue(stub, Config{MaxBatch: 3, Window: 30 * time.Millisecond, QueueCap: 128})

	const n = 20
	type result struct {
		tag  int
		pred Prediction
		err  error
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tkt, err := q.Enqueue(context.Background(), req(i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, tkt *Ticket) {
			defer wg.Done()
			p, err := tkt.Wait(context.Background())
			results <- result{tag: i, pred: p, err: err}
		}(i, tkt)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := q.Submit(context.Background(), req(999)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}

	wg.Wait()
	close(results)
	seen := map[int]bool{}
	for r := range results {
		if r.err != nil {
			t.Fatalf("request %d lost at shutdown: %v", r.tag, r.err)
		}
		if r.pred.Class != r.tag {
			t.Fatalf("request %d answered with %d", r.tag, r.pred.Class)
		}
		if seen[r.tag] {
			t.Fatalf("request %d answered twice", r.tag)
		}
		seen[r.tag] = true
	}
	if len(seen) != n {
		t.Fatalf("answered %d of %d", len(seen), n)
	}
	// Closing again is a no-op.
	if err := q.Close(context.Background()); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestQueueOnRealModel wires the queue to a real plan-backed model and
// hammers it concurrently — the integration race test: concurrent
// submitters across two real artifacts with live plan executors.
func TestQueueOnRealModel(t *testing.T) {
	ma, err := NewModel(testDeployed(t, core.BackendDefault), core.BackendDefault, 4)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := NewModel(testDeployed(t, core.BackendInt8), core.BackendDefault, 4)
	if err != nil {
		t.Fatal(err)
	}
	qa := NewQueue(ma, Config{MaxBatch: 4, Window: time.Millisecond, QueueCap: 256})
	qb := NewQueue(mb, Config{MaxBatch: 4, Window: time.Millisecond, QueueCap: 256})
	defer qa.Close(context.Background())
	defer qb.Close(context.Background())

	wantA := ma.Infer(Req{Input: testInput(7, ma.InputLen()), Options: Options{Exit: -1}})
	wantB := mb.Infer(Req{Input: testInput(7, mb.InputLen()), Options: Options{Exit: -1}})

	var wg sync.WaitGroup
	for s := 0; s < 6; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q, want := qa, wantA
				if (s+i)%2 == 1 {
					q, want = qb, wantB
				}
				in := testInput(7, ma.InputLen())
				got, err := q.Submit(context.Background(), Req{Input: in, Options: Options{Exit: -1}})
				if err != nil {
					t.Error(err)
					return
				}
				if got.Class != want.Class || got.Confidence != want.Confidence {
					t.Errorf("batched answer (%d, %v) differs from solo (%d, %v)",
						got.Class, got.Confidence, want.Class, want.Confidence)
				}
			}
		}(s)
	}
	wg.Wait()
}

// panicInferer blows up on request tags >= 1000.
type panicInferer struct{ stub stubInferer }

func (p *panicInferer) InferBatch(reqs []Req) []Prediction {
	for _, r := range reqs {
		if r.Input[0] >= 1000 {
			panic("poisoned request")
		}
	}
	return p.stub.InferBatch(reqs)
}

// TestQueueSurvivesInfererPanic: a panic during batch execution must
// fail that batch's requests with an error — and leave the worker alive
// for the next batch — never unwind the daemon.
func TestQueueSurvivesInfererPanic(t *testing.T) {
	q := NewQueue(&panicInferer{}, Config{MaxBatch: 4, Window: time.Millisecond, QueueCap: 16})
	defer q.Close(context.Background())

	if _, err := q.Submit(context.Background(), req(1000)); !errors.Is(err, ErrInferenceFailed) {
		t.Fatalf("poisoned request: err = %v, want ErrInferenceFailed", err)
	}
	pred, err := q.Submit(context.Background(), req(7))
	if err != nil || pred.Class != 7 {
		t.Fatalf("queue did not survive the panic: %v / %+v", err, pred)
	}
	st := q.Stats()
	if st.Errored != 1 || st.Served != 1 || st.QueueDepth != 0 {
		t.Fatalf("panicked batch accounting: %+v", st)
	}
}

// TestQueueCloseIdempotentConcurrent: overlapping Close calls are safe
// and all return success once the worker exits; submissions afterward
// fail ErrClosed.
func TestQueueCloseIdempotentConcurrent(t *testing.T) {
	q := NewQueue(&stubInferer{}, Config{MaxBatch: 4, Window: time.Millisecond, QueueCap: 8})
	if _, err := q.Submit(context.Background(), req(1)); err != nil {
		t.Fatalf("warmup submit: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := q.Close(ctx); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()
	if _, err := q.Submit(context.Background(), req(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
}
